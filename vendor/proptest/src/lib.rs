//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace patches
//! `proptest` to this vendored implementation (see `[patch.crates-io]`
//! in the root manifest). It supports the surface this workspace's
//! property tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! argument strategies built from primitive ranges, tuples of
//! strategies, and [`any`], plus the [`prop_assert!`] family.
//!
//! Unlike real proptest the case stream is fully deterministic (seeded
//! from the test name), and failures do not shrink — the failing case
//! index and generated inputs are reported in the panic message so a
//! case can be re-run by index.

/// Deterministic per-test random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// One generator per (test name, case index), fully deterministic.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A recipe for generating one argument value per case.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $u).wrapping_add(off as $u) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $u as $t;
                }
                let off = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
                (lo as $u).wrapping_add(off as $u) as $t
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64,
);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Whole-domain strategy for primitives, used as `any::<u64>()`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Builds the whole-domain strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A strategy that always yields a fixed value.
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each function runs `cases` deterministic
/// seeded cases, destructuring every `pattern in strategy` argument.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        @cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pn:pat in $ps:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $pn = $crate::Strategy::sample(&($ps), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::{Strategy, TestRng};

    /// Strategy yielding `Vec`s with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` strategy: length in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The customary glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn dims() -> impl Strategy<Value = (usize, usize)> {
        (1usize..16, 1usize..16)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuples_and_ranges((m, n) in dims(), seed in any::<u64>(), k in 0usize..5) {
            prop_assert!((1..16).contains(&m));
            prop_assert!((1..16).contains(&n));
            prop_assert!(k < 5);
            let _ = seed;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
