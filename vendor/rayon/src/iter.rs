//! The narrow parallel-iterator surface this workspace uses, executed
//! by materializing items and fanning chunks out over scoped threads.
//!
//! Chains are lazy until a terminal (`collect`, `reduce_with`,
//! `for_each`, `max`, `min`): the terminal drives the chain, splitting
//! the item list into one contiguous chunk per effective worker so
//! results keep their input order.

use crate::{current_num_threads, join};
use std::ops::Range;

/// Applies `f` to every item, preserving order, using up to the
/// current effective thread count.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let len = items.len();
    let chunk = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(chunks.len());
        let mut iter = chunks.into_iter();
        let first = iter.next().expect("at least one chunk");
        for c in iter {
            handles.push(s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()));
        }
        let mut out: Vec<R> = first.into_iter().map(f).collect();
        for h in handles {
            match h.join() {
                Ok(mut part) => out.append(&mut part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Balanced adjacent-pair reduction (parallel via [`join`]), matching
/// rayon's guarantee that `reduce_with` only combines neighbors.
fn tree_reduce<T, OP>(mut items: Vec<T>, op: &OP) -> Option<T>
where
    T: Send,
    OP: Fn(T, T) -> T + Sync,
{
    match items.len() {
        0 => None,
        1 => items.pop(),
        len => {
            let right = items.split_off(len / 2);
            let (l, r) = join(|| tree_reduce(items, op), || tree_reduce(right, op));
            match (l, r) {
                (Some(a), Some(b)) => Some(op(a, b)),
                (a, b) => a.or(b),
            }
        }
    }
}

/// A lazily-composed parallel iterator.
pub trait ParallelIterator: Sized {
    /// The element type the chain yields.
    type Item: Send;

    /// Executes the chain, returning items in order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Maps every item to a serial iterator and concatenates the
    /// results in order.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Collects into `C` (in practice, `Vec<_>`).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_vec(self.drive())
    }

    /// Reduces adjacent results with `op`; `None` on an empty chain.
    fn reduce_with<OP>(self, op: OP) -> Option<Self::Item>
    where
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        tree_reduce(self.drive(), &op)
    }

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).drive();
    }

    /// The maximum item, `None` on an empty chain.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.drive().into_iter().max()
    }

    /// The minimum item, `None` on an empty chain.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.drive().into_iter().min()
    }
}

/// A materialized item list at the head of a chain.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// The `map` adaptor.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_map(self.base.drive(), &self.f)
    }
}

/// The `flat_map_iter` adaptor.
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Sync + Send,
{
    type Item = U::Item;

    fn drive(self) -> Vec<U::Item> {
        let f = self.f;
        parallel_map(self.base.drive(), &|x| {
            f(x).into_iter().collect::<Vec<U::Item>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The chain head type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Builds the chain head.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = VecIter<usize>;
    type Item = usize;

    fn into_par_iter(self) -> VecIter<usize> {
        VecIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::RangeInclusive<usize> {
    type Iter = VecIter<usize>;
    type Item = usize;

    fn into_par_iter(self) -> VecIter<usize> {
        VecIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Iter = VecIter<u64>;
    type Item = u64;

    fn into_par_iter(self) -> VecIter<u64> {
        VecIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Iter = VecIter<&'a T>;
    type Item = &'a T;

    fn into_par_iter(self) -> VecIter<&'a T> {
        VecIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Iter = VecIter<&'a T>;
    type Item = &'a T;

    fn into_par_iter(self) -> VecIter<&'a T> {
        VecIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter()` on borrowed collections, mirroring rayon's blanket.
pub trait IntoParallelRefIterator<'a> {
    /// The chain head type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a reference).
    type Item: Send + 'a;
    /// Builds the chain head over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = <&'a C as IntoParallelIterator>::Item;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collection types a chain can `collect` into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from driven items (already in order).
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_with_combines_adjacent() {
        let strings: Vec<String> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let combined = strings
            .into_par_iter()
            .reduce_with(|a, b| format!("{a}{b}"))
            .unwrap();
        assert_eq!(combined, "abcde");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        pool.install(|| assert_eq!(crate::current_num_threads(), 1));
    }
}
