//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no registry access, so the workspace patches
//! `rayon` to this vendored implementation (see `[patch.crates-io]` in
//! the root manifest). It keeps rayon's semantics on the surface this
//! workspace actually uses — [`join`], [`broadcast`],
//! [`current_num_threads`], [`ThreadPoolBuilder`]/[`ThreadPool::install`],
//! and parallel iterators with `map`/`collect`/`reduce_with`/`for_each` —
//! executing on scoped `std::thread` workers instead of a work-stealing
//! pool.
//!
//! Differences from real rayon, all benign for this workspace:
//! - [`join`] spawns a scoped thread per fork (with a process-wide live
//!   cap, falling back to sequential), so fine-grained joins cost more
//!   than a work-stealing deque. The engines all have sequential-grain
//!   cutoffs that keep fork counts small.
//! - [`ThreadPool::install`] pins the *calling thread's* effective
//!   thread count rather than moving work onto a dedicated pool. Since
//!   a 1-thread install runs everything inline, "sequential baseline"
//!   measurements keep their meaning.
//! - `reduce_with` combines adjacent results in a balanced tree, which
//!   matches rayon's adjacency guarantee.

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Live spawned-thread cap, above which forks run sequentially.
const MAX_LIVE_THREADS: usize = 128;

static LIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static INSTALLED_THREADS: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// The number of worker threads the current scope should assume.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

struct LiveGuard;

impl LiveGuard {
    /// Claims a live-thread slot; `None` when at the cap.
    fn claim() -> Option<LiveGuard> {
        let prev = LIVE.fetch_add(1, Ordering::Relaxed);
        if prev >= MAX_LIVE_THREADS {
            LIVE.fetch_sub(1, Ordering::Relaxed);
            None
        } else {
            Some(LiveGuard)
        }
    }
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        LIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs both closures, potentially in parallel, returning both results.
/// Panics in either closure propagate after both complete, like rayon.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let Some(_guard) = LiveGuard::claim() else {
        return (a(), b());
    };
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => resume_unwind(payload),
        }
    })
}

/// Per-invocation context handed to [`broadcast`] closures.
pub struct BroadcastContext<'a> {
    index: usize,
    num_threads: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BroadcastContext<'_> {
    /// This worker's index in `0..num_threads()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// How many workers the broadcast ran on.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs `op` once on every worker thread, returning the results in
/// worker order.
pub fn broadcast<OP, R>(op: OP) -> Vec<R>
where
    OP: Fn(BroadcastContext<'_>) -> R + Sync,
    R: Send,
{
    let n = current_num_threads().max(1);
    if n == 1 {
        return vec![op(BroadcastContext {
            index: 0,
            num_threads: 1,
            _marker: std::marker::PhantomData,
        })];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..n)
            .map(|index| {
                let op = &op;
                s.spawn(move || {
                    op(BroadcastContext {
                        index,
                        num_threads: n,
                        _marker: std::marker::PhantomData,
                    })
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        out.push(op(BroadcastContext {
            index: 0,
            num_threads: n,
            _marker: std::marker::PhantomData,
        }));
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    })
}

/// Error from [`ThreadPoolBuilder::build`]; this implementation never
/// produces one, but the type keeps call sites source-compatible.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with a fixed worker count.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (`0` means the default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
        })
    }
}

/// A handle that scopes work to a fixed effective thread count.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count as the effective
    /// parallelism for joins and parallel iterators it performs.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

pub mod iter;

/// The customary glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}
