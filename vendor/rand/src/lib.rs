//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace patches
//! `rand` to this vendored implementation (see `[patch.crates-io]` in
//! the root manifest). It covers exactly the surface the workspace
//! uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over primitive integer and float ranges —
//! with a deterministic xoshiro256++ core so seeded test streams are
//! reproducible across runs and platforms.
//!
//! This is NOT a cryptographic or research-grade generator. Every use
//! in this workspace is "make plausible structured test data from a
//! seed", which xoshiro256++ serves well.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform draw from `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Maps a raw word to the unit interval `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Widening-multiply bounded draw: uniform-enough over `[0, span)`.
fn bounded(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                (self.start as $u).wrapping_add(bounded(rng.next_u64(), span) as $u) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $u as $t;
                }
                (lo as $u).wrapping_add(bounded(rng.next_u64(), span + 1) as $u) as $t
            }
        }
    )*};
}

impl_int_sample!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64,
);

macro_rules! impl_float_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_sample!(f32, f64);

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ with a
    /// SplitMix64-expanded seed (the xoshiro authors' recommendation).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix(&mut sm),
                splitmix(&mut sm),
                splitmix(&mut sm),
                splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random_range(0i64..1_000_000), b.random_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = r.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = r.random_range(0.01f64..5.0);
            assert!((0.01..5.0).contains(&f));
        }
    }
}
