//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace patches
//! `criterion` to this vendored implementation (see `[patch.crates-io]`
//! in the root manifest). It compiles and runs the workspace's benches
//! with a simple best-of-N wall-clock loop and stderr reporting — no
//! statistics, plots, or baselines. The committed `bench-results/*.json`
//! artifacts come from the dedicated `src/bin/*_json.rs` writers, not
//! from this harness, so nothing downstream depends on its output.

use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs and times the body.
pub struct Bencher {
    samples: usize,
    best_nanos: u128,
}

impl Bencher {
    /// Times `body` over `samples` runs, keeping the best.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        // One warm-up, then timed runs.
        black_box(body());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(body());
            let dt = t0.elapsed().as_nanos();
            if dt < self.best_nanos {
                self.best_nanos = dt;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-bench sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run<F>(&mut self, label: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples.min(10),
            best_nanos: u128::MAX,
        };
        f(&mut b);
        if b.best_nanos == u128::MAX {
            eprintln!("{}/{label}: no measurement", self.name);
        } else {
            eprintln!("{}/{label}: best {} ns", self.name, b.best_nanos);
        }
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.name, |b| f(b, input));
        self
    }

    /// Benchmarks a parameterless closure.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The harness entry point benches receive as `&mut Criterion`.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a parameterless closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut f);
        group.finish();
        self
    }
}

/// Declares a bench group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
