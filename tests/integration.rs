//! Cross-crate integration: the facade crate's re-exports drive complete
//! end-to-end pipelines spanning generators, sequential algorithms,
//! parallel engines, simulators, and applications.

use monge::core::array2d::{Array2d, Dense};
use monge::core::generators::{random_monge_dense, random_staircase_monge_dense};
use monge::core::monge::brute_row_minima;
use monge::core::smawk::row_minima_monge;
use monge::core::staircase::{compute_boundary, staircase_row_minima_brute};
use monge::parallel::MinPrimitive;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn facade_reexports_compose() {
    let mut rng = StdRng::seed_from_u64(1);
    let a = random_monge_dense(32, 32, &mut rng);
    let seq = row_minima_monge(&a).index;
    assert_eq!(seq, brute_row_minima(&a));
    assert_eq!(
        seq,
        monge::parallel::rayon_monge::par_row_minima_monge(&a).index
    );
    assert_eq!(
        seq,
        monge::parallel::pram_monge::pram_row_minima_monge(&a, MinPrimitive::DoublyLog).index
    );
}

#[test]
fn staircase_pipeline_end_to_end() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..5 {
        let a = random_staircase_monge_dense(40, 33, &mut rng);
        let f = compute_boundary(&a);
        let want = staircase_row_minima_brute(&a, &f);
        assert_eq!(monge::core::staircase::staircase_row_minima(&a, &f), want);
        assert_eq!(
            monge::parallel::rayon_staircase::par_staircase_row_minima(&a, &f),
            want
        );
        assert_eq!(
            monge::parallel::pram_staircase::pram_staircase_row_minima(
                &a,
                &f,
                MinPrimitive::Constant
            )
            .index,
            want
        );
    }
}

#[test]
fn geometry_to_array_to_search() {
    // Polygon -> inverse-Monge array -> SMAWK -> farthest neighbors.
    let mut rng = StdRng::seed_from_u64(3);
    let poly = monge::apps::geometry::ConvexPolygon::random(60, 0.0, 0.0, 10.0, &mut rng);
    let p = poly.vertices[..30].to_vec();
    let q = poly.vertices[30..].to_vec();
    let got = monge::apps::farthest::farthest_across_chains(&p, &q);
    let want = monge::apps::farthest::farthest_across_chains_brute(&p, &q);
    assert_eq!(got, want);
}

#[test]
fn strings_to_dist_to_tube_minima() {
    // Strings -> strip DIST matrices (Monge) -> tube-minima combination.
    let mut rng = StdRng::seed_from_u64(4);
    let x: Vec<u8> = (0..30).map(|_| b'a' + rng.random_range(0u8..3)).collect();
    let y: Vec<u8> = (0..37).map(|_| b'a' + rng.random_range(0u8..3)).collect();
    let c = monge::apps::string_edit::CostModel::weighted();
    let d = monge::apps::string_edit::edit_distance_dp(&x, &y, &c);
    for strips in [1, 2, 4, 7] {
        assert_eq!(
            monge::apps::string_edit::edit_distance_dist_tree(&x, &y, &c, strips),
            d
        );
    }
}

#[test]
fn simulators_agree_with_host_algorithms() {
    // The same Monge instance through PRAM and hypercube machinery.
    let mut rng = StdRng::seed_from_u64(5);
    let mut v: Vec<i64> = (0..32).map(|_| rng.random_range(0..10_000)).collect();
    let mut w: Vec<i64> = (0..32).map(|_| rng.random_range(0..10_000)).collect();
    v.sort_unstable();
    w.sort_unstable();
    let va = monge::parallel::VectorArray::new(v, w, |x: i64, y: i64| (x - y).abs());
    let dense: Dense<i64> = Dense::tabulate(32, 32, |i, j| va.entry(i, j));
    let want = brute_row_minima(&dense);
    let hc = monge::parallel::hc_monge::hc_row_minima(&va);
    assert_eq!(hc.index, want);
    // The recorded trace prices onto CCC / shuffle-exchange at constant
    // overhead.
    assert!(hc.emulation.se_steps <= 3 * hc.emulation.hypercube_steps);
}

#[test]
fn tube_engines_cross_check() {
    let mut rng = StdRng::seed_from_u64(6);
    let d = random_monge_dense(10, 12, &mut rng);
    let e = random_monge_dense(12, 9, &mut rng);
    let want = monge::core::tube::tube_minima_brute(&d, &e);
    assert_eq!(monge::core::tube::tube_minima(&d, &e), want);
    assert_eq!(monge::parallel::rayon_tube::par_tube_minima(&d, &e), want);
    assert_eq!(
        monge::parallel::hc_tube::hc_tube_minima(&d, &e).extrema,
        want
    );
}
