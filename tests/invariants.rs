//! Accounting invariants of the simulated machines, checked across real
//! algorithm executions (not synthetic steps): the quantities the
//! benchmark tables report must be internally consistent.

use monge::core::generators::{random_monge_dense, random_staircase_monge_dense};
use monge::core::staircase::compute_boundary;
use monge::parallel::MinPrimitive;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pram_work_bounded_by_steps_times_peak() {
    let mut rng = StdRng::seed_from_u64(60);
    for prim in [
        MinPrimitive::Tree,
        MinPrimitive::DoublyLog,
        MinPrimitive::Constant,
        MinPrimitive::Combining,
    ] {
        let a = random_monge_dense(48, 48, &mut rng);
        let run = monge::parallel::pram_monge::pram_row_minima_monge(&a, prim);
        let m = &run.metrics;
        assert!(m.steps > 0);
        assert!(m.work > 0);
        // Fork/join sections rewind the step clock, so the steps × peak
        // bound applies to the *sum of branch lengths*, which is at
        // least the recorded work / peak. Sanity: every step schedules
        // at least one processor.
        assert!(
            m.work >= m.steps,
            "{prim:?}: work {} < steps {}",
            m.work,
            m.steps
        );
        assert!(m.peak_processors >= 1);
        assert!(
            m.writes <= m.work,
            "each processor writes at most once per step"
        );
        assert_eq!(m.violations, 0);
    }
}

#[test]
fn pram_staircase_accounting_consistent() {
    let mut rng = StdRng::seed_from_u64(61);
    let a = random_staircase_monge_dense(64, 64, &mut rng);
    let f = compute_boundary(&a);
    let run =
        monge::parallel::pram_staircase::pram_staircase_row_minima(&a, &f, MinPrimitive::DoublyLog);
    let m = &run.metrics;
    // Candidate loads write cells whose values come straight from the
    // entry oracle (the §1.2 "compute a[i,j] in O(1)" assumption), so
    // writes can exceed reads; both must be bounded by the work.
    assert!(m.reads <= 8 * m.work, "O(1) reads per processor-step");
    assert!(m.writes <= m.work);
    assert!(m.concurrent_write_events <= m.steps + m.work);
    assert_eq!(m.violations, 0);
}

#[test]
fn hypercube_messages_match_exchanges() {
    let (v, w) = {
        let mut v: Vec<i64> = (0..32).map(|i| (i * 37) % 101).collect();
        let mut w: Vec<i64> = (0..32).map(|i| (i * 61) % 103).collect();
        v.sort_unstable();
        w.sort_unstable();
        (v, w)
    };
    let a = monge::parallel::VectorArray::new(v, w, |x: i64, y: i64| (x - y).abs());
    let run = monge::parallel::hc_monge::hc_row_minima(&a);
    let m = &run.metrics;
    // Every exchange moves one message per node; the machine is sized
    // 2·max(m, n) rounded up to a power of two.
    assert_eq!(m.messages, m.comm_steps * 64);
    assert_eq!(m.dim_trace.len() as u64, m.comm_steps);
    assert!(run.emulation.ccc_steps >= m.steps());
    assert!(run.emulation.se_steps >= m.steps());
}

#[test]
fn deterministic_metrics_across_runs() {
    // The simulators are deterministic: identical inputs give identical
    // step counts, so the published tables are reproducible bit-for-bit.
    let mut rng1 = StdRng::seed_from_u64(62);
    let mut rng2 = StdRng::seed_from_u64(62);
    let a1 = random_monge_dense(40, 40, &mut rng1);
    let a2 = random_monge_dense(40, 40, &mut rng2);
    let r1 = monge::parallel::pram_monge::pram_row_maxima_monge(&a1, MinPrimitive::Constant);
    let r2 = monge::parallel::pram_monge::pram_row_maxima_monge(&a2, MinPrimitive::Constant);
    assert_eq!(r1.metrics, r2.metrics);
    assert_eq!(r1.index, r2.index);
}
