//! Autotune winner-vs-default speedups: `bench-results/autotune.json`.
//!
//! One representative problem per [`ProblemKind`], each solved through
//! `Dispatcher::solve_calibrated` so the process-global autotuner
//! ([`monge_parallel::autotune::global`]) measures (cold cache) or
//! serves (warm cache) the winner for that key. Per row the JSON
//! records the autotune key coordinates, the provenance the solve
//! reported, the backend/tuning the static selection heuristic would
//! have picked, the measured winner, and `ratio` — best-of-reps wall
//! clock of the default configuration over the winner configuration on
//! the *full-size* problem (not the subsampled probe the tuner timed).
//! When the winner coincides with the default the ratio is exactly 1.0
//! by construction: there is nothing to race, and committed files must
//! not carry noise-only deviations.
//!
//! Both configurations are asserted bitwise-identical before anything
//! is timed — autotuning must be invisible in the answers.
//!
//! The committed file is enforced by the
//! `crates/bench/tests/autotune_guard.rs` tripwire: the measured winner
//! must never lose to the default selection (`ratio >= 1.0` on every
//! row).
//!
//! ```text
//! cargo run --release --bin autotune_json
//! ```
//!
//! Environment:
//!
//! * `MONGE_AUTOTUNE` / `MONGE_AUTOTUNE_DIR` steer the global autotuner
//!   as everywhere else — CI points `MONGE_AUTOTUNE_DIR` at a scratch
//!   directory and runs the binary twice to exercise the cold and warm
//!   paths.
//! * `MONGE_AUTOTUNE_EXPECT=warm` asserts the warm contract: every
//!   solve must report `cached` provenance and the process must perform
//!   zero measurements, else the binary exits nonzero.
//! * `MONGE_BENCH_QUICK` shrinks every problem to smoke-test size
//!   (quick numbers are not meaningful and are never committed).

use monge_bench::json::{document, Record};
use monge_bench::workloads::rng_for;
use monge_core::array2d::Dense;
use monge_core::generators::{random_monge_dense, random_staircase_boundary};
use monge_core::problem::{Problem, ProblemKind, TuningProvenance};
use monge_parallel::autotune::{self, AutotuneKey};
use monge_parallel::{Dispatcher, Tuning};
use std::hint::black_box;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::var("MONGE_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Owned storage for one representative problem; the [`Problem`]
/// borrows from it.
struct Case {
    kind: ProblemKind,
    arrays: Vec<Dense<i64>>,
    boundary: Vec<usize>,
    lo: Vec<usize>,
    hi: Vec<usize>,
}

impl Case {
    fn problem(&self) -> Problem<'_, i64> {
        match self.kind {
            ProblemKind::RowMinima => Problem::row_minima(&self.arrays[0]),
            ProblemKind::RowMaxima => Problem::row_maxima(&self.arrays[0]),
            ProblemKind::StaircaseRowMinima => {
                Problem::staircase_row_minima(&self.arrays[0], &self.boundary)
            }
            ProblemKind::BandedRowMinima => {
                Problem::banded_row_minima(&self.arrays[0], &self.lo, &self.hi)
            }
            ProblemKind::BandedRowMaxima => {
                Problem::banded_row_maxima(&self.arrays[0], &self.lo, &self.hi)
            }
            ProblemKind::TubeMinima => Problem::tube_minima(&self.arrays[0], &self.arrays[1]),
            ProblemKind::TubeMaxima => Problem::tube_maxima(&self.arrays[0], &self.arrays[1]),
        }
    }
}

/// One representative per problem kind. Bands are half-width diagonal
/// strips with the monotone endpoints the banded divide & conquer
/// requires (non-decreasing for minima, non-increasing for maxima).
fn cases(quick: bool) -> Vec<Case> {
    let (m, n, tube_n) = if quick {
        (48, 160, 24)
    } else {
        (512, 2048, 256)
    };
    ProblemKind::ALL
        .iter()
        .enumerate()
        .map(|(k, &kind)| {
            let tag = 0xA7_00 + k as u64;
            let mut case = Case {
                kind,
                arrays: Vec::new(),
                boundary: Vec::new(),
                lo: Vec::new(),
                hi: Vec::new(),
            };
            match kind {
                ProblemKind::TubeMinima | ProblemKind::TubeMaxima => {
                    case.arrays.push(random_monge_dense(
                        tube_n,
                        tube_n,
                        &mut rng_for(tag, tube_n),
                    ));
                    case.arrays.push(random_monge_dense(
                        tube_n,
                        tube_n,
                        &mut rng_for(tag + 0x50, tube_n),
                    ));
                }
                _ => {
                    case.arrays
                        .push(random_monge_dense(m, n, &mut rng_for(tag, n)));
                    match kind {
                        ProblemKind::StaircaseRowMinima => {
                            case.boundary = random_staircase_boundary(m, n, &mut rng_for(tag, m));
                        }
                        ProblemKind::BandedRowMinima => {
                            case.lo = (0..m).map(|i| (i * n) / (2 * m)).collect();
                            case.hi = case.lo.iter().map(|&l| (l + n / 2).min(n)).collect();
                        }
                        ProblemKind::BandedRowMaxima => {
                            case.lo = (0..m).map(|i| ((m - 1 - i) * n) / (2 * m)).collect();
                            case.hi = case.lo.iter().map(|&l| (l + n / 2).min(n)).collect();
                        }
                        _ => {}
                    }
                }
            }
            case
        })
        .collect()
}

/// Best-of-`reps` wall clock with one untimed warm-up, matching the
/// autotuner's own timing discipline.
fn best_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    f();
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .min()
        .expect("reps >= 1")
}

fn main() {
    let quick = quick_mode();
    if quick {
        println!("MONGE_BENCH_QUICK set: smoke-test sizes");
    }
    let expect_warm = std::env::var("MONGE_AUTOTUNE_EXPECT").is_ok_and(|v| v == "warm");
    let reps = if quick { 3 } else { 9 };
    let d = Dispatcher::<i64>::with_default_backends();
    let tuner = autotune::global();
    println!(
        "autotune mode={:?} host=\"{}\"",
        tuner.mode(),
        autotune::host_fingerprint()
    );
    let build = if monge_core::kernel::simd_compiled() {
        "simd"
    } else {
        "default"
    };

    let all = cases(quick);
    let mut records = Vec::new();
    let mut warm_violations = Vec::new();
    for case in &all {
        let p = case.problem();
        // Drives the measurement (cold) or the cache hit (warm).
        let (autotuned_solution, telemetry) = d.solve_calibrated(&p);
        let provenance = telemetry
            .provenance
            .expect("calibrated solves stamp provenance");
        if provenance != TuningProvenance::Cached {
            warm_violations.push(format!("{:?} reported {}", case.kind, provenance.as_str()));
        }

        let key = AutotuneKey::of(&p);
        let default_tuning = Tuning::from_env();
        let default_backend = d.select(&p, &default_tuning).name().to_string();
        let (default_solution, _) = d
            .solve_on(&default_backend, &p, default_tuning)
            .expect("the selected backend solves its own selection");
        assert_eq!(
            autotuned_solution, default_solution,
            "{:?}: autotuned answer diverges from the default path",
            case.kind
        );

        let (winner_backend, winner_tuning) = match tuner.lookup(&key) {
            Some(w) => (w.backend, w.tuning),
            // Off mode / readonly miss: the table holds nothing, the
            // winner *is* the default and the row records a 1.0 ratio.
            None => (default_backend.clone(), default_tuning),
        };
        let identical = winner_backend == default_backend && winner_tuning == default_tuning;
        let (default_ns, winner_ns, ratio) = if identical {
            let ns = best_ns(reps, || {
                black_box(d.solve_on(&default_backend, &p, default_tuning));
            });
            (ns, ns, 1.0)
        } else {
            let winner_ns = best_ns(reps, || {
                black_box(d.solve_on(&winner_backend, &p, winner_tuning));
            });
            let default_ns = best_ns(reps, || {
                black_box(d.solve_on(&default_backend, &p, default_tuning));
            });
            (default_ns, winner_ns, default_ns as f64 / winner_ns as f64)
        };
        println!(
            "{:>18?} prov={:<8} default={:<10} winner={:<10} ratio={ratio:.2}x",
            case.kind,
            provenance.as_str(),
            default_backend,
            winner_backend,
        );
        records.push(
            Record::new()
                .str("kind", &format!("{:?}", case.kind))
                .num("size_class", u128::from(key.size_class))
                .str("elem", &key.elem)
                .str("build", build)
                .str("provenance", provenance.as_str())
                .str("default_backend", &default_backend)
                .str("winner_backend", &winner_backend)
                .num("default_ns", default_ns)
                .num("winner_ns", winner_ns)
                .float("ratio", ratio)
                .render(),
        );
    }

    std::fs::create_dir_all("bench-results").expect("create bench-results/");
    let doc = document("autotune", &records);
    std::fs::write("bench-results/autotune.json", &doc).expect("write autotune.json");
    println!(
        "wrote bench-results/autotune.json ({} measurements this process)",
        tuner.measurements()
    );

    if expect_warm {
        if !warm_violations.is_empty() || tuner.measurements() != 0 {
            eprintln!(
                "MONGE_AUTOTUNE_EXPECT=warm violated: {} measurements, non-cached solves: [{}]",
                tuner.measurements(),
                warm_violations.join(", ")
            );
            std::process::exit(2);
        }
        println!("warm contract held: every solve cached, zero measurements");
    }
}
