//! Submatrix query-index benchmark with a JSON summary
//! (`bench-results/queryindex.json`): build-once/query-many against
//! brute per-query re-scanning across a square size ladder.
//!
//! Per ladder size the record carries the one-time preprocessing cost
//! (`build_ns`, `index_bytes`, `breakpoints`) and the serving-rate
//! comparison: the same seeded rectangle batch answered through the
//! `QueryIndex` (`index_qps`) and by brute submatrix scans over the
//! dense array (`brute_qps`), with `speedup` their ratio. Correctness
//! is gated before any timing — every rectangle's `(value, row, col)`
//! must match the brute scan bitwise.
//!
//! ```text
//! cargo run --release --bin queryindex_json
//! ```
//!
//! Setting `MONGE_BENCH_QUICK` (to anything but `0` or empty) shrinks
//! the ladder to smoke-test size — CI uses this to keep the binary
//! exercised without paying benchmark wall-clock. The committed file
//! is always regenerated at full size.

use monge_bench::json::{document, Record};
use monge_bench::workloads::{monge_square, rng_for};
use monge_core::array2d::{Array2d, Dense};
use monge_core::problem::{Objective, Problem, Structure};
use monge_parallel::Dispatcher;
use rand::RngExt;
use std::hint::black_box;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::var("MONGE_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Seeded rectangle batch: varied extents, every rectangle non-empty.
fn sample_rects(n: usize, count: usize) -> Vec<(usize, usize, usize, usize)> {
    let mut rng = rng_for(71, n);
    (0..count)
        .map(|_| {
            let r1 = rng.random_range(0..n);
            let r2 = rng.random_range(r1..n) + 1;
            let c1 = rng.random_range(0..n);
            let c2 = rng.random_range(c1..n) + 1;
            (r1, r2, c1, c2)
        })
        .collect()
}

/// Brute oracle: full submatrix scan, leftmost `(value, row, col)`.
fn brute_min(a: &Dense<i64>, r: (usize, usize, usize, usize)) -> (i64, usize, usize) {
    let (r1, r2, c1, c2) = r;
    let mut best = (i64::MAX, usize::MAX, usize::MAX);
    for i in r1..r2 {
        for j in c1..c2 {
            let v = a.entry(i, j);
            if v < best.0 {
                best = (v, i, j);
            }
        }
    }
    best
}

fn queryindex_json(quick: bool) -> String {
    let sizes: &[usize] = if quick {
        &[64, 256]
    } else {
        &[256, 1024, 4096]
    };
    let queries = if quick { 8 } else { 32 };
    let d = Dispatcher::<i64>::with_default_backends();
    let mut records = Vec::new();
    for &n in sizes {
        let a = monge_square(n);
        let p = Problem::rows(&a, Structure::Monge, Objective::Minimize);

        let t = Instant::now();
        let (ix, tel) = d
            .build_index_guarded(&p, &Default::default())
            .expect("index build");
        let build_ns = t.elapsed().as_nanos();
        assert_eq!(tel.index_builds, 1);

        let rects = sample_rects(n, queries);
        // Correctness gate before any timing: bitwise agreement with
        // the brute scan on every rectangle in the batch.
        for &r in &rects {
            let ans = ix.query_min(r.0..r.1, r.2..r.3).expect("in-bounds query");
            assert_eq!(
                (ans.value, ans.row, ans.col),
                brute_min(&a, r),
                "index disagrees with brute at n={n} rect {r:?}"
            );
        }

        let t = Instant::now();
        for &r in &rects {
            black_box(ix.query_min(r.0..r.1, r.2..r.3).unwrap());
        }
        let index_ns = t.elapsed().as_nanos().max(1);
        let t = Instant::now();
        for &r in &rects {
            black_box(brute_min(&a, r));
        }
        let brute_ns = t.elapsed().as_nanos().max(1);

        let index_qps = queries as f64 / (index_ns as f64 / 1e9);
        let brute_qps = queries as f64 / (brute_ns as f64 / 1e9);
        let speedup = brute_ns as f64 / index_ns as f64;
        println!(
            "n={n:<5} build={build_ns:>12}ns bytes={:>10} breakpoints={:>8} \
             index={index_qps:>12.0}q/s brute={brute_qps:>9.1}q/s speedup={speedup:.1}x",
            ix.bytes(),
            ix.breakpoints(),
        );
        records.push(
            Record::new()
                .num("n", n as u64)
                .num("build_ns", build_ns)
                .num("index_bytes", ix.bytes())
                .num("breakpoints", ix.breakpoints())
                .num("queries", queries as u64)
                .num("index_ns", index_ns)
                .num("brute_ns", brute_ns)
                .float("index_qps", index_qps)
                .float("brute_qps", brute_qps)
                .float("speedup", speedup)
                .render(),
        );
    }
    document("queryindex", &records)
}

fn main() {
    let quick = quick_mode();
    if quick {
        println!("MONGE_BENCH_QUICK set: smoke-test sizes");
    }
    std::fs::create_dir_all("bench-results").expect("create bench-results/");
    let out = queryindex_json(quick);
    std::fs::write("bench-results/queryindex.json", &out).expect("write queryindex.json");
    println!("wrote bench-results/queryindex.json");
}
