//! Batched-serving throughput: `bench-results/throughput.json`.
//!
//! Measures the [`monge_parallel::batch`] service against the
//! one-at-a-time serving loop it replaces, over a ladder of batch
//! mixes. Both sides solve the identical problem list and the results
//! are asserted bitwise-identical before anything is timed:
//!
//! * **loop** — what a per-request service does: for each problem,
//!   calibrate the grain cutoffs against its array
//!   ([`monge_parallel::calibrate`]), then `solve_guarded_with`. Every
//!   request pays calibration (hundreds of microseconds of timed probe
//!   scans) plus its own selection/validation bookkeeping.
//! * **batched** — one `solve_batch_report` call: problems grouped by
//!   `(kind, structure, size-class)`, calibration paid once per group,
//!   row-minima work Merge-Path-chunked across the pool.
//!
//! Per ladder row the JSON records best-of-reps wall clock for both
//! modes, solves/sec, per-request p50/p99 latency for the loop and
//! whole-batch p50/p99 for the batched path, and the throughput
//! speedup. The committed file is enforced by the
//! `crates/bench/tests/throughput_guard.rs` tripwire: batched must
//! never lose (≥ 1.0× on every row) and must win ≥ 1.3× on at least
//! one mixed-size row.
//!
//! ```text
//! cargo run --release --bin throughput
//! ```
//!
//! `MONGE_BENCH_QUICK` shrinks every row to smoke-test size (CI keeps
//! the binary exercised without benchmark wall-clock; quick numbers
//! are not meaningful and are never committed).
//!
//! The committed file is generated from the release `--features simd`
//! build (each record carries a `build` field saying so): that is the
//! performance configuration, and the one where per-request
//! calibration is at its most expensive — `calibrate` times the scalar
//! scan against the lane kernel per request, which the batch path pays
//! once per group instead. On the default build dense calibration is
//! only a few microseconds and the two modes run near parity.

use monge_bench::json::{document, Record};
use monge_bench::workloads::rng_for;
use monge_core::array2d::Dense;
use monge_core::generators::{random_monge_dense, random_staircase_boundary};
use monge_core::problem::{Problem, Solution};
use monge_parallel::{calibrate, BatchPolicy, Dispatcher};
use std::hint::black_box;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::var("MONGE_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Owned storage for one ladder row; problems borrow from it.
struct Mix {
    name: &'static str,
    arrays: Vec<Dense<i64>>,
    /// `(array index, spec)` per problem, in submission order.
    specs: Vec<Spec>,
    boundaries: Vec<Vec<usize>>,
}

enum Spec {
    RowMin(usize),
    RowMax(usize),
    /// `(array, boundary)` indices.
    Staircase(usize, usize),
    /// `(d, e)` array indices.
    Tube(usize, usize),
}

impl Mix {
    fn problems(&self) -> Vec<Problem<'_, i64>> {
        self.specs
            .iter()
            .map(|s| match *s {
                Spec::RowMin(a) => Problem::row_minima(&self.arrays[a]),
                Spec::RowMax(a) => Problem::row_maxima(&self.arrays[a]),
                Spec::Staircase(a, b) => {
                    Problem::staircase_row_minima(&self.arrays[a], &self.boundaries[b])
                }
                Spec::Tube(d, e) => Problem::tube_minima(&self.arrays[d], &self.arrays[e]),
            })
            .collect()
    }

    /// The array the loop baseline calibrates against per request (the
    /// primary array — same choice the batch path makes per group).
    fn calibration_array(&self, idx: usize) -> &Dense<i64> {
        match self.specs[idx] {
            Spec::RowMin(a) | Spec::RowMax(a) | Spec::Staircase(a, _) | Spec::Tube(a, _) => {
                &self.arrays[a]
            }
        }
    }
}

/// `count` square Monge arrays of side `n`, distinct seeds.
fn squares(mix: &mut Mix, count: usize, n: usize, tag: u64) -> Vec<usize> {
    (0..count)
        .map(|k| {
            mix.arrays
                .push(random_monge_dense(n, n, &mut rng_for(tag + k as u64, n)));
            mix.arrays.len() - 1
        })
        .collect()
}

fn uniform(name: &'static str, count: usize, n: usize, tag: u64) -> Mix {
    let mut mix = Mix {
        name,
        arrays: Vec::new(),
        specs: Vec::new(),
        boundaries: Vec::new(),
    };
    for a in squares(&mut mix, count, n, tag) {
        mix.specs.push(Spec::RowMin(a));
    }
    mix
}

/// The acceptance row: a few large problems next to a tail of small
/// ones, all row minima — the shape where per-request calibration
/// dominates the small requests and Merge-Path chunking has to keep
/// the large ones from serializing the batch.
fn mixed_sizes(quick: bool) -> Mix {
    let (big, big_n, mid, mid_n, small, small_n) = if quick {
        (1, 128, 2, 64, 4, 32)
    } else {
        (2, 1024, 14, 256, 48, 64)
    };
    let mut mix = Mix {
        name: "mixed_sizes",
        arrays: Vec::new(),
        specs: Vec::new(),
        boundaries: Vec::new(),
    };
    for (count, n, tag) in [(big, big_n, 300), (mid, mid_n, 400), (small, small_n, 500)] {
        for a in squares(&mut mix, count, n, tag) {
            mix.specs.push(Spec::RowMin(a));
        }
    }
    mix
}

/// All four request families in one batch: minima, maxima, staircase
/// and tube requests land in distinct groups and must each get their
/// own calibration and deadline slice.
fn mixed_kinds(quick: bool) -> Mix {
    let (n, rows_count, tube_n) = if quick { (48, 2, 24) } else { (128, 8, 64) };
    let mut mix = Mix {
        name: "mixed_kinds",
        arrays: Vec::new(),
        specs: Vec::new(),
        boundaries: Vec::new(),
    };
    for a in squares(&mut mix, rows_count, n, 600) {
        mix.specs.push(Spec::RowMin(a));
    }
    for a in squares(&mut mix, rows_count, n, 700) {
        mix.specs.push(Spec::RowMax(a));
    }
    for a in squares(&mut mix, rows_count / 2, n, 800) {
        mix.boundaries
            .push(random_staircase_boundary(n, n, &mut rng_for(801, n)));
        mix.specs.push(Spec::Staircase(a, mix.boundaries.len() - 1));
    }
    for k in 0..rows_count / 2 {
        let d = squares(&mut mix, 1, tube_n, 900 + k as u64)[0];
        let e = squares(&mut mix, 1, tube_n, 950 + k as u64)[0];
        mix.specs.push(Spec::Tube(d, e));
    }
    mix
}

fn percentile(sorted_ns: &[u128], p: f64) -> u128 {
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx]
}

fn bench_mix(d: &Dispatcher<i64>, mix: &Mix, reps: usize) -> String {
    let problems = mix.problems();
    let policy = BatchPolicy::default();
    let guard = policy.guard;

    // Correctness gate before timing: the batch must be bitwise-
    // identical to the loop it replaces.
    let loop_solutions: Vec<Solution<i64>> = problems
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let t = calibrate(mix.calibration_array(i));
            d.solve_guarded_with(p, &guard, t).expect("loop solve").0
        })
        .collect();
    let batch_solutions = d.solve_batch(&problems, policy);
    for (i, (a, b)) in loop_solutions.iter().zip(&batch_solutions).enumerate() {
        assert_eq!(
            a,
            b.as_ref().expect("batch solve"),
            "batch diverges from loop on problem {i} of {}",
            mix.name
        );
    }

    // Loop mode: per-request wall clocks, pooled across reps.
    let mut request_ns: Vec<u128> = Vec::new();
    let mut loop_walls: Vec<u128> = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        for (i, p) in problems.iter().enumerate() {
            let t = Instant::now();
            let tuning = calibrate(mix.calibration_array(i));
            black_box(d.solve_guarded_with(p, &guard, tuning).expect("loop solve"));
            request_ns.push(t.elapsed().as_nanos());
        }
        loop_walls.push(t0.elapsed().as_nanos());
    }

    // Batched mode: whole-batch wall clocks.
    let mut batch_walls: Vec<u128> = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = d.solve_batch_report(&problems, &policy);
        black_box(&report.results);
        batch_walls.push(t0.elapsed().as_nanos());
    }

    request_ns.sort_unstable();
    let mut sorted_batch = batch_walls.clone();
    sorted_batch.sort_unstable();
    let loop_best = *loop_walls.iter().min().expect("reps >= 1");
    let batch_best = sorted_batch[0];
    let n = problems.len() as f64;
    let loop_sps = n * 1e9 / loop_best as f64;
    let batch_sps = n * 1e9 / batch_best as f64;
    let speedup = loop_best as f64 / batch_best as f64;
    println!(
        "{:>12} batch={:<3} loop={:>11}ns batched={:>11}ns loop_sps={loop_sps:>9.1} \
         batch_sps={batch_sps:>9.1} speedup={speedup:.2}x",
        mix.name,
        problems.len(),
        loop_best,
        batch_best,
    );
    let build = if monge_core::kernel::simd_compiled() {
        "simd"
    } else {
        "default"
    };
    Record::new()
        .str("workload", mix.name)
        .str("build", build)
        .num("batch", problems.len() as u64)
        .num("reps", reps as u64)
        .num("loop_ns", loop_best)
        .num("batched_ns", batch_best)
        .float("loop_solves_per_sec", loop_sps)
        .float("batched_solves_per_sec", batch_sps)
        .num("loop_request_p50_ns", percentile(&request_ns, 0.50))
        .num("loop_request_p99_ns", percentile(&request_ns, 0.99))
        .num("batch_wall_p50_ns", percentile(&sorted_batch, 0.50))
        .num("batch_wall_p99_ns", percentile(&sorted_batch, 0.99))
        .float("speedup", speedup)
        .render()
}

fn main() {
    let quick = quick_mode();
    if quick {
        println!("MONGE_BENCH_QUICK set: smoke-test sizes");
    }
    let reps = if quick { 2 } else { 7 };
    let mixes: Vec<Mix> = if quick {
        vec![
            uniform("uniform_small", 4, 32, 100),
            mixed_sizes(true),
            mixed_kinds(true),
        ]
    } else {
        vec![
            uniform("uniform_small", 64, 64, 100),
            uniform("uniform_medium", 24, 256, 200),
            mixed_sizes(false),
            mixed_kinds(false),
        ]
    };
    let d = Dispatcher::with_default_backends();
    let records: Vec<String> = mixes.iter().map(|m| bench_mix(&d, m, reps)).collect();
    std::fs::create_dir_all("bench-results").expect("create bench-results/");
    let doc = document("throughput", &records);
    std::fs::write("bench-results/throughput.json", &doc).expect("write throughput.json");
    println!("wrote bench-results/throughput.json");
}
