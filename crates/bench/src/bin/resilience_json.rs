//! Goodput and latency under fault storms: `bench-results/resilience.json`.
//!
//! Three scenarios, each a single-wave chaos storm from the
//! `monge-conformance` harness (virtual-clock health registry, so
//! breaker cooldowns and retry backoffs cost no wall time):
//!
//! * `baseline` — no faults at all; the goodput and latency reference.
//! * `transient_burst` — budgeted panicking reads on every solve
//!   (budget 2): the retry layer absorbs them, at a latency cost the
//!   p50/p99 columns make visible.
//! * `hard_outage` — unbudgeted panicking reads: breakers trip, the
//!   brute terminal panics too, and solves resolve as typed errors —
//!   degraded goodput, never wrong answers.
//!
//! Every storm solve is checked bitwise against the brute scan of its
//! quiet fault twin inside the harness; any wrong answer (or a
//! cross-contaminated control solve) makes this binary exit nonzero
//! without writing a file — committed numbers are correctness-gated.
//!
//! The committed file is enforced by the
//! `crates/bench/tests/resilience_guard.rs` tripwire.
//!
//! ```text
//! cargo run --release --bin resilience_json
//! ```
//!
//! `MONGE_BENCH_QUICK` shrinks the storms to smoke-test size (quick
//! numbers are not meaningful and are never committed).

use monge_bench::json::{document, Record};
use monge_conformance::chaos::{run_storm_with_latencies, StormSpec, Wave};
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::var("MONGE_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One single-wave scenario covering the whole storm.
struct Scenario {
    name: &'static str,
    wave: Option<Wave>,
}

fn scenarios(solves: usize) -> Vec<Scenario> {
    let full = |panic_per_mille, panic_budget| Wave {
        start: 0,
        len: solves,
        panic_per_mille,
        panic_budget,
        violation_per_mille: 0,
        latency_per_mille: 0,
        latency_us: 0,
    };
    vec![
        Scenario {
            name: "baseline",
            wave: None,
        },
        Scenario {
            name: "transient_burst",
            wave: Some(full(80, Some(2))),
        },
        Scenario {
            name: "hard_outage",
            wave: Some(full(120, None)),
        },
    ]
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let quick = quick_mode();
    if quick {
        println!("MONGE_BENCH_QUICK set: smoke-test sizes");
    }
    let solves = if quick { 300 } else { 2000 };
    let seed = 0xBE5C_11E7u64;

    let mut records = Vec::new();
    let mut baseline_goodput: Option<u32> = None;
    for sc in scenarios(solves) {
        let spec = StormSpec {
            seed,
            solves,
            tick_us: 2_000,
            // The bench measures; the tripwire over the committed file
            // asserts — no floor here, so a regression is committed
            // (and caught) rather than hidden behind a panic.
            goodput_floor_per_mille: 0,
            waves: sc.wave.into_iter().collect(),
        };
        let t = Instant::now();
        let (report, mut latencies) = match run_storm_with_latencies(&spec) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("scenario {}: correctness gate failed: {e}", sc.name);
                std::process::exit(2);
            }
        };
        let total_ns = t.elapsed().as_nanos();
        latencies.sort_unstable();
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        let solves_per_sec = report.solves as f64 / (total_ns as f64 / 1e9);
        let ratio = match baseline_goodput {
            None => {
                baseline_goodput = Some(report.goodput_per_mille);
                1.0
            }
            Some(base) => report.goodput_per_mille as f64 / base.max(1) as f64,
        };
        println!(
            "{:>16} goodput={:>4}‰ ok={:<5} typed={:<5} retries={:<6} skips={:<5} \
             p50={p50}ns p99={p99}ns",
            sc.name,
            report.goodput_per_mille,
            report.ok,
            report.typed_errors,
            report.retries,
            report.breaker_skips,
        );
        records.push(
            Record::new()
                .str("scenario", sc.name)
                .num("solves", report.solves as u64)
                .num("ok", report.ok as u64)
                .num("typed_errors", report.typed_errors as u64)
                .num("retries", report.retries)
                .num("breaker_skips", report.breaker_skips)
                .num("goodput_per_mille", report.goodput_per_mille)
                .float("goodput_ratio", ratio)
                .num("p50_ns", p50)
                .num("p99_ns", p99)
                .float("solves_per_sec", solves_per_sec)
                .render(),
        );
    }

    std::fs::create_dir_all("bench-results").expect("create bench-results/");
    let doc = document("resilience", &records);
    std::fs::write("bench-results/resilience.json", &doc).expect("write resilience.json");
    println!("wrote bench-results/resilience.json");
}
