//! Per-entry vs batched row-minima micro-benchmark with a JSON summary.
//!
//! Measures the evaluation layer in isolation (no criterion, plain
//! `std::time`) and writes `bench-results/rowmin.json`, so the ≥1.5×
//! dense-batching acceptance bar can be checked by a script:
//!
//! ```text
//! cargo run --release --bin rowmin_json
//! ```

use monge_bench::workloads::rng_for;
use monge_core::array2d::Array2d;
use monge_core::eval;
use monge_core::generators::{random_monge_dense, ImplicitMonge};
use std::hint::black_box;
use std::time::Instant;

const ROWS: usize = 64;

/// What every engine's inner loop did before batching: a per-entry scan
/// tracking the leftmost argmin *index* and its value.
fn per_entry_row_minima<A: Array2d<i64>>(a: &A) -> Vec<(usize, i64)> {
    (0..a.rows())
        .map(|i| {
            let mut bj = 0usize;
            let mut bv = a.entry(i, 0);
            for j in 1..a.cols() {
                let v = a.entry(i, j);
                if v < bv {
                    bj = j;
                    bv = v;
                }
            }
            (bj, bv)
        })
        .collect()
}

fn batched_row_minima<A: Array2d<i64>>(a: &A) -> Vec<(usize, i64)> {
    let mut buf = Vec::new();
    (0..a.rows())
        .map(|i| eval::interval_argmin(a, i, 0, a.cols(), &mut buf))
        .collect()
}

/// Best-of-`reps` wall clock in nanoseconds.
fn time_ns<R, F: FnMut() -> R>(mut f: F, reps: usize) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

fn main() {
    let reps = 15;
    let mut records = Vec::new();
    for n in [1024usize, 4096, 16384] {
        let dense = random_monge_dense(ROWS, n, &mut rng_for(43, n));
        let implicit = ImplicitMonge::random(ROWS, n, 3, &mut rng_for(44, n));
        assert_eq!(per_entry_row_minima(&dense), batched_row_minima(&dense));
        assert_eq!(
            per_entry_row_minima(&implicit),
            batched_row_minima(&implicit)
        );
        for (substrate, per_entry, batched) in [
            (
                "dense",
                time_ns(|| per_entry_row_minima(&dense), reps),
                time_ns(|| batched_row_minima(&dense), reps),
            ),
            (
                "implicit",
                time_ns(|| per_entry_row_minima(&implicit), reps),
                time_ns(|| batched_row_minima(&implicit), reps),
            ),
        ] {
            let speedup = per_entry as f64 / batched as f64;
            println!("{substrate:>9} n={n:<6} per_entry={per_entry:>10}ns batched={batched:>10}ns speedup={speedup:.2}x");
            records.push(format!(
                "    {{\"substrate\": \"{substrate}\", \"rows\": {ROWS}, \"n\": {n}, \
                 \"per_entry_ns\": {per_entry}, \"batched_ns\": {batched}, \
                 \"speedup\": {speedup:.4}}}"
            ));
        }
    }
    let json = format!("{{\n  \"rowmin\": [\n{}\n  ]\n}}\n", records.join(",\n"));
    std::fs::create_dir_all("bench-results").expect("create bench-results/");
    std::fs::write("bench-results/rowmin.json", &json).expect("write rowmin.json");
    println!("wrote bench-results/rowmin.json");
}
