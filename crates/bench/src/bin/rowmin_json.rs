//! Evaluation-layer and parallel-runtime micro-benchmarks with JSON
//! summaries (plain `std::time`, no criterion):
//!
//! * `bench-results/rowmin.json` — per-entry vs batched row minima, the
//!   ≥1.5× dense-batching acceptance bar.
//! * `bench-results/parallel.json` — wall-clock speedup curves for the
//!   rayon engines at 1/2/4/8 pool threads over a dense row-minima
//!   search, a DIST `(min,+)` combination, and the end-to-end string
//!   editing pipeline.
//!
//! ```text
//! cargo run --release --bin rowmin_json
//! ```
//!
//! Setting `MONGE_BENCH_QUICK` (to anything but `0` or empty) shrinks
//! every workload to smoke-test size — CI uses this to keep the binary
//! exercised without paying benchmark wall-clock. Speedup numbers are
//! only meaningful on a multi-core host; on a single hardware thread the
//! curves flatten at ~1× and merely certify that pool fan-out adds no
//! correctness or blow-up hazard.

use monge_apps::string_edit::{
    combine_dist_arrays_with, edit_distance_dist_tree_with, edit_distance_dp, strip_dist, CostModel,
};
use monge_bench::json::{document, Record};
use monge_bench::workloads::{monge_square, rng_for};
use monge_core::array2d::{Array2d, Dense};
use monge_core::eval;
use monge_core::generators::{random_monge_dense, ImplicitMonge};
use monge_core::kernel::{self, Kernel};
use monge_core::problem::Problem;
use monge_parallel::{Dispatcher, Tuning};
use rand::RngExt;
use rayon::ThreadPoolBuilder;
use std::hint::black_box;
use std::time::Instant;

const ROWS: usize = 64;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// What every engine's inner loop did before batching: a per-entry scan
/// tracking the leftmost argmin *index* and its value.
fn per_entry_row_minima<A: Array2d<i64>>(a: &A) -> Vec<(usize, i64)> {
    (0..a.rows())
        .map(|i| {
            let mut bj = 0usize;
            let mut bv = a.entry(i, 0);
            for j in 1..a.cols() {
                let v = a.entry(i, j);
                if v < bv {
                    bj = j;
                    bv = v;
                }
            }
            (bj, bv)
        })
        .collect()
}

fn batched_row_minima<A: Array2d<i64>>(a: &A) -> Vec<(usize, i64)> {
    let mut buf = Vec::new();
    (0..a.rows())
        .map(|i| eval::interval_argmin(a, i, 0, a.cols(), &mut buf))
        .collect()
}

/// Best-of-`reps` wall clock in nanoseconds.
fn time_ns<R, F: FnMut() -> R>(mut f: F, reps: usize) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

fn quick_mode() -> bool {
    std::env::var("MONGE_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Times `batched_row_minima` with the kernel selection pinned to `k`
/// under a scoped guard (the pin is process-global; the guard restores
/// the previous selection even if a timed scan panics).
fn batched_ns_with<A: Array2d<i64>>(a: &A, k: Kernel, reps: usize) -> u128 {
    let _pin = kernel::scoped(k);
    time_ns(|| batched_row_minima(a), reps)
}

fn rowmin_json(quick: bool) -> String {
    let reps = if quick { 3 } else { 15 };
    let sizes: &[usize] = if quick {
        &[256, 1024]
    } else {
        &[1024, 4096, 16384]
    };
    let mut records = Vec::new();
    for &n in sizes {
        let dense = random_monge_dense(ROWS, n, &mut rng_for(43, n));
        let implicit = ImplicitMonge::random(ROWS, n, 3, &mut rng_for(44, n));
        assert_eq!(per_entry_row_minima(&dense), batched_row_minima(&dense));
        assert_eq!(
            per_entry_row_minima(&implicit),
            batched_row_minima(&implicit)
        );
        // Four timed columns per substrate: the historical per-entry
        // baseline, the default (`Auto`) batched path — the acceptance
        // metric — and both kernels pinned, so a regression in either
        // shows up even while `Auto` masks it. Without the `simd`
        // feature the `Simd` pin degrades to scalar and the last two
        // columns coincide.
        for (substrate, per_entry, batched, scalar_b, simd_b) in [
            (
                "dense",
                time_ns(|| per_entry_row_minima(&dense), reps),
                time_ns(|| batched_row_minima(&dense), reps),
                batched_ns_with(&dense, Kernel::Scalar, reps),
                batched_ns_with(&dense, Kernel::Simd, reps),
            ),
            (
                "implicit",
                time_ns(|| per_entry_row_minima(&implicit), reps),
                time_ns(|| batched_row_minima(&implicit), reps),
                batched_ns_with(&implicit, Kernel::Scalar, reps),
                batched_ns_with(&implicit, Kernel::Simd, reps),
            ),
        ] {
            let speedup = per_entry as f64 / batched as f64;
            let simd_gain = scalar_b as f64 / simd_b as f64;
            println!(
                "{substrate:>9} n={n:<6} per_entry={per_entry:>10}ns batched={batched:>10}ns \
                 scalar={scalar_b:>10}ns simd={simd_b:>10}ns speedup={speedup:.2}x simd_gain={simd_gain:.2}x"
            );
            records.push(
                Record::new()
                    .str("substrate", substrate)
                    .num("rows", ROWS as u64)
                    .num("n", n as u64)
                    .num("per_entry_ns", per_entry)
                    .num("batched_ns", batched)
                    .num("scalar_batched_ns", scalar_b)
                    .num("simd_batched_ns", simd_b)
                    .float("speedup", speedup)
                    .float("simd_gain", simd_gain)
                    .render(),
            );
        }
    }
    document("rowmin", &records)
}

/// Times `work` under fresh rayon pools of 1/2/4/8 threads and renders
/// one JSON curve record.
fn speedup_curve(name: &str, size: usize, reps: usize, work: &(dyn Fn() + Sync)) -> String {
    let mut times = Vec::new();
    for &k in &THREADS {
        let pool = ThreadPoolBuilder::new()
            .num_threads(k)
            .build()
            .expect("build rayon pool");
        times.push(time_ns(|| pool.install(work), reps));
    }
    let base = times[0] as f64;
    let speedups: Vec<String> = times
        .iter()
        .map(|&ns| format!("{:.3}", base / ns as f64))
        .collect();
    let times_s: Vec<String> = times.iter().map(u128::to_string).collect();
    println!(
        "{name:>16} size={size:<6} t1={}ns speedups=[{}]",
        times[0],
        speedups.join(", ")
    );
    Record::new()
        .str("workload", name)
        .num("size", size as u64)
        .raw_array("threads", "1, 2, 4, 8")
        .raw_array("times_ns", &times_s.join(", "))
        .raw_array("speedup", &speedups.join(", "))
        .render()
}

fn parallel_json(quick: bool) -> String {
    let reps = if quick { 3 } else { 5 };
    let dense_sizes: &[usize] = if quick { &[192] } else { &[1024, 8192] };
    let len = if quick { 160 } else { 600 };
    let strips = if quick { 4 } else { 8 };
    let t = Tuning::from_env();

    let mut rng = rng_for(45, len);
    let x: Vec<u8> = (0..len).map(|_| b'a' + rng.random_range(0..4u8)).collect();
    let y: Vec<u8> = (0..len).map(|_| b'a' + rng.random_range(0..4u8)).collect();
    let c = CostModel::unit();
    let half = len / 2;
    let da = strip_dist(&x[..half], &y, &c);
    let db = strip_dist(&x[half..], &y, &c);
    // Sanity before timing: the parallel pipeline must reproduce the DP.
    assert_eq!(
        edit_distance_dist_tree_with(&x, &y, &c, strips, t),
        edit_distance_dp(&x, &y, &c)
    );

    let dist_combine = || {
        black_box::<Dense<i64>>(combine_dist_arrays_with(&da, &db, t));
    };
    let string_edit = || {
        black_box(edit_distance_dist_tree_with(&x, &y, &c, strips, t));
    };
    let mut curves = Vec::new();
    let disp = Dispatcher::with_default_backends();
    for &n in dense_sizes {
        let dense = monge_square(n);
        let p = Problem::row_minima(&dense);
        let dense_rowmin = || {
            black_box(disp.solve_on("rayon", &p, t).expect("rayon backend").0);
        };
        curves.push(speedup_curve("dense_rowmin", n, reps, &dense_rowmin));
    }
    curves.push(speedup_curve(
        "dist_combine",
        y.len() + 1,
        reps,
        &dist_combine,
    ));
    curves.push(speedup_curve("string_edit_e2e", len, reps, &string_edit));
    document("parallel", &curves)
}

fn main() {
    let quick = quick_mode();
    if quick {
        println!("MONGE_BENCH_QUICK set: smoke-test sizes");
    }
    std::fs::create_dir_all("bench-results").expect("create bench-results/");
    let rowmin = rowmin_json(quick);
    std::fs::write("bench-results/rowmin.json", &rowmin).expect("write rowmin.json");
    println!("wrote bench-results/rowmin.json");
    let parallel = parallel_json(quick);
    std::fs::write("bench-results/parallel.json", &parallel).expect("write parallel.json");
    println!("wrote bench-results/parallel.json");
}
