//! Regenerates the paper's tables and application claims.
//!
//! ```text
//! cargo run --release -p monge-bench --bin tables -- all
//! cargo run --release -p monge-bench --bin tables -- table1.1 table1.3
//! ```

use monge_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |k: &str| all || args.iter().any(|a| a == k);

    if want("table1.1") {
        tables::table_1_1(&[64, 128, 256, 512, 1024, 2048]);
    }
    if want("table1.2") {
        tables::table_1_2(&[64, 128, 256, 512, 1024, 2048]);
    }
    if want("table1.3") {
        tables::table_1_3(&[16, 32, 64, 128, 256], &[8, 16, 32]);
    }
    if want("app1") {
        tables::app1(&[64, 128, 256, 512, 1024, 2048], 256);
    }
    if want("app2") {
        tables::app2(&[256, 1024, 4096, 16384, 65536], 16384);
    }
    if want("app3") {
        tables::app3(&[32, 64, 128, 256, 512, 1024], 128);
    }
    if want("app4") {
        tables::app4(&[64, 128, 256, 512]);
    }
    if want("fig1.1") {
        tables::fig_1_1_capped(&[1024, 4096, 16384, 65536], 16384);
    }
    if want("ablation") {
        tables::ablation(&[64, 256, 1024]);
    }
    if want("dp") {
        tables::dp_apps(&[128, 512, 2048]);
    }
    if want("speedup") {
        tables::speedup(4096);
    }
}
