//! The bench crate's flat-JSON dialect, shared by every writer and
//! tripwire (no serde dependency).
//!
//! `bench-results/*.json` files are line-oriented on purpose: one
//! record object per line inside one named array, so the guard tests
//! can grep a line and pull fields without a parser. [`Record`] renders
//! such a line, [`document`] wraps the lines into the committed file,
//! and [`field`] is the extractor the tripwires use to read them back.

/// Builder for one flat JSON record (`{"k": v, ...}` on a single line).
///
/// ```
/// use monge_bench::json::{field, Record};
///
/// let line = Record::new()
///     .str("substrate", "dense")
///     .num("n", 1024u64)
///     .float("speedup", 1.51234)
///     .render();
/// assert_eq!(field(&line, "substrate").as_deref(), Some("dense"));
/// assert_eq!(field(&line, "speedup").as_deref(), Some("1.5123"));
/// ```
#[derive(Default)]
pub struct Record {
    parts: Vec<String>,
}

impl Record {
    /// Starts an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a quoted string field.
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.parts.push(format!("\"{key}\": \"{value}\""));
        self
    }

    /// Appends an unquoted numeric field (any integer width).
    #[must_use]
    pub fn num(mut self, key: &str, value: impl Into<u128>) -> Self {
        self.parts.push(format!("\"{key}\": {}", value.into()));
        self
    }

    /// Appends a float field rendered with four decimals — the precision
    /// every committed speedup/gain column uses.
    #[must_use]
    pub fn float(mut self, key: &str, value: f64) -> Self {
        self.parts.push(format!("\"{key}\": {value:.4}"));
        self
    }

    /// Appends an already-rendered JSON array field.
    #[must_use]
    pub fn raw_array(mut self, key: &str, rendered: &str) -> Self {
        self.parts.push(format!("\"{key}\": [{rendered}]"));
        self
    }

    /// Renders the record as one indented line (ready for [`document`]).
    pub fn render(&self) -> String {
        format!("    {{{}}}", self.parts.join(", "))
    }
}

/// Wraps rendered record lines into the committed file shape:
/// one top-level object holding one named array.
pub fn document(section: &str, records: &[String]) -> String {
    format!("{{\n  \"{section}\": [\n{}\n  ]\n}}\n", records.join(",\n"))
}

/// Minimal field extractor for the flat records [`Record`] emits —
/// `"key": value` pairs, one record per line. Returns the raw token
/// with quotes stripped; callers parse numerics themselves so a
/// malformed committed file fails loudly in the tripwire.
pub fn field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_field() {
        let line = Record::new()
            .str("workload", "mixed_sizes")
            .num("batch", 64u32)
            .float("speedup", 1.2999)
            .raw_array("threads", "1, 2, 4")
            .render();
        assert_eq!(field(&line, "workload").as_deref(), Some("mixed_sizes"));
        assert_eq!(field(&line, "batch").as_deref(), Some("64"));
        assert_eq!(field(&line, "speedup").as_deref(), Some("1.2999"));
        assert!(field(&line, "missing").is_none());
        // Array fields terminate at the first comma — tripwires only
        // extract scalar fields, so this is fine and documented.
        assert!(line.contains("\"threads\": [1, 2, 4]"));
    }

    #[test]
    fn document_shape_is_line_greppable() {
        let doc = document("rowmin", &[Record::new().num("n", 1u32).render()]);
        assert!(doc.starts_with("{\n  \"rowmin\": [\n"));
        assert!(doc.ends_with("\n  ]\n}\n"));
        let line = doc.lines().find(|l| l.contains("\"n\"")).unwrap();
        assert_eq!(field(line, "n").as_deref(), Some("1"));
    }
}
