//! Growth-shape fitting: which candidate law does a measured series
//! follow?
//!
//! For each candidate `g(n)` (e.g. `lg n`, `lg n · lg lg n`, `lg² n`,
//! `n`), compute the ratios `t(n) / g(n)` across the sweep; the candidate
//! whose ratio series is flattest (smallest relative spread) is the best
//! fit. This is deliberately simple — the sweeps span 2–3 orders of
//! magnitude, enough to separate `lg`, `polylog` and polynomial laws by
//! eye, and the table prints the ratios so readers can judge.

/// A candidate growth law.
#[derive(Clone, Copy)]
pub struct Law {
    /// Display name, e.g. `"lg n"`.
    pub name: &'static str,
    /// The law itself.
    pub f: fn(f64) -> f64,
}

/// The laws relevant to the paper's bounds.
pub fn standard_laws() -> Vec<Law> {
    vec![
        Law {
            name: "lg n",
            f: |n| n.log2(),
        },
        Law {
            name: "lg n lglg n",
            f: |n| n.log2() * n.log2().max(2.0).log2(),
        },
        Law {
            name: "lg^2 n",
            f: |n| n.log2() * n.log2(),
        },
        Law {
            name: "lg^3 n",
            f: |n| n.log2().powi(3),
        },
        Law {
            name: "n",
            f: |n| n,
        },
        Law {
            name: "n lg n",
            f: |n| n * n.log2(),
        },
        Law {
            name: "n^2",
            f: |n| n * n,
        },
    ]
}

/// Relative spread (max/min) of the ratio series `t_i / g(n_i)`; lower is
/// flatter, 1.0 is a perfect fit.
pub fn spread(ns: &[f64], ts: &[f64], law: &Law) -> f64 {
    assert_eq!(ns.len(), ts.len());
    let ratios: Vec<f64> = ns
        .iter()
        .zip(ts)
        .map(|(&n, &t)| t / (law.f)(n).max(1e-9))
        .collect();
    let mx = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let mn = ratios.iter().cloned().fold(f64::MAX, f64::min);
    if mn <= 0.0 {
        return f64::INFINITY;
    }
    mx / mn
}

/// The best-fitting law among the standard candidates.
pub fn best_fit(ns: &[f64], ts: &[f64]) -> &'static str {
    let laws = standard_laws();
    laws.iter()
        .min_by(|a, b| spread(ns, ts, a).partial_cmp(&spread(ns, ts, b)).unwrap())
        .map(|l| l.name)
        .unwrap_or("?")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognizes_linear() {
        let ns: Vec<f64> = vec![64.0, 256.0, 1024.0, 4096.0];
        let ts: Vec<f64> = ns.iter().map(|n| 3.0 * n + 5.0).collect();
        assert_eq!(best_fit(&ns, &ts), "n");
    }

    #[test]
    fn recognizes_logarithmic() {
        let ns: Vec<f64> = vec![64.0, 256.0, 1024.0, 4096.0, 16384.0];
        let ts: Vec<f64> = ns.iter().map(|n| 7.0 * n.log2()).collect();
        assert_eq!(best_fit(&ns, &ts), "lg n");
    }

    #[test]
    fn recognizes_squared_log() {
        let ns: Vec<f64> = vec![64.0, 256.0, 1024.0, 4096.0, 16384.0];
        let ts: Vec<f64> = ns.iter().map(|n| 2.0 * n.log2() * n.log2()).collect();
        assert_eq!(best_fit(&ns, &ts), "lg^2 n");
    }

    #[test]
    fn perfect_fit_has_unit_spread() {
        let ns = vec![16.0, 64.0, 256.0];
        let law = Law {
            name: "n",
            f: |n| n,
        };
        let ts: Vec<f64> = ns.iter().map(|&n| 2.0 * n).collect();
        assert!((spread(&ns, &ts, &law) - 1.0).abs() < 1e-12);
    }
}
