//! Sized workload constructors shared by the `tables` binary and the
//! criterion benches. All are deterministic under fixed seeds so
//! repeated runs regenerate identical tables.

use monge_apps::geometry::{ConvexPolygon, Point, Rect};
use monge_core::array2d::Dense;
use monge_core::generators::{apply_staircase, random_monge_dense, random_staircase_boundary};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic RNG for a (workload, size) pair.
pub fn rng_for(tag: u64, n: usize) -> StdRng {
    StdRng::seed_from_u64(tag.wrapping_mul(0x9E3779B97F4A7C15) ^ n as u64)
}

/// A dense `n × n` Monge array.
pub fn monge_square(n: usize) -> Dense<i64> {
    random_monge_dense(n, n, &mut rng_for(1, n))
}

/// A dense `n × n` staircase-Monge array with its boundary.
pub fn staircase_square(n: usize) -> (Dense<i64>, Vec<usize>) {
    let mut rng = rng_for(2, n);
    let base = random_monge_dense(n, n, &mut rng);
    let f = random_staircase_boundary(n, n, &mut rng);
    (apply_staircase(&base, &f), f)
}

/// A Monge-composite pair `(D, E)`, both `n × n`.
pub fn composite_pair(n: usize) -> (Dense<i64>, Dense<i64>) {
    let mut rng = rng_for(3, n);
    (
        random_monge_dense(n, n, &mut rng),
        random_monge_dense(n, n, &mut rng),
    )
}

/// Sorted vectors for the hypercube `VectorArray` model (`|v_i - w_j|`,
/// Monge).
pub fn transport_vectors(n: usize) -> (Vec<i64>, Vec<i64>) {
    let mut rng = rng_for(4, n);
    let mut v: Vec<i64> = (0..n).map(|_| rng.random_range(0..1_000_000)).collect();
    let mut w: Vec<i64> = (0..n).map(|_| rng.random_range(0..1_000_000)).collect();
    v.sort_unstable();
    w.sort_unstable();
    (v, w)
}

/// Uniform random points in the unit box scaled to 1000.
pub fn random_points(n: usize, tag: u64) -> Vec<Point> {
    let mut rng = rng_for(tag, n);
    (0..n)
        .map(|_| Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
        .collect()
}

/// The standard bounding box for the empty-rectangle workloads.
pub fn unit_box() -> Rect {
    Rect::new(0.0, 0.0, 1000.0, 1000.0)
}

/// Two disjoint convex polygons with `n` vertices each.
pub fn polygon_pair(n: usize) -> (ConvexPolygon, ConvexPolygon) {
    let mut rng = rng_for(6, n);
    let p = ConvexPolygon::random(n.max(3), 0.0, 0.0, 100.0, &mut rng);
    let q = ConvexPolygon::random(n.max(3), 350.0, 30.0, 100.0, &mut rng);
    (p, q)
}

/// A convex polygon split into two chains (Figure 1.1's setting).
pub fn polygon_chains(n: usize) -> (Vec<Point>, Vec<Point>) {
    let mut rng = rng_for(7, n);
    let poly = ConvexPolygon::random((2 * n).max(4), 0.0, 0.0, 1000.0, &mut rng);
    let m = poly.vertices.len() / 2;
    (poly.vertices[..m].to_vec(), poly.vertices[m..].to_vec())
}

/// Random byte strings over a `sigma`-letter alphabet (DNA-like when
/// `sigma = 4`).
pub fn random_strings(m: usize, n: usize, sigma: u8) -> (Vec<u8>, Vec<u8>) {
    let mut rng = rng_for(8, m * 131 + n);
    let x = (0..m).map(|_| b'a' + rng.random_range(0..sigma)).collect();
    let y = (0..n).map(|_| b'a' + rng.random_range(0..sigma)).collect();
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::monge::{is_monge, is_staircase_monge};

    #[test]
    fn workloads_are_certified() {
        assert!(is_monge(&monge_square(16)));
        let (a, _f) = staircase_square(16);
        assert!(is_staircase_monge(&a));
        let (d, e) = composite_pair(8);
        assert!(is_monge(&d) && is_monge(&e));
    }

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(monge_square(12), monge_square(12));
        let (x1, y1) = random_strings(20, 30, 4);
        let (x2, y2) = random_strings(20, 30, 4);
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn polygon_pair_is_disjoint() {
        let (p, q) = polygon_pair(32);
        // Far apart by construction; sanity-check bounding intervals.
        let pmax = p.vertices.iter().map(|v| v.x).fold(f64::MIN, f64::max);
        let qmin = q.vertices.iter().map(|v| v.x).fold(f64::MAX, f64::min);
        assert!(pmax < qmin);
    }
}
