//! # monge-bench
//!
//! The harness that regenerates the paper's evaluation: Tables 1.1–1.3
//! (row maxima of Monge arrays, row minima of staircase-Monge arrays,
//! tube maxima of Monge-composite arrays — each across machine models)
//! and the §1.3 application claims, plus the Figure 1.1 example.
//!
//! The paper's tables state asymptotic time/processor bounds; no
//! testbed numbers exist to match. Reproduction therefore means
//! *measuring the shape*: the `tables` binary sweeps `n`, reports
//! simulator steps / work / processor budgets next to the paper's
//! claimed rows, and fits the measured series against the candidate
//! growth laws so the reader can see which bound the curve follows.
//! Criterion benches (in `benches/`) add wall-clock numbers for the
//! sequential-vs-rayon engines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod json;
pub mod tables;
pub mod workloads;
