//! Paper-style table regeneration. Each `table_*` / `app_*` function
//! sweeps sizes, measures the relevant engines, and prints the paper's
//! claimed bounds next to the measured series with a growth-law fit.
//!
//! Every engine invocation goes through the unified [`Dispatcher`]: a
//! table row is one [`Problem`] solved on each registered backend by
//! name, with the step/work/message columns read off the returned
//! [`Telemetry`](monge_core::problem::Telemetry) instead of per-engine
//! metric structs.

use crate::fit::best_fit;
use crate::workloads::*;
use monge_core::array2d::Array2d;
use monge_core::problem::Problem;
use monge_core::value::Value;
use monge_parallel::{Dispatcher, MinPrimitive, PramBackend, Tuning, VectorArray};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Times a closure in seconds.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// An [`Array2d`] adapter counting entry evaluations — the natural work
/// measure under the paper's "entries computed on demand" model. Only
/// the brute-force oracles still need it; dispatched solves report the
/// same number in `Telemetry::evaluations`.
pub struct Counting<'a, A> {
    inner: &'a A,
    count: AtomicU64,
}

impl<'a, A> Counting<'a, A> {
    /// Wraps an array.
    pub fn new(inner: &'a A) -> Self {
        Self {
            inner,
            count: AtomicU64::new(0),
        }
    }
    /// Entries evaluated so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl<'a, T: Value, A: Array2d<T>> Array2d<T> for Counting<'a, A> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.inner.cols()
    }
    fn entry(&self, i: usize, j: usize) -> T {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.entry(i, j)
    }
    fn prefers_streaming(&self) -> bool {
        self.inner.prefers_streaming()
    }
}

fn hdr(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Table 1.1 — row maxima of an `n × n` Monge array.
pub fn table_1_1(sizes: &[usize]) {
    hdr("Table 1.1: row-maxima of an n x n Monge array");
    println!("paper: CRCW  O(lg n) time, n processors            [AP89a]");
    println!("paper: CREW  O(lg n lglg n) time, n/lglg n procs   [AP89a]");
    println!("paper: hypercube etc. O(lg n lglg n), n/lglg n     [Thm 3.2]");
    println!("paper: sequential Theta(n)                          [AKM+87]");
    println!();
    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>9} {:>9} | {:>10} | {:>9} {:>9} {:>9} | {:>10}",
        "n",
        "seq:entry",
        "seq:ms",
        "CRCW:steps",
        "CRCW:work",
        "DL:steps",
        "DL:work",
        "CREW:steps",
        "hc:steps",
        "hc:SE",
        "hc:CCC",
        "rayon:ms"
    );
    let disp = Dispatcher::with_all_backends();
    let tun = Tuning::from_env();
    let mut ns = Vec::new();
    let mut crcw_steps = Vec::new();
    let mut dl_steps = Vec::new();
    let mut dl_work = Vec::new();
    let mut crew_steps = Vec::new();
    let mut hc_steps = Vec::new();
    for &n in sizes {
        let a = monge_square(n);
        let p = Problem::row_maxima(&a);
        let (seq, seq_s) = time(|| disp.solve_on("sequential", &p, tun).expect("sequential"));
        let seq_entries = seq.1.evaluations;
        let (_, crcw) = disp.solve_on("pram:constant", &p, tun).expect("crcw");
        let (_, dl) = disp.solve_on("pram:doubly-log", &p, tun).expect("dl");
        let (_, crew) = disp.solve_on("pram:tree", &p, tun).expect("crew");
        let (v, w) = transport_vectors(n);
        let g = |x: i64, y: i64| (x - y).abs();
        let va = VectorArray::new(v.clone(), w.clone(), g);
        let ph = Problem::row_maxima(&va).with_rank(&v, &w, &g);
        let (_, hc) = disp.solve_on("hypercube", &ph, tun).expect("hypercube");
        let (_, ray_s) = time(|| disp.solve_on("rayon", &p, tun).expect("rayon"));
        println!(
            "{:>6} | {:>10} {:>10.3} | {:>10} {:>10} | {:>9} {:>9} | {:>10} | {:>9} {:>9} {:>9} | {:>10.3}",
            n,
            seq_entries,
            seq_s * 1e3,
            crcw.machine.steps,
            crcw.machine.work,
            dl.machine.steps,
            dl.machine.work,
            crew.machine.steps,
            hc.machine.local_steps + hc.machine.comm_steps,
            hc.machine.se_steps,
            hc.machine.ccc_steps,
            ray_s * 1e3,
        );
        ns.push(n as f64);
        crcw_steps.push(crcw.machine.steps as f64);
        dl_steps.push(dl.machine.steps as f64);
        dl_work.push(dl.machine.work as f64);
        crew_steps.push(crew.machine.steps as f64);
        hc_steps.push((hc.machine.local_steps + hc.machine.comm_steps) as f64);
    }
    println!();
    println!(
        "fit: CRCW steps ~ {} (constant-time max primitive, w^2 procs)",
        best_fit(&ns, &crcw_steps)
    );
    println!(
        "fit: CRCW doubly-log steps ~ {}, work ~ {} (n standard-CRCW procs)",
        best_fit(&ns, &dl_steps),
        best_fit(&ns, &dl_work)
    );
    println!("fit: CREW steps ~ {}", best_fit(&ns, &crew_steps));
    println!("fit: hypercube steps ~ {}", best_fit(&ns, &hc_steps));
    println!("(paper: lg n / lg n lglg n / lg n lglg n; our hypercube engine");
    println!(" runs the halving recursion at lg^2 n — see DESIGN.md S3)");
}

/// Table 1.2 — row minima of an `n × n` staircase-Monge array.
pub fn table_1_2(sizes: &[usize]) {
    hdr("Table 1.2: row-minima of an n x n staircase-Monge array");
    println!("paper: CRCW  O(lg n) time, n processors            [Thm 2.3]");
    println!("paper: CREW  O(lg n lglg n), n/lglg n procs        [Thm 2.3]");
    println!("paper: hypercube etc. O(lg n lglg n), n/lglg n     [Thm 3.3]");
    println!("paper: sequential O((m+n) lglg(m+n)) [AK88], O(m+n a(m)) [KK88]");
    println!();
    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>10} | {:>9} {:>9} | {:>10}",
        "n",
        "seq:ms",
        "brute:ms",
        "CRCW:steps",
        "CRCW:work",
        "CREW:steps",
        "hc:steps",
        "hc:SE",
        "rayon:ms"
    );
    let disp = Dispatcher::with_all_backends();
    let tun = Tuning::from_env();
    let mut ns = Vec::new();
    let mut crcw_steps = Vec::new();
    let mut hc_steps = Vec::new();
    for &n in sizes {
        let (a, f) = staircase_square(n);
        let p = Problem::staircase_row_minima(&a, &f);
        let (_, seq_s) = time(|| disp.solve_on("sequential", &p, tun).expect("sequential"));
        let (_, brute_s) = time(|| monge_core::staircase::staircase_row_minima_brute(&a, &f));
        let (_, crcw) = disp.solve_on("pram:constant", &p, tun).expect("crcw");
        let (_, crew) = disp.solve_on("pram:tree", &p, tun).expect("crew");
        let (v, w) = transport_vectors(n);
        let g = |x: i64, y: i64| (x - y).abs();
        let va = VectorArray::new(v.clone(), w.clone(), g);
        let mut fb = random_staircase_boundary_for(n);
        fb.truncate(n);
        let ph = Problem::staircase_row_minima(&va, &fb).with_rank(&v, &w, &g);
        let (_, hc) = disp.solve_on("hypercube", &ph, tun).expect("hypercube");
        let (_, ray_s) = time(|| disp.solve_on("rayon", &p, tun).expect("rayon"));
        println!(
            "{:>6} | {:>10.3} {:>10.3} | {:>10} {:>10} | {:>10} | {:>9} {:>9} | {:>10.3}",
            n,
            seq_s * 1e3,
            brute_s * 1e3,
            crcw.machine.steps,
            crcw.machine.work,
            crew.machine.steps,
            hc.machine.local_steps + hc.machine.comm_steps,
            hc.machine.se_steps,
            ray_s * 1e3,
        );
        ns.push(n as f64);
        crcw_steps.push(crcw.machine.steps as f64);
        hc_steps.push((hc.machine.local_steps + hc.machine.comm_steps) as f64);
    }
    println!();
    println!("fit: CRCW steps ~ {}", best_fit(&ns, &crcw_steps));
    println!("fit: hypercube steps ~ {}", best_fit(&ns, &hc_steps));
}

fn random_staircase_boundary_for(n: usize) -> Vec<usize> {
    monge_core::generators::random_staircase_boundary(n, n, &mut rng_for(22, n))
}

/// Table 1.3 — tube maxima of an `n × n × n` Monge-composite array.
pub fn table_1_3(sizes: &[usize], hc_sizes: &[usize]) {
    hdr("Table 1.3: tube-maxima of an n x n x n Monge-composite array");
    println!("paper: CRCW  Theta(lglg n), n^2/lglg n procs       [Ata89]");
    println!("paper: CREW  Theta(lg n), n^2/lg n procs           [AP89a, AALM88]");
    println!("paper: hypercube etc. Theta(lg n), n^2 procs       [Thm 3.4]");
    println!("paper: sequential O((p+r)q)");
    println!();
    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>10}",
        "n", "seq:ms", "brute:ms", "CRCW:steps", "CRCW:work", "rayon:ms"
    );
    let disp = Dispatcher::with_all_backends();
    let tun = Tuning::from_env();
    let mut ns = Vec::new();
    let mut crcw_steps = Vec::new();
    for &n in sizes {
        let (d, e) = composite_pair(n);
        let p = Problem::tube_maxima(&d, &e);
        let (_, seq_s) = time(|| disp.solve_on("sequential", &p, tun).expect("sequential"));
        let (_, brute_s) = time(|| monge_core::tube::tube_maxima_brute(&d, &e));
        let (_, crcw) = disp.solve_on("pram:constant", &p, tun).expect("crcw");
        let (_, ray_s) = time(|| disp.solve_on("rayon", &p, tun).expect("rayon"));
        println!(
            "{:>6} | {:>10.3} {:>10.3} | {:>10} {:>10} | {:>10.3}",
            n,
            seq_s * 1e3,
            brute_s * 1e3,
            crcw.machine.steps,
            crcw.machine.work,
            ray_s * 1e3,
        );
        ns.push(n as f64);
        crcw_steps.push(crcw.machine.steps as f64);
    }
    println!();
    println!("fit: CRCW steps ~ {}", best_fit(&ns, &crcw_steps));
    println!();
    println!(
        "{:>6} | {:>10} {:>10} {:>10}   (hypercube engine, sort-based gathers)",
        "n", "hc:steps", "hc:SE", "hc:msgs"
    );
    let mut hns = Vec::new();
    let mut hsteps = Vec::new();
    for &n in hc_sizes {
        let (d, e) = composite_pair(n);
        let p = Problem::tube_minima(&d, &e);
        let (_, hc) = disp.solve_on("hypercube", &p, tun).expect("hypercube");
        println!(
            "{:>6} | {:>10} {:>10} {:>10}",
            n,
            hc.machine.local_steps + hc.machine.comm_steps,
            hc.machine.se_steps,
            hc.machine.messages
        );
        hns.push(n as f64);
        hsteps.push((hc.machine.local_steps + hc.machine.comm_steps) as f64);
    }
    println!("fit: hypercube steps ~ {}", best_fit(&hns, &hsteps));
    println!("(paper claims Theta(lg n) with the proof omitted; our sort-based");
    println!(" data movement costs an extra lg^2 factor — DESIGN.md S3)");
}

/// Application 1 — largest empty rectangle.
pub fn app1(sizes: &[usize], brute_cap: usize) {
    hdr("App 1: largest-area empty rectangle");
    println!("paper: O(lg^2 n) CRCW with n lg n procs; O(lg^2 n lglg n) CREW");
    println!("        (vs [AS87] sequential O(n lg^2 n), [AP89c] CREW O(lg^3 n))");
    println!("ours : median D&C + parallel window scans (substitution: DESIGN.md S3)");
    println!();
    println!(
        "{:>6} | {:>10} {:>10} {:>10} | {:>8}",
        "n", "brute:ms", "seq:ms", "rayon:ms", "agree"
    );
    for &n in sizes {
        let pts = random_points(n, 10);
        let bbox = unit_box();
        let (fast, seq_s) = time(|| monge_apps::empty_rect::largest_empty_rectangle(&pts, bbox));
        let (par, par_s) = time(|| monge_apps::empty_rect::par_largest_empty_rectangle(&pts, bbox));
        let (brute_s, agree) = if n <= brute_cap {
            let (b, t) = time(|| monge_apps::empty_rect::largest_empty_rectangle_brute(&pts, bbox));
            (t * 1e3, (b.area() - fast.area()).abs() < 1e-6)
        } else {
            (f64::NAN, (par.area() - fast.area()).abs() < 1e-9)
        };
        println!(
            "{:>6} | {:>10.3} {:>10.3} {:>10.3} | {:>8}",
            n,
            brute_s,
            seq_s * 1e3,
            par_s * 1e3,
            agree
        );
    }
}

/// Application 2 — largest two-corner rectangle.
pub fn app2(sizes: &[usize], brute_cap: usize) {
    hdr("App 2: largest-area rectangle with two points as opposite corners");
    println!("paper: Theta(lg n) time, n processors, CRCW (optimal)  [Mel89 motivation]");
    println!("ours : dominance staircases + banded Monge row maxima, O(n lg n) work;");
    println!("       the banded search also runs on the simulated CRCW PRAM");
    println!();
    println!(
        "{:>7} | {:>10} {:>10} {:>10} | {:>10} {:>10} | {:>8}",
        "n", "brute:ms", "seq:ms", "rayon:ms", "CRCW:steps", "CRCW:work", "agree"
    );
    let mut ns = Vec::new();
    let mut steps = Vec::new();
    for &n in sizes {
        let pts = random_points(n, 11);
        let (fast, seq_s) = time(|| monge_apps::max_rect::largest_corner_rectangle(&pts));
        let (_, par_s) = time(|| monge_apps::max_rect::par_largest_corner_rectangle(&pts));
        let (pram, m) =
            monge_apps::max_rect::pram_largest_corner_rectangle(&pts, MinPrimitive::Constant);
        let (brute_s, agree) = if n <= brute_cap {
            let (b, t) = time(|| monge_apps::max_rect::largest_corner_rectangle_brute(&pts));
            (t * 1e3, (b.area - fast.area).abs() < 1e-6)
        } else {
            (f64::NAN, true)
        };
        let agree = agree && (pram.area - fast.area).abs() < 1e-6;
        println!(
            "{:>7} | {:>10.3} {:>10.3} {:>10.3} | {:>10} {:>10} | {:>8}",
            n,
            brute_s,
            seq_s * 1e3,
            par_s * 1e3,
            m.steps,
            m.work,
            agree
        );
        ns.push(n as f64);
        steps.push(m.steps as f64);
    }
    println!();
    println!("fit: CRCW steps ~ {}", best_fit(&ns, &steps));
}

/// Application 3 — visible/invisible neighbors of two convex polygons.
pub fn app3(sizes: &[usize], brute_cap: usize) {
    hdr("App 3: nearest/farthest visible & invisible neighbors");
    println!("paper: visible Theta(lg(m+n)) CREW; invisible O(lg(m+n)) CRCW, m+n procs");
    println!("ours : O(1) wedge/tangent predicates, parallel over P (DESIGN.md S3)");
    println!();
    println!(
        "{:>6} | {:>12} {:>10} {:>10} | {:>8}",
        "n", "brute:ms", "seq:ms", "rayon:ms", "agree"
    );
    use monge_apps::neighbors::{neighbors, neighbors_brute, neighbors_seq, Goal};
    for &n in sizes {
        let (p, q) = polygon_pair(n);
        let goal = Goal::NearestInvisible;
        let (fast, seq_s) = time(|| neighbors_seq(&p, &q, goal));
        let (_, par_s) = time(|| neighbors(&p, &q, goal));
        let (brute_s, agree) = if n <= brute_cap {
            let (b, t) = time(|| neighbors_brute(&p, &q, goal));
            // Equidistant ties may resolve to different neighbor
            // indices, so only compare existence, not the index.
            let same = b.iter().zip(&fast).all(|(x, y)| x.is_some() == y.is_some());
            (t * 1e3, same)
        } else {
            (f64::NAN, true)
        };
        println!(
            "{:>6} | {:>12.3} {:>10.3} {:>10.3} | {:>8}",
            n,
            brute_s,
            seq_s * 1e3,
            par_s * 1e3,
            agree
        );
    }
}

/// Application 4 — string editing.
pub fn app4(sizes: &[usize]) {
    hdr("App 4: string editing (m = n, unit costs, sigma = 4)");
    println!("paper: O(lg n lg m) time on an nm-processor hypercube/CCC/SE");
    println!("        (vs [WF74] O(nm) sequential; improves Ranka-Sahni SIMD bounds)");
    println!("ours : Wagner-Fischer | antidiagonal wavefront | DIST tree (tube minima)");
    println!();
    println!(
        "{:>6} | {:>10} {:>12} {:>12} | {:>8}",
        "n", "dp:ms", "wavefront:ms", "dist-tree:ms", "agree"
    );
    let c = monge_apps::string_edit::CostModel::unit();
    for &n in sizes {
        let (x, y) = random_strings(n, n, 4);
        let (d0, t0) = time(|| monge_apps::string_edit::edit_distance_dp(&x, &y, &c));
        let (d1, t1) = time(|| monge_apps::string_edit::edit_distance_antidiagonal(&x, &y, &c));
        let (d2, t2) = time(|| monge_apps::string_edit::edit_distance_dist_tree(&x, &y, &c, 8));
        println!(
            "{:>6} | {:>10.3} {:>12.3} {:>12.3} | {:>8}",
            n,
            t0 * 1e3,
            t1 * 1e3,
            t2 * 1e3,
            d0 == d1 && d1 == d2
        );
    }
    println!();
    println!("DIST combining on the simulated hypercube (2 strips, unit costs):");
    println!(
        "{:>6} | {:>10} {:>10} | {:>8}",
        "n", "hc:steps", "hc:msgs", "agree"
    );
    let mut hns = Vec::new();
    let mut hsteps = Vec::new();
    for &n in &[8usize, 16, 32] {
        let (x, y) = random_strings(n, n, 4);
        let want = monge_apps::string_edit::edit_distance_dp(&x, &y, &c);
        let (d, m) = monge_apps::string_edit::edit_distance_hc(&x, &y, &c, 2);
        println!(
            "{:>6} | {:>10} {:>10} | {:>8}",
            n,
            m.steps(),
            m.messages,
            d == want
        );
        hns.push(n as f64);
        hsteps.push(m.steps() as f64);
    }
    // The sweep is too narrow to separate lg³ from n by fitting (the
    // simulated machine is (n+1)²-sized); report the growth ratio
    // directly: n quadrupling multiplies steps by ~(lg ratio)³ ≈ 4 here,
    // far below the 16x a work-bound flat DP would show.
    println!(
        "step growth 8 -> 32: x{:.1} (lg^3 predicts x{:.1}; an O(n^2)-time",
        hsteps[2] / hsteps[0],
        ((11.0f64 / 7.0).powi(3))
    );
    println!(" per-processor DP would be x16)");
    println!("(paper: O(lg n lg m) on nm processors; our sort-based gathers add");
    println!(" a polylog factor — DESIGN.md S3)");
}

/// Ablation: the minimum-finding primitive inside the CRCW engines —
/// the design choice DESIGN.md calls out (Table 1.1's cited `O(lg n)`
/// depends on a constant-time maximum; what does each primitive cost?).
pub fn ablation(sizes: &[usize]) {
    hdr("Ablation A: minimum-finding primitive in the PRAM row-minima engine");
    println!("Tree = CREW binary tree | DoublyLog = accelerated cascades |");
    println!("Constant = 3-step pairwise (w^2/2 procs) | Combining = Min-policy CRCW");
    println!();
    println!(
        "{:>6} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11}",
        "n",
        "Tree:steps",
        "Tree:work",
        "DLog:steps",
        "DLog:work",
        "Const:steps",
        "Const:work",
        "Comb:steps",
        "Comb:work"
    );
    let disp = Dispatcher::with_all_backends();
    let tun = Tuning::from_env();
    for &n in sizes {
        let a = monge_square(n);
        let p = Problem::row_minima(&a);
        let runs: Vec<_> = [
            MinPrimitive::Tree,
            MinPrimitive::DoublyLog,
            MinPrimitive::Constant,
            MinPrimitive::Combining,
        ]
        .iter()
        .map(|&prim| {
            disp.solve_on(PramBackend::name_of(prim), &p, tun)
                .expect("pram backend")
                .1
        })
        .collect();
        println!(
            "{:>6} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11}",
            n,
            runs[0].machine.steps,
            runs[0].machine.work,
            runs[1].machine.steps,
            runs[1].machine.work,
            runs[2].machine.steps,
            runs[2].machine.work,
            runs[3].machine.steps,
            runs[3].machine.work,
        );
    }

    hdr("Ablation B: DIST-tree strip count in the string-editing pipeline");
    println!("(n = 256, unit costs; work trades against combining-tree depth)");
    println!();
    println!("{:>7} | {:>12} | {:>8}", "strips", "dist-tree:ms", "agree");
    let (x, y) = random_strings(256, 256, 4);
    let c = monge_apps::string_edit::CostModel::unit();
    let want = monge_apps::string_edit::edit_distance_dp(&x, &y, &c);
    for strips in [1usize, 2, 4, 8, 16, 32] {
        let (d, t) = time(|| monge_apps::string_edit::edit_distance_dist_tree(&x, &y, &c, strips));
        println!("{:>7} | {:>12.3} | {:>8}", strips, t * 1e3, d == want);
    }

    hdr("Ablation C: tube-search strategy (rayon engines, wall-clock)");
    println!();
    println!(
        "{:>6} | {:>12} {:>12} {:>12}",
        "n", "planes:ms", "dc:ms", "seq:ms"
    );
    for &n in &[64usize, 128, 256] {
        let (d, e) = composite_pair(n);
        let p = Problem::tube_maxima(&d, &e);
        let (_, t_planes) = time(|| disp.solve_on("rayon", &p, tun).expect("rayon"));
        // The divide-and-conquer tube strategy is an internal variant the
        // dispatcher intentionally hides; call it directly for the ablation.
        let (_, t_dc) = time(|| monge_parallel::rayon_tube::par_tube_minima_dc(&d, &e));
        let (_, t_seq) = time(|| disp.solve_on("sequential", &p, tun).expect("sequential"));
        println!(
            "{:>6} | {:>12.3} {:>12.3} {:>12.3}",
            n,
            t_planes * 1e3,
            t_dc * 1e3,
            t_seq * 1e3
        );
    }
}

/// Thread-scaling of the rayon engines: the wall-clock counterpart of
/// the paper's processor columns, measured with explicit thread pools.
pub fn speedup(n: usize) {
    hdr("Thread scaling of the rayon engines (speedup vs 1 thread)");
    println!(
        "(row minima n = {n}; tube n = {}; chains n = {})",
        n / 4,
        8 * n
    );
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");
    if cores == 1 {
        println!("NOTE: single-core host — expect no speedup; multi-threaded");
        println!("      rows only measure scheduling overhead here.");
    }
    println!();
    println!(
        "{:>8} | {:>12} {:>8} | {:>12} {:>8} | {:>12} {:>8}",
        "threads", "rowmax:ms", "x", "tube:ms", "x", "fig1.1:ms", "x"
    );
    let disp = Dispatcher::with_default_backends();
    let tun = Tuning::from_env();
    let a = monge_square(n);
    let (d, e) = composite_pair(n / 4);
    let (p, q) = polygon_chains(8 * n);
    let pa = Problem::row_maxima(&a);
    let pt = Problem::tube_maxima(&d, &e);
    let mut base = [0.0f64; 3];
    for (idx, &threads) in [1usize, 2, 4, 8].iter().enumerate() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let (t1, t2, t3) = pool.install(|| {
            let (_, t1) = time(|| disp.solve_on("rayon", &pa, tun).expect("rayon"));
            let (_, t2) = time(|| disp.solve_on("rayon", &pt, tun).expect("rayon"));
            let (_, t3) = time(|| monge_apps::farthest::par_farthest_across_chains(&p, &q));
            (t1, t2, t3)
        });
        if idx == 0 {
            base = [t1, t2, t3];
        }
        println!(
            "{:>8} | {:>12.3} {:>8.2} | {:>12.3} {:>8.2} | {:>12.3} {:>8.2}",
            threads,
            t1 * 1e3,
            base[0] / t1,
            t2 * 1e3,
            base[1] / t2,
            t3 * 1e3,
            base[2] / t3,
        );
    }
}

/// The introduction's dynamic-programming applications: concave LWS /
/// economic lot-size (\[AP90\]), optimal BSTs (\[Yao80\]), and Hoffman's
/// transportation greedy (\[Hof61\]).
pub fn dp_apps(sizes: &[usize]) {
    hdr("Intro applications: Monge-structured dynamic programming");
    println!("LWS/lot-size: stack algorithm O(n lg n) vs brute O(n^2)");
    println!("optimal BST : Knuth-Yao O(n^2) vs cubic DP");
    println!("transport   : Hoffman NW-corner greedy O(m+n) vs min-cost flow");
    println!();
    println!(
        "{:>7} | {:>10} {:>10} | {:>10} {:>10} | {:>8}",
        "n", "lws:ms", "lwsBF:ms", "obst:ms", "obst3:ms", "agree"
    );
    for &n in sizes {
        let mut rng = rng_for(30, n);
        use rand::RngExt;
        let demand: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..10.0)).collect();
        let ls = monge_apps::lws::LotSize::new(demand, 25.0, 0.4);
        let lot = |i: usize, j: usize| ls.w(i, j);
        let ((cost, _), t_lws) = time(|| ls.solve());
        let (eb, t_bf) = time(|| monge_apps::lws::lws_brute(n, &lot));
        let agree_lws = (cost - eb.0[n]).abs() < 1e-6;
        let freq: Vec<f64> = (0..n.min(400))
            .map(|_| rng.random_range(0.01..3.0))
            .collect();
        let (t1, t_ky) = time(|| monge_apps::obst::optimal_bst(&freq));
        let (t2, t_cb) = time(|| monge_apps::obst::optimal_bst_cubic(&freq));
        let agree_obst = (t1.total_cost() - t2.total_cost()).abs() < 1e-6;
        println!(
            "{:>7} | {:>10.3} {:>10.3} | {:>10.3} {:>10.3} | {:>8}",
            n,
            t_lws * 1e3,
            t_bf * 1e3,
            t_ky * 1e3,
            t_cb * 1e3,
            agree_lws && agree_obst
        );
    }
    println!();
    println!("transportation spot-check (m = n = 5, Monge costs):");
    let mut rng = rng_for(31, 5);
    use rand::RngExt;
    let c = monge_core::generators::random_monge_dense(5, 5, &mut rng);
    let a: Vec<i64> = (0..5).map(|_| rng.random_range(1..10)).collect();
    let total: i64 = a.iter().sum();
    let mut b = vec![total / 5; 5];
    b[4] = total - 4 * (total / 5);
    let plan = monge_apps::transport::northwest_corner(&a, &b);
    let greedy = monge_apps::transport::plan_cost(&plan, &c);
    let opt = monge_apps::transport::min_cost_transport(&a, &b, &c);
    let bound = monge_apps::transport::shipping_lower_bound(&a, &c);
    println!(
        "  greedy cost {greedy}, min-cost-flow {opt}, row-minima bound {bound}, optimal = {}",
        greedy == opt
    );
}

/// Figure 1.1 — farthest neighbors across the chains of a convex polygon.
/// The brute force is skipped above `brute_cap` (it is `O(n²)` and takes
/// tens of seconds at 65536).
pub fn fig_1_1_capped(sizes: &[usize], brute_cap: usize) {
    fig_1_1_impl(sizes, brute_cap)
}

/// Figure 1.1 with the brute force at every size.
pub fn fig_1_1(sizes: &[usize]) {
    fig_1_1_impl(sizes, usize::MAX)
}

fn fig_1_1_impl(sizes: &[usize], brute_cap: usize) {
    hdr("Fig 1.1: all-farthest-neighbors across two convex chains");
    println!("paper: the inter-chain distance array is inverse-Monge;");
    println!("       row maxima solve it in Theta(m+n) [AKM+87]");
    println!();
    println!(
        "{:>7} | {:>12} {:>12} {:>10} {:>10} | {:>8}",
        "n", "brute:entry", "smawk:entry", "brute:ms", "smawk:ms", "agree"
    );
    let disp = Dispatcher::with_default_backends();
    let tun = Tuning::from_env();
    for &n in sizes {
        let (p, q) = polygon_chains(n);
        let a = monge_apps::farthest::chain_distance_array(&p, &q);
        let pr = Problem::row_maxima_inverse_monge(&a);
        let (run, fast_s) = time(|| disp.solve_on("sequential", &pr, tun).expect("sequential"));
        let idx_fast = run.0.into_rows().index;
        let fast_entries = run.1.evaluations;
        if n <= brute_cap {
            let counted = Counting::new(&a);
            let (idx_brute, brute_s) = time(|| monge_core::monge::brute_row_maxima(&counted));
            println!(
                "{:>7} | {:>12} {:>12} {:>10.3} {:>10.3} | {:>8}",
                n,
                counted.count(),
                fast_entries,
                brute_s * 1e3,
                fast_s * 1e3,
                idx_fast == idx_brute
            );
        } else {
            println!(
                "{:>7} | {:>12} {:>12} {:>10} {:>10.3} | {:>8}",
                n,
                "-",
                fast_entries,
                "-",
                fast_s * 1e3,
                "(skipped)"
            );
        }
    }
}
