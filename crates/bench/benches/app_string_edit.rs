//! App 4 wall-clock: string editing — Wagner–Fischer DP vs the
//! antidiagonal wavefront (Ranka–Sahni shape) vs the DIST-matrix tree
//! (grid-DAG + tube minima).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_apps::string_edit::{
    edit_distance_antidiagonal, edit_distance_dist_tree, edit_distance_dp, CostModel,
};
use monge_bench::workloads::random_strings;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("app_string_edit");
    g.sample_size(10);
    let costs = CostModel::unit();
    for n in [128usize, 512, 1024] {
        let (x, y) = random_strings(n, n, 4);
        g.bench_with_input(BenchmarkId::new("wagner_fischer", n), &n, |b, _| {
            b.iter(|| black_box(edit_distance_dp(&x, &y, &costs)))
        });
        g.bench_with_input(BenchmarkId::new("antidiagonal", n), &n, |b, _| {
            b.iter(|| black_box(edit_distance_antidiagonal(&x, &y, &costs)))
        });
        if n <= 512 {
            g.bench_with_input(BenchmarkId::new("dist_tree8", n), &n, |b, _| {
                b.iter(|| black_box(edit_distance_dist_tree(&x, &y, &costs, 8)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
