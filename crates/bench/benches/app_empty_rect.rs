//! App 1 wall-clock: largest empty rectangle — median divide & conquer
//! (sequential and rayon) vs the `O(n³)` strip-enumeration brute force.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_apps::empty_rect::{
    largest_empty_rectangle, largest_empty_rectangle_brute, par_largest_empty_rectangle,
};
use monge_bench::workloads::{random_points, unit_box};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("app_empty_rect");
    g.sample_size(10);
    for n in [128usize, 512, 2048] {
        let pts = random_points(n, 10);
        let bbox = unit_box();
        g.bench_with_input(BenchmarkId::new("dc_seq", n), &n, |b, _| {
            b.iter(|| black_box(largest_empty_rectangle(&pts, bbox)))
        });
        g.bench_with_input(BenchmarkId::new("dc_rayon", n), &n, |b, _| {
            b.iter(|| black_box(par_largest_empty_rectangle(&pts, bbox)))
        });
        if n <= 128 {
            g.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
                b.iter(|| black_box(largest_empty_rectangle_brute(&pts, bbox)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
