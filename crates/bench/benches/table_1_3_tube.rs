//! Table 1.3 wall-clock: tube maxima of an `n × n × n` Monge-composite
//! array — per-plane SMAWK (`O(n²)`), the `O(n³)` brute force, the rayon
//! plane-parallel engine (via the dispatcher) and the divide & conquer
//! strategy variant (called directly — the dispatcher intentionally
//! hides engine-internal strategy knobs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_bench::workloads::composite_pair;
use monge_core::problem::Problem;
use monge_core::tube::tube_maxima_brute;
use monge_parallel::rayon_tube::par_tube_minima_dc;
use monge_parallel::{Dispatcher, Tuning};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_1_3_tube");
    g.sample_size(10);
    let disp = Dispatcher::with_default_backends();
    let t = Tuning::from_env();
    for n in [64usize, 128, 256] {
        let (d, e) = composite_pair(n);
        let pmax = Problem::tube_maxima(&d, &e);
        let pmin = Problem::tube_minima(&d, &e);
        g.bench_with_input(BenchmarkId::new("smawk_planes_seq", n), &n, |b, _| {
            b.iter(|| black_box(disp.solve_on("sequential", &pmax, t).expect("sequential").0))
        });
        g.bench_with_input(BenchmarkId::new("rayon_planes", n), &n, |b, _| {
            b.iter(|| black_box(disp.solve_on("rayon", &pmax, t).expect("rayon").0))
        });
        g.bench_with_input(BenchmarkId::new("rayon_dc_minima", n), &n, |b, _| {
            b.iter(|| black_box(par_tube_minima_dc(&d, &e)))
        });
        g.bench_with_input(BenchmarkId::new("seq_minima", n), &n, |b, _| {
            b.iter(|| black_box(disp.solve_on("sequential", &pmin, t).expect("sequential").0))
        });
        if n <= 128 {
            g.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
                b.iter(|| black_box(tube_maxima_brute(&d, &e)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
