//! Substrate wall-clock: the building blocks the paper's pipeline rests
//! on — ANSV (Lemma 2.2's allocator), the online concave/convex DP
//! engines, and the tree-construction applications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_bench::workloads::rng_for;
use monge_core::ansv::ansv;
use monge_core::array2d::Array2d;
use monge_core::eval;
use monge_core::generators::{random_monge_dense, ImplicitMonge};
use monge_parallel::ansv_par::par_ansv;
use rand::RngExt;
use std::hint::black_box;

/// Row minima via one `entry` call per element, tracking the argmin
/// index — the pre-batching shape of every engine's inner loop.
fn per_entry_row_minima<A: Array2d<i64>>(a: &A) -> Vec<(usize, i64)> {
    (0..a.rows())
        .map(|i| {
            let mut bj = 0usize;
            let mut bv = a.entry(i, 0);
            for j in 1..a.cols() {
                let v = a.entry(i, j);
                if v < bv {
                    bj = j;
                    bv = v;
                }
            }
            (bj, bv)
        })
        .collect()
}

/// Row minima through the evaluation layer: a zero-copy `row_view` scan
/// where the substrate stores its rows, else `fill_row` into a reused
/// scratch buffer + slice argmin.
fn batched_row_minima<A: Array2d<i64>>(a: &A) -> Vec<(usize, i64)> {
    let mut buf = Vec::new();
    (0..a.rows())
        .map(|i| eval::interval_argmin(a, i, 0, a.cols(), &mut buf))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.sample_size(10);

    for n in [4096usize, 65536] {
        let mut rng = rng_for(40, n);
        let a: Vec<i64> = (0..n).map(|_| rng.random_range(0..1000)).collect();
        g.bench_with_input(BenchmarkId::new("ansv_seq", n), &n, |b, _| {
            b.iter(|| black_box(ansv(&a)))
        });
        g.bench_with_input(BenchmarkId::new("ansv_rayon", n), &n, |b, _| {
            b.iter(|| black_box(par_ansv(&a)))
        });
    }

    for n in [1024usize, 8192] {
        let mut rng = rng_for(41, n);
        let demand: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..10.0)).collect();
        let ls = monge_apps::lws::LotSize::new(demand, 25.0, 0.4);
        g.bench_with_input(BenchmarkId::new("lot_size_lws", n), &n, |b, _| {
            b.iter(|| black_box(ls.solve()))
        });
        if n <= 1024 {
            let lot = |i: usize, j: usize| ls.w(i, j);
            g.bench_with_input(BenchmarkId::new("lot_size_brute", n), &n, |b, _| {
                b.iter(|| black_box(monge_apps::lws::lws_brute(n, &lot)))
            });
        }
    }

    for n in [128usize, 512] {
        let mut rng = rng_for(42, n);
        let freq: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..3.0)).collect();
        g.bench_with_input(BenchmarkId::new("obst_knuth_yao", n), &n, |b, _| {
            b.iter(|| black_box(monge_apps::obst::optimal_bst(&freq)))
        });
        if n <= 128 {
            g.bench_with_input(BenchmarkId::new("obst_cubic", n), &n, |b, _| {
                b.iter(|| black_box(monge_apps::obst::optimal_bst_cubic(&freq)))
            });
        }
        g.bench_with_input(BenchmarkId::new("garsia_wachs", n), &n, |b, _| {
            b.iter(|| black_box(monge_apps::alphabetic::garsia_wachs(&freq)))
        });
    }

    g.finish();

    // The evaluation layer itself: per-entry loops vs batched fill_row
    // scans, on a dense (memcpy fill) and an implicit (computed fill)
    // substrate. The rowmin_json bin emits the same comparison as JSON.
    let mut g = c.benchmark_group("rowmin");
    g.sample_size(10);
    const ROWS: usize = 64;
    for n in [1024usize, 4096, 16384] {
        let dense = random_monge_dense(ROWS, n, &mut rng_for(43, n));
        g.bench_with_input(BenchmarkId::new("dense_per_entry", n), &n, |b, _| {
            b.iter(|| black_box(per_entry_row_minima(&dense)))
        });
        g.bench_with_input(BenchmarkId::new("dense_batched", n), &n, |b, _| {
            b.iter(|| black_box(batched_row_minima(&dense)))
        });
        let implicit = ImplicitMonge::random(ROWS, n, 3, &mut rng_for(44, n));
        g.bench_with_input(BenchmarkId::new("implicit_per_entry", n), &n, |b, _| {
            b.iter(|| black_box(per_entry_row_minima(&implicit)))
        });
        g.bench_with_input(BenchmarkId::new("implicit_batched", n), &n, |b, _| {
            b.iter(|| black_box(batched_row_minima(&implicit)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
