//! Substrate wall-clock: the building blocks the paper's pipeline rests
//! on — ANSV (Lemma 2.2's allocator), the online concave/convex DP
//! engines, and the tree-construction applications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_bench::workloads::rng_for;
use monge_core::ansv::ansv;
use monge_parallel::ansv_par::par_ansv;
use rand::RngExt;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.sample_size(10);

    for n in [4096usize, 65536] {
        let mut rng = rng_for(40, n);
        let a: Vec<i64> = (0..n).map(|_| rng.random_range(0..1000)).collect();
        g.bench_with_input(BenchmarkId::new("ansv_seq", n), &n, |b, _| {
            b.iter(|| black_box(ansv(&a)))
        });
        g.bench_with_input(BenchmarkId::new("ansv_rayon", n), &n, |b, _| {
            b.iter(|| black_box(par_ansv(&a)))
        });
    }

    for n in [1024usize, 8192] {
        let mut rng = rng_for(41, n);
        let demand: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..10.0)).collect();
        let ls = monge_apps::lws::LotSize::new(demand, 25.0, 0.4);
        g.bench_with_input(BenchmarkId::new("lot_size_lws", n), &n, |b, _| {
            b.iter(|| black_box(ls.solve()))
        });
        if n <= 1024 {
            let lot = |i: usize, j: usize| ls.w(i, j);
            g.bench_with_input(BenchmarkId::new("lot_size_brute", n), &n, |b, _| {
                b.iter(|| black_box(monge_apps::lws::lws_brute(n, &lot)))
            });
        }
    }

    for n in [128usize, 512] {
        let mut rng = rng_for(42, n);
        let freq: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..3.0)).collect();
        g.bench_with_input(BenchmarkId::new("obst_knuth_yao", n), &n, |b, _| {
            b.iter(|| black_box(monge_apps::obst::optimal_bst(&freq)))
        });
        if n <= 128 {
            g.bench_with_input(BenchmarkId::new("obst_cubic", n), &n, |b, _| {
                b.iter(|| black_box(monge_apps::obst::optimal_bst_cubic(&freq)))
            });
        }
        g.bench_with_input(BenchmarkId::new("garsia_wachs", n), &n, |b, _| {
            b.iter(|| black_box(monge_apps::alphabetic::garsia_wachs(&freq)))
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
