//! Table 1.2 wall-clock: row minima of an `n × n` staircase-Monge array —
//! the feasible-region divide & conquer (sequential and rayon), the
//! brute force, and the simulated Theorem 2.3 CRCW engine at a fixed
//! size. Every engine is addressed by backend name through the unified
//! dispatcher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_bench::workloads::staircase_square;
use monge_core::problem::Problem;
use monge_core::staircase::staircase_row_minima_brute;
use monge_parallel::{Dispatcher, Tuning};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_1_2_staircase");
    g.sample_size(10);
    let disp = Dispatcher::with_all_backends();
    let t = Tuning::from_env();
    for n in [256usize, 1024, 2048] {
        let (a, f) = staircase_square(n);
        let p = Problem::staircase_row_minima(&a, &f);
        g.bench_with_input(BenchmarkId::new("dc_seq", n), &n, |b, _| {
            b.iter(|| black_box(disp.solve_on("sequential", &p, t).expect("sequential").0))
        });
        g.bench_with_input(BenchmarkId::new("rayon_dc", n), &n, |b, _| {
            b.iter(|| black_box(disp.solve_on("rayon", &p, t).expect("rayon").0))
        });
        if n <= 1024 {
            g.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
                b.iter(|| black_box(staircase_row_minima_brute(&a, &f)))
            });
        }
        if n <= 256 {
            g.bench_with_input(BenchmarkId::new("pram_crcw_sim", n), &n, |b, _| {
                b.iter(|| black_box(disp.solve_on("pram:doubly-log", &p, t).expect("pram").0))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
