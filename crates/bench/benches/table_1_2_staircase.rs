//! Table 1.2 wall-clock: row minima of an `n × n` staircase-Monge array —
//! the feasible-region divide & conquer (sequential and rayon), the
//! brute force, and the simulated Theorem 2.3 CRCW engine at a fixed
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_bench::workloads::staircase_square;
use monge_core::staircase::{staircase_row_minima, staircase_row_minima_brute};
use monge_parallel::pram_staircase::pram_staircase_row_minima;
use monge_parallel::rayon_staircase::par_staircase_row_minima;
use monge_parallel::MinPrimitive;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_1_2_staircase");
    g.sample_size(10);
    for n in [256usize, 1024, 2048] {
        let (a, f) = staircase_square(n);
        g.bench_with_input(BenchmarkId::new("dc_seq", n), &n, |b, _| {
            b.iter(|| black_box(staircase_row_minima(&a, &f)))
        });
        g.bench_with_input(BenchmarkId::new("rayon_dc", n), &n, |b, _| {
            b.iter(|| black_box(par_staircase_row_minima(&a, &f)))
        });
        if n <= 1024 {
            g.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
                b.iter(|| black_box(staircase_row_minima_brute(&a, &f)))
            });
        }
        if n <= 256 {
            g.bench_with_input(BenchmarkId::new("pram_crcw_sim", n), &n, |b, _| {
                b.iter(|| {
                    black_box(pram_staircase_row_minima(&a, &f, MinPrimitive::DoublyLog).index)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
