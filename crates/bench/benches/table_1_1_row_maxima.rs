//! Table 1.1 wall-clock: row maxima of an `n × n` Monge array —
//! sequential SMAWK (`Θ(n)`), rayon divide & conquer, and the `O(n²)`
//! brute force, plus the simulated-PRAM engine at a fixed size. Every
//! engine is addressed by backend name through the unified dispatcher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_bench::workloads::monge_square;
use monge_core::monge::brute_row_maxima;
use monge_core::problem::Problem;
use monge_parallel::{Dispatcher, Tuning};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_1_1_row_maxima");
    g.sample_size(10);
    let disp = Dispatcher::with_all_backends();
    let t = Tuning::from_env();
    for n in [256usize, 1024, 2048] {
        let a = monge_square(n);
        let p = Problem::row_maxima(&a);
        g.bench_with_input(BenchmarkId::new("smawk_seq", n), &n, |b, _| {
            b.iter(|| black_box(disp.solve_on("sequential", &p, t).expect("sequential").0))
        });
        g.bench_with_input(BenchmarkId::new("rayon_dc", n), &n, |b, _| {
            b.iter(|| black_box(disp.solve_on("rayon", &p, t).expect("rayon").0))
        });
        if n <= 1024 {
            g.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
                b.iter(|| black_box(brute_row_maxima(&a)))
            });
        }
        if n <= 256 {
            g.bench_with_input(BenchmarkId::new("pram_crcw_sim", n), &n, |b, _| {
                b.iter(|| black_box(disp.solve_on("pram:doubly-log", &p, t).expect("pram").0))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
