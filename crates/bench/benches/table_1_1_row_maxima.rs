//! Table 1.1 wall-clock: row maxima of an `n × n` Monge array —
//! sequential SMAWK (`Θ(n)`), rayon divide & conquer, and the `O(n²)`
//! brute force, plus the simulated-PRAM engine at a fixed size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_bench::workloads::monge_square;
use monge_core::monge::brute_row_maxima;
use monge_core::smawk::row_maxima_monge;
use monge_parallel::pram_monge::pram_row_maxima_monge;
use monge_parallel::rayon_monge::par_row_maxima_monge;
use monge_parallel::MinPrimitive;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_1_1_row_maxima");
    g.sample_size(10);
    for n in [256usize, 1024, 2048] {
        let a = monge_square(n);
        g.bench_with_input(BenchmarkId::new("smawk_seq", n), &n, |b, _| {
            b.iter(|| black_box(row_maxima_monge(&a).index))
        });
        g.bench_with_input(BenchmarkId::new("rayon_dc", n), &n, |b, _| {
            b.iter(|| black_box(par_row_maxima_monge(&a).index))
        });
        if n <= 1024 {
            g.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
                b.iter(|| black_box(brute_row_maxima(&a)))
            });
        }
        if n <= 256 {
            g.bench_with_input(BenchmarkId::new("pram_crcw_sim", n), &n, |b, _| {
                b.iter(|| black_box(pram_row_maxima_monge(&a, MinPrimitive::DoublyLog).index))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
