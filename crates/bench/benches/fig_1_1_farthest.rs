//! Figure 1.1 wall-clock: farthest neighbors across two convex chains —
//! SMAWK row maxima (`Θ(m+n)`) vs the `O(mn)` brute force vs rayon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_apps::farthest::{
    farthest_across_chains, farthest_across_chains_brute, par_farthest_across_chains,
};
use monge_bench::workloads::polygon_chains;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_1_1_farthest");
    g.sample_size(10);
    for n in [1024usize, 8192, 65536] {
        let (p, q) = polygon_chains(n);
        g.bench_with_input(BenchmarkId::new("smawk", n), &n, |b, _| {
            b.iter(|| black_box(farthest_across_chains(&p, &q)))
        });
        g.bench_with_input(BenchmarkId::new("rayon", n), &n, |b, _| {
            b.iter(|| black_box(par_farthest_across_chains(&p, &q)))
        });
        if n <= 8192 {
            g.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
                b.iter(|| black_box(farthest_across_chains_brute(&p, &q)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
