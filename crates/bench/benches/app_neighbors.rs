//! App 3 wall-clock: nearest-invisible neighbors between two disjoint
//! convex polygons — `O(1)` wedge/tangent predicates (sequential and
//! rayon) vs the `O(mn(m+n))` segment-clipping brute force.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_apps::neighbors::{neighbors, neighbors_brute, neighbors_seq, Goal};
use monge_bench::workloads::polygon_pair;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("app_neighbors");
    g.sample_size(10);
    for n in [64usize, 256, 1024] {
        let (p, q) = polygon_pair(n);
        g.bench_with_input(BenchmarkId::new("predicates_seq", n), &n, |b, _| {
            b.iter(|| black_box(neighbors_seq(&p, &q, Goal::NearestInvisible)))
        });
        g.bench_with_input(BenchmarkId::new("predicates_rayon", n), &n, |b, _| {
            b.iter(|| black_box(neighbors(&p, &q, Goal::NearestInvisible)))
        });
        if n <= 256 {
            g.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
                b.iter(|| black_box(neighbors_brute(&p, &q, Goal::NearestInvisible)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
