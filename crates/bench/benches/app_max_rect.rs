//! App 2 wall-clock: largest two-corner rectangle — banded Monge search
//! over dominance staircases (`O(n lg n)`) vs the `O(n²)` brute force.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge_apps::max_rect::{
    largest_corner_rectangle, largest_corner_rectangle_brute, par_largest_corner_rectangle,
};
use monge_bench::workloads::random_points;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("app_max_rect");
    g.sample_size(10);
    for n in [1024usize, 16384, 131072] {
        let pts = random_points(n, 11);
        g.bench_with_input(BenchmarkId::new("monge_seq", n), &n, |b, _| {
            b.iter(|| black_box(largest_corner_rectangle(&pts)))
        });
        g.bench_with_input(BenchmarkId::new("monge_rayon", n), &n, |b, _| {
            b.iter(|| black_box(par_largest_corner_rectangle(&pts)))
        });
        if n <= 16384 {
            g.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
                b.iter(|| black_box(largest_corner_rectangle_brute(&pts)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
