//! Normal-algorithm primitives on the hypercube: the data-movement
//! toolkit of Lemma 3.1 ("merge lists … parallel prefix … isotone
//! routing", citing \[LLS89\]).
//!
//! | primitive | exchange steps |
//! |---|---|
//! | [`broadcast_from_zero`] | `d` |
//! | [`reduce_to_zero`] | `d` |
//! | [`scan_inclusive`] / [`segmented_scan_inclusive`] | `d` |
//! | [`bitonic_merge`] | `d` |
//! | [`bitonic_sort`] | `d(d+1)/2` |
//! | [`route_monotone`] | `d` |
//!
//! All use one dimension per exchange (normal discipline), so the
//! [`crate::topology`] emulators can price them on CCC and
//! shuffle-exchange networks.

use crate::network::{Hypercube, Reg, Word};

/// Broadcasts node 0's register to all nodes in `d` exchange steps.
pub fn broadcast_from_zero<C: Word>(hc: &mut Hypercube<C>, r: Reg) {
    for d in 0..hc.dim() {
        hc.exchange(d, |node, own, remote| {
            if (node >> d) & 1 == 1 {
                own.set(r, remote.get(r));
            }
        });
    }
}

/// Reduces a register by `combine` into node 0 in `d` exchange steps.
/// `combine(a, b)` receives the lower node's value first.
pub fn reduce_to_zero<C: Word>(hc: &mut Hypercube<C>, r: Reg, combine: impl Fn(C, C) -> C + Copy) {
    for d in 0..hc.dim() {
        hc.exchange(d, |node, own, remote| {
            if (node >> d) & 1 == 0 {
                own.set(r, combine(own.get(r), remote.get(r)));
            }
        });
    }
}

/// Inclusive parallel prefix over node-id order in `d` exchange steps
/// plus one local step; `combine` must be associative.
pub fn scan_inclusive<C: Word>(hc: &mut Hypercube<C>, r: Reg, combine: impl Fn(C, C) -> C + Copy) {
    let total = hc.alloc_reg(hc.peek(0, r));
    hc.local(|_, own| {
        let v = own.get(r);
        own.set(total, v);
    });
    for d in 0..hc.dim() {
        hc.exchange(d, |node, own, remote| {
            let rt = remote.get(total);
            if (node >> d) & 1 == 1 {
                own.set(r, combine(rt, own.get(r)));
                own.set(total, combine(rt, own.get(total)));
            } else {
                own.set(total, combine(own.get(total), rt));
            }
        });
    }
}

/// Segmented inclusive prefix: `flag == one` marks the first element of a
/// segment; the scan restarts there. Costs the same as
/// [`scan_inclusive`].
pub fn segmented_scan_inclusive<C: Word>(
    hc: &mut Hypercube<C>,
    r: Reg,
    flag: Reg,
    one: C,
    combine: impl Fn(C, C) -> C + Copy,
) {
    // Pair scan with the segmented operator
    //   (v1,f1) ⊕ (v2,f2) = (f2 ? v2 : v1∘v2, f1 ∨ f2),
    // which is associative, so the plain hypercube scan applies to pairs.
    // Registers: (r, rf) = running prefix pair, (t, tf) = running total
    // pair of the node-interval each scan phase has absorbed.
    let rf = hc.alloc_reg(one);
    let t = hc.alloc_reg(hc.peek(0, r));
    let tf = hc.alloc_reg(one);
    hc.local(|_, own| {
        let v = own.get(r);
        let f = own.get(flag);
        own.set(rf, f);
        own.set(t, v);
        own.set(tf, f);
    });
    for d in 0..hc.dim() {
        hc.exchange(d, |node, own, remote| {
            let (rt, rtf) = (remote.get(t), remote.get(tf));
            if (node >> d) & 1 == 1 {
                // Lower half precedes this node: prefix = remote_total ⊕ prefix.
                if own.get(rf) != one {
                    own.set(r, combine(rt, own.get(r)));
                    if rtf == one {
                        own.set(rf, one);
                    }
                }
                // total = remote_total ⊕ total.
                if own.get(tf) != one {
                    own.set(t, combine(rt, own.get(t)));
                    if rtf == one {
                        own.set(tf, one);
                    }
                }
            } else {
                // total = total ⊕ remote_total.
                if rtf == one {
                    own.set(t, rt);
                    own.set(tf, one);
                } else {
                    own.set(t, combine(own.get(t), rt));
                }
            }
        });
    }
}

/// Bitonic compare-exchange cascade along descending dimensions: merges a
/// bitonic key sequence into an ascending one in `d` exchange steps,
/// carrying `payloads` with the keys. Ties keep both sides in place
/// (consistent on both endpoints).
pub fn bitonic_merge<C: Word>(hc: &mut Hypercube<C>, key: Reg, payloads: &[Reg]) {
    let payloads = payloads.to_vec();
    for j in (0..hc.dim()).rev() {
        compare_exchange(hc, j, key, &payloads, |node, j| (node >> j) & 1 == 0);
    }
}

/// Full bitonic sort by `key` (ascending in node-id order), carrying
/// `payloads`, in `d(d+1)/2` exchange steps.
pub fn bitonic_sort<C: Word>(hc: &mut Hypercube<C>, key: Reg, payloads: &[Reg]) {
    let payloads = payloads.to_vec();
    let dim = hc.dim();
    for k in 0..dim {
        for j in (0..=k).rev() {
            compare_exchange(hc, j, key, &payloads, move |node, j| {
                let ascending = (node >> (k + 1)) & 1 == 0;
                ((node >> j) & 1 == 0) == ascending
            });
        }
    }
}

/// One compare-exchange step along dimension `j`: the endpoint where
/// `keep_small(node, j)` holds keeps the smaller key.
fn compare_exchange<C: Word>(
    hc: &mut Hypercube<C>,
    j: usize,
    key: Reg,
    payloads: &[Reg],
    keep_small: impl Fn(usize, usize) -> bool + Copy,
) {
    hc.exchange(j, |node, own, remote| {
        let a = own.get(key);
        let b = remote.get(key);
        // Strict comparison; equal keys stay put (both sides agree).
        let take_remote = if keep_small(node, j) { b < a } else { a < b };
        if take_remote {
            own.set(key, b);
            for &p in payloads {
                own.set(p, remote.get(p));
            }
        }
    });
}

/// One bit-fixing pass over the given dimension order. Packets cross
/// dimension `d` when their destination disagrees with their current node
/// in bit `d`; a collision panics (callers guarantee congestion-freedom).
#[allow(clippy::too_many_arguments)]
fn bit_fix_pass<C: Word>(
    hc: &mut Hypercube<C>,
    dims: impl Iterator<Item = usize>,
    valid: Reg,
    one: C,
    zero: C,
    dest: Reg,
    dest_of: impl Fn(C) -> usize + Copy,
    payloads: &[Reg],
) {
    let payloads = payloads.to_vec();
    for d in dims {
        hc.exchange(d, |node, own, remote| {
            let own_has = own.get(valid) == one;
            let own_cross = own_has && ((dest_of(own.get(dest)) >> d) & 1) != ((node >> d) & 1);
            let partner = node ^ (1 << d);
            let rem_has = remote.get(valid) == one;
            let rem_cross =
                rem_has && ((dest_of(remote.get(dest)) >> d) & 1) != ((partner >> d) & 1);
            match (own_has && !own_cross, rem_cross) {
                (true, true) => panic!(
                    "routing congestion at node {node}, dimension {d}: \
                     route is not a monotone concentration/distribution"
                ),
                (false, true) => {
                    own.set(valid, one);
                    own.set(dest, remote.get(dest));
                    for &p in &payloads {
                        own.set(p, remote.get(p));
                    }
                }
                (false, false) => {
                    own.set(valid, zero);
                }
                (true, false) => { /* keep own packet */ }
            }
        });
    }
}

/// Concentration routing (Nassimi–Sahni): packet `i` (in node order) moves
/// to node `rank_of(rank register)`, where ranks must equal the packet's
/// 0-based order among valid packets. Ascending bit-fixing is
/// congestion-free for exactly this route class; `d` exchange steps.
pub fn concentrate<C: Word>(
    hc: &mut Hypercube<C>,
    valid: Reg,
    one: C,
    zero: C,
    rank: Reg,
    rank_of: impl Fn(C) -> usize + Copy,
    payloads: &[Reg],
) {
    let dim = hc.dim();
    bit_fix_pass(hc, 0..dim, valid, one, zero, rank, rank_of, payloads);
}

/// Distribution routing: the inverse of concentration. Valid packets must
/// sit in nodes `0..k` (rank order) with strictly increasing destinations;
/// descending bit-fixing delivers them congestion-free in `d` exchange
/// steps.
pub fn distribute<C: Word>(
    hc: &mut Hypercube<C>,
    valid: Reg,
    one: C,
    zero: C,
    dest: Reg,
    dest_of: impl Fn(C) -> usize + Copy,
    payloads: &[Reg],
) {
    let dim = hc.dim();
    bit_fix_pass(
        hc,
        (0..dim).rev(),
        valid,
        one,
        zero,
        dest,
        dest_of,
        payloads,
    );
}

/// General monotone (isotone) routing — the Lemma 3.1 primitive: packets
/// with strictly increasing destinations move to those destinations in
/// `2d` exchange steps by concentrating on their ranks and then
/// distributing. `rank` must hold each packet's 0-based order among valid
/// packets (obtained from a prefix scan); `dest` its final destination.
#[allow(clippy::too_many_arguments)]
pub fn route_monotone<C: Word>(
    hc: &mut Hypercube<C>,
    valid: Reg,
    one: C,
    zero: C,
    rank: Reg,
    rank_of: impl Fn(C) -> usize + Copy,
    dest: Reg,
    dest_of: impl Fn(C) -> usize + Copy,
    payloads: &[Reg],
) {
    let mut all = payloads.to_vec();
    all.push(dest);
    concentrate(hc, valid, one, zero, rank, rank_of, &all);
    let mut all = payloads.to_vec();
    all.push(rank);
    distribute(hc, valid, one, zero, dest, dest_of, &all);
}

/// General distinct-destination routing for packets in *arbitrary* source
/// order: bitonic-sort the packets by destination (invalid packets carry
/// `invalid_key`, which must sort after every valid key), then distribute.
/// `O(lg² n)` exchange steps — the fallback when a route is not monotone.
#[allow(clippy::too_many_arguments)]
pub fn sorted_route<C: Word>(
    hc: &mut Hypercube<C>,
    valid: Reg,
    one: C,
    zero: C,
    dest_key: Reg,
    dest_of: impl Fn(C) -> usize + Copy,
    payloads: &[Reg],
    invalid_key: C,
) {
    // Invalid nodes sort to the back.
    hc.local(|_, own| {
        if own.get(valid) != one {
            own.set(dest_key, invalid_key);
        }
    });
    let mut carry = payloads.to_vec();
    carry.push(valid);
    bitonic_sort(hc, dest_key, &carry);
    distribute(hc, valid, one, zero, dest_key, dest_of, payloads);
}

/// Sort-based gather (a "random-access read" h-relation): every node may
/// request the `table` value held by the node named in its `req_key`;
/// after the call, `resp` holds the fetched value at every requesting
/// node. Duplicate keys are allowed (resolved by one fetch plus a
/// segmented broadcast). Cost: two bitonic sorts plus `O(lg n)` routes
/// and scans — `O(lg² n)` exchange steps.
///
/// `key_of`/`make_key` convert between `C` and node indices and must be
/// order-preserving; `invalid_key` must sort after every valid key.
#[allow(clippy::too_many_arguments)]
pub fn sorted_gather<C: Word>(
    hc: &mut Hypercube<C>,
    req_valid: Reg,
    one: C,
    zero: C,
    req_key: Reg,
    key_of: impl Fn(C) -> usize + Copy,
    make_key: impl Fn(usize) -> C + Copy,
    table: Reg,
    resp: Reg,
    invalid_key: C,
) {
    let n = hc.nodes();
    let origin = hc.alloc_reg(zero);
    // 1. Stamp origins; park invalid requests at the back of the sort.
    hc.local(|node, own| {
        own.set(origin, make_key(node));
        if own.get(req_valid) != one {
            own.set(req_key, invalid_key);
        }
    });
    // 2. Sort requests by key.
    bitonic_sort(hc, req_key, &[origin, req_valid]);
    // 3. Remember sorted positions; fetch the predecessor's key to mark
    //    first occurrences (shift-by-one is a monotone route).
    let sortpos = hc.alloc_reg(zero);
    let prevkey = hc.alloc_reg(zero);
    let svalid = hc.alloc_reg(zero);
    let srank = hc.alloc_reg(zero);
    let sdest = hc.alloc_reg(zero);
    hc.local(|node, own| {
        own.set(sortpos, make_key(node));
        own.set(prevkey, own.get(req_key));
        own.set(svalid, if node + 1 < n { one } else { zero });
        own.set(srank, make_key(node));
        own.set(sdest, make_key((node + 1).min(n - 1)));
    });
    route_monotone(
        hc,
        svalid,
        one,
        zero,
        srank,
        key_of,
        sdest,
        key_of,
        &[prevkey],
    );
    // 4. First-occurrence flags among valid requests.
    let first = hc.alloc_reg(zero);
    hc.local(|_, own| {
        let is_first = own.get(req_valid) == one
            && (own.get(svalid) != one || own.get(prevkey) != own.get(req_key));
        own.set(first, if is_first { one } else { zero });
    });
    // 5. Rank the first occurrences by a counting prefix scan.
    let rank = hc.alloc_reg(zero);
    hc.local(|_, own| {
        let f = own.get(first);
        own.set(rank, make_key(usize::from(f == one)));
    });
    scan_inclusive(hc, rank, |a, b| make_key(key_of(a) + key_of(b)));
    hc.local(|_, own| {
        let r = key_of(own.get(rank));
        own.set(rank, make_key(r.saturating_sub(1)));
    });
    // 6. Send one representative request per distinct key to the table
    //    node, read the value, and bring it back to the sorted position.
    let cflag = hc.alloc_reg(zero);
    let ckey = hc.alloc_reg(zero);
    let cpos = hc.alloc_reg(zero);
    let crank = hc.alloc_reg(zero);
    hc.local(|_, own| {
        own.set(cflag, own.get(first));
        own.set(ckey, own.get(req_key));
        own.set(cpos, own.get(sortpos));
        own.set(crank, own.get(rank));
    });
    concentrate(hc, cflag, one, zero, crank, key_of, &[ckey, cpos]);
    // Re-derive ranks after concentration (they are now the node ids).
    hc.local(|node, own| own.set(crank, make_key(node)));
    distribute(hc, cflag, one, zero, ckey, key_of, &[cpos, crank]);
    let travel = hc.alloc_reg(zero);
    hc.local(|_, own| {
        let t = own.get(table);
        own.set(travel, t);
    });
    route_monotone(hc, cflag, one, zero, crank, key_of, cpos, key_of, &[travel]);
    // 7. Spread each key's value across its duplicates (segments start at
    //    first occurrences).
    segmented_scan_inclusive(hc, travel, first, one, |a, _b| a);
    // 8. Sort everything back to the origins (a full permutation).
    bitonic_sort(hc, origin, &[travel, req_valid, req_key]);
    hc.local(|_, own| {
        let t = own.get(travel);
        own.set(resp, t);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube_with(vals: &[i64]) -> (Hypercube<i64>, Reg) {
        let dim = vals.len().trailing_zeros() as usize;
        assert_eq!(1 << dim, vals.len());
        let mut hc = Hypercube::new(dim);
        let r = hc.alloc_reg(0);
        hc.load(r, vals);
        (hc, r)
    }

    #[test]
    fn broadcast_reaches_all_nodes_in_d_steps() {
        let (mut hc, r) = cube_with(&[42, 0, 0, 0, 0, 0, 0, 0]);
        broadcast_from_zero(&mut hc, r);
        assert_eq!(hc.read_reg(r), vec![42; 8]);
        assert_eq!(hc.metrics().comm_steps, 3);
    }

    #[test]
    fn reduce_sums_into_node_zero() {
        let (mut hc, r) = cube_with(&[1, 2, 3, 4, 5, 6, 7, 8]);
        reduce_to_zero(&mut hc, r, |a, b| a + b);
        assert_eq!(hc.peek(0, r), 36);
        assert_eq!(hc.metrics().comm_steps, 3);
    }

    #[test]
    fn reduce_min_into_node_zero() {
        let (mut hc, r) = cube_with(&[5, 3, 9, 1, 7, 2, 8, 6]);
        reduce_to_zero(&mut hc, r, |a, b| a.min(b));
        assert_eq!(hc.peek(0, r), 1);
    }

    #[test]
    fn scan_computes_prefix_sums() {
        let (mut hc, r) = cube_with(&[1, 2, 3, 4, 5, 6, 7, 8]);
        scan_inclusive(&mut hc, r, |a, b| a + b);
        assert_eq!(hc.read_reg(r), vec![1, 3, 6, 10, 15, 21, 28, 36]);
        assert_eq!(hc.metrics().comm_steps, 3);
    }

    #[test]
    fn scan_with_min_operator() {
        let (mut hc, r) = cube_with(&[5, 3, 9, 1, 7, 2, 8, 6]);
        scan_inclusive(&mut hc, r, |a, b| a.min(b));
        assert_eq!(hc.read_reg(r), vec![5, 3, 3, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn segmented_scan_restarts_at_flags() {
        let (mut hc, r) = cube_with(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let f = hc.alloc_reg(0);
        hc.load(f, &[1, 0, 0, 1, 0, 1, 0, 0]); // segments: [0..3), [3..5), [5..8)
        segmented_scan_inclusive(&mut hc, r, f, 1, |a, b| a + b);
        assert_eq!(hc.read_reg(r), vec![1, 3, 6, 4, 9, 6, 13, 21]);
    }

    #[test]
    fn segmented_scan_single_segment_equals_scan() {
        let (mut hc, r) = cube_with(&[4, 1, 3, 2]);
        let f = hc.alloc_reg(0);
        hc.load(f, &[1, 0, 0, 0]);
        segmented_scan_inclusive(&mut hc, r, f, 1, |a, b| a + b);
        assert_eq!(hc.read_reg(r), vec![4, 5, 8, 10]);
    }

    #[test]
    fn segmented_scan_all_singletons() {
        let (mut hc, r) = cube_with(&[4, 1, 3, 2]);
        let f = hc.alloc_reg(0);
        hc.load(f, &[1, 1, 1, 1]);
        segmented_scan_inclusive(&mut hc, r, f, 1, |a, b| a + b);
        assert_eq!(hc.read_reg(r), vec![4, 1, 3, 2]);
    }

    #[test]
    fn bitonic_sort_sorts_random_data() {
        let vals: Vec<i64> = vec![9, 1, 8, 2, 7, 3, 6, 4, 5, 0, 11, 10, 15, 13, 12, 14];
        let (mut hc, r) = cube_with(&vals);
        bitonic_sort(&mut hc, r, &[]);
        let mut want = vals.clone();
        want.sort_unstable();
        assert_eq!(hc.read_reg(r), want);
        // d(d+1)/2 = 10 exchanges for d = 4.
        assert_eq!(hc.metrics().comm_steps, 10);
    }

    #[test]
    fn bitonic_sort_with_duplicates_and_payload() {
        let keys: Vec<i64> = vec![3, 1, 3, 0, 2, 1, 0, 2];
        let (mut hc, k) = cube_with(&keys);
        let p = hc.alloc_reg(0);
        hc.load(p, &[100, 101, 102, 103, 104, 105, 106, 107]);
        bitonic_sort(&mut hc, k, &[p]);
        let got_k = hc.read_reg(k);
        let got_p = hc.read_reg(p);
        let mut want: Vec<i64> = keys.clone();
        want.sort_unstable();
        assert_eq!(got_k, want);
        // Payloads must still pair with their original keys.
        for (kk, pp) in got_k.iter().zip(got_p.iter()) {
            assert_eq!(keys[(*pp - 100) as usize], *kk);
        }
    }

    #[test]
    fn bitonic_merge_merges_two_sorted_halves() {
        // Lower half ascending, upper half descending = bitonic input.
        let vals: Vec<i64> = vec![1, 4, 6, 9, 8, 7, 3, 2];
        let (mut hc, r) = cube_with(&vals);
        bitonic_merge(&mut hc, r, &[]);
        assert_eq!(hc.read_reg(r), vec![1, 2, 3, 4, 6, 7, 8, 9]);
        assert_eq!(hc.metrics().comm_steps, 3); // d steps, not d(d+1)/2
    }

    #[test]
    fn concentrate_compacts_packets() {
        // Packets at nodes 1,3,6 with ranks 0,1,2.
        let mut hc = Hypercube::<i64>::new(3);
        let valid = hc.alloc_reg(0);
        let rank = hc.alloc_reg(0);
        let pay = hc.alloc_reg(0);
        hc.load(valid, &[0, 1, 0, 1, 0, 0, 1, 0]);
        hc.load(rank, &[0, 0, 0, 1, 0, 0, 2, 0]);
        hc.load(pay, &[0, 10, 0, 30, 0, 0, 60, 0]);
        concentrate(&mut hc, valid, 1, 0, rank, |c| c as usize, &[pay]);
        assert_eq!(&hc.read_reg(pay)[0..3], &[10, 30, 60]);
        assert_eq!(&hc.read_reg(valid)[0..4], &[1, 1, 1, 0]);
        assert_eq!(hc.metrics().comm_steps, 3);
    }

    #[test]
    fn distribute_spreads_packets() {
        // Spread from ranks 0,1,2 to destinations 1,4,6.
        let mut hc = Hypercube::<i64>::new(3);
        let valid = hc.alloc_reg(0);
        let dest = hc.alloc_reg(0);
        let pay = hc.alloc_reg(0);
        hc.load(valid, &[1, 1, 1, 0, 0, 0, 0, 0]);
        hc.load(dest, &[1, 4, 6, 0, 0, 0, 0, 0]);
        hc.load(pay, &[10, 20, 30, 0, 0, 0, 0, 0]);
        distribute(&mut hc, valid, 1, 0, dest, |c| c as usize, &[pay]);
        let v = hc.read_reg(valid);
        let p = hc.read_reg(pay);
        assert_eq!(v, vec![0, 1, 0, 0, 1, 0, 1, 0]);
        assert_eq!(p[1], 10);
        assert_eq!(p[4], 20);
        assert_eq!(p[6], 30);
    }

    #[test]
    fn route_monotone_general_case() {
        // The case single-pass bit-fixing cannot do: 0 -> 0, 1 -> 4.
        let mut hc = Hypercube::<i64>::new(3);
        let valid = hc.alloc_reg(0);
        let rank = hc.alloc_reg(0);
        let dest = hc.alloc_reg(0);
        let pay = hc.alloc_reg(0);
        hc.load(valid, &[1, 1, 0, 0, 0, 0, 0, 0]);
        hc.load(rank, &[0, 1, 0, 0, 0, 0, 0, 0]);
        hc.load(dest, &[0, 4, 0, 0, 0, 0, 0, 0]);
        hc.load(pay, &[70, 71, 0, 0, 0, 0, 0, 0]);
        route_monotone(
            &mut hc,
            valid,
            1,
            0,
            rank,
            |c| c as usize,
            dest,
            |c| c as usize,
            &[pay],
        );
        let p = hc.read_reg(pay);
        let v = hc.read_reg(valid);
        assert_eq!(p[0], 70);
        assert_eq!(p[4], 71);
        assert_eq!(v, vec![1, 0, 0, 0, 1, 0, 0, 0]);
        assert_eq!(hc.metrics().comm_steps, 6); // 2d
    }

    #[test]
    #[should_panic(expected = "congestion")]
    fn non_monotone_concentration_fails_loudly() {
        // Ranks that do not match packet order create a collision; the
        // router must panic rather than silently drop data.
        let mut hc = Hypercube::<i64>::new(3);
        let valid = hc.alloc_reg(0);
        let rank = hc.alloc_reg(0);
        hc.load(valid, &[1, 1, 1, 0, 0, 0, 0, 0]);
        hc.load(rank, &[2, 0, 1, 0, 0, 0, 0, 0]); // order-breaking ranks
        concentrate(&mut hc, valid, 1, 0, rank, |c| c as usize, &[]);
    }

    #[test]
    fn sorted_route_handles_unordered_sources() {
        // Packets at 0,2,5 with destinations 6,1,3 — NOT order-preserving.
        let mut hc = Hypercube::<i64>::new(3);
        let valid = hc.alloc_reg(0);
        let dest = hc.alloc_reg(0);
        let pay = hc.alloc_reg(0);
        hc.load(valid, &[1, 0, 1, 0, 0, 1, 0, 0]);
        hc.load(dest, &[6, 0, 1, 0, 0, 3, 0, 0]);
        hc.load(pay, &[100, 0, 102, 0, 0, 105, 0, 0]);
        sorted_route(&mut hc, valid, 1, 0, dest, |c| c as usize, &[pay], i64::MAX);
        let p = hc.read_reg(pay);
        let v = hc.read_reg(valid);
        assert_eq!(v[1], 1);
        assert_eq!(p[1], 102);
        assert_eq!(v[3], 1);
        assert_eq!(p[3], 105);
        assert_eq!(v[6], 1);
        assert_eq!(p[6], 100);
        assert_eq!(v[0] + v[2] + v[4] + v[5] + v[7], 0);
    }

    #[test]
    fn sorted_gather_fetches_with_duplicates() {
        let mut hc = Hypercube::<i64>::new(3);
        let table = hc.alloc_reg(0);
        hc.load(table, &[100, 101, 102, 103, 104, 105, 106, 107]);
        let valid = hc.alloc_reg(0);
        let key = hc.alloc_reg(0);
        let resp = hc.alloc_reg(0);
        hc.load(valid, &[1, 1, 0, 1, 1, 1, 0, 1]);
        hc.load(key, &[5, 2, 0, 2, 7, 0, 0, 2]);
        sorted_gather(
            &mut hc,
            valid,
            1,
            0,
            key,
            |c| c as usize,
            |k| k as i64,
            table,
            resp,
            i64::MAX,
        );
        let r = hc.read_reg(resp);
        assert_eq!(r[0], 105);
        assert_eq!(r[1], 102);
        assert_eq!(r[3], 102);
        assert_eq!(r[4], 107);
        assert_eq!(r[5], 100);
        assert_eq!(r[7], 102);
    }

    #[test]
    fn sorted_gather_random_instances() {
        let mut x: u64 = 0xDEADBEEFCAFE;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for dim in 2..=7usize {
            let n = 1usize << dim;
            for _ in 0..5 {
                let tbl: Vec<i64> = (0..n).map(|i| 1000 + i as i64).collect();
                let vv: Vec<i64> = (0..n).map(|_| (rnd() % 2) as i64).collect();
                let kk: Vec<i64> = (0..n).map(|_| (rnd() % n as u64) as i64).collect();
                let mut hc = Hypercube::<i64>::new(dim);
                let table = hc.alloc_reg(0);
                let valid = hc.alloc_reg(0);
                let key = hc.alloc_reg(0);
                let resp = hc.alloc_reg(0);
                hc.load(table, &tbl);
                hc.load(valid, &vv);
                hc.load(key, &kk);
                sorted_gather(
                    &mut hc,
                    valid,
                    1,
                    0,
                    key,
                    |c| c as usize,
                    |k| k as i64,
                    table,
                    resp,
                    i64::MAX,
                );
                let r = hc.read_reg(resp);
                for i in 0..n {
                    if vv[i] == 1 {
                        assert_eq!(r[i], tbl[kk[i] as usize], "dim={dim} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn route_monotone_random_instances_never_congest() {
        // Randomized monotone partial permutations; the router panics on
        // congestion, so reaching the assertions proves congestion-freedom.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for dim in 2..=6usize {
            let n = 1usize << dim;
            for _ in 0..20 {
                // Random sources and destinations, both strictly increasing.
                let mut srcs: Vec<usize> = (0..n).filter(|_| rnd() % 3 == 0).collect();
                if srcs.is_empty() {
                    srcs.push((rnd() % n as u64) as usize);
                }
                let k = srcs.len();
                let mut dests: Vec<usize> = (0..n).collect();
                // choose k of n increasing dests
                while dests.len() > k {
                    let i = (rnd() % dests.len() as u64) as usize;
                    dests.remove(i);
                }
                let mut hc = Hypercube::<i64>::new(dim);
                let valid = hc.alloc_reg(0);
                let rank = hc.alloc_reg(0);
                let dest = hc.alloc_reg(0);
                let pay = hc.alloc_reg(0);
                let mut vvec = vec![0i64; n];
                let mut rvec = vec![0i64; n];
                let mut dvec = vec![0i64; n];
                let mut pvec = vec![0i64; n];
                for (r, (&s, &t)) in srcs.iter().zip(dests.iter()).enumerate() {
                    vvec[s] = 1;
                    rvec[s] = r as i64;
                    dvec[s] = t as i64;
                    pvec[s] = 1000 + s as i64;
                }
                hc.load(valid, &vvec);
                hc.load(rank, &rvec);
                hc.load(dest, &dvec);
                hc.load(pay, &pvec);
                route_monotone(
                    &mut hc,
                    valid,
                    1,
                    0,
                    rank,
                    |c| c as usize,
                    dest,
                    |c| c as usize,
                    &[pay],
                );
                let p = hc.read_reg(pay);
                let v = hc.read_reg(valid);
                for (&s, &t) in srcs.iter().zip(dests.iter()) {
                    assert_eq!(v[t], 1, "dim={dim} packet {s}->{t} missing");
                    assert_eq!(p[t], 1000 + s as i64, "dim={dim} payload {s}->{t}");
                }
            }
        }
    }
}
