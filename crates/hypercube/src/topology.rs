//! Hypercube-like networks: cube-connected cycles and shuffle-exchange.
//!
//! The paper's §3 claims its hypercube algorithms "can also be used for
//! shuffle-exchange graphs and other hypercube-like networks". The
//! classical justification is that all three algorithms are *normal*: each
//! exchange step uses a single dimension, and consecutive steps use
//! adjacent dimensions (in our algorithms, ascending or descending runs).
//! Normal algorithms run on CCC and shuffle-exchange networks with
//! constant-factor slowdown \[LLS89\].
//!
//! This module provides three things:
//!
//! * graph constructions ([`ccc_edges`], [`shuffle_exchange_edges`]) with
//!   structural tests (degree, size, connectivity);
//! * a working [`ShuffleExchange`] machine that executes normal hypercube
//!   step sequences via unshuffle rotations (2 steps per hypercube
//!   exchange), used to *run* the paper's primitives on a genuinely
//!   different network;
//! * [`EmulationCost`], which prices a recorded hypercube dimension trace
//!   on both networks, so every algorithm's "hypercube, etc." row can be
//!   reported from its actual trace.

use crate::network::{NetMetrics, Word};

/// An undirected edge between two node ids.
pub type Edge = (usize, usize);

/// Cube-connected cycles CCC(d): `d · 2^d` nodes `(w, i)` encoded as
/// `w * d + i`, with cycle edges `(w,i)—(w,i+1 mod d)` and one cube edge
/// `(w,i)—(w ⊕ 2^i, i)` per node.
pub fn ccc_edges(d: usize) -> Vec<Edge> {
    assert!(d >= 1);
    let id = |w: usize, i: usize| w * d + i;
    let mut edges = Vec::new();
    for w in 0..(1usize << d) {
        for i in 0..d {
            // Cycle edge i -> i+1 (mod d), added once per i; for d == 2
            // the two directions coincide, so add only i = 0; for d == 1
            // it would be a self-loop.
            let j = (i + 1) % d;
            if d >= 3 || (d == 2 && i == 0) {
                edges.push((id(w, i), id(w, j)));
            }
            // Cube edge, once per pair.
            let w2 = w ^ (1 << i);
            if w < w2 {
                edges.push((id(w, i), id(w2, i)));
            }
        }
    }
    edges
}

/// Shuffle-exchange SE(d): `2^d` nodes, exchange edges `w — w ⊕ 1` and
/// shuffle edges `w — rol(w)` (cyclic left rotation of the `d`-bit id).
pub fn shuffle_exchange_edges(d: usize) -> Vec<Edge> {
    assert!(d >= 1);
    let n = 1usize << d;
    let mut edges = Vec::new();
    for w in 0..n {
        let x = w ^ 1;
        if w < x {
            edges.push((w, x));
        }
        let s = rol(w, d);
        if w < s {
            edges.push((w, s));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Cyclic left rotation of a `d`-bit word.
pub fn rol(w: usize, d: usize) -> usize {
    ((w << 1) | (w >> (d - 1))) & ((1 << d) - 1)
}

/// Cyclic right rotation of a `d`-bit word.
pub fn ror(w: usize, d: usize) -> usize {
    ((w >> 1) | ((w & 1) << (d - 1))) & ((1 << d) - 1)
}

/// Prices a hypercube execution trace on CCC and shuffle-exchange
/// networks, using the standard emulations: an exchange across dimension
/// `k` is available after rotating the "current dimension" pointer from
/// the previous step's dimension to `k` (each rotation is one cycle /
/// shuffle step), plus one step for the exchange itself. Normal
/// algorithms (|Δdim| = 1 between consecutive exchanges, as all of ours
/// are) therefore pay ≤ 2 steps per hypercube step.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EmulationCost {
    /// Steps of the original hypercube execution (local + exchange).
    pub hypercube_steps: u64,
    /// Steps on a cube-connected-cycles network.
    pub ccc_steps: u64,
    /// Steps on a shuffle-exchange network.
    pub se_steps: u64,
    /// Whether the trace was normal (every dimension change ≤ 1 mod d).
    pub normal: bool,
}

impl EmulationCost {
    /// Prices `metrics` for a hypercube of dimension `dim`.
    pub fn price(metrics: &NetMetrics, dim: usize) -> Self {
        let d = dim.max(1) as i64;
        let mut ccc: u64 = metrics.local_steps;
        let mut se: u64 = metrics.local_steps;
        let mut normal = true;
        let mut cur: Option<i64> = None;
        for &k in &metrics.dim_trace {
            let k = k as i64;
            let dist = match cur {
                None => 0, // first exchange: pointer starts wherever needed
                Some(c) => {
                    let fwd = (k - c).rem_euclid(d);
                    let bwd = (c - k).rem_euclid(d);
                    fwd.min(bwd)
                }
            };
            if dist > 1 {
                normal = false;
            }
            ccc += dist as u64 + 1;
            se += dist as u64 + 1;
            cur = Some(k);
        }
        EmulationCost {
            hypercube_steps: metrics.steps(),
            ccc_steps: ccc,
            se_steps: se,
            normal,
        }
    }
}

/// A working shuffle-exchange machine executing *normal* algorithms: it
/// supports an exchange across the current lowest bit plus an unshuffle
/// rotation that realigns the data so the next dimension becomes the
/// lowest bit. After `d` unshuffles the data is home again.
pub struct ShuffleExchange<C: Word> {
    dim: usize,
    nregs: usize,
    regs: Vec<C>,
    snapshot: Vec<C>,
    /// How many unshuffles have been applied (mod d): data of logical
    /// node `w` currently lives at physical node `ror^k(w)`.
    rotation: usize,
    /// Steps executed on the shuffle-exchange network itself.
    pub steps: u64,
}

impl<C: Word> ShuffleExchange<C> {
    /// Creates an SE network with `2^dim` nodes.
    pub fn new(dim: usize) -> Self {
        assert!((1..=22).contains(&dim));
        Self {
            dim,
            nregs: 0,
            regs: Vec::new(),
            snapshot: Vec::new(),
            rotation: 0,
            steps: 0,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        1 << self.dim
    }

    /// Adds a register to every node (untimed).
    pub fn alloc_reg(&mut self, init: C) -> crate::network::Reg {
        let n = self.nodes();
        let old = self.nregs;
        self.nregs += 1;
        let mut regs = Vec::with_capacity(n * self.nregs);
        for node in 0..n {
            regs.extend_from_slice(&self.regs[node * old..(node + 1) * old]);
            regs.push(init);
        }
        self.regs = regs;
        crate::network::Reg(old)
    }

    /// Loads `data[w]` into *logical* node `w` (untimed; requires the
    /// machine to be in home position).
    pub fn load(&mut self, r: crate::network::Reg, data: &[C]) {
        assert_eq!(self.rotation, 0, "load requires home position");
        for (node, &v) in data.iter().enumerate() {
            self.regs[node * self.nregs + r.0] = v;
        }
    }

    /// Reads a register across *logical* nodes (untimed; requires home
    /// position).
    pub fn read_reg(&self, r: crate::network::Reg) -> Vec<C> {
        assert_eq!(self.rotation, 0, "read_reg requires home position");
        (0..self.nodes())
            .map(|node| self.regs[node * self.nregs + r.0])
            .collect()
    }

    /// The logical node id currently hosted at physical node `p`.
    fn logical_of_physical(&self, p: usize) -> usize {
        // Data of logical w is at ror^rotation(w); invert: rol^rotation(p).
        let mut w = p;
        for _ in 0..self.rotation {
            w = rol(w, self.dim);
        }
        w
    }

    /// One exchange step along the *exchange* edges (`p ↔ p ⊕ 1`). In the
    /// current rotation, physical bit 0 corresponds to logical bit
    /// `rotation`; `f` receives logical node ids.
    pub fn exchange_lowest(
        &mut self,
        mut f: impl FnMut(
            usize,
            &mut crate::network::NodeView<'_, C>,
            &crate::network::RemoteView<'_, C>,
        ),
    ) {
        let nregs = self.nregs;
        self.snapshot.clear();
        self.snapshot.extend_from_slice(&self.regs);
        let snapshot = std::mem::take(&mut self.snapshot);
        for p in 0..self.nodes() {
            let partner = p ^ 1;
            let logical = self.logical_of_physical(p);
            let remote =
                crate::network::RemoteView::new(&snapshot[partner * nregs..(partner + 1) * nregs]);
            let file = &mut self.regs[p * nregs..(p + 1) * nregs];
            let mut view = crate::network::NodeView::new(file);
            f(logical, &mut view, &remote);
        }
        self.snapshot = snapshot;
        self.steps += 1;
    }

    /// One unshuffle step: every node forwards its whole register file
    /// along the shuffle edge `p → ror(p)`, advancing the rotation so the
    /// next logical dimension aligns with the exchange edges.
    pub fn unshuffle(&mut self) {
        let nregs = self.nregs;
        let n = self.nodes();
        let mut next = self.regs.clone();
        for p in 0..n {
            let q = ror(p, self.dim);
            next[q * nregs..(q + 1) * nregs]
                .copy_from_slice(&self.regs[p * nregs..(p + 1) * nregs]);
        }
        self.regs = next;
        self.rotation = (self.rotation + 1) % self.dim;
        self.steps += 1;
    }

    /// The logical dimension the exchange edges currently realize.
    pub fn current_dimension(&self) -> usize {
        self.rotation
    }
}

/// A working cube-connected-cycles machine executing *normal* hypercube
/// algorithms: each cycle of `d` small nodes simulates one hypercube
/// node, with its register file physically held at the cycle position
/// matching the current dimension. A hypercube exchange across the
/// current dimension uses the cube edges at that position (1 CCC step);
/// advancing to the next dimension moves every file one step along its
/// cycle (1 CCC step) — 2 CCC steps per hypercube step, the constant
/// \[LLS89\] emulation.
pub struct CubeConnectedCycles<C: Word> {
    dim: usize,
    nregs: usize,
    /// One register file per *cycle* (supernode); its physical cycle
    /// position is `cur`.
    regs: Vec<C>,
    snapshot: Vec<C>,
    cur: usize,
    /// Steps executed on the CCC itself.
    pub steps: u64,
}

impl<C: Word> CubeConnectedCycles<C> {
    /// Creates a CCC over `d · 2^d` small nodes (`2^d` cycles).
    pub fn new(dim: usize) -> Self {
        assert!((1..=22).contains(&dim));
        Self {
            dim,
            nregs: 0,
            regs: Vec::new(),
            snapshot: Vec::new(),
            cur: 0,
            steps: 0,
        }
    }

    /// Number of cycles (simulated hypercube nodes).
    pub fn cycles(&self) -> usize {
        1 << self.dim
    }

    /// Number of physical CCC nodes.
    pub fn nodes(&self) -> usize {
        self.dim << self.dim
    }

    /// Adds a register to every cycle (untimed).
    pub fn alloc_reg(&mut self, init: C) -> crate::network::Reg {
        let n = self.cycles();
        let old = self.nregs;
        self.nregs += 1;
        let mut regs = Vec::with_capacity(n * self.nregs);
        for node in 0..n {
            regs.extend_from_slice(&self.regs[node * old..(node + 1) * old]);
            regs.push(init);
        }
        self.regs = regs;
        crate::network::Reg(old)
    }

    /// Loads `data[w]` into cycle `w`'s register (untimed).
    pub fn load(&mut self, r: crate::network::Reg, data: &[C]) {
        for (node, &v) in data.iter().enumerate() {
            self.regs[node * self.nregs + r.0] = v;
        }
    }

    /// Reads a register across cycles (untimed).
    pub fn read_reg(&self, r: crate::network::Reg) -> Vec<C> {
        (0..self.cycles())
            .map(|node| self.regs[node * self.nregs + r.0])
            .collect()
    }

    /// The dimension the cube edges currently realize.
    pub fn current_dimension(&self) -> usize {
        self.cur
    }

    /// One exchange across the current dimension via the cube edges at
    /// cycle position `cur`.
    pub fn exchange_current(
        &mut self,
        mut f: impl FnMut(
            usize,
            &mut crate::network::NodeView<'_, C>,
            &crate::network::RemoteView<'_, C>,
        ),
    ) {
        let d = self.cur;
        let nregs = self.nregs;
        self.snapshot.clear();
        self.snapshot.extend_from_slice(&self.regs);
        let snapshot = std::mem::take(&mut self.snapshot);
        for w in 0..self.cycles() {
            let partner = w ^ (1 << d);
            let remote =
                crate::network::RemoteView::new(&snapshot[partner * nregs..(partner + 1) * nregs]);
            let file = &mut self.regs[w * nregs..(w + 1) * nregs];
            let mut view = crate::network::NodeView::new(file);
            f(w, &mut view, &remote);
        }
        self.snapshot = snapshot;
        self.steps += 1;
    }

    /// Advances every register file one position along its cycle,
    /// aligning the cube edges with the next dimension.
    pub fn advance(&mut self) {
        self.cur = (self.cur + 1) % self.dim;
        self.steps += 1; // the cycle-edge hop
    }
}

/// An ascending-dimension normal scan on the CCC machine, mirroring
/// [`crate::ops::scan_inclusive`] — proof by execution of the 2×
/// emulation.
pub fn ccc_scan_inclusive<C: Word>(
    ccc: &mut CubeConnectedCycles<C>,
    r: crate::network::Reg,
    combine: impl Fn(C, C) -> C + Copy,
) {
    let total = ccc.alloc_reg(ccc.regs[r.0]);
    for w in 0..ccc.cycles() {
        let v = ccc.regs[w * ccc.nregs + r.0];
        ccc.regs[w * ccc.nregs + total.0] = v;
    }
    ccc.steps += 1;
    for d in 0..ccc.dim {
        debug_assert_eq!(ccc.current_dimension(), d);
        ccc.exchange_current(|w, own, remote| {
            let rt = remote.get(total);
            if (w >> d) & 1 == 1 {
                own.set(r, combine(rt, own.get(r)));
                own.set(total, combine(rt, own.get(total)));
            } else {
                own.set(total, combine(own.get(total), rt));
            }
        });
        ccc.advance();
    }
}

/// Runs an ascending-dimension normal "scan" on the shuffle-exchange
/// machine, mirroring [`crate::ops::scan_inclusive`]: proof by execution
/// that the hypercube primitive ports at 2 SE steps per hypercube step.
pub fn se_scan_inclusive<C: Word>(
    se: &mut ShuffleExchange<C>,
    r: crate::network::Reg,
    combine: impl Fn(C, C) -> C + Copy,
) {
    let total = se.alloc_reg(se.regs[r.0]);
    // Initialize total := value (a local step, free on SE too since it
    // needs no communication; count it as one step for parity).
    for p in 0..se.nodes() {
        let v = se.regs[p * se.nregs + r.0];
        se.regs[p * se.nregs + total.0] = v;
    }
    se.steps += 1;
    for d in 0..se.dim {
        debug_assert_eq!(se.current_dimension(), d);
        se.exchange_lowest(|logical, own, remote| {
            let rt = remote.get(total);
            if (logical >> d) & 1 == 1 {
                own.set(r, combine(rt, own.get(r)));
                own.set(total, combine(rt, own.get(total)));
            } else {
                own.set(total, combine(own.get(total), rt));
            }
        });
        se.unshuffle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Hypercube;
    use crate::ops::scan_inclusive;

    fn degree_map(n: usize, edges: &[Edge]) -> Vec<usize> {
        let mut deg = vec![0usize; n];
        for &(a, b) in edges {
            deg[a] += 1;
            deg[b] += 1;
        }
        deg
    }

    fn is_connected(n: usize, edges: &[Edge]) -> bool {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    #[test]
    fn ccc_structure() {
        for d in 3..7usize {
            let edges = ccc_edges(d);
            let n = d << d;
            // Every node: 2 cycle edges + 1 cube edge = degree 3.
            let deg = degree_map(n, &edges);
            assert!(deg.iter().all(|&x| x == 3), "CCC({d}) degree");
            assert!(is_connected(n, &edges), "CCC({d}) connectivity");
        }
    }

    #[test]
    fn shuffle_exchange_structure() {
        for d in 2..8usize {
            let edges = shuffle_exchange_edges(d);
            let n = 1usize << d;
            assert!(is_connected(n, &edges), "SE({d}) connectivity");
            // Degree <= 3 (exchange + two shuffle directions, with
            // self-loops at 0…0 and 1…1 removed).
            let deg = degree_map(n, &edges);
            assert!(deg.iter().all(|&x| x <= 3), "SE({d}) degree");
        }
    }

    #[test]
    fn rotations_are_inverse() {
        for d in 1..10usize {
            for w in 0..(1usize << d) {
                assert_eq!(ror(rol(w, d), d), w);
                assert_eq!(rol(ror(w, d), d), w);
            }
        }
    }

    #[test]
    fn normal_trace_prices_at_most_2x() {
        let mut hc = Hypercube::<i64>::new(5);
        let r = hc.alloc_reg(0);
        hc.load(r, &(0..32i64).collect::<Vec<_>>());
        scan_inclusive(&mut hc, r, |a, b| a + b);
        let cost = EmulationCost::price(hc.metrics(), 5);
        assert!(cost.normal);
        assert!(cost.se_steps <= 2 * cost.hypercube_steps);
        assert!(cost.ccc_steps <= 2 * cost.hypercube_steps);
    }

    #[test]
    fn non_normal_trace_detected() {
        let mut hc = Hypercube::<i64>::new(6);
        let r = hc.alloc_reg(0);
        hc.exchange(0, |_, own, remote| own.set(r, remote.get(r)));
        hc.exchange(3, |_, own, remote| own.set(r, remote.get(r)));
        let cost = EmulationCost::price(hc.metrics(), 6);
        assert!(!cost.normal);
        assert!(cost.se_steps > cost.hypercube_steps);
    }

    #[test]
    fn se_scan_matches_hypercube_scan() {
        let vals: Vec<i64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
        let mut hc = Hypercube::<i64>::new(4);
        let hr = hc.alloc_reg(0);
        hc.load(hr, &vals);
        scan_inclusive(&mut hc, hr, |a, b| a + b);

        let mut se = ShuffleExchange::<i64>::new(4);
        let sr = se.alloc_reg(0);
        se.load(sr, &vals);
        se_scan_inclusive(&mut se, sr, |a, b| a + b);

        assert_eq!(se.read_reg(sr), hc.read_reg(hr));
        // 2 SE steps per hypercube exchange (+1 local each side).
        assert_eq!(se.steps, 2 * hc.metrics().comm_steps + 1);
    }

    #[test]
    fn ccc_scan_matches_hypercube_scan() {
        let vals: Vec<i64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
        let mut hc = Hypercube::<i64>::new(4);
        let hr = hc.alloc_reg(0);
        hc.load(hr, &vals);
        scan_inclusive(&mut hc, hr, |a, b| a + b);

        let mut ccc = CubeConnectedCycles::<i64>::new(4);
        let cr = ccc.alloc_reg(0);
        ccc.load(cr, &vals);
        ccc_scan_inclusive(&mut ccc, cr, |a, b| a + b);

        assert_eq!(ccc.read_reg(cr), hc.read_reg(hr));
        // 2 CCC steps per hypercube exchange (+1 local each side).
        assert_eq!(ccc.steps, 2 * hc.metrics().comm_steps + 1);
        assert_eq!(ccc.nodes(), 4 * 16);
    }

    #[test]
    fn ccc_advance_cycles_through_dimensions() {
        let mut ccc = CubeConnectedCycles::<i64>::new(3);
        let _ = ccc.alloc_reg(0);
        assert_eq!(ccc.current_dimension(), 0);
        ccc.advance();
        ccc.advance();
        assert_eq!(ccc.current_dimension(), 2);
        ccc.advance();
        assert_eq!(ccc.current_dimension(), 0); // wrapped
    }

    #[test]
    fn se_rotation_returns_home() {
        let mut se = ShuffleExchange::<i64>::new(3);
        let r = se.alloc_reg(0);
        se.load(r, &[10, 11, 12, 13, 14, 15, 16, 17]);
        for _ in 0..3 {
            se.unshuffle();
        }
        assert_eq!(se.read_reg(r), vec![10, 11, 12, 13, 14, 15, 16, 17]);
    }
}
