//! # monge-hypercube
//!
//! A synchronous hypercube network simulator, plus the cube-connected
//! cycles (CCC) and shuffle-exchange emulation layer — the machine models
//! of the paper's §3.
//!
//! ## Model
//!
//! A [`network::Hypercube`] has `2^d` nodes, each holding a private
//! register file (there is **no global memory** — §3's whole point: "the
//! hypercube lacks a global memory … the manner in which the `v[i]`,
//! `w[j]`, `d[i,j]`, and `e[j,k]` are distributed through the hypercube is
//! then an important consideration"). Two step types exist:
//!
//! * a **local step** — every node updates its own registers;
//! * an **exchange step** across one dimension `k` — every node reads its
//!   dimension-`k` neighbor's pre-step registers.
//!
//! One dimension per step is the *normal algorithm* discipline; algorithms
//! honoring it (ours do, and the simulator records the dimension trace to
//! prove it) run on CCC and shuffle-exchange networks with constant
//! slowdown — the classical emulation theorems behind the paper's
//! "hypercube, cube-connected cycles, and shuffle-exchange" claims. The
//! [`topology`] module builds those graphs, implements a working
//! shuffle-exchange machine, and prices a recorded trace on each network.
//!
//! ## Primitives ([`ops`])
//!
//! Broadcast, reduce, (segmented) parallel prefix, bitonic merge
//! (`O(lg n)`) and sort (`O(lg² n)`), monotone (isotone) bit-fixing
//! routing, and sort-based random-access gathers — the toolkit Lemma 3.1
//! assembles its data movement from.
//!
//! ```
//! use monge_hypercube::Hypercube;
//! use monge_hypercube::ops::scan_inclusive;
//! use monge_hypercube::topology::EmulationCost;
//!
//! // Prefix sums over a 16-node hypercube, priced on the other networks.
//! let mut hc = Hypercube::<i64>::new(4);
//! let r = hc.alloc_reg(0);
//! hc.load(r, &(1..=16).collect::<Vec<_>>());
//! scan_inclusive(&mut hc, r, |a, b| a + b);
//! assert_eq!(hc.peek(15, r), 136);
//! assert_eq!(hc.metrics().comm_steps, 4); // one exchange per dimension
//! let cost = EmulationCost::price(hc.metrics(), 4);
//! assert!(cost.normal && cost.se_steps <= 2 * cost.hypercube_steps);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod ops;
pub mod topology;

pub use network::{Hypercube, NetMetrics, Reg};
