//! The synchronous hypercube machine.

use std::fmt::Debug;

/// A register value. Ordering is needed by the sorting/merging
/// primitives.
pub trait Word: Copy + PartialEq + PartialOrd + Debug + 'static {}
impl<T: Copy + PartialEq + PartialOrd + Debug + 'static> Word for T {}

/// A register slot identifier, valid on every node (SPMD register files).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reg(pub(crate) usize);

/// Cost counters of a simulated hypercube execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Local compute steps.
    pub local_steps: u64,
    /// Communication steps (one dimension each).
    pub comm_steps: u64,
    /// Total messages (every exchange moves `2^d` register values).
    pub messages: u64,
    /// The sequence of dimensions used by exchanges — the *trace* the
    /// CCC / shuffle-exchange emulators price.
    pub dim_trace: Vec<usize>,
}

impl NetMetrics {
    /// Total steps (local + communication).
    pub fn steps(&self) -> u64 {
        self.local_steps + self.comm_steps
    }
}

/// A node's view of its own register file during a step.
pub struct NodeView<'a, C: Word> {
    regs: &'a mut [C],
}

impl<'a, C: Word> NodeView<'a, C> {
    pub(crate) fn new(regs: &'a mut [C]) -> Self {
        Self { regs }
    }

    /// Reads one of this node's registers.
    pub fn get(&self, r: Reg) -> C {
        self.regs[r.0]
    }
    /// Writes one of this node's registers.
    pub fn set(&mut self, r: Reg, v: C) {
        self.regs[r.0] = v;
    }
}

/// A read-only view of the dimension-neighbor's pre-step registers.
pub struct RemoteView<'a, C: Word> {
    regs: &'a [C],
}

impl<'a, C: Word> RemoteView<'a, C> {
    pub(crate) fn new(regs: &'a [C]) -> Self {
        Self { regs }
    }

    /// Reads one of the neighbor's registers (pre-step value).
    pub fn get(&self, r: Reg) -> C {
        self.regs[r.0]
    }
}

/// A `2^dim`-node hypercube with per-node register files.
pub struct Hypercube<C: Word> {
    dim: usize,
    nregs: usize,
    /// Row-major: `regs[node * nregs + slot]`.
    regs: Vec<C>,
    snapshot: Vec<C>,
    metrics: NetMetrics,
}

impl<C: Word> Hypercube<C> {
    /// Creates a hypercube of `2^dim` nodes with empty register files.
    pub fn new(dim: usize) -> Self {
        assert!(dim <= 26, "refusing to simulate more than 2^26 nodes");
        Self {
            dim,
            nregs: 0,
            regs: Vec::new(),
            snapshot: Vec::new(),
            metrics: NetMetrics::default(),
        }
    }

    /// Hypercube dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of nodes `2^d`.
    pub fn nodes(&self) -> usize {
        1 << self.dim
    }

    /// Accumulated cost counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// A checkpoint for [`Hypercube::reg_reset`]: the current register
    /// count.
    pub fn reg_mark(&self) -> usize {
        self.nregs
    }

    /// Frees every register allocated after `mark` (returned by
    /// [`Hypercube::reg_mark`]). `Reg` handles issued since the mark
    /// become invalid; callers use this to reclaim the scratch registers
    /// primitives allocate, keeping the simulated register files small.
    pub fn reg_reset(&mut self, mark: usize) {
        assert!(mark <= self.nregs);
        if mark == self.nregs {
            return;
        }
        let n = self.nodes();
        let old = self.nregs;
        let mut regs = Vec::with_capacity(n * mark);
        for node in 0..n {
            regs.extend_from_slice(&self.regs[node * old..node * old + mark]);
        }
        self.regs = regs;
        self.nregs = mark;
    }

    /// Adds a register slot to every node, initialized to `init`
    /// (untimed; models static storage allocation).
    pub fn alloc_reg(&mut self, init: C) -> Reg {
        let n = self.nodes();
        let old = self.nregs;
        self.nregs += 1;
        // Re-layout row-major register files.
        let mut regs = Vec::with_capacity(n * self.nregs);
        for node in 0..n {
            regs.extend_from_slice(&self.regs[node * old..(node + 1) * old]);
            regs.push(init);
        }
        self.regs = regs;
        Reg(old)
    }

    /// Host-side staging: writes `data[i]` into node `i`'s register
    /// (models the §3 input assumption, e.g. "the `i`-th hypercube
    /// processor's local memory holds `v[i]` and `w[i]`"). Untimed.
    pub fn load(&mut self, r: Reg, data: &[C]) {
        assert!(data.len() <= self.nodes());
        for (node, &v) in data.iter().enumerate() {
            self.regs[node * self.nregs + r.0] = v;
        }
    }

    /// Host-side readout of a register across all nodes (untimed).
    pub fn read_reg(&self, r: Reg) -> Vec<C> {
        (0..self.nodes())
            .map(|node| self.regs[node * self.nregs + r.0])
            .collect()
    }

    /// Host-side peek at one node's register (untimed).
    pub fn peek(&self, node: usize, r: Reg) -> C {
        self.regs[node * self.nregs + r.0]
    }

    /// One local compute step: every node updates its own registers.
    pub fn local(&mut self, mut f: impl FnMut(usize, &mut NodeView<'_, C>)) {
        let nregs = self.nregs;
        for node in 0..self.nodes() {
            let file = &mut self.regs[node * nregs..(node + 1) * nregs];
            let mut view = NodeView { regs: file };
            f(node, &mut view);
        }
        self.metrics.local_steps += 1;
    }

    /// One exchange step across dimension `d`: every node sees its
    /// dimension-`d` neighbor's **pre-step** registers and may update its
    /// own. Counts one communication step and `2^dim` messages.
    pub fn exchange(
        &mut self,
        d: usize,
        mut f: impl FnMut(usize, &mut NodeView<'_, C>, &RemoteView<'_, C>),
    ) {
        assert!(
            d < self.dim,
            "dimension {d} out of range (dim = {})",
            self.dim
        );
        let nregs = self.nregs;
        self.snapshot.clear();
        self.snapshot.extend_from_slice(&self.regs);
        let snapshot = std::mem::take(&mut self.snapshot);
        for node in 0..self.nodes() {
            let partner = node ^ (1 << d);
            let remote = RemoteView {
                regs: &snapshot[partner * nregs..(partner + 1) * nregs],
            };
            let file = &mut self.regs[node * nregs..(node + 1) * nregs];
            let mut view = NodeView { regs: file };
            f(node, &mut view, &remote);
        }
        self.snapshot = snapshot;
        self.metrics.comm_steps += 1;
        self.metrics.messages += self.nodes() as u64;
        self.metrics.dim_trace.push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_registers() {
        let mut hc = Hypercube::<i64>::new(3);
        assert_eq!(hc.nodes(), 8);
        let r = hc.alloc_reg(0);
        let s = hc.alloc_reg(7);
        hc.load(r, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(hc.read_reg(r), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(hc.read_reg(s), vec![7; 8]);
        assert_eq!(hc.peek(3, r), 4);
    }

    #[test]
    fn local_step_updates_every_node() {
        let mut hc = Hypercube::<i64>::new(2);
        let r = hc.alloc_reg(0);
        hc.local(|node, v| v.set(r, node as i64 * 10));
        assert_eq!(hc.read_reg(r), vec![0, 10, 20, 30]);
        assert_eq!(hc.metrics().local_steps, 1);
        assert_eq!(hc.metrics().comm_steps, 0);
    }

    #[test]
    fn exchange_is_synchronous() {
        // Swap register values across dimension 0: both directions see
        // pre-step values.
        let mut hc = Hypercube::<i64>::new(2);
        let r = hc.alloc_reg(0);
        hc.load(r, &[10, 11, 12, 13]);
        hc.exchange(0, |_, own, remote| own.set(r, remote.get(r)));
        assert_eq!(hc.read_reg(r), vec![11, 10, 13, 12]);
        assert_eq!(hc.metrics().comm_steps, 1);
        assert_eq!(hc.metrics().messages, 4);
        assert_eq!(hc.metrics().dim_trace, vec![0]);
    }

    #[test]
    fn exchange_partners_are_correct_in_every_dimension() {
        let mut hc = Hypercube::<i64>::new(3);
        let r = hc.alloc_reg(0);
        let ids: Vec<i64> = (0..8).collect();
        for d in 0..3 {
            hc.load(r, &ids);
            hc.exchange(d, |_, own, remote| own.set(r, remote.get(r)));
            let got = hc.read_reg(r);
            for (node, &v) in got.iter().enumerate() {
                assert_eq!(v, (node ^ (1 << d)) as i64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn exchange_rejects_bad_dimension() {
        let mut hc = Hypercube::<i64>::new(2);
        let r = hc.alloc_reg(0);
        hc.exchange(2, |_, own, remote| own.set(r, remote.get(r)));
    }

    #[test]
    fn dim_zero_cube_is_a_single_node() {
        let mut hc = Hypercube::<i64>::new(0);
        let r = hc.alloc_reg(5);
        hc.local(|_, v| {
            let x = v.get(r);
            v.set(r, x + 1);
        });
        assert_eq!(hc.read_reg(r), vec![6]);
    }
}
