//! Edge-case tests for the slice-scan kernels ([`monge_core::kernel`])
//! and the streaming interval scans: every configuration (scalar
//! blocked scan, AVX2 lanes when compiled in, streaming chunked scan)
//! must return byte-identical `(value, index)` answers, including the
//! tie-break index, on lane-hostile inputs — lengths straddling the
//! vector width, plateaus crossing lane boundaries, `±0.0`, all-`∞`
//! sentinel rows and one-element intervals.
//!
//! Kernel selection is process-global, so every test that pins it goes
//! through [`with_kernel`], which serializes on a mutex and pins via
//! the scoped RAII guard ([`monge_core::kernel::scoped`]) — the
//! previous selection is restored even when an assertion inside the
//! closure panics. Under `--no-default-features` the `Simd` passes
//! silently degrade to scalar-vs-scalar, which keeps the suite
//! meaningful in both CI feature legs.

use monge_core::array2d::{Array2d, Dense, FnArray};
use monge_core::eval;
use monge_core::kernel::{self, Kernel};
use monge_core::tiebreak::Tie;
use monge_core::value::Value;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that touch the process-global kernel selection.
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

fn with_kernel<R>(k: Kernel, f: impl FnOnce() -> R) -> R {
    let guard: MutexGuard<'_, ()> = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let pin = kernel::scoped(k);
    let r = f();
    drop(pin);
    drop(guard);
    r
}

/// Reference argmin with explicit tie semantics, written as the most
/// naive possible loop.
fn brute_argmin<T: Value>(vals: &[T], tie: Tie) -> usize {
    let mut best = 0;
    for (j, &v) in vals.iter().enumerate().skip(1) {
        let take = match tie {
            Tie::Left => v.total_lt(vals[best]),
            Tie::Right => !vals[best].total_lt(v),
        };
        if take {
            best = j;
        }
    }
    best
}

fn brute_argmax<T: Value>(vals: &[T]) -> usize {
    let mut best = 0;
    for (j, &v) in vals.iter().enumerate().skip(1) {
        if vals[best].total_lt(v) {
            best = j;
        }
    }
    best
}

/// Deterministic value stream (splitmix64) so failures reproduce.
fn splitmix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Lengths chosen to straddle the 4-lane vector width, the
/// `MIN_SIMD_LEN` cutoff and the 256-element streaming chunk.
const LENGTHS: &[usize] = &[
    1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 255, 256, 257, 512, 1000,
];

fn check_slice_i64(vals: &[i64]) {
    for tie in [Tie::Left, Tie::Right] {
        let want = brute_argmin(vals, tie);
        let scalar = eval::argmin_slice_tie_scalar(vals, tie);
        assert_eq!(scalar, want, "scalar argmin tie={tie:?} len={}", vals.len());
        let simd = with_kernel(Kernel::Simd, || eval::argmin_slice_tie(vals, tie));
        assert_eq!(simd, want, "simd argmin tie={tie:?} len={}", vals.len());
    }
    let want = brute_argmax(vals);
    assert_eq!(eval::argmax_slice_scalar(vals), want, "scalar argmax");
    let simd = with_kernel(Kernel::Simd, || eval::argmax_slice(vals));
    assert_eq!(simd, want, "simd argmax len={}", vals.len());
}

fn check_slice_f64(vals: &[f64]) {
    for tie in [Tie::Left, Tie::Right] {
        let want = brute_argmin(vals, tie);
        let simd = with_kernel(Kernel::Simd, || eval::argmin_slice_tie(vals, tie));
        assert_eq!(simd, want, "f64 argmin tie={tie:?} len={}", vals.len());
    }
    let want = brute_argmax(vals);
    let simd = with_kernel(Kernel::Simd, || eval::argmax_slice(vals));
    assert_eq!(simd, want, "f64 argmax len={}", vals.len());
}

#[test]
fn random_slices_every_length_i64() {
    let mut seed = 7u64;
    for &n in LENGTHS {
        for _ in 0..8 {
            let vals: Vec<i64> = (0..n)
                .map(|_| (splitmix(&mut seed) % 97) as i64 - 48)
                .collect();
            check_slice_i64(&vals);
        }
    }
}

#[test]
fn random_slices_every_length_f64() {
    let mut seed = 11u64;
    for &n in LENGTHS {
        for _ in 0..8 {
            // Small integer-valued doubles: ties are common, compares
            // are exact.
            let vals: Vec<f64> = (0..n)
                .map(|_| ((splitmix(&mut seed) % 17) as f64) - 8.0)
                .collect();
            check_slice_f64(&vals);
        }
    }
}

#[test]
fn plateaus_crossing_lane_boundaries() {
    // A minimum plateau spanning positions [start, start+len) for
    // starts around every 4-lane boundary and the scalar tail.
    for &n in &[16usize, 17, 19, 20, 23, 64, 67] {
        for start in 0..n {
            for plen in 1..=(n - start).min(9) {
                let mut vals = vec![5i64; n];
                for v in vals.iter_mut().skip(start).take(plen) {
                    *v = -3;
                }
                check_slice_i64(&vals);
                let f: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
                check_slice_f64(&f);
            }
        }
    }
}

#[test]
fn all_equal_plateau_picks_extremes() {
    for &n in LENGTHS {
        let vals = vec![42i64; n];
        assert_eq!(
            with_kernel(Kernel::Simd, || eval::argmin_slice_tie(&vals, Tie::Left)),
            0
        );
        assert_eq!(
            with_kernel(Kernel::Simd, || eval::argmin_slice_tie(&vals, Tie::Right)),
            n - 1
        );
        assert_eq!(with_kernel(Kernel::Simd, || eval::argmax_slice(&vals)), 0);
    }
}

#[test]
fn signed_zero_ties_are_positional() {
    // -0.0 == 0.0 under the NaN-free `total_lt` (`<`), so a mixed-zero
    // plateau must tie-break purely by position, not by sign bit.
    for &n in &[16usize, 23, 64] {
        for flip in 0..n {
            let mut vals = vec![0.0f64; n];
            vals[flip] = -0.0;
            assert_eq!(
                with_kernel(Kernel::Simd, || eval::argmin_slice_tie(&vals, Tie::Left)),
                0,
                "n={n} flip={flip}"
            );
            assert_eq!(
                with_kernel(Kernel::Simd, || eval::argmin_slice_tie(&vals, Tie::Right)),
                n - 1,
                "n={n} flip={flip}"
            );
        }
    }
}

#[test]
fn infinity_sentinel_rows() {
    // An all-infeasible staircase row: every entry is the +∞ sentinel.
    for &n in &[16usize, 17, 100, 256] {
        let vi = vec![<i64 as Value>::INFINITY; n];
        let vf = vec![<f64 as Value>::INFINITY; n];
        assert_eq!(
            with_kernel(Kernel::Simd, || eval::argmin_slice_tie(&vi, Tie::Left)),
            0
        );
        assert_eq!(
            with_kernel(Kernel::Simd, || eval::argmin_slice_tie(&vf, Tie::Right)),
            n - 1
        );
        // A single feasible entry among sentinels, at every position.
        for j in 0..n {
            let mut v = vi.clone();
            v[j] = -1;
            assert_eq!(
                with_kernel(Kernel::Simd, || eval::argmin_slice_tie(&v, Tie::Left)),
                j
            );
            let mut w = vf.clone();
            w[j] = -1.0;
            assert_eq!(
                with_kernel(Kernel::Simd, || eval::argmin_slice_tie(&w, Tie::Right)),
                j
            );
        }
    }
}

#[test]
fn extreme_magnitudes_do_not_wrap() {
    // The i64 kernel compares raw 64-bit lanes; values near the
    // sentinel (`i64::MAX / 4`) and far negative must order correctly.
    let inf = <i64 as Value>::INFINITY;
    let vals = vec![
        inf,
        inf - 1,
        -inf,
        0,
        inf,
        -inf,
        7,
        -inf + 1,
        inf,
        3,
        -5,
        0,
        2,
        9,
        -1,
        4,
    ];
    check_slice_i64(&vals);
}

#[test]
fn streaming_matches_buffered_interval_scans() {
    // A generator-backed array (prefers_streaming) against its dense
    // materialization: all six interval scans must agree on every
    // (row, sub-interval) — including one-element and chunk-straddling
    // intervals.
    let (m, n) = (5usize, 600usize);
    let cost = |i: usize, j: usize| {
        let d = i as i64 * 7 - j as i64;
        d * d % 101 - 17
    };
    let gen = FnArray::new(m, n, cost);
    assert!(gen.prefers_streaming());
    let dense = Dense::tabulate(m, n, cost);
    let mut scratch = Vec::new();
    let intervals: &[(usize, usize)] = &[
        (0, n),
        (0, 1),
        (n - 1, n),
        (3, 4),
        (250, 262),
        (0, 256),
        (255, 513),
        (100, 356),
    ];
    for row in 0..m {
        for &(lo, hi) in intervals {
            let got = eval::interval_argmin(&gen, row, lo, hi, &mut scratch);
            let want = eval::interval_argmin(&dense, row, lo, hi, &mut scratch);
            assert_eq!(got, want, "argmin row={row} [{lo},{hi})");
            let got = eval::interval_argmin_rightmost(&gen, row, lo, hi, &mut scratch);
            let want = eval::interval_argmin_rightmost(&dense, row, lo, hi, &mut scratch);
            assert_eq!(got, want, "argmin_rightmost row={row} [{lo},{hi})");
            let got = eval::interval_argmax(&gen, row, lo, hi, &mut scratch);
            let want = eval::interval_argmax(&dense, row, lo, hi, &mut scratch);
            assert_eq!(got, want, "argmax row={row} [{lo},{hi})");
            let got = eval::interval_argmin_pooled(&gen, row, lo, hi);
            let want = eval::interval_argmin_pooled(&dense, row, lo, hi);
            assert_eq!(got, want, "argmin_pooled row={row} [{lo},{hi})");
            let got = eval::interval_argmin_rightmost_pooled(&gen, row, lo, hi);
            let want = eval::interval_argmin_rightmost_pooled(&dense, row, lo, hi);
            assert_eq!(got, want, "argmin_rightmost_pooled row={row} [{lo},{hi})");
            let got = eval::interval_argmax_pooled(&gen, row, lo, hi);
            let want = eval::interval_argmax_pooled(&dense, row, lo, hi);
            assert_eq!(got, want, "argmax_pooled row={row} [{lo},{hi})");
        }
    }
}

#[test]
fn streaming_plateau_across_chunk_boundary() {
    // A zero-slack plateau spanning the 256-element streaming chunk
    // boundary: leftmost must come from the first chunk, rightmost
    // from the second, and the chunk merge must not double-count.
    let n = 600usize;
    for &(plo, phi) in &[(250usize, 262usize), (255, 257), (0, 600), (511, 513)] {
        let arr = FnArray::new(
            1,
            n,
            move |_i, j| if (plo..phi).contains(&j) { -9i64 } else { 4 },
        );
        assert_eq!(eval::stream_argmin_tie(&arr, 0, 0, n, Tie::Left), (plo, -9));
        assert_eq!(
            eval::stream_argmin_tie(&arr, 0, 0, n, Tie::Right),
            (phi - 1, -9)
        );
    }
}

#[test]
fn kernel_forcing_is_safe_everywhere() {
    // Forcing `Simd` on a host without the feature (or without AVX2)
    // must silently fall back to scalar — same answers, no panic.
    let vals: Vec<i64> = (0..257).map(|j| (j as i64 * 31) % 19 - 9).collect();
    let want = eval::argmin_slice_tie_scalar(&vals, Tie::Left);
    for k in [Kernel::Auto, Kernel::Scalar, Kernel::Simd] {
        assert_eq!(
            with_kernel(k, || eval::argmin_slice_tie(&vals, Tie::Left)),
            want
        );
    }
}
