//! Property-based tests for monge-core: every searching algorithm against
//! its brute-force oracle on randomized certified instances, plus the
//! structural invariants the algorithms rely on.

use monge_core::ansv::{ansv, ansv_brute};
use monge_core::array2d::{Array2d, Negate, ReverseCols, Transpose};
use monge_core::dist::{min_plus, min_plus_brute};
use monge_core::generators::{
    apply_staircase, random_monge_dense, random_staircase_boundary, ImplicitMonge, TransportArray,
};
use monge_core::monge::{
    brute_row_maxima, brute_row_minima, is_inverse_monge, is_monge, is_staircase_monge,
    is_totally_monotone_minima,
};
use monge_core::smawk::{
    row_maxima_inverse_monge, row_maxima_monge, row_minima_inverse_monge, row_minima_monge,
};
use monge_core::staircase::{
    compute_boundary, staircase_row_maxima, staircase_row_maxima_brute, staircase_row_minima,
    staircase_row_minima_brute,
};
use monge_core::tube::{tube_maxima, tube_maxima_brute, tube_minima, tube_minima_brute};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..24, 1usize..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generator_output_is_monge((m, n) in dims(), seed in any::<u64>()) {
        let a = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        prop_assert!(is_monge(&a));
        prop_assert!(is_totally_monotone_minima(&a));
    }

    #[test]
    fn implicit_generator_is_monge((m, n) in dims(), k in 0usize..5, seed in any::<u64>()) {
        let a = ImplicitMonge::random(m, n, k, &mut StdRng::seed_from_u64(seed));
        prop_assert!(is_monge(&a));
    }

    #[test]
    fn transport_family_is_monge((m, n) in dims(), seed in any::<u64>()) {
        let a = TransportArray::random(m, n, &mut StdRng::seed_from_u64(seed));
        prop_assert!(is_monge(&a));
    }

    #[test]
    fn smawk_minima_matches_brute((m, n) in dims(), seed in any::<u64>()) {
        let a = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(row_minima_monge(&a).index, brute_row_minima(&a));
    }

    #[test]
    fn smawk_maxima_matches_brute((m, n) in dims(), seed in any::<u64>()) {
        let a = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(row_maxima_monge(&a).index, brute_row_maxima(&a));
    }

    #[test]
    fn smawk_inverse_variants_match_brute((m, n) in dims(), seed in any::<u64>()) {
        let base = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        let a = Negate(&base).to_dense();
        prop_assert!(is_inverse_monge(&a));
        prop_assert_eq!(row_minima_inverse_monge(&a).index, brute_row_minima(&a));
        prop_assert_eq!(row_maxima_inverse_monge(&a).index, brute_row_maxima(&a));
    }

    #[test]
    fn smawk_on_adapters_stays_consistent((m, n) in dims(), seed in any::<u64>()) {
        // Row minima of the transpose = column minima of the original.
        let a = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        let t = Transpose(&a);
        let col_minima = row_minima_monge(&t);
        for (j, &i) in col_minima.index.iter().enumerate() {
            for ii in 0..m {
                prop_assert!(!a.entry(ii, j).total_lt_helper(a.entry(i, j)));
            }
        }
    }

    #[test]
    fn monge_argmin_positions_are_monotone((m, n) in dims(), seed in any::<u64>()) {
        // The structural property every divide-and-conquer step uses.
        let a = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        let idx = row_minima_monge(&a).index;
        prop_assert!(idx.windows(2).all(|w| w[0] <= w[1]));
        let idx = row_maxima_monge(&a).index;
        prop_assert!(idx.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn reverse_cols_swaps_classes((m, n) in dims(), seed in any::<u64>()) {
        let a = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        prop_assert!(is_inverse_monge(&ReverseCols(&a)));
    }

    #[test]
    fn staircase_minima_matches_brute((m, n) in dims(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_monge_dense(m, n, &mut rng);
        let f = random_staircase_boundary(m, n, &mut rng);
        let a = apply_staircase(&base, &f);
        prop_assert!(is_staircase_monge(&a));
        prop_assert_eq!(compute_boundary(&a), f.clone());
        prop_assert_eq!(
            staircase_row_minima(&a, &f),
            staircase_row_minima_brute(&a, &f)
        );
    }

    #[test]
    fn staircase_maxima_matches_brute((m, n) in dims(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_monge_dense(m, n, &mut rng);
        let f = random_staircase_boundary(m, n, &mut rng);
        let a = apply_staircase(&base, &f);
        prop_assert_eq!(
            staircase_row_maxima(&a, &f),
            staircase_row_maxima_brute(&a, &f)
        );
    }

    #[test]
    fn tube_extrema_match_brute(p in 1usize..12, q in 1usize..12, r in 1usize..12,
                                seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_monge_dense(p, q, &mut rng);
        let e = random_monge_dense(q, r, &mut rng);
        prop_assert_eq!(tube_maxima(&d, &e), tube_maxima_brute(&d, &e));
        prop_assert_eq!(tube_minima(&d, &e), tube_minima_brute(&d, &e));
    }

    #[test]
    fn tube_argmin_is_monotone_in_both_coordinates(
        p in 2usize..10, q in 2usize..10, r in 2usize..10, seed in any::<u64>()) {
        // The monotonicity the parallel tube algorithms exploit: the
        // optimizing middle coordinate is non-decreasing in i and in k.
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_monge_dense(p, q, &mut rng);
        let e = random_monge_dense(q, r, &mut rng);
        let ex = tube_minima(&d, &e);
        for i in 0..p {
            for k in 0..r.saturating_sub(1) {
                prop_assert!(ex.arg(i, k) <= ex.arg(i, k + 1),
                    "argmin not monotone in k at ({i},{k})");
            }
        }
        for k in 0..r {
            for i in 0..p.saturating_sub(1) {
                prop_assert!(ex.arg(i, k) <= ex.arg(i + 1, k),
                    "argmin not monotone in i at ({i},{k})");
            }
        }
    }

    #[test]
    fn min_plus_closure_and_oracle(p in 1usize..10, q in 1usize..10, r in 1usize..10,
                                   seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random_monge_dense(p, q, &mut rng);
        let e = random_monge_dense(q, r, &mut rng);
        let f = min_plus(&d, &e);
        prop_assert_eq!(&f, &min_plus_brute(&d, &e));
        prop_assert!(is_monge(&f));
    }

    #[test]
    fn ansv_matches_brute(v in proptest::collection::vec(0i64..32, 0..200)) {
        prop_assert_eq!(ansv(&v), ansv_brute(&v));
    }

    #[test]
    fn banded_searches_match_brute((m, n) in dims(), seed in any::<u64>()) {
        use monge_core::banded::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_monge_dense(m, n, &mut rng);
        let mut lo: Vec<usize> = (0..m).map(|_| rng.random_range(0..=n)).collect();
        let mut hi: Vec<usize> = (0..m).map(|_| rng.random_range(0..=n)).collect();
        lo.sort_unstable();
        hi.sort_unstable();
        let lo_inc: Vec<usize> = lo.iter().zip(&hi).map(|(&l, &h)| l.min(h)).collect();
        prop_assert_eq!(
            banded_row_minima_monge(&a, &lo_inc, &hi),
            banded_row_minima_brute(&a, &lo_inc, &hi)
        );
        let mut lo_dec = lo_inc.clone();
        let mut hi_dec = hi.clone();
        lo_dec.reverse();
        hi_dec.reverse();
        let lo_dec: Vec<usize> = lo_dec.iter().zip(&hi_dec).map(|(&l, &h)| l.min(h)).collect();
        prop_assert_eq!(
            banded_row_maxima_monge(&a, &lo_dec, &hi_dec),
            banded_row_maxima_brute(&a, &lo_dec, &hi_dec)
        );
    }

    #[test]
    fn online_engines_match_oracle(n in 0usize..120, seed in any::<u64>()) {
        use monge_core::online::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let off: Vec<f64> = (0..=n).map(|_| rng.random_range(0.0..4.0)).collect();
        // Convex gap -> Monge engine.
        let wm = |i: usize, j: usize| {
            let d = (j - i) as f64;
            0.02 * d * d
        };
        let fast = online_monge_minima(n, wm, |j, _| off[j], off[0]);
        let brute = online_minima_brute(n, wm, |j, _| off[j], off[0]);
        for ((a, _), (b, _)) in fast.iter().zip(&brute) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // Concave gap -> inverse engine.
        let wc = |i: usize, j: usize| ((j - i) as f64).sqrt();
        let fast = online_inverse_monge_minima(n, wc, |j, _| off[j], off[0]);
        let brute = online_minima_brute(n, wc, |j, _| off[j], off[0]);
        for ((a, _), (b, _)) in fast.iter().zip(&brute) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn staircase_inverse_wrappers_match_brute((m, n) in dims(), seed in any::<u64>()) {
        use monge_core::generators::random_staircase_inverse_monge_dense;
        use monge_core::staircase::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_staircase_inverse_monge_dense(m, n, &mut rng);
        prop_assert!(monge_core::monge::is_staircase_inverse_monge(&a));
        let f = compute_boundary(&a);
        prop_assert_eq!(
            staircase_inverse_row_maxima(&a, &f),
            staircase_row_maxima_brute(&a, &f)
        );
        prop_assert_eq!(
            staircase_inverse_row_minima(&a, &f),
            staircase_row_minima_brute(&a, &f)
        );
    }
}

/// Helper used above (leftmost-minimum check without importing Value).
trait TotalLtHelper {
    fn total_lt_helper(self, other: Self) -> bool;
}

impl TotalLtHelper for i64 {
    fn total_lt_helper(self, other: Self) -> bool {
        self < other
    }
}
