//! Property tests for the batched evaluation layer: `fill_row` must agree
//! with the entry-by-entry loop for every `Array2d` implementor and
//! adaptor stack, on arbitrary sub-intervals — the contract every batched
//! engine now leans on. Wherever an implementor also offers a zero-copy
//! `row_view`, the borrowed slice must agree too.

use monge_core::array2d::{
    Array2d, FnArray, Negate, Plus, ReverseCols, ReverseRows, SelectCols, SelectRows,
    SubArray, Transpose,
};
use monge_core::eval::{CachedArray, CountingArray};
use monge_core::generators::{random_monge_dense, ImplicitMonge, TransportArray};
use monge_core::tube::plane;
use monge_core::value::Value;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Asserts `fill_row(i, lo..hi, buf)` equals the `entry` loop on every
/// row, for a handful of seeded random intervals.
fn check_fill_row<T: Value + PartialEq, A: Array2d<T>>(a: &A, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..a.rows() {
        for _ in 0..4 {
            let lo = rng.random_range(0..a.cols());
            let hi = rng.random_range(lo..a.cols()) + 1;
            let mut buf = vec![T::ZERO; hi - lo];
            a.fill_row(i, lo..hi, &mut buf);
            for (t, j) in (lo..hi).enumerate() {
                if buf[t] != a.entry(i, j) {
                    return Err(format!(
                        "row {i} cols {lo}..{hi} offset {t}: {:?} != {:?}",
                        buf[t],
                        a.entry(i, j)
                    ));
                }
            }
            if let Some(view) = a.row_view(i, lo..hi) {
                if view != buf.as_slice() {
                    return Err(format!("row_view disagrees at row {i} cols {lo}..{hi}"));
                }
            }
        }
    }
    Ok(())
}

fn dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..16, 1usize..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_and_fnarray((m, n) in dims(), seed in any::<u64>()) {
        let d = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        prop_assert!(check_fill_row(&d, seed).is_ok());
        let f = FnArray::new(m, n, |i: usize, j: usize| (i as i64 + 1) * 7 - (j as i64) * 3);
        prop_assert!(check_fill_row(&f, seed).is_ok());
    }

    #[test]
    fn implicit_generators((m, n) in dims(), k in 0usize..5, seed in any::<u64>()) {
        let a = ImplicitMonge::random(m, n, k, &mut StdRng::seed_from_u64(seed));
        prop_assert!(check_fill_row(&a, seed).is_ok());
        let t = TransportArray::random(m, n, &mut StdRng::seed_from_u64(seed ^ 1));
        prop_assert!(check_fill_row(&t, seed).is_ok());
    }

    #[test]
    fn single_adaptors((m, n) in dims(), seed in any::<u64>()) {
        let d = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        prop_assert!(check_fill_row(&Negate(&d), seed).is_ok());
        prop_assert!(check_fill_row(&ReverseCols(&d), seed).is_ok());
        prop_assert!(check_fill_row(&ReverseRows(&d), seed).is_ok());
        prop_assert!(check_fill_row(&Transpose(&d), seed).is_ok());
        prop_assert!(check_fill_row(&Plus(&d, &d), seed).is_ok());
    }

    #[test]
    fn view_adaptors((m, n) in dims(), seed in any::<u64>()) {
        let d = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let r0 = rng.random_range(0..m);
        let c0 = rng.random_range(0..n);
        let sub = SubArray::new(&d, r0..m, c0..n);
        prop_assert!(check_fill_row(&sub, seed).is_ok());
        // Selections must be strictly increasing: sample random subsets.
        let mut rows: Vec<usize> = (0..m).filter(|_| rng.random_range(0..2u8) == 0).collect();
        if rows.is_empty() {
            rows.push(m - 1);
        }
        prop_assert!(check_fill_row(&SelectRows::new(&d, rows), seed).is_ok());
        let mut cols: Vec<usize> = (0..n).filter(|_| rng.random_range(0..2u8) == 0).collect();
        if cols.is_empty() {
            cols.push(n - 1);
        }
        prop_assert!(check_fill_row(&SelectCols::new(&d, cols), seed).is_ok());
    }

    #[test]
    fn stacked_adaptors((m, n) in dims(), seed in any::<u64>()) {
        // Specialized overrides must survive composition, including
        // through the `&A` forwarding impl.
        let d = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        let stack = Negate(ReverseCols(ReverseRows(&d)));
        prop_assert!(check_fill_row(&stack, seed).is_ok());
        let deeper = ReverseCols(Negate(SubArray::new(&d, 0..m, 0..n)));
        prop_assert!(check_fill_row(&deeper, seed).is_ok());
    }

    #[test]
    fn monge_composite_plane((p, q) in dims(), r in 1usize..16, seed in any::<u64>()) {
        // The tube plane F_i[k][j] = d[i,j] + e[j,k] used by every
        // (min,+)-product engine.
        let d = random_monge_dense(p, q, &mut StdRng::seed_from_u64(seed));
        let e = random_monge_dense(q, r, &mut StdRng::seed_from_u64(seed ^ 3));
        for i in 0..p {
            let pl = plane(&d, &e, i);
            prop_assert!(check_fill_row(&pl, seed).is_ok());
        }
    }

    #[test]
    fn caching_wrappers((m, n) in dims(), seed in any::<u64>()) {
        let d = random_monge_dense(m, n, &mut StdRng::seed_from_u64(seed));
        let counted = CountingArray::new(&d);
        prop_assert!(check_fill_row(&counted, seed).is_ok());
        let cached = CachedArray::new(&d);
        prop_assert!(check_fill_row(&cached, seed).is_ok());
        // A second pass touches the cache only.
        prop_assert!(check_fill_row(&cached, seed ^ 4).is_ok());
        prop_assert_eq!(cached.materialized_rows(), m);
    }
}
