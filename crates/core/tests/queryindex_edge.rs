//! Edge-case suite for the submatrix [`QueryIndex`]: degenerate
//! shapes, all-equal plateaus (tie-break stability across the
//! canonical-node stitch), `+∞` staircase sentinels, and the
//! evaluation-accounting contract — the build reads each source entry
//! exactly once and queries read the source **zero** times.

use monge_core::array2d::{Array2d, Dense};
use monge_core::eval::CountingArray;
use monge_core::guard::SolveError;
use monge_core::problem::Structure;
use monge_core::queryindex::{QueryAnswer, QueryIndex};
use monge_core::value::Value;

fn monge(m: usize, n: usize) -> Dense<i64> {
    Dense::tabulate(m, n, |i, j| {
        let d = i as i64 - j as i64;
        d * d + 3 * j as i64
    })
}

fn brute(
    a: &Dense<i64>,
    r1: usize,
    r2: usize,
    c1: usize,
    c2: usize,
    max: bool,
) -> (i64, usize, usize) {
    let mut best: Option<(i64, usize, usize)> = None;
    for i in r1..r2 {
        for j in c1..c2 {
            let v = a.entry(i, j);
            let wins = match best {
                None => true,
                Some((bv, _, _)) => {
                    if max {
                        bv < v
                    } else {
                        v < bv
                    }
                }
            };
            if wins {
                best = Some((v, i, j));
            }
        }
    }
    best.unwrap()
}

fn check_all_rects(a: &Dense<i64>, structure: Structure) {
    let (m, n) = (a.rows(), a.cols());
    let ix = QueryIndex::build(a, structure).unwrap();
    for r1 in 0..m {
        for r2 in r1 + 1..=m {
            for c1 in 0..n {
                for c2 in c1 + 1..=n {
                    for max in [false, true] {
                        let got = if max {
                            ix.query_max(r1..r2, c1..c2).unwrap()
                        } else {
                            ix.query_min(r1..r2, c1..c2).unwrap()
                        };
                        let want = brute(a, r1, r2, c1, c2, max);
                        assert_eq!(
                            (got.value, got.row, got.col),
                            want,
                            "{structure:?} {}×{n} rect {r1}..{r2}×{c1}..{c2} max={max}",
                            m
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn single_row_arrays_answer_every_rect() {
    check_all_rects(&monge(1, 23), Structure::Monge);
}

#[test]
fn single_column_arrays_answer_every_rect() {
    check_all_rects(&monge(19, 1), Structure::Monge);
}

#[test]
fn one_by_one_array() {
    let a = Dense::from_vec(1, 1, vec![42i64]);
    let ix = QueryIndex::build(&a, Structure::Monge).unwrap();
    for ans in [
        ix.query_min(0..1, 0..1).unwrap(),
        ix.query_max(0..1, 0..1).unwrap(),
    ] {
        assert_eq!(
            ans,
            QueryAnswer {
                value: 42,
                row: 0,
                col: 0
            }
        );
    }
}

/// All-equal plateau: every cell of every rectangle ties, so both
/// objectives must return the rectangle's top-left corner — the
/// canonical-node stitch may not prefer a later node's equal champion.
#[test]
fn all_equal_plateau_is_tie_stable_across_the_stitch() {
    let a = Dense::from_vec(9, 7, vec![5i64; 63]);
    let ix = QueryIndex::build(&a, Structure::Monge).unwrap();
    for r1 in 0..9 {
        for r2 in r1 + 1..=9 {
            for c1 in 0..7 {
                for c2 in c1 + 1..=7 {
                    for max in [false, true] {
                        let got = if max {
                            ix.query_max(r1..r2, c1..c2).unwrap()
                        } else {
                            ix.query_min(r1..r2, c1..c2).unwrap()
                        };
                        assert_eq!(
                            (got.value, got.row, got.col),
                            (5, r1, c1),
                            "rect {r1}..{r2}×{c1}..{c2} max={max}"
                        );
                    }
                }
            }
        }
    }
}

/// `+∞` staircase sentinels masked with a non-decreasing boundary (the
/// only orientation that keeps the full array Monge under absorbing
/// addition): minima skip the sentinels wherever a finite cell is in
/// range, maxima report the leftmost sentinel.
#[test]
fn inf_staircase_sentinels_answer_every_rect() {
    let inf = <i64 as Value>::INFINITY;
    let u = [8i64, 6, 4, 0, -3];
    let v = [3i64, 1, 0, 2, 5, 9];
    let f = [2usize, 3, 3, 5, 6]; // non-decreasing mask boundary
    let a = Dense::tabulate(5, 6, |i, j| if j >= f[i] { inf } else { u[i] + v[j] });
    check_all_rects(&a, Structure::Monge);
    let ix = QueryIndex::build(&a, Structure::Monge).unwrap();
    // A rectangle wholly inside the masked region is all-sentinel: the
    // answer is the canonical top-left `+∞` cell.
    let ans = ix.query_min(0..2, 4..6).unwrap();
    assert_eq!((ans.value, ans.row, ans.col), (inf, 0, 4));
}

/// The evaluation-accounting contract. Build: exactly `m·n` source
/// reads — the store copy is the only pass over the source; every
/// SMAWK sweep reads the store. Queries: **zero** source reads, no
/// matter how many rectangles are answered.
#[test]
fn build_reads_each_entry_once_and_queries_read_nothing() {
    let (m, n) = (37, 143); // straddles the 64-wide block summaries
    let counted = CountingArray::new(monge(m, n));
    let ix = QueryIndex::build(&counted, Structure::Monge).unwrap();
    assert_eq!(
        counted.evaluations(),
        (m * n) as u64,
        "build must evaluate each source entry exactly once"
    );
    for r1 in [0usize, 3, 17] {
        for c1 in [0usize, 5, 80] {
            ix.query_min(r1..m, c1..n).unwrap();
            ix.query_max(r1..r1 + 1, c1..c1 + 1).unwrap();
        }
    }
    assert_eq!(
        counted.evaluations(),
        (m * n) as u64,
        "queries must never touch the source array"
    );
}

#[test]
#[allow(clippy::reversed_empty_ranges)] // the inverted range IS the test input
fn malformed_ranges_are_typed_errors() {
    let ix = QueryIndex::build(&monge(6, 6), Structure::Monge).unwrap();
    for (rows, cols) in [
        (3..3, 0..6),   // empty rows
        (0..6, 2..2),   // empty cols
        (4..2, 0..6),   // inverted rows
        (0..7, 0..6),   // rows out of bounds
        (0..6, 0..400), // cols out of bounds
    ] {
        assert!(
            matches!(
                ix.query_min(rows.clone(), cols.clone()),
                Err(SolveError::InvalidInput { .. })
            ),
            "rows {rows:?} cols {cols:?} must be refused"
        );
    }
}
