//! Thread-local, grow-only scratch-buffer arenas.
//!
//! Every divide & conquer engine in this workspace bottoms out in leaves
//! that need short-lived buffers: the batched interval scans fill a
//! `Vec<T>`, SMAWK's REDUCE keeps a column stack, the staircase engine
//! merges candidate vectors. Allocating those per call puts the global
//! allocator on the hot path of every recursion leaf — and under rayon
//! the allocations happen on whatever worker thread stole the job, so
//! they also contend on the allocator's shared state.
//!
//! The arena here removes that cost without threading `&mut Vec<T>`
//! through every API: each thread owns a pool of recycled buffers keyed
//! by element type, and [`with_scratch`] checks one out for the duration
//! of a closure. Buffers are **grow-only** — a checkout never shrinks or
//! frees capacity — so once the pool has warmed up to a workload's
//! buffer sizes and recursion depth, steady-state checkouts perform
//! **zero heap allocations**. (The `alloc_free` regression test in
//! `monge-parallel` pins this with a counting global allocator.)
//!
//! Nested checkouts of the same element type are fine: each nesting
//! level pops a distinct buffer, so a recursion of depth `d` settles at
//! `d` pooled buffers per thread. A checked-out buffer arrives with
//! **unspecified contents** (valid elements left over from its previous
//! user, arbitrary length): callers that overwrite — like
//! [`crate::Array2d::fill_row`] consumers — use it as-is, and callers
//! that need an empty vector call `clear()` first. Not clearing on
//! checkout is deliberate: the batched scans never read stale entries,
//! and skipping the clear keeps the length warm so
//! [`crate::eval`]'s grow-only `resize` is a no-op in steady state.
//!
//! Pool storage is type-erased through `Box<dyn Any>`; check-in moves
//! the already-heap-allocated box back into the pool, so recycling
//! itself allocates nothing after the first use.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static POOLS: RefCell<HashMap<TypeId, Vec<Box<dyn Any>>>> =
        RefCell::new(HashMap::new());
}

/// Process-global count of arena checkouts (every [`with_scratch`]
/// entry; [`with_scratch2`] counts as two). Relaxed, best-effort under
/// concurrency — the dispatch layer's telemetry snapshots deltas around
/// each solve to report how much scratch traffic a search generated.
static CHECKOUTS: AtomicU64 = AtomicU64::new(0);

/// Current value of the process-global checkout counter.
pub fn checkout_count() -> u64 {
    CHECKOUTS.load(Ordering::Relaxed)
}

/// Runs `f` with a scratch vector checked out of this thread's pool,
/// returning the buffer (and its grown capacity) afterwards. The buffer
/// arrives with unspecified contents — `clear()` it if you need it
/// empty.
///
/// ```
/// use monge_core::scratch::with_scratch;
///
/// let sum: i64 = with_scratch(|buf: &mut Vec<i64>| {
///     buf.clear();
///     buf.extend(0..100);
///     buf.iter().sum()
/// });
/// assert_eq!(sum, 4950);
/// // A second checkout reuses the first buffer's capacity.
/// with_scratch(|buf: &mut Vec<i64>| {
///     assert!(buf.capacity() >= 100);
/// });
/// ```
pub fn with_scratch<T: 'static, R>(f: impl FnOnce(&mut Vec<T>) -> R) -> R {
    CHECKOUTS.fetch_add(1, Ordering::Relaxed);
    let key = TypeId::of::<Vec<T>>();
    let mut boxed: Box<dyn Any> = POOLS
        .with(|p| p.borrow_mut().get_mut(&key).and_then(Vec::pop))
        .unwrap_or_else(|| Box::new(Vec::<T>::new()));
    let buf = boxed
        .downcast_mut::<Vec<T>>()
        .expect("pool entries are keyed by their exact Vec<T> TypeId");
    let r = f(buf);
    POOLS.with(|p| p.borrow_mut().entry(key).or_default().push(boxed));
    r
}

/// Two independent scratch vectors at once (a common leaf shape: one
/// value buffer plus one index buffer). Equivalent to nesting two
/// [`with_scratch`] calls.
pub fn with_scratch2<T: 'static, U: 'static, R>(
    f: impl FnOnce(&mut Vec<T>, &mut Vec<U>) -> R,
) -> R {
    with_scratch(|t| with_scratch(|u| f(t, u)))
}

/// How many buffers of element type `T` this thread's pool currently
/// holds (checked-in only). Exposed for the allocation-regression tests.
pub fn pooled_buffers<T: 'static>() -> usize {
    POOLS.with(|p| p.borrow().get(&TypeId::of::<Vec<T>>()).map_or(0, Vec::len))
}

/// Pre-grows this thread's pool so that at least `buffers` buffers of
/// element type `T`, each with capacity ≥ `capacity`, are checked in.
///
/// The arenas are already grow-only, so steady state allocates nothing;
/// `prewarm` moves the one-time growth off the measured path. A batch
/// session broadcasts this to every worker thread once per group (with
/// the group's widest scan as `capacity`) so the first chunk of each
/// worker hits a warm buffer instead of paying the growth `memcpy`s
/// mid-solve. Idempotent: pools already warm enough are untouched.
pub fn prewarm<T: 'static>(buffers: usize, capacity: usize) {
    POOLS.with(|p| {
        let mut pools = p.borrow_mut();
        let pool = pools.entry(TypeId::of::<Vec<T>>()).or_default();
        // Grow existing cold buffers first, then top up the count.
        let mut warm = 0usize;
        for b in pool.iter_mut() {
            if warm == buffers {
                break;
            }
            let v = b
                .downcast_mut::<Vec<T>>()
                .expect("pool entries are keyed by their exact Vec<T> TypeId");
            if v.capacity() < capacity {
                v.reserve(capacity - v.len());
            }
            warm += 1;
        }
        for _ in warm..buffers {
            pool.push(Box::new(Vec::<T>::with_capacity(capacity)));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_keeps_capacity() {
        with_scratch(|b: &mut Vec<u64>| {
            b.clear();
            b.extend(0..1000)
        });
        with_scratch(|b: &mut Vec<u64>| {
            assert!(b.capacity() >= 1000);
        });
    }

    #[test]
    fn nested_checkouts_get_distinct_buffers() {
        with_scratch(|outer: &mut Vec<i64>| {
            outer.clear();
            outer.push(1);
            with_scratch(|inner: &mut Vec<i64>| {
                inner.clear();
                inner.push(2);
                assert_eq!(outer, &[1]);
                assert_eq!(inner, &[2]);
            });
        });
        assert!(pooled_buffers::<i64>() >= 2);
    }

    #[test]
    fn distinct_types_use_distinct_pools() {
        with_scratch2(|a: &mut Vec<i64>, b: &mut Vec<usize>| {
            a.clear();
            b.clear();
            a.push(-1);
            b.push(1);
        });
        assert!(pooled_buffers::<i64>() >= 1);
        assert!(pooled_buffers::<usize>() >= 1);
    }

    #[test]
    fn prewarm_grows_the_pool_and_is_idempotent() {
        prewarm::<u32>(3, 512);
        assert!(pooled_buffers::<u32>() >= 3);
        with_scratch(|b: &mut Vec<u32>| {
            assert!(b.capacity() >= 512, "checkout hits a prewarmed buffer");
        });
        let before = pooled_buffers::<u32>();
        prewarm::<u32>(3, 512);
        assert_eq!(pooled_buffers::<u32>(), before, "idempotent when warm");
    }

    #[test]
    fn pool_depth_is_bounded_by_nesting_not_call_count() {
        fn depth3() {
            with_scratch(|_: &mut Vec<u8>| {
                with_scratch(|_: &mut Vec<u8>| {
                    with_scratch(|_: &mut Vec<u8>| {});
                });
            });
        }
        depth3();
        let after_first = pooled_buffers::<u8>();
        for _ in 0..100 {
            depth3();
        }
        assert_eq!(pooled_buffers::<u8>(), after_first);
    }
}
