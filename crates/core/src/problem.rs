//! The solver-dispatch intermediate representation: one [`Problem`]
//! value describing *what* to search, one [`Solution`] shape for every
//! engine's answer, and one [`Telemetry`] record making each solve
//! observable.
//!
//! The paper states a small family of searching problems — row minima /
//! maxima of (inverse-)Monge arrays, row minima of staircase-Monge
//! arrays, tube minima / maxima of Monge-composite arrays — and then
//! solves each on several machines (sequential SMAWK, CRCW/CREW PRAM,
//! hypercube-like networks). This module is the code-level mirror of
//! that separation: a `Problem` names the *search*, the `Backend` trait
//! in `monge-parallel` names the *machine*, and the dispatcher in
//! between picks an engine by capability and size. Applications build
//! `Problem` values and never name concrete engine functions.
//!
//! The §1.2 dualities ("reversing the order of an array's columns
//! and/or negating its entries allows us to move back and forth"
//! between minima and maxima) live here too, in [`lower_rows`] — one
//! implementation that every backend shares, instead of each engine
//! hand-rolling its own reverse/negate/mirror plumbing.

use crate::array2d::{Array2d, Negate, ReverseCols};
use crate::smawk::RowExtrema;
use crate::tiebreak::Tie;
use crate::tube::TubeExtrema;
use crate::value::Value;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// What is being optimized along each row (or tube).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Per-row (per-tube) minima.
    Minimize,
    /// Per-row (per-tube) maxima.
    Maximize,
}

/// The structural promise the caller makes about the array — the
/// license a backend relies on to search fewer than `m·n` entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Structure {
    /// `a[i,j] + a[k,l] ≤ a[i,l] + a[k,j]` for `i<k`, `j<l` (eq. 1.1).
    Monge,
    /// The reversed inequality (eq. 1.2).
    InverseMonge,
    /// No structure at all: backends must scan whole rows. This is the
    /// honest route for applications whose arrays are *not* totally
    /// monotone (the empty-rectangle crossing windows, the masked
    /// polygon-neighbor arrays) but still want dispatched, instrumented,
    /// batched row scans.
    Plain,
}

/// Discriminant of a [`Problem`] — what the capability flags and the
/// conformance suite enumerate over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProblemKind {
    /// Per-row minima of a two-dimensional array.
    RowMinima,
    /// Per-row maxima of a two-dimensional array.
    RowMaxima,
    /// Per-row minima of a staircase array's finite prefixes.
    StaircaseRowMinima,
    /// Per-row minima restricted to per-row candidate bands.
    BandedRowMinima,
    /// Per-row maxima restricted to per-row candidate bands.
    BandedRowMaxima,
    /// Tube minima of the Monge-composite `c[i,j,k] = d[i,j] + e[j,k]`.
    TubeMinima,
    /// Tube maxima of the same composite.
    TubeMaxima,
}

impl ProblemKind {
    /// Every problem kind, in a fixed order (used by the telemetry
    /// audit and the conformance suite to enumerate coverage).
    pub const ALL: [ProblemKind; 7] = [
        ProblemKind::RowMinima,
        ProblemKind::RowMaxima,
        ProblemKind::StaircaseRowMinima,
        ProblemKind::BandedRowMinima,
        ProblemKind::BandedRowMaxima,
        ProblemKind::TubeMinima,
        ProblemKind::TubeMaxima,
    ];
}

/// A minimal read-only view of a three-dimensional array, provided so
/// the tube problems have an explicit 3-D surface to point at.
/// [`crate::tube::MongeComposite`] implements it; the engines
/// themselves always work from the two Monge *factors* (the composite's
/// planes are Monge — Lemma behind Thm 3.4 — and storing `p·q·r`
/// entries would defeat the point).
pub trait Array3d<T: Value> {
    /// First-coordinate extent `p`.
    fn dim_p(&self) -> usize;
    /// Middle-coordinate extent `q` (the one searched over).
    fn dim_q(&self) -> usize;
    /// Third-coordinate extent `r`.
    fn dim_r(&self) -> usize;
    /// The entry `c[i, j, k]`.
    fn entry3(&self, i: usize, j: usize, k: usize) -> T;
}

/// The rank structure `a[i,j] = g(v[i], w[j])` some backends require.
///
/// The hypercube engines do not read arbitrary arrays: the paper's §3
/// algorithms distribute the *generator vectors* `v` and `w` across the
/// network and evaluate `g` locally at each node. A problem carrying
/// this structure (see [`Problem::with_rank`]) is eligible for those
/// backends; one without it is not — that asymmetry is exactly what the
/// dispatcher's capability flags encode.
#[derive(Clone, Copy)]
pub struct RankStructure<'a, T> {
    /// Row generator vector (`v[i]` for row `i`).
    pub v: &'a [T],
    /// Column generator vector (`w[j]` for column `j`).
    pub w: &'a [T],
    /// The combining function `g`.
    pub g: &'a (dyn Fn(T, T) -> T + Sync),
}

impl<T> std::fmt::Debug for RankStructure<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankStructure")
            .field("v_len", &self.v.len())
            .field("w_len", &self.w.len())
            .finish()
    }
}

/// A searching problem, described by reference: the IR every backend
/// consumes and every application produces.
///
/// Arrays are borrowed as `&dyn Array2d<T>` — anything lazy or dense
/// coerces in place, matching the paper's "entries computed in `O(1)`
/// on demand" model, and the §1.2 reductions wrap the trait object in
/// stack-allocated adapters without copying.
#[derive(Clone, Copy)]
pub enum Problem<'a, T: Value> {
    /// Row minima or maxima of a (possibly structured) 2-D array.
    Rows {
        /// The array to search.
        array: &'a dyn Array2d<T>,
        /// The structural promise (drives which engines may skip entries).
        structure: Structure,
        /// Minimize or maximize.
        objective: Objective,
        /// Tie-break rule among equal optima (default [`Tie::Left`]).
        tie: Tie,
        /// Optional `g(v[i], w[j])` generator form (hypercube eligibility).
        rank: Option<RankStructure<'a, T>>,
    },
    /// Row minima over the finite prefixes of a staircase array.
    ///
    /// `boundary[i]` is the paper's `f_i`: row `i` is finite exactly on
    /// columns `0..boundary[i]`, and the boundary is non-increasing.
    /// Entries at or beyond the boundary are never read (they may be
    /// `∞` or garbage). `structure` describes the finite region:
    /// [`Structure::Monge`] is the paper's staircase-Monge class;
    /// [`Structure::InverseMonge`] is the staircase-inverse-Monge
    /// variant only the sequential engine handles.
    Staircase {
        /// The array to search (finite on each row's prefix).
        array: &'a dyn Array2d<T>,
        /// Per-row finite-prefix lengths `f_i` (non-increasing).
        boundary: &'a [usize],
        /// Monge or inverse-Monge promise on the finite region.
        structure: Structure,
        /// Optional generator form (hypercube eligibility).
        rank: Option<RankStructure<'a, T>>,
    },
    /// Row extrema restricted to per-row candidate bands
    /// `lo[i] ≤ j < hi[i]` (empty bands allowed → `None` for that row).
    ///
    /// The monotonicity the divide & conquer needs: for `Minimize` the
    /// bands must be non-decreasing in both endpoints; for `Maximize`
    /// non-increasing (the two-corner-rectangle shape).
    Banded {
        /// The array to search (entries outside the bands are never read).
        array: &'a dyn Array2d<T>,
        /// Per-row band starts.
        lo: &'a [usize],
        /// Per-row band ends (exclusive).
        hi: &'a [usize],
        /// Minimize or maximize.
        objective: Objective,
    },
    /// Tube extrema of the Monge-composite `c[i,j,k] = d[i,j] + e[j,k]`:
    /// for every `(i, k)`, the optimal middle coordinate `j`.
    Tube {
        /// Left Monge factor `d` (`p × q`).
        d: &'a dyn Array2d<T>,
        /// Right Monge factor `e` (`q × r`).
        e: &'a dyn Array2d<T>,
        /// Minimize or maximize.
        objective: Objective,
    },
}

impl<T: Value> std::fmt::Debug for Problem<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (m, n) = self.search_shape();
        write!(f, "Problem::{:?}({m}×{n})", self.kind())
    }
}

impl<'a, T: Value> Problem<'a, T> {
    /// Leftmost row minima of a Monge array.
    pub fn row_minima(array: &'a dyn Array2d<T>) -> Self {
        Self::rows(array, Structure::Monge, Objective::Minimize)
    }

    /// Leftmost row maxima of a Monge array (Table 1.1's problem).
    pub fn row_maxima(array: &'a dyn Array2d<T>) -> Self {
        Self::rows(array, Structure::Monge, Objective::Maximize)
    }

    /// Leftmost row minima of an inverse-Monge array.
    pub fn row_minima_inverse_monge(array: &'a dyn Array2d<T>) -> Self {
        Self::rows(array, Structure::InverseMonge, Objective::Minimize)
    }

    /// Leftmost row maxima of an inverse-Monge array (Figure 1.1's
    /// farthest-neighbor shape).
    pub fn row_maxima_inverse_monge(array: &'a dyn Array2d<T>) -> Self {
        Self::rows(array, Structure::InverseMonge, Objective::Maximize)
    }

    /// Leftmost row minima of an arbitrary (unstructured) array.
    pub fn plain_row_minima(array: &'a dyn Array2d<T>) -> Self {
        Self::rows(array, Structure::Plain, Objective::Minimize)
    }

    /// Leftmost row maxima of an arbitrary (unstructured) array.
    pub fn plain_row_maxima(array: &'a dyn Array2d<T>) -> Self {
        Self::rows(array, Structure::Plain, Objective::Maximize)
    }

    /// General rows constructor.
    pub fn rows(array: &'a dyn Array2d<T>, structure: Structure, objective: Objective) -> Self {
        Problem::Rows {
            array,
            structure,
            objective,
            tie: Tie::Left,
            rank: None,
        }
    }

    /// Leftmost row minima of a staircase-Monge array with the given
    /// non-increasing boundary.
    pub fn staircase_row_minima(array: &'a dyn Array2d<T>, boundary: &'a [usize]) -> Self {
        Problem::Staircase {
            array,
            boundary,
            structure: Structure::Monge,
            rank: None,
        }
    }

    /// Leftmost row minima of a staircase-*inverse*-Monge array.
    pub fn staircase_inverse_row_minima(array: &'a dyn Array2d<T>, boundary: &'a [usize]) -> Self {
        Problem::Staircase {
            array,
            boundary,
            structure: Structure::InverseMonge,
            rank: None,
        }
    }

    /// Banded leftmost row minima (bands non-decreasing).
    pub fn banded_row_minima(array: &'a dyn Array2d<T>, lo: &'a [usize], hi: &'a [usize]) -> Self {
        Problem::Banded {
            array,
            lo,
            hi,
            objective: Objective::Minimize,
        }
    }

    /// Banded leftmost row maxima (bands non-increasing).
    pub fn banded_row_maxima(array: &'a dyn Array2d<T>, lo: &'a [usize], hi: &'a [usize]) -> Self {
        Problem::Banded {
            array,
            lo,
            hi,
            objective: Objective::Maximize,
        }
    }

    /// Tube minima of `c[i,j,k] = d[i,j] + e[j,k]`.
    pub fn tube_minima(d: &'a dyn Array2d<T>, e: &'a dyn Array2d<T>) -> Self {
        Problem::Tube {
            d,
            e,
            objective: Objective::Minimize,
        }
    }

    /// Tube maxima of `c[i,j,k] = d[i,j] + e[j,k]` (Table 1.3).
    pub fn tube_maxima(d: &'a dyn Array2d<T>, e: &'a dyn Array2d<T>) -> Self {
        Problem::Tube {
            d,
            e,
            objective: Objective::Maximize,
        }
    }

    /// Attaches the `g(v[i], w[j])` generator form, making the problem
    /// eligible for rank-structured (hypercube) backends. No-op for
    /// banded and tube problems.
    #[must_use]
    pub fn with_rank(mut self, v: &'a [T], w: &'a [T], g: &'a (dyn Fn(T, T) -> T + Sync)) -> Self {
        let rs = RankStructure { v, w, g };
        match &mut self {
            Problem::Rows { rank, .. } | Problem::Staircase { rank, .. } => *rank = Some(rs),
            Problem::Banded { .. } | Problem::Tube { .. } => {}
        }
        self
    }

    /// Overrides the tie-break rule (rows problems only; the staircase,
    /// banded and tube kinds are defined as leftmost / smallest-middle).
    #[must_use]
    pub fn with_tie(mut self, t: Tie) -> Self {
        if let Problem::Rows { tie, .. } = &mut self {
            *tie = t;
        }
        self
    }

    /// This problem's kind (capability-matrix row).
    pub fn kind(&self) -> ProblemKind {
        match self {
            Problem::Rows {
                objective: Objective::Minimize,
                ..
            } => ProblemKind::RowMinima,
            Problem::Rows { .. } => ProblemKind::RowMaxima,
            Problem::Staircase { .. } => ProblemKind::StaircaseRowMinima,
            Problem::Banded {
                objective: Objective::Minimize,
                ..
            } => ProblemKind::BandedRowMinima,
            Problem::Banded { .. } => ProblemKind::BandedRowMaxima,
            Problem::Tube {
                objective: Objective::Minimize,
                ..
            } => ProblemKind::TubeMinima,
            Problem::Tube { .. } => ProblemKind::TubeMaxima,
        }
    }

    /// Does the problem carry the `g(v[i], w[j])` generator form?
    pub fn has_rank(&self) -> bool {
        matches!(
            self,
            Problem::Rows { rank: Some(_), .. } | Problem::Staircase { rank: Some(_), .. }
        )
    }

    /// The array whose entry cost dominates the solve — what the
    /// calibration probe should time.
    pub fn primary_array(&self) -> &'a dyn Array2d<T> {
        match self {
            Problem::Rows { array, .. }
            | Problem::Staircase { array, .. }
            | Problem::Banded { array, .. } => *array,
            Problem::Tube { d, .. } => *d,
        }
    }

    /// `(rows, cols)` of the search space: the array shape, or
    /// `(p·r, q)` for tubes (one row per output cell, searched over the
    /// middle coordinate) — the quantities the selection policy
    /// compares against the fork cutoffs.
    pub fn search_shape(&self) -> (usize, usize) {
        match self {
            Problem::Rows { array, .. }
            | Problem::Staircase { array, .. }
            | Problem::Banded { array, .. } => (array.rows(), array.cols()),
            Problem::Tube { d, e, .. } => (d.rows() * e.cols(), d.cols()),
        }
    }
}

/// Lowers a structured rows problem to **leftmost-convention row minima
/// of a totally monotone array** via the §1.2 reductions — the single
/// implementation of the Min/Max duality that every backend shares.
///
/// `run` receives the lowered array and the tie rule to search it
/// under; the second return value is `Some(n)` when the reduction
/// reversed the columns, in which case the caller must map every
/// returned column `j` back to `n - 1 - j` (see [`mirror_indices`]).
/// Values must always be re-gathered from the *original* array (the
/// lowered one may be negated):
///
/// | structure, objective | lowered array | tie | mirrored |
/// |---|---|---|---|
/// | Monge, Minimize | `a` | as given | no |
/// | inverse-Monge, Maximize | `-a` | as given | no |
/// | Monge, Maximize | `-reverse_cols(a)` | flipped | yes |
/// | inverse-Monge, Minimize | `reverse_cols(a)` | flipped | yes |
///
/// # Panics
/// If `structure` is [`Structure::Plain`] — unstructured rows have no
/// total-monotonicity license to lower to.
pub fn lower_rows<T: Value, R>(
    array: &dyn Array2d<T>,
    structure: Structure,
    objective: Objective,
    tie: Tie,
    run: impl FnOnce(&dyn Array2d<T>, Tie) -> R,
) -> (R, Option<usize>) {
    let n = array.cols();
    match (structure, objective) {
        (Structure::Monge, Objective::Minimize) => (run(array, tie), None),
        (Structure::InverseMonge, Objective::Maximize) => (run(&Negate(array), tie), None),
        (Structure::Monge, Objective::Maximize) => {
            (run(&Negate(ReverseCols(array)), tie.flip()), Some(n))
        }
        (Structure::InverseMonge, Objective::Minimize) => {
            (run(&ReverseCols(array), tie.flip()), Some(n))
        }
        (Structure::Plain, _) => {
            panic!("lower_rows requires Monge or inverse-Monge structure")
        }
    }
}

/// Maps indices found on a column-reversed array back to original
/// columns (`j → n - 1 - j`).
pub fn mirror_indices(index: &mut [usize], n: usize) {
    for j in index.iter_mut() {
        *j = n - 1 - *j;
    }
}

/// Every backend's answer, in one shape per problem family.
#[derive(Clone, Debug, PartialEq)]
pub enum Solution<T> {
    /// Per-row optimum column and value (rows and staircase problems).
    Rows(RowExtrema<T>),
    /// Banded problems: `None` where a row's band is empty.
    Banded {
        /// Per-row optimum column, `None` for empty bands.
        index: Vec<Option<usize>>,
        /// Per-row optimum value, `None` for empty bands.
        value: Vec<Option<T>>,
    },
    /// Tube problems: optimal middle coordinate per `(i, k)`.
    Tube(TubeExtrema<T>),
}

impl<T: Value> Solution<T> {
    /// The rows answer; panics for banded/tube solutions.
    pub fn rows(&self) -> &RowExtrema<T> {
        match self {
            Solution::Rows(r) => r,
            other => panic!("expected a rows solution, got {}", other.variant_name()),
        }
    }

    /// Consumes into the rows answer; panics for banded/tube solutions.
    pub fn into_rows(self) -> RowExtrema<T> {
        match self {
            Solution::Rows(r) => r,
            other => panic!("expected a rows solution, got {}", other.variant_name()),
        }
    }

    /// The banded answer; panics otherwise.
    pub fn banded(&self) -> (&[Option<usize>], &[Option<T>]) {
        match self {
            Solution::Banded { index, value } => (index, value),
            other => panic!("expected a banded solution, got {}", other.variant_name()),
        }
    }

    /// The tube answer; panics otherwise.
    pub fn tube(&self) -> &TubeExtrema<T> {
        match self {
            Solution::Tube(t) => t,
            other => panic!("expected a tube solution, got {}", other.variant_name()),
        }
    }

    /// Consumes into the tube answer; panics otherwise.
    pub fn into_tube(self) -> TubeExtrema<T> {
        match self {
            Solution::Tube(t) => t,
            other => panic!("expected a tube solution, got {}", other.variant_name()),
        }
    }

    fn variant_name(&self) -> &'static str {
        match self {
            Solution::Rows(_) => "Rows",
            Solution::Banded { .. } => "Banded",
            Solution::Tube(_) => "Tube",
        }
    }
}

/// One timed section of a dispatched solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Section label (`"prepare"`, `"search"`, `"finalize"`, …).
    pub name: &'static str,
    /// Wall-clock nanoseconds spent in the section.
    pub nanos: u128,
}

/// Simulated-machine cost counters, populated only by the simulator
/// backends (all zero for host-execution backends). Typed fields rather
/// than a string map so the bench tables can keep printing exact
/// step/work/message numbers straight out of a dispatched solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineCounters {
    /// PRAM: synchronous parallel steps.
    pub steps: u64,
    /// PRAM: total operations across processors.
    pub work: u64,
    /// PRAM: peak processors active in one step.
    pub processors: u64,
    /// PRAM: total shared-memory reads.
    pub reads: u64,
    /// PRAM: total shared-memory writes (post conflict resolution).
    pub writes: u64,
    /// PRAM: steps in which at least two processors read one cell
    /// (always 0 on a legal EREW run).
    pub concurrent_read_events: u64,
    /// PRAM: steps in which at least two processors wrote one cell
    /// (always 0 on a legal CREW run — the counter the conformance
    /// auditor checks to certify a claimed CREW bound really ran
    /// without concurrent writes).
    pub concurrent_write_events: u64,
    /// PRAM: model violations recorded by a lenient machine (strict
    /// machines panic instead; always 0 there).
    pub violations: u64,
    /// Hypercube: compute (non-exchange) steps.
    pub local_steps: u64,
    /// Hypercube: single-dimension exchange steps.
    pub comm_steps: u64,
    /// Hypercube: point-to-point messages moved.
    pub messages: u64,
    /// Emulated cost of the dimension trace on cube-connected cycles.
    pub ccc_steps: u64,
    /// Emulated cost of the dimension trace on a shuffle-exchange.
    pub se_steps: u64,
}

/// Where a dispatched solve's backend/tuning decision came from — the
/// observable end of the precedence chain *per-call > `MONGE_*` env >
/// autotune cache > calibrate probe > defaults*. Stamped into
/// [`Telemetry::provenance`] by the dispatch layer so benches and tests
/// can assert which selection path actually ran (e.g. the CI autotune
/// leg requires a warm second run to report only [`Cached`]).
///
/// [`Cached`]: TuningProvenance::Cached
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TuningProvenance {
    /// A persisted (or already-measured) autotune winner was looked up.
    Cached,
    /// The autotuner measured the candidate set on this very call and
    /// the winner was applied (and cached for the next caller).
    Measured,
    /// The one-shot calibration probe sized the grains (autotune off,
    /// in `readonly` mode with a cold key, or waiting out another
    /// thread's in-flight measurement).
    Probed,
    /// No measurement informed the decision: built-in defaults, a
    /// `MONGE_*` environment overlay, or an explicit per-call tuning.
    Default,
}

impl TuningProvenance {
    /// The lowercase label (`cached` / `measured` / `probed` /
    /// `default`) the bench JSON rows carry.
    pub fn as_str(self) -> &'static str {
        match self {
            TuningProvenance::Cached => "cached",
            TuningProvenance::Measured => "measured",
            TuningProvenance::Probed => "probed",
            TuningProvenance::Default => "default",
        }
    }
}

/// What one dispatched solve did: evaluation/comparison/task/arena
/// counts, per-phase wall time, and (for simulator backends) the
/// machine-model cost. Filled cooperatively — the dispatcher stamps the
/// identity fields, wall clock and process-global counter deltas; the
/// backend records phases, entry evaluations and machine counters.
///
/// The evaluation/comparison/task/checkout counters are process-global
/// and relaxed-atomic: under concurrent solves the deltas attribute
/// other threads' activity to whichever solve observes it. They are
/// exact when solves are not racing each other, which is how the tests
/// and benches run.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Name of the backend that ran the solve.
    pub backend: &'static str,
    /// The problem kind solved.
    pub kind: Option<ProblemKind>,
    /// Array entries evaluated (computed or copied) during the solve.
    pub evaluations: u64,
    /// Value comparisons performed by the eval layer's scans and
    /// SMAWK's REDUCE/INTERPOLATE steps.
    pub comparisons: u64,
    /// Rayon tasks forked (0 for sequential and simulator backends).
    pub tasks: u64,
    /// Scratch-arena buffer checkouts.
    pub arena_checkouts: u64,
    /// Timed sections, in execution order.
    pub phases: Vec<Phase>,
    /// Total wall-clock nanoseconds, as measured by the dispatcher
    /// around the whole backend call.
    pub total_nanos: u128,
    /// Simulated machine cost (simulator backends only).
    pub machine: MachineCounters,
    /// Guarded-solve outcome: validation cost, quarantine state and the
    /// fallback path. `None` for unguarded solves; populated only by
    /// `Dispatcher::solve_guarded` in `monge-parallel`.
    pub guard: Option<crate::guard::GuardOutcome>,
    /// Where the backend/tuning decision came from ([`TuningProvenance`]).
    /// `None` when the solve ran below the dispatch entry points that
    /// resolve tuning (e.g. a backend invoked directly).
    pub provenance: Option<TuningProvenance>,
    /// Transient-fault retries performed by the resilient serving layer
    /// for this solve (0 for unguarded or retry-free solves).
    pub retries: u64,
    /// Fallback-chain links skipped because their circuit breaker was
    /// open ([`crate::guard::BreakerState::Open`]).
    pub breaker_skips: u64,
    /// Per-backend health at the end of the solve, stamped by the
    /// resilient serving layer (`monge-parallel::health`). `None` for
    /// solves that ran below it.
    pub health_snapshot: Option<Vec<crate::guard::BackendHealthSnapshot>>,
    /// Submatrix query indexes built ([`crate::queryindex::QueryIndex`]),
    /// stamped by the dispatcher's index-build path and the service
    /// layer's per-tenant handle cache.
    pub index_builds: u64,
    /// Index-handle cache hits: requests served by reusing an already
    /// built [`crate::queryindex::QueryIndex`] instead of rebuilding.
    pub index_hits: u64,
    /// Approximate heap bytes of the indexes built (store, summaries,
    /// envelopes and sparse tables).
    pub index_bytes: u64,
    /// Breakpoint segments stored across the built indexes' envelopes.
    pub index_breakpoints: u64,
    /// Rectangle queries answered by indexes and folded into this
    /// telemetry (service rollups drain the per-index counters).
    pub index_queries: u64,
    /// Predecessor-search probe steps spent answering those queries.
    pub index_probes: u64,
}

/// The [`Telemetry::backend`] label of a merged rollup whose inputs ran
/// on different backends.
pub const MERGED_BACKEND: &str = "(merged)";

impl Telemetry {
    /// Appends a timed phase.
    pub fn record_phase(&mut self, name: &'static str, nanos: u128) {
        self.phases.push(Phase { name, nanos });
    }

    /// Sum of the recorded phase durations (≤ [`Telemetry::total_nanos`],
    /// up to the dispatcher's own bookkeeping overhead).
    pub fn phase_nanos(&self) -> u128 {
        self.phases.iter().map(|p| p.nanos).sum()
    }

    /// Accumulates `other` into `self` — the rollup primitive behind
    /// per-tenant and per-batch telemetry aggregation.
    ///
    /// Additive counters (evaluations, comparisons, tasks, checkouts,
    /// wall clocks, and the simulators' step/work/read/write/message
    /// tallies) are **saturating-summed**; machine counters that are
    /// high-water marks (peak [`MachineCounters::processors`]) take the
    /// **max**. Per-phase nanos are summed by phase name, preserving
    /// first-seen order. Identity fields survive only when they agree:
    /// differing backends collapse to [`MERGED_BACKEND`], differing
    /// kinds to `None`. Guard outcomes are not merged — a rollup has no
    /// single fallback path — so `guard` keeps `self`'s value; the
    /// resilience counters (`retries`, `breaker_skips`) are additive,
    /// while `health_snapshot` — a point-in-time view, meaningless to
    /// sum — takes the *latest* part's snapshot (`other`'s when it has
    /// one), matching how a service rollup should report current
    /// health.
    pub fn accumulate(&mut self, other: &Telemetry) {
        // A fresh rollup (default-constructed, backend still "") adopts
        // the first part's identity outright; afterwards identity fields
        // survive only while every part agrees.
        let fresh = self.backend.is_empty();
        if fresh {
            self.backend = other.backend;
            self.kind = other.kind;
            self.provenance = other.provenance;
        } else {
            if self.backend != other.backend {
                self.backend = MERGED_BACKEND;
            }
            if self.kind != other.kind {
                self.kind = None;
            }
            if self.provenance != other.provenance {
                self.provenance = None;
            }
        }
        self.evaluations = self.evaluations.saturating_add(other.evaluations);
        self.comparisons = self.comparisons.saturating_add(other.comparisons);
        self.retries = self.retries.saturating_add(other.retries);
        self.breaker_skips = self.breaker_skips.saturating_add(other.breaker_skips);
        if other.health_snapshot.is_some() {
            self.health_snapshot.clone_from(&other.health_snapshot);
        }
        self.tasks = self.tasks.saturating_add(other.tasks);
        self.arena_checkouts = self.arena_checkouts.saturating_add(other.arena_checkouts);
        self.index_builds = self.index_builds.saturating_add(other.index_builds);
        self.index_hits = self.index_hits.saturating_add(other.index_hits);
        self.index_bytes = self.index_bytes.saturating_add(other.index_bytes);
        self.index_breakpoints = self
            .index_breakpoints
            .saturating_add(other.index_breakpoints);
        self.index_queries = self.index_queries.saturating_add(other.index_queries);
        self.index_probes = self.index_probes.saturating_add(other.index_probes);
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
        for p in &other.phases {
            match self.phases.iter_mut().find(|q| q.name == p.name) {
                Some(q) => q.nanos = q.nanos.saturating_add(p.nanos),
                None => self.phases.push(p.clone()),
            }
        }
        let m = &mut self.machine;
        let o = &other.machine;
        m.steps = m.steps.saturating_add(o.steps);
        m.work = m.work.saturating_add(o.work);
        m.processors = m.processors.max(o.processors);
        m.reads = m.reads.saturating_add(o.reads);
        m.writes = m.writes.saturating_add(o.writes);
        m.concurrent_read_events = m
            .concurrent_read_events
            .saturating_add(o.concurrent_read_events);
        m.concurrent_write_events = m
            .concurrent_write_events
            .saturating_add(o.concurrent_write_events);
        m.violations = m.violations.saturating_add(o.violations);
        m.local_steps = m.local_steps.saturating_add(o.local_steps);
        m.comm_steps = m.comm_steps.saturating_add(o.comm_steps);
        m.messages = m.messages.saturating_add(o.messages);
        m.ccc_steps = m.ccc_steps.saturating_add(o.ccc_steps);
        m.se_steps = m.se_steps.saturating_add(o.se_steps);
    }

    /// Merges a set of telemetries into one rollup via
    /// [`Telemetry::accumulate`].
    pub fn merge<'t>(parts: impl IntoIterator<Item = &'t Telemetry>) -> Telemetry {
        let mut out = Telemetry::default();
        for t in parts {
            out.accumulate(t);
        }
        out
    }
}

/// An evaluation-counting pass-through used by the dispatch layer.
///
/// Unlike [`crate::eval::CountingArray`] — which deliberately hides
/// [`Array2d::row_view`] so eval-layer tests count *exact* per-entry
/// work — `Metered` forwards the zero-copy tier and counts the viewed
/// elements, so wrapping a dense array for telemetry does not demote it
/// to the copy path. The count is therefore "entries made available to
/// the engine", an upper bound on entries actually compared.
pub struct Metered<A> {
    inner: A,
    count: AtomicU64,
}

impl<A> Metered<A> {
    /// Wraps an array with a zeroed counter.
    pub fn new(inner: A) -> Self {
        Self {
            inner,
            count: AtomicU64::new(0),
        }
    }

    /// Entries evaluated or viewed through this wrapper so far.
    pub fn evaluations(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl<T: Value, A: Array2d<T>> Array2d<T> for Metered<A> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.inner.cols()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.entry(i, j)
    }
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        self.count.fetch_add(cols.len() as u64, Ordering::Relaxed);
        self.inner.fill_row(i, cols, out);
    }
    fn row_view(&self, i: usize, cols: Range<usize>) -> Option<&[T]> {
        let v = self.inner.row_view(i, cols)?;
        self.count.fetch_add(v.len() as u64, Ordering::Relaxed);
        Some(v)
    }
    fn prefers_streaming(&self) -> bool {
        self.inner.prefers_streaming()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array2d::Dense;
    use crate::monge::{brute_row_maxima, brute_row_minima};
    use crate::smawk::row_minima_totally_monotone;

    fn solve_lowered(a: &Dense<i64>, s: Structure, o: Objective) -> Vec<usize> {
        let (mut idx, mirror) = lower_rows(a, s, o, Tie::Left, |arr, tie| {
            row_minima_totally_monotone(&arr, tie)
        });
        if let Some(n) = mirror {
            mirror_indices(&mut idx, n);
        }
        idx
    }

    #[test]
    fn lowering_covers_all_four_dualities() {
        let monge = Dense::tabulate(6, 9, |i, j| {
            let (i, j) = (i as i64, j as i64);
            (i - j) * (i - j) + 2 * j
        });
        assert!(crate::monge::is_monge(&monge));
        let inv = Negate(&monge).to_dense();
        assert_eq!(
            solve_lowered(&monge, Structure::Monge, Objective::Minimize),
            brute_row_minima(&monge)
        );
        assert_eq!(
            solve_lowered(&monge, Structure::Monge, Objective::Maximize),
            brute_row_maxima(&monge)
        );
        assert_eq!(
            solve_lowered(&inv, Structure::InverseMonge, Objective::Minimize),
            brute_row_minima(&inv)
        );
        assert_eq!(
            solve_lowered(&inv, Structure::InverseMonge, Objective::Maximize),
            brute_row_maxima(&inv)
        );
    }

    #[test]
    fn lowering_keeps_leftmost_convention_on_plateaus() {
        // Constant arrays are simultaneously Monge and inverse-Monge;
        // all four lowerings must land on column 0.
        let a = Dense::filled(4, 7, 5i64);
        for s in [Structure::Monge, Structure::InverseMonge] {
            for o in [Objective::Minimize, Objective::Maximize] {
                assert_eq!(solve_lowered(&a, s, o), vec![0; 4], "{s:?}/{o:?}");
            }
        }
    }

    #[test]
    fn problem_kinds_and_builders_agree() {
        let a = Dense::filled(3, 3, 1i64);
        let lo = [0usize, 0, 0];
        let hi = [3usize, 3, 3];
        assert_eq!(Problem::row_minima(&a).kind(), ProblemKind::RowMinima);
        assert_eq!(
            Problem::row_maxima_inverse_monge(&a).kind(),
            ProblemKind::RowMaxima
        );
        assert_eq!(Problem::plain_row_maxima(&a).kind(), ProblemKind::RowMaxima);
        let f = [3usize, 2, 1];
        assert_eq!(
            Problem::staircase_row_minima(&a, &f).kind(),
            ProblemKind::StaircaseRowMinima
        );
        assert_eq!(
            Problem::banded_row_minima(&a, &lo, &hi).kind(),
            ProblemKind::BandedRowMinima
        );
        assert_eq!(
            Problem::banded_row_maxima(&a, &lo, &hi).kind(),
            ProblemKind::BandedRowMaxima
        );
        assert_eq!(Problem::tube_minima(&a, &a).kind(), ProblemKind::TubeMinima);
        assert_eq!(Problem::tube_maxima(&a, &a).kind(), ProblemKind::TubeMaxima);
        assert_eq!(Problem::tube_maxima(&a, &a).search_shape(), (9, 3));
    }

    #[test]
    fn rank_attachment_gates_eligibility() {
        let a = Dense::filled(2, 3, 0i64);
        let v = [0i64, 1];
        let w = [0i64, 1, 2];
        let g = |x: i64, y: i64| x + y;
        let p = Problem::row_minima(&a);
        assert!(!p.has_rank());
        assert!(p.with_rank(&v, &w, &g).has_rank());
        // Attaching rank to a tube problem is an explicit no-op.
        assert!(!Problem::tube_minima(&a, &a)
            .with_rank(&v, &w, &g)
            .has_rank());
    }

    #[test]
    fn merge_sums_counters_and_phases() {
        let mut a = Telemetry {
            backend: "sequential",
            kind: Some(ProblemKind::RowMinima),
            evaluations: 10,
            comparisons: 5,
            tasks: 2,
            arena_checkouts: 3,
            total_nanos: 100,
            ..Telemetry::default()
        };
        a.record_phase("search", 60);
        a.record_phase("finalize", 20);
        let mut b = Telemetry {
            backend: "sequential",
            kind: Some(ProblemKind::RowMinima),
            evaluations: 7,
            comparisons: 1,
            tasks: 0,
            arena_checkouts: 4,
            total_nanos: 50,
            ..Telemetry::default()
        };
        b.record_phase("search", 30);
        b.record_phase("validate", 5);
        let m = Telemetry::merge([&a, &b]);
        assert_eq!(m.backend, "sequential");
        assert_eq!(m.kind, Some(ProblemKind::RowMinima));
        assert_eq!(m.evaluations, 17);
        assert_eq!(m.comparisons, 6);
        assert_eq!(m.tasks, 2);
        assert_eq!(m.arena_checkouts, 7);
        assert_eq!(m.total_nanos, 150);
        let search = m.phases.iter().find(|p| p.name == "search").unwrap();
        assert_eq!(search.nanos, 90);
        let validate = m.phases.iter().find(|p| p.name == "validate").unwrap();
        assert_eq!(validate.nanos, 5);
        assert_eq!(m.phases.len(), 3, "phase order preserved, names deduped");
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let a = Telemetry {
            backend: "x",
            evaluations: u64::MAX - 1,
            total_nanos: u128::MAX - 1,
            ..Telemetry::default()
        };
        let b = Telemetry {
            backend: "x",
            evaluations: 10,
            total_nanos: 10,
            ..Telemetry::default()
        };
        let m = Telemetry::merge([&a, &b]);
        assert_eq!(m.evaluations, u64::MAX);
        assert_eq!(m.total_nanos, u128::MAX);
    }

    #[test]
    fn merge_mixes_identity_and_maxes_high_water_marks() {
        let mut a = Telemetry {
            backend: "sequential",
            kind: Some(ProblemKind::RowMinima),
            ..Telemetry::default()
        };
        a.machine.steps = 4;
        a.machine.processors = 16;
        a.machine.work = 100;
        let mut b = Telemetry {
            backend: "rayon",
            kind: Some(ProblemKind::TubeMinima),
            ..Telemetry::default()
        };
        b.machine.steps = 6;
        b.machine.processors = 8;
        b.machine.work = 50;
        let m = Telemetry::merge([&a, &b]);
        assert_eq!(m.backend, MERGED_BACKEND);
        assert_eq!(m.kind, None, "disagreeing kinds collapse to None");
        assert_eq!(m.machine.steps, 10, "steps are additive");
        assert_eq!(m.machine.work, 150, "work is additive");
        assert_eq!(m.machine.processors, 16, "peak processors take the max");
    }

    #[test]
    fn merge_of_nothing_is_default_and_accumulate_is_incremental() {
        let m = Telemetry::merge([]);
        assert_eq!(m.backend, "");
        assert_eq!(m.evaluations, 0);
        let a = Telemetry {
            backend: "sequential",
            kind: Some(ProblemKind::RowMinima),
            evaluations: 1,
            ..Telemetry::default()
        };
        let mut roll = Telemetry::default();
        roll.accumulate(&a);
        assert_eq!(roll.backend, "sequential");
        assert_eq!(roll.kind, Some(ProblemKind::RowMinima));
        roll.accumulate(&a);
        assert_eq!(roll.evaluations, 2);
        assert_eq!(roll.backend, "sequential", "agreeing backends survive");
    }

    #[test]
    fn merge_and_accumulate_sum_index_accounting_losslessly() {
        let a = Telemetry {
            backend: "queryindex",
            index_builds: 1,
            index_hits: 2,
            index_bytes: 4096,
            index_breakpoints: 37,
            index_queries: 100,
            index_probes: 450,
            ..Telemetry::default()
        };
        let b = Telemetry {
            backend: "queryindex",
            index_builds: 2,
            index_hits: 0,
            index_bytes: 1024,
            index_breakpoints: 5,
            index_queries: 7,
            index_probes: 21,
            ..Telemetry::default()
        };
        let m = Telemetry::merge([&a, &b]);
        assert_eq!(m.index_builds, 3);
        assert_eq!(m.index_hits, 2);
        assert_eq!(m.index_bytes, 5120);
        assert_eq!(m.index_breakpoints, 42);
        assert_eq!(m.index_queries, 107);
        assert_eq!(m.index_probes, 471);
        // Accumulating one part at a time lands on the same rollup.
        let mut roll = Telemetry::default();
        roll.accumulate(&a);
        roll.accumulate(&b);
        assert_eq!(roll.index_builds, m.index_builds);
        assert_eq!(roll.index_hits, m.index_hits);
        assert_eq!(roll.index_bytes, m.index_bytes);
        assert_eq!(roll.index_breakpoints, m.index_breakpoints);
        assert_eq!(roll.index_queries, m.index_queries);
        assert_eq!(roll.index_probes, m.index_probes);
        // Saturation, not wraparound, at the top of the range.
        let big = Telemetry {
            backend: "queryindex",
            index_queries: u64::MAX - 3,
            ..Telemetry::default()
        };
        let m = Telemetry::merge([&big, &a]);
        assert_eq!(m.index_queries, u64::MAX);
    }

    #[test]
    fn merge_sums_resilience_counters_and_keeps_latest_snapshot() {
        use crate::guard::{BackendHealthSnapshot, BreakerState};
        let snap = |state: BreakerState, fails: u32| {
            vec![BackendHealthSnapshot {
                backend: "rayon",
                state,
                window_failures: fails,
                window_len: 8,
                latency_ewma_nanos: 1000,
            }]
        };
        let a = Telemetry {
            backend: "x",
            retries: 2,
            breaker_skips: 1,
            health_snapshot: Some(snap(BreakerState::Open, 5)),
            ..Telemetry::default()
        };
        let b = Telemetry {
            backend: "x",
            retries: 3,
            breaker_skips: 0,
            health_snapshot: Some(snap(BreakerState::HalfOpen, 5)),
            ..Telemetry::default()
        };
        let c = Telemetry {
            backend: "x",
            retries: 0,
            breaker_skips: 4,
            health_snapshot: None,
            ..Telemetry::default()
        };
        let m = Telemetry::merge([&a, &b, &c]);
        assert_eq!(m.retries, 5, "retries are additive");
        assert_eq!(m.breaker_skips, 5, "breaker skips are additive");
        // The snapshot is a point-in-time view: the latest part that
        // carried one wins; a later part with none does not erase it.
        assert_eq!(m.health_snapshot, Some(snap(BreakerState::HalfOpen, 5)));
        // Saturation, like every additive counter.
        let hot = Telemetry {
            backend: "x",
            retries: u64::MAX - 1,
            breaker_skips: u64::MAX - 1,
            ..Telemetry::default()
        };
        let m = Telemetry::merge([&hot, &a]);
        assert_eq!(m.retries, u64::MAX);
        assert_eq!(m.breaker_skips, u64::MAX);
    }

    #[test]
    fn metered_counts_without_hiding_row_views() {
        let m = Metered::new(Dense::tabulate(2, 5, |i, j| (i + j) as i64));
        assert!(m.row_view(0, 1..4).is_some());
        assert_eq!(m.evaluations(), 3);
        m.entry(1, 0);
        assert_eq!(m.evaluations(), 4);
        let mut buf = vec![0i64; 5];
        m.fill_row(1, 0..5, &mut buf);
        assert_eq!(m.evaluations(), 9);
    }
}
