//! Sequential searching in staircase-Monge arrays.
//!
//! A staircase-Monge array's `∞` region spreads right and down, so the
//! first infinite column `f_i` of row `i` is non-increasing. Row *maxima*
//! are easy (argmax positions stay monotone, §1.2: "we could employ the
//! sequential algorithm given in \[AKM+87\]"), but row *minima* are not:
//! when the staircase cuts off below a previous row's minimum, the search
//! interval "restarts" at the left edge — this is exactly the shape of the
//! feasible staircase regions in the paper's Figure 2.2.
//!
//! This module provides:
//!
//! * [`compute_boundary`] — extract `f_1 ≥ … ≥ f_m` in `O(m + n)`.
//! * [`staircase_row_minima`] — three-way divide & conquer row minima,
//!   `O((m+n) log m)` on typical instances (the paper's own sub-logarithmic
//!   sequential algorithms [AK88, KK88] trade simplicity for an
//!   `α(m)`-factor improvement we do not need as a baseline).
//! * [`staircase_row_maxima`] — two-way divide & conquer using the
//!   monotone-argmax property.
//! * Brute-force oracles for both.
//!
//! Returned argmin/argmax positions are the **leftmost** optimum of each
//! row's finite prefix; a fully infinite row (`f_i = 0`) reports the
//! canonical sentinel — column `0`, never read, value `+∞` when gathered
//! through `RowExtrema::from_staircase_indices`. Every engine and oracle
//! in the workspace agrees on this answer.

use crate::array2d::Array2d;
use crate::eval::{interval_argmax, interval_argmin};
use crate::value::Value;

/// Extracts the staircase boundary `f_i` (first infinite column of row
/// `i`, or `n` when the row is fully finite) in `O(m + n)` total, relying
/// on `f` being non-increasing. Debug builds verify the shape.
pub fn compute_boundary<T: Value, A: Array2d<T>>(a: &A) -> Vec<usize> {
    let (m, n) = (a.rows(), a.cols());
    let mut f = Vec::with_capacity(m);
    let mut cur = n;
    for i in 0..m {
        // f_i <= f_{i-1}: walk left from the previous boundary.
        while cur > 0 && a.entry(i, cur - 1).is_pos_infinite() {
            cur -= 1;
        }
        debug_assert!(
            (0..cur).all(|j| !a.entry(i, j).is_pos_infinite()),
            "array does not have staircase shape at row {i}"
        );
        f.push(cur);
    }
    f
}

/// Brute-force leftmost row minima over each row's finite prefix,
/// `O(Σ f_i)` time. Oracle for the fast algorithms.
pub fn staircase_row_minima_brute<T: Value, A: Array2d<T>>(a: &A, f: &[usize]) -> Vec<usize> {
    assert_eq!(f.len(), a.rows());
    (0..a.rows())
        .map(|i| {
            let fi = f[i].min(a.cols());
            if fi == 0 {
                // Canonical sentinel for an empty finite prefix: leftmost
                // column, never read.
                return 0;
            }
            let mut best = 0;
            let mut best_v = a.entry(i, 0);
            for j in 1..fi {
                let v = a.entry(i, j);
                if v.total_lt(best_v) {
                    best = j;
                    best_v = v;
                }
            }
            best
        })
        .collect()
}

/// Brute-force leftmost row maxima over each row's finite prefix.
pub fn staircase_row_maxima_brute<T: Value, A: Array2d<T>>(a: &A, f: &[usize]) -> Vec<usize> {
    assert_eq!(f.len(), a.rows());
    (0..a.rows())
        .map(|i| {
            let fi = f[i].min(a.cols());
            if fi == 0 {
                return 0;
            }
            let mut best = 0;
            let mut best_v = a.entry(i, 0);
            for j in 1..fi {
                let v = a.entry(i, j);
                if best_v.total_lt(v) {
                    best = j;
                    best_v = v;
                }
            }
            best
        })
        .collect()
}

/// Leftmost row minima of a staircase-Monge array.
///
/// Divide & conquer on rows, mirroring the feasible-region structure of
/// the paper's Figure 2.2. Let `j*` be the leftmost minimum of the middle
/// row over its current region `[c0, min(c1, f_mid))`:
///
/// * **rows above** `mid` keep their minima in the *Monge region*
///   `[c0, j*]` **or** in the *staircase region* `[f_mid, c1)` beyond the
///   middle row's boundary (the middle row says nothing about columns it
///   cannot see) — the two candidate sub-searches are merged by value;
/// * **rows below** `mid` whose finite prefix still contains `j*` keep
///   their minima in `[j*, c1)` (Monge transfer downward);
/// * **rows below** that the staircase cuts off at or before `j*` form an
///   independent staircase subproblem on `[c0, j*]`.
///
/// ```
/// use monge_core::array2d::Dense;
/// use monge_core::staircase::{compute_boundary, staircase_row_minima};
/// use monge_core::Value;
///
/// const INF: i64 = <i64 as Value>::INFINITY;
/// // The staircase cuts below row 0's minimum, so row 1 restarts at the
/// // left — the feasible-region effect of the paper's Figure 2.2.
/// let a = Dense::from_rows(vec![
///     vec![5, 4, 0, 9],
///     vec![5, 4, INF, INF],
///     vec![5, INF, INF, INF],
/// ]);
/// let f = compute_boundary(&a);
/// assert_eq!(f, vec![4, 2, 1]);
/// assert_eq!(staircase_row_minima(&a, &f), vec![2, 1, 0]);
/// ```
pub fn staircase_row_minima<T: Value, A: Array2d<T>>(a: &A, f: &[usize]) -> Vec<usize> {
    let m = a.rows();
    assert_eq!(f.len(), m);
    if m == 0 {
        return Vec::new();
    }
    assert!(a.cols() > 0);
    // Candidate and scan buffers come from the thread-local arena: a
    // warmed-up call allocates only the returned index vector.
    crate::scratch::with_scratch2(|best: &mut Vec<Option<(T, usize)>>, scratch: &mut Vec<T>| {
        best.clear();
        best.resize(m, None);
        minima_rec(a, f, 0, m, 0, a.cols(), best, scratch);
        best.iter().map(|b| b.map_or(0, |(_, j)| j)).collect()
    })
}

use crate::tiebreak::merge_min_candidate as merge_candidate;

#[allow(clippy::too_many_arguments)]
fn minima_rec<T: Value, A: Array2d<T>>(
    a: &A,
    f: &[usize],
    r0: usize,
    mut r1: usize,
    c0: usize,
    c1: usize,
    out: &mut [Option<(T, usize)>],
    scratch: &mut Vec<T>,
) {
    crate::guard::checkpoint();
    // Trim rows whose finite prefix does not reach this column range:
    // `f` is non-increasing, so they form a suffix.
    r1 = partition_point(r0, r1, |i| f[i] > c0);
    if r0 >= r1 || c0 >= c1 {
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    // Scan the middle row's region [c0, min(c1, f_mid)); nonempty since
    // f_mid > c0 after trimming.
    let hi = c1.min(f[mid]);
    let (best, best_v) = interval_argmin(a, mid, c0, hi, scratch);
    merge_candidate(&mut out[mid], best_v, best);

    // Rows above: the Monge region left of (and including) best …
    minima_rec(a, f, r0, mid, c0, best + 1, out, scratch);
    // … plus the staircase region beyond the middle row's boundary.
    if f[mid] < c1 {
        minima_rec(a, f, r0, mid, f[mid], c1, out, scratch);
    }

    if mid + 1 >= r1 {
        return;
    }
    // Rows below split at the first row the staircase cuts off at or
    // before `best`.
    let cut = partition_point(mid + 1, r1, |i| f[i] > best);
    minima_rec(a, f, mid + 1, cut, best, c1, out, scratch);
    minima_rec(a, f, cut, r1, c0, best + 1, out, scratch);
}

/// Leftmost row maxima of a staircase-Monge array; argmax positions are
/// non-increasing in the row index, so a plain two-way divide & conquer
/// applies.
pub fn staircase_row_maxima<T: Value, A: Array2d<T>>(a: &A, f: &[usize]) -> Vec<usize> {
    let m = a.rows();
    assert_eq!(f.len(), m);
    let mut out = vec![0usize; m];
    if m == 0 {
        return out;
    }
    assert!(a.cols() > 0);
    // Rows with an empty finite prefix (`f_i = 0`) form a suffix (`f` is
    // non-increasing); they keep the canonical sentinel index 0 and are
    // never read.
    let feasible = partition_point(0, m, |i| f[i] > 0);
    crate::scratch::with_scratch(|scratch: &mut Vec<T>| {
        maxima_rec(a, f, 0, feasible, 0, a.cols(), &mut out, scratch);
    });
    out
}

#[allow(clippy::too_many_arguments)]
fn maxima_rec<T: Value, A: Array2d<T>>(
    a: &A,
    f: &[usize],
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    out: &mut [usize],
    scratch: &mut Vec<T>,
) {
    if r0 >= r1 {
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    let from = c0.min(a.cols() - 1);
    let hi = c1.min(f[mid]).max(from + 1).min(a.cols());
    let (best, _) = interval_argmax(a, mid, from, hi, scratch);
    out[mid] = best;
    // argmax is non-increasing: rows above search right of best, rows
    // below search left of best.
    maxima_rec(a, f, r0, mid, best, c1, out, scratch);
    maxima_rec(a, f, mid + 1, r1, c0, best + 1, out, scratch);
}

/// Leftmost row **maxima** of a staircase-**inverse**-Monge array — the
/// hard direction for the inverse class, mirroring §1.2's asymmetry.
/// Negating the finite entries turns the array staircase-Monge with the
/// same boundary (the clipped searches never touch the padding), so the
/// feasible-region divide & conquer applies verbatim.
pub fn staircase_inverse_row_maxima<T: Value, A: Array2d<T>>(a: &A, f: &[usize]) -> Vec<usize> {
    staircase_row_minima(&crate::array2d::Negate(a), f)
}

/// Leftmost row **minima** of a staircase-inverse-Monge array — the easy
/// direction (monotone argmin positions), via the same negation.
pub fn staircase_inverse_row_minima<T: Value, A: Array2d<T>>(a: &A, f: &[usize]) -> Vec<usize> {
    staircase_row_maxima(&crate::array2d::Negate(a), f)
}

/// First index in `[lo, hi)` where `pred` becomes false (pred must be
/// monotone true→false).
fn partition_point(lo: usize, hi: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array2d::Dense;
    use crate::generators::{
        apply_staircase, random_monge_dense, random_staircase_boundary,
        random_staircase_monge_dense,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const INF: i64 = <i64 as Value>::INFINITY;

    #[test]
    fn boundary_extraction() {
        let a = Dense::from_rows(vec![
            vec![1, 2, 3, 4],
            vec![1, 2, INF, INF],
            vec![1, INF, INF, INF],
        ]);
        assert_eq!(compute_boundary(&a), vec![4, 2, 1]);
    }

    #[test]
    fn fully_finite_is_plain_monge_search() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = random_monge_dense(9, 7, &mut rng);
        let f = vec![7; 9];
        assert_eq!(
            staircase_row_minima(&a, &f),
            crate::monge::brute_row_minima(&a)
        );
        assert_eq!(
            staircase_row_maxima(&a, &f),
            crate::monge::brute_row_maxima(&a)
        );
    }

    #[test]
    fn hand_example_with_cutoff() {
        // The staircase cuts below row 0's minimum, forcing the fresh
        // left subproblem.
        let a = Dense::from_rows(vec![
            vec![5, 4, 0, 9],
            vec![5, 4, INF, INF],
            vec![5, INF, INF, INF],
        ]);
        assert!(crate::monge::is_staircase_monge(&a));
        let f = compute_boundary(&a);
        assert_eq!(staircase_row_minima(&a, &f), vec![2, 1, 0]);
    }

    #[test]
    fn minima_matches_brute_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let a = random_staircase_monge_dense(17, 13, &mut rng);
            let f = compute_boundary(&a);
            assert_eq!(
                staircase_row_minima(&a, &f),
                staircase_row_minima_brute(&a, &f)
            );
        }
    }

    #[test]
    fn maxima_matches_brute_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let a = random_staircase_monge_dense(13, 17, &mut rng);
            let f = compute_boundary(&a);
            assert_eq!(
                staircase_row_maxima(&a, &f),
                staircase_row_maxima_brute(&a, &f)
            );
        }
    }

    #[test]
    fn rectangular_extremes() {
        let mut rng = StdRng::seed_from_u64(13);
        for &(m, n) in &[(1usize, 20usize), (20, 1), (2, 2), (40, 3), (3, 40)] {
            let base = random_monge_dense(m, n, &mut rng);
            let f = random_staircase_boundary(m, n, &mut rng);
            let a = apply_staircase(&base, &f);
            assert_eq!(
                staircase_row_minima(&a, &f),
                staircase_row_minima_brute(&a, &f),
                "{m}x{n}"
            );
        }
    }

    #[test]
    fn steep_staircase() {
        // Strictly decreasing boundary: every row one column shorter.
        let mut rng = StdRng::seed_from_u64(14);
        let n = 24;
        let base = random_monge_dense(n, n, &mut rng);
        let f: Vec<usize> = (0..n).map(|i| n - i).collect();
        let a = apply_staircase(&base, &f);
        assert!(crate::monge::is_staircase_monge(&a));
        assert_eq!(
            staircase_row_minima(&a, &f),
            staircase_row_minima_brute(&a, &f)
        );
        assert_eq!(
            staircase_row_maxima(&a, &f),
            staircase_row_maxima_brute(&a, &f)
        );
    }

    #[test]
    fn inverse_class_wrappers_match_brute() {
        use crate::generators::random_staircase_inverse_monge_dense;
        use crate::monge::is_staircase_inverse_monge;
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..20 {
            let a = random_staircase_inverse_monge_dense(14, 18, &mut rng);
            assert!(is_staircase_inverse_monge(&a));
            let f = compute_boundary(&a);
            assert_eq!(
                staircase_inverse_row_maxima(&a, &f),
                staircase_row_maxima_brute(&a, &f)
            );
            assert_eq!(
                staircase_inverse_row_minima(&a, &f),
                staircase_row_minima_brute(&a, &f)
            );
        }
    }

    #[test]
    fn single_finite_column() {
        let a = Dense::from_rows(vec![vec![3, INF], vec![1, INF]]);
        let f = compute_boundary(&a);
        assert_eq!(staircase_row_minima(&a, &f), vec![0, 0]);
    }
}
