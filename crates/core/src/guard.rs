//! The fault model of the guarded dispatch layer: typed solve errors,
//! guard policies, cooperative cancellation, and a deterministic fault
//! injector for testing all of the above.
//!
//! Every engine in this workspace is only correct when its input
//! actually satisfies the Monge / staircase-Monge / Monge-composite
//! conditions the paper assumes — a single violated quadruple silently
//! corrupts row minima, and a panicking scoring closure inside a
//! `rayon::join` tears down the whole solve. This module supplies the
//! vocabulary the guarded dispatcher (`monge-parallel::guarded`) uses
//! to detect bad structure ([`SolveError::StructureViolation`] carrying
//! the witnessing quadruple from [`crate::monge::check_monge`]),
//! contain faults ([`SolveError::BackendPanic`]), bound runtime
//! ([`CancelToken`] + [`checkpoint`] + [`SolveError::DeadlineExceeded`])
//! and report arithmetic escapes ([`SolveError::Overflow`]).
//!
//! ## Cooperative cancellation
//!
//! Engines are deep recursion over `rayon::join`; threading a `Result`
//! through every leaf would contaminate every signature. Instead a
//! [`CancelToken`] is installed process-globally for the duration of a
//! guarded solve ([`with_cancellation`]) and the engines call the
//! free function [`checkpoint`] at recursion leaves and interval-scan
//! boundaries. When the token is cancelled (explicitly or because its
//! deadline passed), `checkpoint` panics with the private [`Cancelled`]
//! sentinel; rayon propagates the panic to the joining caller, and the
//! guarded dispatcher's `catch_unwind` boundary downcasts the payload
//! to distinguish an orderly deadline abort from a genuine backend
//! panic. When no token is installed, `checkpoint` is one relaxed
//! atomic load — engines pay nothing outside guarded solves.
//!
//! Like the telemetry counters (see [`crate::problem::Telemetry`]), the
//! installed token is process-global: concurrent guarded solves with
//! different deadlines would observe each other's tokens. Tests and
//! applications run guarded solves one at a time.

use crate::array2d::Array2d;
use crate::monge::MongeViolation;
use crate::value::Value;
use std::ops::Range;
use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How much structure validation a guarded solve performs before
/// trusting the caller's [`crate::problem::Structure`] promise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Validation {
    /// Trust the promise: no entries are checked.
    #[default]
    Off,
    /// Seeded spot-check of `O(m + n)` adjacent quadruples. Catches a
    /// violation density of `ε` with probability `1 - (1-ε)^s` for
    /// `s ≈ 16(m+n)` samples — essentially certain for densities of
    /// `1/n` and above, at a cost independent of the `O(mn)` full scan.
    Sampled,
    /// Check every adjacent quadruple (`O(mn)` entry evaluations). The
    /// classical telescoping argument makes adjacent checks complete:
    /// the general `i<k`, `j<l` inequality is a sum of adjacent ones.
    Full,
}

/// What a guarded solve does when validation finds a violation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ViolationAction {
    /// Skip the structured engines and run the brute-force scan, which
    /// is correct without any structural license. The solve succeeds;
    /// the quarantine (and the witness) is recorded in the telemetry.
    #[default]
    Quarantine,
    /// Return [`SolveError::StructureViolation`] immediately.
    Fail,
}

/// Configuration of one guarded solve: how much to validate, how long
/// to run, how far to fall back, how often to retry.
#[derive(Clone, Copy, Debug)]
pub struct GuardPolicy {
    /// Structure validation mode (default [`Validation::Off`]).
    pub validation: Validation,
    /// Response to a detected violation (default quarantine).
    pub on_violation: ViolationAction,
    /// Wall-clock budget for the whole solve, validation included.
    pub deadline: Option<Duration>,
    /// Maximum number of *fallback* attempts after the first backend
    /// (the brute-force terminal link counts as one). `0` means the
    /// first eligible backend is the only attempt.
    pub max_fallback_depth: usize,
    /// Seed for the sampled validation's quadruple choice.
    pub seed: u64,
    /// Retry discipline for transient faults (default: no retries).
    pub retry: RetryPolicy,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            validation: Validation::Off,
            on_violation: ViolationAction::Quarantine,
            deadline: None,
            max_fallback_depth: 3,
            seed: 0x9E37_79B9_7F4A_7C15,
            retry: RetryPolicy::NONE,
        }
    }
}

impl GuardPolicy {
    /// Sets the retry discipline for transient faults.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Default policy with [`Validation::Full`].
    pub fn full_validation() -> Self {
        GuardPolicy {
            validation: Validation::Full,
            ..GuardPolicy::default()
        }
    }

    /// Default policy with [`Validation::Sampled`].
    pub fn sampled_validation() -> Self {
        GuardPolicy {
            validation: Validation::Sampled,
            ..GuardPolicy::default()
        }
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Fail (instead of quarantining) on a detected violation.
    #[must_use]
    pub fn fail_on_violation(mut self) -> Self {
        self.on_violation = ViolationAction::Fail;
        self
    }

    /// Sets the maximum fallback depth.
    #[must_use]
    pub fn with_max_fallback_depth(mut self, depth: usize) -> Self {
        self.max_fallback_depth = depth;
        self
    }

    /// Sets the sampled-validation seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Retry discipline for transient faults in a guarded solve: panicking
/// backends (and deadline aborts with wall-clock slack remaining) are
/// re-attempted up to `max_attempts` times with seeded
/// decorrelated-jitter backoff, subject to the serving layer's global
/// retry *budget* (see `monge-parallel::health`) so a fault storm
/// cannot amplify itself into an overload.
///
/// `Copy`, like [`GuardPolicy`] — the budget state lives in the health
/// registry, not here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per chain link (`1` = no retries).
    pub max_attempts: u32,
    /// Backoff floor for the decorrelated jitter.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the jitter stream, so a replayed solve backs off
    /// identically.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries — every fault falls straight through to the next
    /// chain link. The [`GuardPolicy`] default.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        seed: 0x5EED_5EED,
    };

    /// A retrying policy: `max_attempts` total attempts, backoff jitter
    /// between `base` and `3×` the previous delay (decorrelated
    /// jitter), capped at `max`.
    pub fn retries(max_attempts: u32, base: Duration, max: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: base,
            max_backoff: max,
            seed: 0x5EED_5EED,
        }
    }

    /// Sets the jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// [`RetryPolicy::NONE`] overlaid with any valid `MONGE_RETRY_*`
    /// environment variables: `MONGE_RETRY_MAX` (total attempts),
    /// `MONGE_RETRY_BASE_MS` / `MONGE_RETRY_MAX_MS` (backoff floor and
    /// ceiling, default 1 ms / 100 ms once retries are enabled).
    pub fn from_env() -> Self {
        let env_u64 =
            |key: &str| -> Option<u64> { std::env::var(key).ok()?.trim().parse::<u64>().ok() };
        let max_attempts = env_u64("MONGE_RETRY_MAX").map_or(1, |v| v.clamp(1, 64) as u32);
        if max_attempts <= 1 {
            return RetryPolicy::NONE;
        }
        let base = Duration::from_millis(env_u64("MONGE_RETRY_BASE_MS").unwrap_or(1));
        let max = Duration::from_millis(env_u64("MONGE_RETRY_MAX_MS").unwrap_or(100));
        RetryPolicy::retries(max_attempts, base, max.max(base))
    }

    /// Would this policy retry after `attempt` failed attempts?
    pub fn allows(&self, attempts_made: u32) -> bool {
        attempts_made < self.max_attempts
    }

    /// The decorrelated-jitter backoff before retry number `attempt`
    /// (1-based) of the solve identified by `salt`: uniformly drawn
    /// from `[base, 3 × previous]`, capped at `max_backoff`. Pure in
    /// `(seed, salt, attempt)`, so replays back off identically.
    pub fn backoff(&self, salt: u64, attempt: u32) -> Duration {
        if self.max_backoff.is_zero() {
            return Duration::ZERO;
        }
        let base = self.base_backoff.as_nanos() as u64;
        let mut prev = base.max(1);
        let cap = self.max_backoff.as_nanos() as u64;
        let mut delay = base;
        for k in 1..=attempt {
            let hi = prev.saturating_mul(3).clamp(base.max(1), cap.max(1));
            let lo = base.min(hi);
            let span = (hi - lo).max(1);
            let draw = mix(self.seed ^ mix(salt).wrapping_add(k as u64)) % span;
            delay = (lo + draw).min(cap);
            prev = delay.max(1);
        }
        Duration::from_nanos(delay)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::NONE
    }
}

/// The state of one backend's circuit breaker (see
/// `monge-parallel::health`): `Closed` admits solves, `Open` skips the
/// backend until a cooldown elapses, `HalfOpen` admits a single probe
/// whose outcome closes or re-opens the circuit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every solve is admitted.
    #[default]
    Closed,
    /// Tripped: solves are skipped until the cooldown elapses.
    Open,
    /// Cooled down: one probe solve is admitted at a time.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// A point-in-time view of one backend's health record, stamped into
/// [`crate::problem::Telemetry::health_snapshot`] by the resilient
/// serving layer so operators can see *why* a solve took the path it
/// did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendHealthSnapshot {
    /// Registry name of the backend.
    pub backend: &'static str,
    /// Breaker state at snapshot time.
    pub state: BreakerState,
    /// Faulted outcomes currently in the sliding window.
    pub window_failures: u32,
    /// Outcomes currently in the sliding window.
    pub window_len: u32,
    /// Exponentially-weighted moving average of per-solve latency, in
    /// nanoseconds (0 until the first completed solve).
    pub latency_ewma_nanos: u64,
}

/// A structure violation rendered for reporting: the witnessing
/// quadruple `(i, i', j, j')` with the four entry values formatted as
/// text (so the error type stays non-generic and `'static`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViolationWitness {
    /// The structural promise that failed (`"Monge"`, `"inverse-Monge"`,
    /// `"staircase shape"`, …).
    pub structure: &'static str,
    /// Row `i` of the quadruple (`i < k`).
    pub i: usize,
    /// Row `i'` of the quadruple.
    pub k: usize,
    /// Column `j` of the quadruple (`j < l`).
    pub j: usize,
    /// Column `j'` of the quadruple.
    pub l: usize,
    /// The four entries `a[i,j], a[i,l], a[k,j], a[k,l]`, formatted.
    pub values: [String; 4],
}

impl ViolationWitness {
    /// Renders a typed [`MongeViolation`] into a witness.
    pub fn from_monge<T: Value>(structure: &'static str, v: &MongeViolation<T>) -> Self {
        ViolationWitness {
            structure,
            i: v.i,
            k: v.k,
            j: v.j,
            l: v.l,
            values: [
                format!("{:?}", v.a_ij),
                format!("{:?}", v.a_il),
                format!("{:?}", v.a_kj),
                format!("{:?}", v.a_kl),
            ],
        }
    }
}

impl std::fmt::Display for ViolationWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violated at (i,i',j,j') = ({}, {}, {}, {}): a[i,j]={} a[i,j']={} a[i',j]={} a[i',j']={}",
            self.structure,
            self.i,
            self.k,
            self.j,
            self.l,
            self.values[0],
            self.values[1],
            self.values[2],
            self.values[3],
        )
    }
}

/// A typed failure of a guarded solve (or of a checked application
/// computation). Guaranteed to be produced instead of — never in
/// addition to — a propagating panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// Validation found the structural promise broken; carries the
    /// witnessing quadruple (boxed to keep the error small on the `Ok`
    /// path).
    StructureViolation(Box<ViolationWitness>),
    /// A backend (or the validator) panicked; the payload is captured.
    BackendPanic {
        /// Registry name of the panicking backend, or `"validator"`.
        backend: &'static str,
        /// The panic payload, rendered to text when it was a string.
        payload: String,
    },
    /// The solve (or an explicit cancellation) hit the deadline.
    DeadlineExceeded {
        /// Wall-clock time spent before the abort was observed.
        elapsed: Duration,
        /// The configured budget.
        deadline: Duration,
    },
    /// Checked arithmetic overflowed `i64` (adversarial weights).
    Overflow {
        /// Which computation overflowed.
        context: &'static str,
    },
    /// An application-level input precondition failed.
    InvalidInput {
        /// What was wrong with the input.
        reason: String,
    },
    /// Every admissible backend's circuit breaker was open, and the
    /// fallback budget did not reach the (always-admitted) brute-force
    /// terminal. Carries the shortest cooldown remaining among the
    /// skipped backends, so callers can schedule a re-submit.
    CircuitOpen {
        /// Registry name of the first breaker-skipped backend.
        backend: &'static str,
        /// Cooldown remaining before that breaker half-opens.
        retry_after: Duration,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::StructureViolation(w) => write!(f, "structure violation: {w}"),
            SolveError::BackendPanic { backend, payload } => {
                write!(f, "backend '{backend}' panicked: {payload}")
            }
            SolveError::DeadlineExceeded { elapsed, deadline } => write!(
                f,
                "deadline exceeded: {elapsed:?} elapsed against a budget of {deadline:?}"
            ),
            SolveError::Overflow { context } => write!(f, "i64 overflow in {context}"),
            SolveError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            SolveError::CircuitOpen {
                backend,
                retry_after,
            } => write!(
                f,
                "circuit open for backend '{backend}': retry after {retry_after:?}"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// What happened to one link of the fallback chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The backend returned a solution.
    Completed,
    /// The backend panicked and the chain moved on.
    Panicked,
    /// The cooperative deadline fired inside the backend.
    DeadlineExceeded,
}

/// One fallback-chain link: which backend ran and how it ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attempt {
    /// Registry name of the backend (or `"brute"` for the terminal
    /// scan).
    pub backend: &'static str,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
}

/// The guard section of [`crate::problem::Telemetry`]: validation cost,
/// quarantine state and the fallback path actually taken.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GuardOutcome {
    /// The validation mode that ran.
    pub validation: Validation,
    /// Wall-clock nanoseconds spent validating.
    pub validation_nanos: u128,
    /// Was the solve quarantined to the brute-force scan?
    pub quarantined: bool,
    /// The witness that triggered the quarantine, if any.
    pub witness: Option<ViolationWitness>,
    /// The fallback chain, in execution order.
    pub attempts: Vec<Attempt>,
}

impl GuardOutcome {
    /// How many fallbacks past the first attempt were needed (0 when
    /// the first backend completed).
    pub fn fallback_depth(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// The backend names attempted, in order.
    pub fn fallback_path(&self) -> Vec<&'static str> {
        self.attempts.iter().map(|a| a.backend).collect()
    }

    /// Did any attempt degrade (panic or deadline) before the last?
    pub fn degraded(&self) -> bool {
        self.quarantined
            || self
                .attempts
                .iter()
                .any(|a| a.outcome != AttemptOutcome::Completed)
    }
}

/// The panic payload [`checkpoint`] throws when the installed
/// [`CancelToken`] has fired. The guarded dispatcher downcasts unwind
/// payloads to this type to tell deadline aborts from real panics.
#[derive(Clone, Copy, Debug)]
pub struct Cancelled;

#[derive(Debug)]
struct CancelInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation handle: cancelled explicitly via
/// [`CancelToken::cancel`] or implicitly once its deadline passes.
/// Cloning shares the underlying state.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A token with no deadline (cancel explicitly).
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that fires once `budget` has elapsed from now.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            }),
        }
    }

    /// Cancels the token.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Wall-clock budget left before the deadline fires: `None` for
    /// tokens without a deadline, `Some(ZERO)` once cancelled or
    /// expired. The batch layer carves a batch budget into per-group
    /// slices from this.
    pub fn remaining(&self) -> Option<Duration> {
        if self.inner.flag.load(Ordering::Relaxed) {
            return self.inner.deadline.map(|_| Duration::ZERO);
        }
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Has the token been cancelled (or its deadline passed)?
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                // Latch, so later checks skip the clock read.
                self.inner.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

static CANCEL_ACTIVE: AtomicBool = AtomicBool::new(false);
static CURRENT_TOKEN: Mutex<Option<CancelToken>> = Mutex::new(None);

struct CancelGuard {
    prev: Option<CancelToken>,
}

impl CancelGuard {
    fn install(token: CancelToken) -> Self {
        let mut cur = CURRENT_TOKEN.lock().unwrap_or_else(|e| e.into_inner());
        let prev = cur.replace(token);
        CANCEL_ACTIVE.store(true, Ordering::Relaxed);
        CancelGuard { prev }
    }
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        let mut cur = CURRENT_TOKEN.lock().unwrap_or_else(|e| e.into_inner());
        *cur = self.prev.take();
        CANCEL_ACTIVE.store(cur.is_some(), Ordering::Relaxed);
    }
}

/// Runs `f` with `token` installed as the process-global cancellation
/// token observed by [`checkpoint`]. The previous token (if any) is
/// restored on exit, including panic unwinds.
pub fn with_cancellation<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    let _guard = CancelGuard::install(token.clone());
    f()
}

/// The cooperative cancellation point the engines call at recursion
/// leaves and interval-scan boundaries.
///
/// Costs one relaxed atomic load when no token is installed. When the
/// installed token has fired, panics with the [`Cancelled`] sentinel —
/// only call this under a `catch_unwind` boundary that understands it
/// (the guarded dispatcher's), or with no token installed.
#[inline]
pub fn checkpoint() {
    if CANCEL_ACTIVE.load(Ordering::Relaxed) {
        checkpoint_slow();
    }
}

#[cold]
fn checkpoint_slow() {
    let token = CURRENT_TOKEN
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    if let Some(t) = token {
        if t.is_cancelled() {
            panic_any(Cancelled);
        }
    }
}

/// Renders an unwind payload (from `std::panic::catch_unwind`) to text:
/// `&str` and `String` payloads verbatim, anything else a placeholder.
pub fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// Which faults a [`FaultInjector`] injects, at which rates. All site
/// choices are a pure function of `(seed, i, j)` — two injectors with
/// the same plan fault the same sites, so "solve the faulty array, then
/// compare against a brute scan of the same faulty array" is
/// deterministic.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed for the site-selection hash.
    pub seed: u64,
    /// Per-mille rate of Monge-violating entry perturbations.
    pub violation_per_mille: u32,
    /// Per-mille rate of panicking entry reads.
    pub panic_per_mille: u32,
    /// Cap on panics actually fired (`None` = unlimited). A finite
    /// budget models transient faults: once spent, the same sites read
    /// cleanly, so a fallback attempt can succeed.
    pub panic_budget: Option<u64>,
    /// Per-mille rate of artificially slow entry reads.
    pub latency_per_mille: u32,
    /// How long a slow read stalls.
    pub latency: Duration,
}

impl FaultPlan {
    /// A plan injecting nothing (useful as a builder base).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            violation_per_mille: 0,
            panic_per_mille: 0,
            panic_budget: None,
            latency_per_mille: 0,
            latency: Duration::ZERO,
        }
    }

    /// Adds Monge-violating perturbations at `per_mille`/1000 sites.
    #[must_use]
    pub fn violations(mut self, per_mille: u32) -> Self {
        self.violation_per_mille = per_mille;
        self
    }

    /// Adds panicking reads at `per_mille`/1000 sites.
    #[must_use]
    pub fn panics(mut self, per_mille: u32) -> Self {
        self.panic_per_mille = per_mille;
        self
    }

    /// Caps the number of panics fired (transient-fault model).
    #[must_use]
    pub fn panic_budget(mut self, budget: u64) -> Self {
        self.panic_budget = Some(budget);
        self
    }

    /// Adds `latency`-long stalls at `per_mille`/1000 sites.
    #[must_use]
    pub fn latency(mut self, per_mille: u32, latency: Duration) -> Self {
        self.latency_per_mille = per_mille;
        self.latency = latency;
        self
    }
}

/// SplitMix64 — the standard 64-bit finalizer; pure, cheap, and good
/// enough to decorrelate (seed, i, j, stream) site choices.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An [`Array2d`] adaptor that deterministically injects faults —
/// Monge-violating entries, panicking reads, artificial latency — into
/// an inner array, for exercising the guarded dispatch layer.
///
/// Violation sites add (or, at the two corners where an increase cannot
/// break any adjacent quadruple, subtract) `delta` to the true entry.
/// For any site of an `m×n` array with `m, n ≥ 2` this breaks at least
/// one adjacent quadrangle inequality as long as `delta` exceeds the
/// quadruple's slack, so a full validation scan is guaranteed to notice.
/// The batched [`Array2d::fill_row`] path routes through [`Array2d::entry`]
/// so faults fire on every evaluation tier, and `row_view` opts out of
/// the zero-copy tier entirely.
pub struct FaultInjector<T, A> {
    inner: A,
    plan: FaultPlan,
    delta: T,
    panics_fired: AtomicU64,
}

impl<T: Value, A: Array2d<T>> FaultInjector<T, A> {
    /// Wraps `inner`, injecting per `plan`; `delta` is the perturbation
    /// magnitude for violation sites (pick it larger than any adjacent
    /// quadrangle slack of `inner`, and well below `T`'s infinity).
    pub fn new(inner: A, plan: FaultPlan, delta: T) -> Self {
        FaultInjector {
            inner,
            plan,
            delta,
            panics_fired: AtomicU64::new(0),
        }
    }

    /// The wrapped array.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// How many injected panics have fired so far.
    pub fn panics_fired(&self) -> u64 {
        self.panics_fired.load(Ordering::Relaxed)
    }

    fn site(&self, i: usize, j: usize, stream: u64, per_mille: u32) -> bool {
        if per_mille == 0 {
            return false;
        }
        let h = mix(self
            .plan
            .seed
            .wrapping_add(mix(i as u64))
            .wrapping_add(mix((j as u64) << 1))
            .wrapping_add(stream));
        (h % 1000) < per_mille as u64
    }

    /// Is `(i, j)` a violation site under this plan? (Exposed so tests
    /// can count seeded corruption without re-deriving the hash.)
    pub fn is_violation_site(&self, i: usize, j: usize) -> bool {
        self.site(i, j, 0xA5A5, self.plan.violation_per_mille)
    }
}

impl<T: Value, A: Array2d<T>> Array2d<T> for FaultInjector<T, A> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn cols(&self) -> usize {
        self.inner.cols()
    }

    fn entry(&self, i: usize, j: usize) -> T {
        if self.site(i, j, 0x5A5A, self.plan.panic_per_mille) {
            let allowed = match self.plan.panic_budget {
                Some(b) => self.panics_fired.fetch_add(1, Ordering::Relaxed) < b,
                None => {
                    self.panics_fired.fetch_add(1, Ordering::Relaxed);
                    true
                }
            };
            if allowed {
                panic!("injected fault: panic reading entry ({i}, {j})");
            }
        }
        if self.site(i, j, 0xC3C3, self.plan.latency_per_mille) {
            std::thread::sleep(self.plan.latency);
        }
        let v = self.inner.entry(i, j);
        if self.is_violation_site(i, j) {
            // An increase at (i,j) breaks an adjacent quadruple that has
            // (i,j) on its diagonal; such a quadruple exists unless the
            // site is the top-right or bottom-left corner, where the
            // site only ever sits on anti-diagonals — decrease instead.
            let diagonal_neighbor =
                (i > 0 && j > 0) || (i + 1 < self.rows() && j + 1 < self.cols());
            if diagonal_neighbor {
                v.add(self.delta)
            } else {
                v.sub(self.delta)
            }
        } else {
            v
        }
    }

    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        // Route the batched tier through entry() so panic/latency/
        // violation sites fire identically on slice scans.
        for (slot, j) in out.iter_mut().zip(cols) {
            *slot = self.entry(i, j);
        }
    }

    fn prefers_streaming(&self) -> bool {
        self.inner.prefers_streaming()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array2d::Dense;
    use crate::monge::{check_monge, is_monge};

    fn monge_base() -> Dense<i64> {
        Dense::tabulate(8, 8, |i, j| {
            let (i, j) = (i as i64, j as i64);
            (i - j) * (i - j)
        })
    }

    #[test]
    fn no_faults_is_transparent() {
        let f = FaultInjector::new(monge_base(), FaultPlan::none(7), 1000i64);
        assert!(is_monge(&f));
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(f.entry(i, j), monge_base().entry(i, j));
            }
        }
    }

    #[test]
    fn violations_are_deterministic_and_detectable() {
        let f = FaultInjector::new(monge_base(), FaultPlan::none(11).violations(200), 1000i64);
        let g = FaultInjector::new(monge_base(), FaultPlan::none(11).violations(200), 1000i64);
        let mut sites = 0;
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(f.entry(i, j), g.entry(i, j), "determinism at ({i},{j})");
                sites += usize::from(f.is_violation_site(i, j));
            }
        }
        assert!(sites > 0, "a 20% plan over 64 cells should hit some site");
        let witness = check_monge(&f).expect_err("perturbed array must violate");
        assert!(witness.i < 8 && witness.j < 8);
    }

    #[test]
    fn panic_budget_caps_fired_panics() {
        let f = FaultInjector::new(
            monge_base(),
            FaultPlan::none(3).panics(1000).panic_budget(2),
            0i64,
        );
        for k in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.entry(0, k)));
            assert!(r.is_err(), "read {k} should panic");
        }
        // Budget spent: every further read is clean.
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(f.entry(i, j), monge_base().entry(i, j));
            }
        }
    }

    #[test]
    fn fill_row_faults_match_entry_faults() {
        let f = FaultInjector::new(monge_base(), FaultPlan::none(13).violations(300), 500i64);
        let mut buf = vec![0i64; 8];
        for i in 0..8 {
            f.fill_row(i, 0..8, &mut buf);
            for (j, &v) in buf.iter().enumerate() {
                assert_eq!(v, f.entry(i, j));
            }
        }
    }

    #[test]
    fn cancel_token_deadline_fires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn remaining_tracks_the_deadline() {
        assert_eq!(CancelToken::new().remaining(), None);
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        let r = t.remaining().expect("deadline token reports remaining");
        assert!(r > Duration::from_secs(3000) && r <= Duration::from_secs(3600));
        t.cancel();
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        let spent = CancelToken::with_deadline(Duration::ZERO);
        assert!(spent.is_cancelled());
        assert_eq!(spent.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn checkpoint_is_inert_without_a_token() {
        checkpoint(); // must not panic
    }

    #[test]
    fn checkpoint_panics_with_cancelled_sentinel() {
        let token = CancelToken::new();
        token.cancel();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_cancellation(&token, checkpoint)
        }));
        let payload = r.expect_err("cancelled token must fire");
        assert!(payload.downcast_ref::<Cancelled>().is_some());
        // The guard was dropped during unwind: checkpoint is inert again.
        checkpoint();
    }

    #[test]
    fn retry_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::retries(4, Duration::from_millis(2), Duration::from_millis(50))
            .with_seed(0xD00D);
        for attempt in 1..=3u32 {
            let a = p.backoff(7, attempt);
            let b = p.backoff(7, attempt);
            assert_eq!(a, b, "same (seed, salt, attempt) → same delay");
            assert!(a >= Duration::from_millis(2) && a <= Duration::from_millis(50));
        }
        // Different salts decorrelate.
        let delays: Vec<Duration> = (0..16).map(|s| p.backoff(s, 2)).collect();
        let distinct = delays
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 1, "jitter must not collapse to one delay");
        // The no-retry policy never sleeps.
        assert_eq!(RetryPolicy::NONE.backoff(1, 1), Duration::ZERO);
        assert!(RetryPolicy::NONE.allows(0) && !RetryPolicy::NONE.allows(1));
        assert!(p.allows(3) && !p.allows(4));
    }

    #[test]
    fn solve_error_displays() {
        let e = SolveError::Overflow { context: "test" };
        assert!(format!("{e}").contains("overflow"));
        let e = SolveError::DeadlineExceeded {
            elapsed: Duration::from_millis(5),
            deadline: Duration::from_millis(1),
        };
        assert!(format!("{e}").contains("deadline"));
        let e = SolveError::CircuitOpen {
            backend: "rayon",
            retry_after: Duration::from_millis(3),
        };
        assert!(format!("{e}").contains("circuit open"));
    }
}
