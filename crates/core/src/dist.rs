//! DIST-matrix algebra: `(min,+)` and `(max,+)` products of Monge arrays.
//!
//! The string-editing application (§1.3, item 4) reduces edit distance to
//! shortest paths in a *grid-DAG* and combines boundary-to-boundary
//! distance matrices ("DIST matrices") of adjacent strips. That
//! combination step is exactly a `(min,+)` matrix product, and because
//! DIST matrices of planar grid-DAGs are Monge, each product is a tube
//! minima computation on a Monge-composite array — the paper's Table 1.3
//! primitive.
//!
//! This module provides the sequential products (via [`crate::tube`]) and
//! the closure fact the divide-and-conquer relies on: **the `(min,+)`
//! product of two Monge arrays is Monge** (proved by the argmin
//! monotonicity the product inherits; re-verified by property tests).

use crate::array2d::{Array2d, Dense};
use crate::eval::CachedArray;
use crate::tube::{tube_maxima, tube_minima};
use crate::value::Value;

/// `(min,+)` product `(D ⊗ E)[i,k] = min_j d[i,j] + e[j,k]` of two Monge
/// arrays, in `O(p (q + r))` time via tube minima.
pub fn min_plus<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> Dense<T> {
    let ex = tube_minima(d, e);
    Dense::from_vec(ex.p, ex.r, ex.value)
}

/// `(max,+)` product of two Monge arrays, in `O(p (q + r))` time via tube
/// maxima. Note: unlike `(min,+)`, the `(max,+)` product of Monge arrays
/// is *not* Monge in general; the class closed under `(max,+)` is
/// inverse-Monge (see [`max_plus_inverse`]).
pub fn max_plus<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> Dense<T> {
    let ex = tube_maxima(d, e);
    Dense::from_vec(ex.p, ex.r, ex.value)
}

/// `(min,+)` product with the **right factor memoized**: every plane
/// `F_i[k][j] = d[i,j] + e[j,k]` reads the same `q × r` array `E`, so when
/// `E` is an expensive implicit array (a recursively combined DIST
/// matrix) its entries are recomputed once per plane — `p` times overall.
/// Wrapping `E` in a [`CachedArray`] caps that at one evaluation per
/// entry, at the cost of `O(qr)` memory for the materialized rows.
pub fn min_plus_cached<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> Dense<T> {
    let cached = CachedArray::new(e);
    let ex = tube_minima(d, &cached);
    Dense::from_vec(ex.p, ex.r, ex.value)
}

/// `(max,+)` product of two **inverse-Monge** arrays, in `O(p (q + r))`
/// time; the result is again inverse-Monge.
pub fn max_plus_inverse<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> Dense<T> {
    let ex = crate::tube::tube_maxima_inverse(d, e);
    Dense::from_vec(ex.p, ex.r, ex.value)
}

/// Brute-force `(min,+)` product, `O(p q r)` — the oracle.
pub fn min_plus_brute<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> Dense<T> {
    assert_eq!(d.cols(), e.rows());
    let (p, q, r) = (d.rows(), d.cols(), e.cols());
    Dense::tabulate(p, r, |i, k| {
        let mut best = d.entry(i, 0).add(e.entry(0, k));
        for j in 1..q {
            let v = d.entry(i, j).add(e.entry(j, k));
            if v.total_lt(best) {
                best = v;
            }
        }
        best
    })
}

/// The `(min,+)` identity of order `n`: zero diagonal, `+∞` elsewhere.
/// (It is staircase-free but contains infinities; it is *not* Monge in the
/// finite sense, and is provided for algebraic tests only.)
pub fn min_plus_identity<T: Value>(n: usize) -> Dense<T> {
    Dense::tabulate(n, n, |i, j| if i == j { T::ZERO } else { T::INFINITY })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_monge_dense;
    use crate::monge::is_monge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn min_plus_matches_brute() {
        let mut rng = StdRng::seed_from_u64(30);
        for &(p, q, r) in &[(5usize, 6usize, 7usize), (8, 3, 8), (1, 9, 1)] {
            let d = random_monge_dense(p, q, &mut rng);
            let e = random_monge_dense(q, r, &mut rng);
            assert_eq!(min_plus(&d, &e), min_plus_brute(&d, &e));
        }
    }

    #[test]
    fn min_plus_of_monge_is_monge() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let d = random_monge_dense(7, 5, &mut rng);
            let e = random_monge_dense(5, 6, &mut rng);
            let f = min_plus(&d, &e);
            assert!(is_monge(&f), "(min,+) product lost Monge-ness");
        }
    }

    #[test]
    fn max_plus_matches_brute() {
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..10 {
            let d = random_monge_dense(6, 8, &mut rng);
            let e = random_monge_dense(8, 4, &mut rng);
            let got = max_plus(&d, &e);
            let want = Dense::tabulate(6, 4, |i, k| {
                (0..8).map(|j| d.entry(i, j) + e.entry(j, k)).max().unwrap()
            });
            assert_eq!(got, want);
        }
    }

    #[test]
    fn max_plus_of_inverse_monge_is_inverse_monge() {
        use crate::generators::random_inverse_monge_dense;
        use crate::monge::is_inverse_monge;
        let mut rng = StdRng::seed_from_u64(35);
        for _ in 0..20 {
            let d = random_inverse_monge_dense(6, 8, &mut rng);
            let e = random_inverse_monge_dense(8, 4, &mut rng);
            let f = max_plus_inverse(&d, &e);
            assert!(
                is_inverse_monge(&f),
                "(max,+) product lost inverse-Monge-ness"
            );
            let want = Dense::tabulate(6, 4, |i, k| {
                (0..8).map(|j| d.entry(i, j) + e.entry(j, k)).max().unwrap()
            });
            assert_eq!(f, want);
        }
    }

    #[test]
    fn cached_min_plus_matches_and_saves_evaluations() {
        use crate::eval::CountingArray;
        let mut rng = StdRng::seed_from_u64(36);
        let (p, q, r) = (60usize, 8usize, 8usize);
        let d = random_monge_dense(p, q, &mut rng);
        let e = random_monge_dense(q, r, &mut rng);

        let plain = CountingArray::new(&e);
        let want = min_plus(&d, &plain);
        let plain_evals = plain.evaluations();

        let counted = CountingArray::new(&e);
        let got = min_plus_cached(&d, &counted);
        assert_eq!(got, want);
        // The cache evaluates each entry of E at most once; the uncached
        // product re-reads E once per plane.
        assert!(counted.evaluations() <= (q * r) as u64);
        assert!(
            counted.evaluations() < plain_evals,
            "cached: {} vs plain: {}",
            counted.evaluations(),
            plain_evals
        );
    }

    #[test]
    fn min_plus_is_associative() {
        let mut rng = StdRng::seed_from_u64(33);
        let a = random_monge_dense(4, 5, &mut rng);
        let b = random_monge_dense(5, 6, &mut rng);
        let c = random_monge_dense(6, 3, &mut rng);
        let left = min_plus(&min_plus(&a, &b), &c);
        let right = min_plus(&a, &min_plus(&b, &c));
        assert_eq!(left, right);
    }

    #[test]
    fn identity_behaves() {
        let mut rng = StdRng::seed_from_u64(34);
        let a = random_monge_dense(4, 4, &mut rng);
        let id = min_plus_identity::<i64>(4);
        assert_eq!(min_plus_brute(&a, &id), a);
        assert_eq!(min_plus_brute(&id, &a), a);
    }
}
