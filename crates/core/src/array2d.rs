//! Two-dimensional array views.
//!
//! The paper assumes "for any given `i` and `j`, a processor can compute the
//! `(i,j)`-th entry of this array in `O(1)` time" (§1.2). We mirror that
//! with the [`Array2d`] trait: an array is anything that can produce the
//! entry at `(i, j)` on demand. Dense storage ([`Dense`]), closure-backed
//! arrays ([`FnArray`]) and a family of adapters implement it.
//!
//! The adapters matter algorithmically: the paper observes that "reversing
//! the order of an array's columns and/or negating its entries allows us to
//! move back and forth" between row-minima and row-maxima problems for Monge
//! and inverse-Monge arrays (§1.2). [`Negate`], [`ReverseCols`],
//! [`ReverseRows`], [`Transpose`] and [`SubArray`] encode those reductions
//! once, so each searching algorithm is written a single time.

use crate::value::Value;
use std::ops::Range;

/// A lazily evaluated `rows() × cols()` array of values.
///
/// Implementations must be cheap to query: `entry(i, j)` is expected to be
/// `O(1)` (the PRAM model's assumption). Implementations must be `Sync` so
/// parallel engines can share them across threads.
pub trait Array2d<T: Value>: Sync {
    /// Number of rows `m`.
    fn rows(&self) -> usize;
    /// Number of columns `n`.
    fn cols(&self) -> usize;
    /// The entry `a[i, j]`, `0 <= i < rows()`, `0 <= j < cols()`.
    fn entry(&self, i: usize, j: usize) -> T;

    /// Fills `out` with the row segment `a[i, cols.start..cols.end]`.
    ///
    /// `out.len()` must equal `cols.len()`. This is the batched
    /// evaluation primitive the searching engines are built on: filling a
    /// contiguous buffer once and scanning the slice replaces per-element
    /// `entry` calls (one generic-dispatch round-trip each) with code the
    /// compiler can keep in registers and vectorize. The default
    /// implementation loops `entry`; implementors with cheaper bulk
    /// access (dense storage, adapters over such arrays, cached rows)
    /// override it.
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        debug_assert_eq!(out.len(), cols.len());
        for (slot, j) in out.iter_mut().zip(cols) {
            *slot = self.entry(i, j);
        }
    }

    /// A borrowed view of the row segment `a[i, cols]` when the
    /// implementation already holds it contiguously in memory, else
    /// `None`.
    ///
    /// This is the zero-copy tier above [`Array2d::fill_row`]: the
    /// interval scans in [`crate::eval`] scan the borrowed slice in
    /// place and skip the scratch-buffer copy entirely. Only
    /// implementations that *store* the requested segment (dense
    /// storage, cached rows, views that merely re-index rows) should
    /// return `Some`; implementations must never compute entries to
    /// satisfy this call.
    fn row_view(&self, _i: usize, _cols: Range<usize>) -> Option<&[T]> {
        None
    }

    /// Does this array *generate* its rows rather than store them?
    ///
    /// Generator-backed implementations (closure arrays, implicit
    /// rank-form arrays, composite planes) should return `true`: the
    /// interval scans in [`crate::eval`] then evaluate wide rows
    /// through a streaming chunked reduction — `fill_row` into a small
    /// stack buffer, reduce while L1-hot, repeat — instead of
    /// materializing the whole interval into a scratch buffer and
    /// rescanning it, which round-trips every generated value through
    /// memory twice and regresses past the cache boundary. Arrays that
    /// store rows (and adapters over them that can serve
    /// [`Array2d::row_view`]) should keep the default `false`; the
    /// zero-copy tier is already strictly better there. Adapters that
    /// merely re-index or post-process another array forward the
    /// inner array's answer.
    fn prefers_streaming(&self) -> bool {
        false
    }

    /// Materializes the array into dense row-major storage.
    fn to_dense(&self) -> Dense<T>
    where
        Self: Sized,
    {
        let (m, n) = (self.rows(), self.cols());
        let mut data = Vec::with_capacity(m * n);
        for i in 0..m {
            for j in 0..n {
                data.push(self.entry(i, j));
            }
        }
        Dense::from_vec(m, n, data)
    }

    /// One full row as a `Vec`.
    fn row(&self, i: usize) -> Vec<T>
    where
        Self: Sized,
    {
        (0..self.cols()).map(|j| self.entry(i, j)).collect()
    }
}

impl<T: Value, A: Array2d<T> + ?Sized> Array2d<T> for &A {
    fn rows(&self) -> usize {
        (**self).rows()
    }
    fn cols(&self) -> usize {
        (**self).cols()
    }
    fn entry(&self, i: usize, j: usize) -> T {
        (**self).entry(i, j)
    }
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        // Forward explicitly so references keep the inner specialization.
        (**self).fill_row(i, cols, out)
    }
    fn row_view(&self, i: usize, cols: Range<usize>) -> Option<&[T]> {
        (**self).row_view(i, cols)
    }
    fn prefers_streaming(&self) -> bool {
        (**self).prefers_streaming()
    }
}

/// Dense row-major storage.
#[derive(Clone, Debug, PartialEq)]
pub struct Dense<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Value> Dense<T> {
    /// Creates a dense array from row-major data; `data.len()` must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "dense array data length {} != {rows} x {cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a dense array from nested rows (convenient in tests).
    pub fn from_rows(rows: Vec<Vec<T>>) -> Self {
        let m = rows.len();
        let n = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(m * n);
        for (i, r) in rows.into_iter().enumerate() {
            assert_eq!(r.len(), n, "row {i} has ragged length");
            data.extend(r);
        }
        Self::from_vec(m, n, data)
    }

    /// Creates a constant-filled array.
    pub fn filled(rows: usize, cols: usize, v: T) -> Self {
        Self::from_vec(rows, cols, vec![v; rows * cols])
    }

    /// Builds a dense array by tabulating `f` over all index pairs.
    pub fn tabulate(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Mutable access to an entry.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Underlying row-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// A view of row `i` as a slice.
    pub fn row_slice(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

impl<T: Value> Array2d<T> for Dense<T> {
    #[inline]
    fn rows(&self) -> usize {
        self.rows
    }
    #[inline]
    fn cols(&self) -> usize {
        self.cols
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }
    #[inline]
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        let base = i * self.cols;
        out.copy_from_slice(&self.data[base + cols.start..base + cols.end]);
    }
    #[inline]
    fn row_view(&self, i: usize, cols: Range<usize>) -> Option<&[T]> {
        let base = i * self.cols;
        Some(&self.data[base + cols.start..base + cols.end])
    }
}

/// Closure-backed array: entries are computed on demand.
///
/// This is the natural representation for geometric instances (e.g. the
/// inter-chain distance array of Figure 1.1, where `a[i,j] = d(p_i, q_j)`
/// is computed from the two vertex lists in constant time).
#[derive(Clone, Debug)]
pub struct FnArray<F> {
    rows: usize,
    cols: usize,
    f: F,
}

impl<F> FnArray<F> {
    /// Creates a closure-backed `rows × cols` array.
    pub fn new(rows: usize, cols: usize, f: F) -> Self {
        Self { rows, cols, f }
    }
}

impl<T: Value, F: Fn(usize, usize) -> T + Sync> Array2d<T> for FnArray<F> {
    #[inline]
    fn rows(&self) -> usize {
        self.rows
    }
    #[inline]
    fn cols(&self) -> usize {
        self.cols
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        (self.f)(i, j)
    }
    fn prefers_streaming(&self) -> bool {
        true
    }
}

/// Entry-wise negation: row maxima of `A` are row minima of `Negate(A)`.
#[derive(Clone, Copy, Debug)]
pub struct Negate<A>(pub A);

impl<T: Value, A: Array2d<T>> Array2d<T> for Negate<A> {
    fn rows(&self) -> usize {
        self.0.rows()
    }
    fn cols(&self) -> usize {
        self.0.cols()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        self.0.entry(i, j).neg()
    }
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        self.0.fill_row(i, cols, out);
        for v in out.iter_mut() {
            *v = v.neg();
        }
    }
    fn prefers_streaming(&self) -> bool {
        // Negation can never serve `row_view`, but its `fill_row`
        // stays cheap exactly when the inner one does.
        self.0.prefers_streaming()
    }
}

/// Column reversal: converts between Monge and inverse-Monge.
#[derive(Clone, Copy, Debug)]
pub struct ReverseCols<A>(pub A);

impl<T: Value, A: Array2d<T>> Array2d<T> for ReverseCols<A> {
    fn rows(&self) -> usize {
        self.0.rows()
    }
    fn cols(&self) -> usize {
        self.0.cols()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        self.0.entry(i, self.0.cols() - 1 - j)
    }
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        // View columns [lo, hi) are parent columns [n - hi, n - lo), read
        // in reverse order.
        let n = self.0.cols();
        self.0.fill_row(i, n - cols.end..n - cols.start, out);
        out.reverse();
    }
    fn prefers_streaming(&self) -> bool {
        self.0.prefers_streaming()
    }
}

/// Row reversal: also converts between Monge and inverse-Monge.
#[derive(Clone, Copy, Debug)]
pub struct ReverseRows<A>(pub A);

impl<T: Value, A: Array2d<T>> Array2d<T> for ReverseRows<A> {
    fn rows(&self) -> usize {
        self.0.rows()
    }
    fn cols(&self) -> usize {
        self.0.cols()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        self.0.entry(self.0.rows() - 1 - i, j)
    }
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        self.0.fill_row(self.0.rows() - 1 - i, cols, out);
    }
    fn row_view(&self, i: usize, cols: Range<usize>) -> Option<&[T]> {
        self.0.row_view(self.0.rows() - 1 - i, cols)
    }
    fn prefers_streaming(&self) -> bool {
        self.0.prefers_streaming()
    }
}

/// Transposition: Monge-ness is preserved.
#[derive(Clone, Copy, Debug)]
pub struct Transpose<A>(pub A);

impl<T: Value, A: Array2d<T>> Array2d<T> for Transpose<A> {
    fn rows(&self) -> usize {
        self.0.cols()
    }
    fn cols(&self) -> usize {
        self.0.rows()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        self.0.entry(j, i)
    }
    fn prefers_streaming(&self) -> bool {
        // A transposed row is a column of the inner array: never
        // contiguous, so the whole-row buffer path has no locality
        // advantage to offer over streaming chunks.
        true
    }
}

/// A contiguous sub-array `A[r0..r1, c0..c1]`. Any sub-array of a Monge
/// array is Monge; this is what makes divide-and-conquer possible.
#[derive(Clone, Debug)]
pub struct SubArray<A> {
    inner: A,
    row_range: Range<usize>,
    col_range: Range<usize>,
}

impl<A> SubArray<A> {
    /// Creates a view of `inner[rows, cols]`.
    pub fn new<T: Value>(inner: A, rows: Range<usize>, cols: Range<usize>) -> Self
    where
        A: Array2d<T>,
    {
        assert!(rows.end <= inner.rows() && cols.end <= inner.cols());
        assert!(rows.start <= rows.end && cols.start <= cols.end);
        Self {
            inner,
            row_range: rows,
            col_range: cols,
        }
    }

    /// The row offset of this view inside the parent array.
    pub fn row_offset(&self) -> usize {
        self.row_range.start
    }

    /// The column offset of this view inside the parent array.
    pub fn col_offset(&self) -> usize {
        self.col_range.start
    }
}

impl<T: Value, A: Array2d<T>> Array2d<T> for SubArray<A> {
    fn rows(&self) -> usize {
        self.row_range.end - self.row_range.start
    }
    fn cols(&self) -> usize {
        self.col_range.end - self.col_range.start
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        self.inner
            .entry(self.row_range.start + i, self.col_range.start + j)
    }
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        let c0 = self.col_range.start;
        self.inner.fill_row(
            self.row_range.start + i,
            c0 + cols.start..c0 + cols.end,
            out,
        );
    }
    fn row_view(&self, i: usize, cols: Range<usize>) -> Option<&[T]> {
        let c0 = self.col_range.start;
        self.inner
            .row_view(self.row_range.start + i, c0 + cols.start..c0 + cols.end)
    }
    fn prefers_streaming(&self) -> bool {
        self.inner.prefers_streaming()
    }
}

/// Entry-wise sum of two equal-shape arrays. Monge arrays are closed
/// under addition (the quadrangle inequalities add), which is how
/// compound cost structures — e.g. a distance term plus per-row/column
/// charges — stay searchable.
#[derive(Clone, Copy, Debug)]
pub struct Plus<A, B>(pub A, pub B);

impl<T: Value, A: Array2d<T>, B: Array2d<T>> Array2d<T> for Plus<A, B> {
    fn rows(&self) -> usize {
        debug_assert_eq!(self.0.rows(), self.1.rows());
        self.0.rows()
    }
    fn cols(&self) -> usize {
        debug_assert_eq!(self.0.cols(), self.1.cols());
        self.0.cols()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        self.0.entry(i, j).add(self.1.entry(i, j))
    }
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        // Batch the left operand; fold the right one in per element (no
        // scratch buffer is available for a second batched fill).
        self.0.fill_row(i, cols.clone(), out);
        for (slot, j) in out.iter_mut().zip(cols) {
            *slot = slot.add(self.1.entry(i, j));
        }
    }
    fn prefers_streaming(&self) -> bool {
        // The sum must be computed element-wise regardless, so stream
        // whenever either operand would; a stored left operand only
        // feeds the per-chunk `fill_row` faster.
        self.0.prefers_streaming() || self.1.prefers_streaming()
    }
}

/// A row-sampled view: row `i` of the view is row `index_of(i)` of the
/// parent, for an arbitrary strictly increasing row selection. Selecting
/// rows (or columns) of a Monge array keeps it Monge.
#[derive(Clone, Debug)]
pub struct SelectRows<A> {
    inner: A,
    rows: Vec<usize>,
}

impl<A> SelectRows<A> {
    /// Creates a view of the given rows (must be strictly increasing).
    pub fn new<T: Value>(inner: A, rows: Vec<usize>) -> Self
    where
        A: Array2d<T>,
    {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        if let Some(&last) = rows.last() {
            assert!(last < inner.rows());
        }
        Self { inner, rows }
    }

    /// The parent row index of view row `i`.
    pub fn parent_row(&self, i: usize) -> usize {
        self.rows[i]
    }
}

impl<T: Value, A: Array2d<T>> Array2d<T> for SelectRows<A> {
    fn rows(&self) -> usize {
        self.rows.len()
    }
    fn cols(&self) -> usize {
        self.inner.cols()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        self.inner.entry(self.rows[i], j)
    }
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        self.inner.fill_row(self.rows[i], cols, out);
    }
    fn row_view(&self, i: usize, cols: Range<usize>) -> Option<&[T]> {
        self.inner.row_view(self.rows[i], cols)
    }
    fn prefers_streaming(&self) -> bool {
        self.inner.prefers_streaming()
    }
}

/// A column-selected view (strictly increasing column selection).
#[derive(Clone, Debug)]
pub struct SelectCols<A> {
    inner: A,
    cols: Vec<usize>,
}

impl<A> SelectCols<A> {
    /// Creates a view of the given columns (must be strictly increasing).
    pub fn new<T: Value>(inner: A, cols: Vec<usize>) -> Self
    where
        A: Array2d<T>,
    {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        if let Some(&last) = cols.last() {
            assert!(last < inner.cols());
        }
        Self { inner, cols }
    }

    /// The parent column index of view column `j`.
    pub fn parent_col(&self, j: usize) -> usize {
        self.cols[j]
    }
}

impl<T: Value, A: Array2d<T>> Array2d<T> for SelectCols<A> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.cols.len()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        self.inner.entry(i, self.cols[j])
    }
    fn prefers_streaming(&self) -> bool {
        // Column selection gathers from scattered positions; like
        // `Transpose` there is no contiguity for the buffer path to
        // exploit.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dense<i64> {
        Dense::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]])
    }

    #[test]
    fn dense_round_trip() {
        let a = sample();
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.entry(0, 0), 1);
        assert_eq!(a.entry(1, 2), 6);
        assert_eq!(a.row(1), vec![4, 5, 6]);
        assert_eq!(a.row_slice(0), &[1, 2, 3]);
    }

    #[test]
    fn tabulate_matches_closure() {
        let a = Dense::tabulate(3, 4, |i, j| (i * 10 + j) as i64);
        let f = FnArray::new(3, 4, |i, j| (i * 10 + j) as i64);
        assert_eq!(a, f.to_dense());
    }

    #[test]
    fn negate_adapter() {
        let a = Negate(sample());
        assert_eq!(a.entry(0, 0), -1);
        assert_eq!(a.entry(1, 2), -6);
    }

    #[test]
    fn reverse_cols_adapter() {
        let a = ReverseCols(sample());
        assert_eq!(a.entry(0, 0), 3);
        assert_eq!(a.entry(0, 2), 1);
        assert_eq!(a.entry(1, 1), 5);
    }

    #[test]
    fn reverse_rows_adapter() {
        let a = ReverseRows(sample());
        assert_eq!(a.entry(0, 0), 4);
        assert_eq!(a.entry(1, 0), 1);
    }

    #[test]
    fn transpose_adapter() {
        let a = Transpose(sample());
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 2);
        assert_eq!(a.entry(2, 1), 6);
    }

    #[test]
    fn sub_array_view() {
        let a = Dense::tabulate(5, 5, |i, j| (i * 5 + j) as i64);
        let s = SubArray::new(&a, 1..4, 2..5);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 3);
        assert_eq!(s.entry(0, 0), 7);
        assert_eq!(s.entry(2, 2), 19);
        assert_eq!(s.row_offset(), 1);
        assert_eq!(s.col_offset(), 2);
    }

    #[test]
    fn select_rows_and_cols() {
        let a = Dense::tabulate(6, 6, |i, j| (i * 6 + j) as i64);
        let r = SelectRows::new(&a, vec![0, 2, 5]);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.entry(1, 3), 15);
        assert_eq!(r.parent_row(2), 5);
        let c = SelectCols::new(&a, vec![1, 4]);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.entry(3, 1), 22);
        assert_eq!(c.parent_col(0), 1);
    }

    #[test]
    fn plus_adapter_preserves_monge() {
        use crate::monge::is_monge;
        let a = Dense::tabulate(6, 7, |i, j| -((i * j) as i64));
        let b = Dense::tabulate(6, 7, |i, j| {
            let d = i as i64 - j as i64;
            d * d
        });
        assert!(is_monge(&a) && is_monge(&b));
        let s = Plus(&a, &b);
        assert!(is_monge(&s), "Monge closed under +");
        assert_eq!(s.entry(2, 3), a.entry(2, 3) + b.entry(2, 3));
        // And searching the sum works like any other array.
        let idx = crate::smawk::row_minima_monge(&s).index;
        assert_eq!(idx, crate::monge::brute_row_minima(&s));
    }

    #[test]
    fn row_view_zero_copy_paths() {
        let a = Dense::tabulate(4, 6, |i, j| (i * 6 + j) as i64);
        assert_eq!(a.row_view(2, 1..5).unwrap(), &[13, 14, 15, 16]);
        let s = SubArray::new(&a, 1..4, 2..6);
        assert_eq!(s.row_view(0, 0..4).unwrap(), &[8, 9, 10, 11]);
        let r = ReverseRows(&a);
        assert_eq!(r.row_view(0, 0..2).unwrap(), &[18, 19]);
        let sel = SelectRows::new(&a, vec![0, 3]);
        assert_eq!(sel.row_view(1, 0..3).unwrap(), &[18, 19, 20]);
        // Adapters that would have to *compute* entries must decline.
        assert!(Negate(&a).row_view(0, 0..6).is_none());
        assert!(ReverseCols(&a).row_view(0, 0..6).is_none());
        let f = FnArray::new(2, 2, |i, j| (i + j) as i64);
        assert!(f.row_view(0, 0..2).is_none());
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = Dense::from_rows(vec![vec![1i64, 2], vec![3]]);
    }

    #[test]
    fn infinity_entries_flow_through_adapters() {
        let inf = <i64 as Value>::INFINITY;
        let a = Dense::from_rows(vec![vec![1, inf], vec![2, inf]]);
        assert!(Value::is_pos_infinite(Negate(&a).entry(0, 1).neg()));
        assert!(Value::is_pos_infinite(ReverseCols(&a).entry(0, 0)));
    }
}
