//! Online row minima of Monge-structured implicit arrays — the "on-line
//! dynamic programming" setting of the paper's \[LS89\] citation (Larmore &
//! Schieber, RNA secondary structure) and the engine behind the
//! economic-lot-size application (\[AP90\]).
//!
//! The implicit array `a[j][i] = o_i + w(i, j)` (`0 ≤ i < j ≤ n`) has
//! row `j`'s minimum needed *before* the next candidate offset `o_j` —
//! which may depend on it — is revealed, so SMAWK cannot run. Both
//! quadrangle-inequality orientations admit `O(n lg n)` champion-stack
//! algorithms, but they are mirror images of each other:
//!
//! * **Monge weights** (`w(i,j) + w(i',j') ≤ w(i,j') + w(i',j)`, e.g.
//!   *convex* gap functions `w = g(j-i)` and the lot-size costs):
//!   leftmost argmins are non-decreasing in `j`, a newer candidate's
//!   advantage improves with `j`, and each newcomer captures a **suffix**
//!   of the future — maintained by popping/pushing at the *back*
//!   ([`online_monge_minima`]).
//! * **Inverse-Monge weights** (the reverse inequality, e.g. *concave*
//!   gap functions like `√(j-i)` or `ln(1+j-i)` — the "concave LWS" of
//!   the molecular-biology literature): argmins are non-increasing, a
//!   newcomer either wins row `j+1` immediately or never, capturing a
//!   **prefix** — maintained at the *front*
//!   ([`online_inverse_monge_minima`]).
//!
//! Correctness of the single-interval insertions follows from argmin
//! monotonicity (per-column offsets preserve both array classes), and is
//! enforced by oracle comparison in the tests.

use crate::value::Value;

/// Online minima for **Monge** weights (see module docs):
///
/// ```text
/// m[j] = min_{0 <= i < j}  o_i + w(i, j),      j = 1..=n,
/// ```
///
/// with `o_0` given and `o_j = offset_of(j, m[j])` revealed after row
/// `j`'s minimum (pass `|_, m| m` for the least-weight-subsequence
/// recurrence). Returns `(m[j], argmin_j)` for `j = 1..=n`.
///
/// ```
/// use monge_core::online::online_monge_minima;
///
/// // Least-weight subsequence with a convex (Monge) gap cost: each
/// // step pays (j - i)², so the optimum chains unit steps.
/// let w = |i: usize, j: usize| ((j - i) * (j - i)) as i64;
/// let out = online_monge_minima(5, w, |_, m| m, 0i64);
/// assert_eq!(out.last().unwrap().0, 5); // five unit steps
/// assert_eq!(out[4].1, 4);              // row 5 came from candidate 4
/// ```
pub fn online_monge_minima<T: Value>(
    n: usize,
    w: impl Fn(usize, usize) -> T,
    mut offset_of: impl FnMut(usize, T) -> T,
    o0: T,
) -> Vec<(T, usize)> {
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return out;
    }
    let mut offsets: Vec<T> = Vec::with_capacity(n + 1);
    offsets.push(o0);
    // Champion intervals (candidate, first_row), ordered by first_row;
    // consumed intervals are skipped at `front`, beaten ones popped from
    // the back. Argmin monotonicity (non-decreasing) guarantees a
    // newcomer's territory is one suffix, so back-only maintenance is
    // exact.
    let mut stack: Vec<(usize, usize)> = vec![(0, 1)];
    let mut front = 0usize;
    for j in 1..=n {
        while front + 1 < stack.len() && stack[front + 1].1 <= j {
            front += 1;
        }
        let i = stack[front].0;
        let m = offsets[i].add(w(i, j));
        out.push((m, i));
        if j == n {
            break;
        }
        let oj = offset_of(j, m);
        offsets.push(oj);
        let beats = |i_old: usize, row: usize| {
            offsets[j]
                .add(w(j, row))
                .total_lt(offsets[i_old].add(w(i_old, row)))
        };
        loop {
            let (bi, bs) = *stack.last().expect("stack never empties");
            let s = bs.max(j + 1);
            if beats(bi, s) {
                if stack.len() - 1 > front {
                    stack.pop();
                    continue;
                }
                stack.push((j, j + 1));
                break;
            }
            if beats(bi, n) {
                let (mut lo, mut hi) = (s + 1, n);
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if beats(bi, mid) {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                stack.push((j, lo));
            }
            break;
        }
    }
    out
}

/// Online minima for **inverse-Monge** weights (concave gap functions;
/// see module docs). Same protocol as [`online_monge_minima`].
pub fn online_inverse_monge_minima<T: Value>(
    n: usize,
    w: impl Fn(usize, usize) -> T,
    mut offset_of: impl FnMut(usize, T) -> T,
    o0: T,
) -> Vec<(T, usize)> {
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return out;
    }
    let mut offsets: Vec<T> = Vec::with_capacity(n + 1);
    offsets.push(o0);
    // Champion intervals ordered by first_row, maintained as a deque on a
    // Vec: `front` indexes the interval owning the next rows; a newcomer
    // either beats the front owner at row j+1 (and captures a prefix,
    // evicting front intervals it fully covers) or is discarded —
    // argmins are non-increasing, so a newcomer that loses row j+1 can
    // never win a later row.
    let mut deque: Vec<(usize, usize)> = vec![(0, 1)];
    let mut front = 0usize;
    for j in 1..=n {
        while front + 1 < deque.len() && deque[front + 1].1 <= j {
            front += 1;
        }
        let i = deque[front].0;
        let m = offsets[i].add(w(i, j));
        out.push((m, i));
        if j == n {
            break;
        }
        let oj = offset_of(j, m);
        offsets.push(oj);
        let beats = |i_old: usize, row: usize| {
            offsets[j]
                .add(w(j, row))
                .total_lt(offsets[i_old].add(w(i_old, row)))
        };
        // The owner of row j+1 sits at `front` (or is the newcomer's
        // predecessor interval if j+1 crosses a boundary — advance
        // lazily first).
        while front + 1 < deque.len() && deque[front + 1].1 <= j + 1 {
            front += 1;
        }
        if !beats(deque[front].0, j + 1) {
            continue; // never wins anything
        }
        // The newcomer owns a prefix [j+1, h). Evict intervals it covers
        // entirely: interval k (from front) is fully covered when the
        // newcomer still beats its owner at the interval's last row,
        // i.e. at the next interval's start - 1 (or n for the last).
        let mut k = front;
        loop {
            let end = if k + 1 < deque.len() {
                deque[k + 1].1 - 1
            } else {
                n
            };
            if beats(deque[k].0, end) {
                if k + 1 < deque.len() {
                    k += 1;
                    continue;
                }
                // Covers everything to n.
                deque.truncate(front);
                deque.push((j, j + 1));
                break;
            }
            // Partial coverage of interval k: crossover h in
            // (max(start_k, j+1), end]: first row where the newcomer
            // LOSES.
            let s = deque[k].1.max(j + 1);
            let (mut lo, mut hi) = (s, end);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if beats(deque[k].0, mid) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            // Rows [j+1, lo) are the newcomer's; interval k keeps
            // [lo, ...). Replace the evicted front intervals.
            let keep_owner = deque[k].0;
            let mut rebuilt: Vec<(usize, usize)> = deque[..front].to_vec();
            rebuilt.push((j, j + 1));
            rebuilt.push((keep_owner, lo));
            rebuilt.extend_from_slice(&deque[k + 1..]);
            deque = rebuilt;
            break;
        }
        // `front` still indexes the newcomer's interval position.
    }
    out
}

/// Brute-force oracle for the online protocols, `O(n²)`.
pub fn online_minima_brute<T: Value>(
    n: usize,
    w: impl Fn(usize, usize) -> T,
    mut offset_of: impl FnMut(usize, T) -> T,
    o0: T,
) -> Vec<(T, usize)> {
    let mut out = Vec::with_capacity(n);
    let mut offsets = vec![o0];
    for j in 1..=n {
        let mut best = 0usize;
        let mut best_v = offsets[0].add(w(0, j));
        for (i, &o) in offsets.iter().enumerate().skip(1) {
            let v = o.add(w(i, j));
            if v.total_lt(best_v) {
                best = i;
                best_v = v;
            }
        }
        out.push((best_v, best));
        if j < n {
            let oj = offset_of(j, best_v);
            offsets.push(oj);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn assert_same(a: &[(f64, usize)], b: &[(f64, usize)]) {
        assert_eq!(a.len(), b.len());
        for (k, ((va, _), (vb, _))) in a.iter().zip(b).enumerate() {
            assert!((va - vb).abs() < 1e-9, "row {}: {va} vs {vb}", k + 1);
        }
    }

    // ---- Monge (convex-gap) weights --------------------------------

    #[test]
    fn monge_lws_matches_brute() {
        let mut rng = StdRng::seed_from_u64(250);
        for n in [0usize, 1, 2, 10, 100, 500] {
            let fo: Vec<f64> = (0..=n).map(|_| rng.random_range(0.0..2.0)).collect();
            // Convex gap + per-candidate additive term: Monge.
            let w = |i: usize, j: usize| {
                let d = (j - i) as f64;
                0.03 * d * d + fo[i]
            };
            let fast = online_monge_minima(n, w, |_, m| m, 0.0);
            let brute = online_minima_brute(n, w, |_, m| m, 0.0);
            assert_same(&fast, &brute);
        }
    }

    #[test]
    fn monge_fixed_offsets_match_brute() {
        let mut rng = StdRng::seed_from_u64(251);
        for n in [2usize, 15, 60, 300] {
            let off: Vec<f64> = (0..=n).map(|_| rng.random_range(0.0..5.0)).collect();
            let w = |i: usize, j: usize| {
                let d = (j - i) as f64;
                d * d.ln_1p() // superlinear => convex => Monge
            };
            let fast = online_monge_minima(n, w, |j, _| off[j], off[0]);
            let brute = online_minima_brute(n, w, |j, _| off[j], off[0]);
            assert_same(&fast, &brute);
        }
    }

    #[test]
    fn monge_integer_values() {
        // w(i,j) = C - i*j is Monge over i < j (checked in the module
        // docs of the old revision; (i-i')(j'-j) <= 0).
        let w = |i: usize, j: usize| 1000i64 - (i as i64) * (j as i64);
        let n = 120;
        let fast = online_monge_minima(n, w, |_, m| m, 0i64);
        let brute = online_minima_brute(n, w, |_, m| m, 0i64);
        assert_eq!(fast, brute);
    }

    // ---- inverse-Monge (concave-gap) weights ------------------------

    #[test]
    fn concave_sqrt_matches_brute() {
        let mut rng = StdRng::seed_from_u64(252);
        for n in [0usize, 1, 2, 15, 100, 400] {
            let fo: Vec<f64> = (0..=n).map(|_| rng.random_range(0.0..2.0)).collect();
            let w = |i: usize, j: usize| ((j - i) as f64).sqrt() + fo[i];
            let fast = online_inverse_monge_minima(n, w, |_, m| m, 0.0);
            let brute = online_minima_brute(n, w, |_, m| m, 0.0);
            assert_same(&fast, &brute);
        }
    }

    #[test]
    fn concave_log_fixed_offsets() {
        let mut rng = StdRng::seed_from_u64(253);
        for n in [2usize, 15, 60, 300] {
            let off: Vec<f64> = (0..=n).map(|_| rng.random_range(0.0..5.0)).collect();
            let w = |i: usize, j: usize| ((j - i) as f64).ln_1p();
            let fast = online_inverse_monge_minima(n, w, |j, _| off[j], off[0]);
            let brute = online_minima_brute(n, w, |j, _| off[j], off[0]);
            assert_same(&fast, &brute);
        }
    }

    #[test]
    fn argmins_are_valid_predecessors() {
        let w = |i: usize, j: usize| ((j - i) as f64).sqrt();
        let out = online_inverse_monge_minima(60, w, |_, m| m, 0.0);
        for (k, &(_, arg)) in out.iter().enumerate() {
            assert!(arg <= k, "row {} picked future candidate {arg}", k + 1);
        }
        let w2 = |i: usize, j: usize| {
            let d = (j - i) as f64;
            d * d
        };
        let out = online_monge_minima(60, w2, |_, m| m, 0.0);
        for (k, &(_, arg)) in out.iter().enumerate() {
            assert!(arg <= k);
        }
    }

    #[test]
    fn linear_gap_is_both_classes() {
        // Linear g is simultaneously convex and concave: both engines
        // must agree with the oracle.
        let w = |i: usize, j: usize| 2.5 * (j - i) as f64;
        let n = 80;
        let brute = online_minima_brute(n, w, |_, m| m, 0.0);
        assert_same(&online_monge_minima(n, w, |_, m| m, 0.0), &brute);
        assert_same(&online_inverse_monge_minima(n, w, |_, m| m, 0.0), &brute);
    }
}
