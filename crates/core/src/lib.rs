//! # monge-core
//!
//! Core abstractions and sequential algorithms for searching in *Monge*,
//! *staircase-Monge* and *Monge-composite* arrays, reproducing the
//! definitions and sequential baselines of
//! *Aggarwal, Kravets, Park, Sen — "Parallel Searching in Generalized Monge
//! Arrays with Applications" (SPAA 1990)*.
//!
//! An `m × n` array `A = {a[i,j]}` is **Monge** if for all `i < k`, `j < l`
//!
//! ```text
//! a[i,j] + a[k,l] <= a[i,l] + a[k,j]            (1.1)
//! ```
//!
//! and **inverse-Monge** if the inequality is reversed (1.2). A
//! **staircase-Monge** array additionally allows `∞` entries, where the
//! infinite region spreads right and down, and (1.1) must hold whenever all
//! four entries are finite. A `p × q × r` array `C` is **Monge-composite**
//! if `c[i,j,k] = d[i,j] + e[j,k]` for Monge arrays `D` and `E`.
//!
//! This crate provides:
//!
//! * [`value`] — the [`value::Value`] scalar abstraction (finite numbers plus
//!   an explicit `∞`, exact integer instances for testing).
//! * [`array2d`] — lazily evaluated two-dimensional array views and the
//!   adapters (transpose / negate / reverse / sub-array) that interconvert
//!   row-minima and row-maxima problems.
//! * [`monge`] — verification predicates for every array class in the paper.
//! * [`generators`] — certified random instance generators (Monge via
//!   non-positive-density integration, staircase boundaries, convex chains).
//! * [`smawk`] — the `Θ(m+n)` SMAWK algorithm of \[AKM+87\] for row minima /
//!   maxima of (inverse-)Monge arrays, with explicit tie-breaking control.
//! * [`staircase`] — sequential row-minima of staircase-Monge arrays.
//! * [`tube`] — tube maxima / minima of Monge-composite arrays (the
//!   `(min,+)` / `(max,+)` middle-coordinate problem used by the paper's
//!   applications) plus the literal third-coordinate variant.
//! * [`ansv`] — all-nearest-smaller-values, the substrate used by the
//!   paper's Lemma 2.2 processor allocation.
//! * [`dist`] — DIST-matrix algebra ((min,+) products of Monge matrices)
//!   used by the string-editing application.
//! * [`eval`] — the batched evaluation layer: scratch-buffer interval
//!   scans over [`Array2d::fill_row`], streaming chunked scans for
//!   generator-backed arrays, the [`eval::CachedArray`] memoizing
//!   wrapper, and the [`eval::CountingArray`] evaluation-count metrics hook.
//! * [`kernel`] — vectorized `(min, argmin)` lane kernels (AVX2, behind
//!   the `simd` feature) and the [`kernel::Kernel`] runtime selection
//!   knob the scans and the dispatcher share.
//! * [`scratch`] — thread-local grow-only buffer arenas so recursion
//!   leaves (and rayon workers in `monge-parallel`) run allocation-free
//!   in steady state.
//! * [`tiebreak`] — the one implementation of the leftmost/rightmost
//!   tie-break rule every scan, reduction and candidate merge shares.
//! * [`guard`] — the fault model of the guarded dispatch layer:
//!   [`guard::SolveError`], [`guard::GuardPolicy`], cooperative
//!   cancellation ([`guard::CancelToken`] / [`guard::checkpoint`]) and
//!   the deterministic [`guard::FaultInjector`] test adaptor.
//! * [`problem`] — the solver-dispatch IR: [`problem::Problem`] /
//!   [`problem::Solution`] / [`problem::Telemetry`] plus the shared
//!   §1.2 Min/Max duality lowering ([`problem::lower_rows`]) that the
//!   `monge-parallel` backend registry consumes.
//! * [`queryindex`] — build-once / query-many submatrix serving: a
//!   segment tree of SMAWK-computed breakpoint envelopes answering
//!   rectangle min/max queries with zero source-array evaluations
//!   ([`queryindex::QueryIndex`]).

// The only unsafe code in this workspace's libraries is the AVX2
// kernel bodies (and their `TypeId`-checked slice casts) in
// [`kernel`], compiled only under the `simd` feature on x86-64; every
// other configuration is pure safe Rust, enforced at `forbid` level.
#![cfg_attr(
    not(all(feature = "simd", target_arch = "x86_64")),
    forbid(unsafe_code)
)]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ansv;
pub mod array2d;
pub mod banded;
pub mod dist;
pub mod eval;
pub mod generators;
pub mod guard;
pub mod kernel;
pub mod monge;
pub mod online;
pub mod problem;
pub mod queryindex;
pub mod scratch;
pub mod smawk;
pub mod staircase;
pub mod tiebreak;
pub mod tube;
pub mod value;

pub use array2d::{Array2d, Dense, FnArray};
pub use eval::{CachedArray, CountingArray};
pub use guard::{
    CancelToken, FaultInjector, FaultPlan, GuardOutcome, GuardPolicy, SolveError, Validation,
    ViolationAction,
};
pub use kernel::Kernel;
pub use problem::{
    MachineCounters, Objective, Problem, ProblemKind, Solution, Structure, Telemetry,
};
pub use queryindex::{QueryAnswer, QueryIndex};
pub use smawk::{
    row_maxima_inverse_monge, row_maxima_monge, row_minima_inverse_monge, row_minima_monge,
    RowExtrema,
};
pub use tiebreak::Tie;
pub use value::Value;
