//! The batched evaluation layer: scratch-buffer interval scans, a
//! memoizing row cache, and an entry-evaluation counter.
//!
//! Every searching engine in this workspace reduces to one inner
//! operation: *the leftmost (or rightmost) extremum of a contiguous row
//! interval*. Evaluating that interval one [`Array2d::entry`] call at a
//! time pays a generic-dispatch round-trip per element and hides the
//! access pattern from the compiler. The helpers here instead scan a
//! contiguous slice: borrowed in place via [`Array2d::row_view`] when
//! the array stores its rows (dense storage, cached rows — zero copies),
//! otherwise batched once into a reusable scratch buffer via
//! [`Array2d::fill_row`].
//!
//! [`CachedArray`] complements the batch primitive for *expensive
//! implicit* arrays (DIST products, geometric distance arrays): rows are
//! materialized once on first touch and atomically published, so
//! recursive subproblems that revisit a row stop recomputing its entries.
//! [`CountingArray`] is the metrics hook that makes those savings
//! observable in tests and benchmarks.

use crate::array2d::Array2d;
use crate::tiebreak::Tie;
use crate::value::Value;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Process-global tally of value comparisons performed by the slice
/// scans (and flushed in bulk by SMAWK's REDUCE/INTERPOLATE). Relaxed,
/// best-effort under concurrency — the telemetry layer snapshots deltas
/// around each dispatched solve.
static COMPARISONS: AtomicU64 = AtomicU64::new(0);

/// Current value of the process-global comparison counter.
pub fn comparison_count() -> u64 {
    COMPARISONS.load(Ordering::Relaxed)
}

/// Adds `n` comparisons to the process-global tally. Engines that keep
/// a local count on their hot path (SMAWK) flush it here once per call.
pub fn add_comparisons(n: u64) {
    if n > 0 {
        COMPARISONS.fetch_add(n, Ordering::Relaxed);
    }
}

// The slice scans below are two-level: a branch-free lane-parallel
// minimum per fixed-size block (eight independent accumulator chains, so
// the reduction is load-bound rather than serialized on one
// compare/select dependency), a once-per-block comparison against the
// incumbent, and a final rescan of the single winning block to recover
// the index. Only the block scans carry data-dependent state, and they
// touch `n / BLOCK` values.
//
// The naive one-pass scan is a trap here: its index-tracking update
// tends to get unrolled into *conditional branches*, and Monge rows are
// noisy-monotone (that structure is the point of the paper), so those
// branches mispredict constantly — measured ~3× slower than the same
// loop kept branchless. Short slices use a `select_unpredictable` scan
// for exactly that reason.

/// Lane count of the per-block reduction (accumulator chains kept live
/// at once).
const LANES: usize = 8;

/// Block width of the two-level scans: small enough that rescanning one
/// block is negligible, large enough that per-block work amortizes.
const BLOCK: usize = 256;

/// Branch-free minimum of a non-empty slice (lane-parallel).
#[inline]
fn block_min<T: Value>(v: &[T]) -> T {
    let mut it = v.chunks_exact(LANES);
    let mut m = v[0];
    if let Some(first) = it.next() {
        let mut acc: [T; LANES] = core::array::from_fn(|l| first[l]);
        for ch in &mut it {
            for l in 0..LANES {
                acc[l] = if ch[l].total_lt(acc[l]) {
                    ch[l]
                } else {
                    acc[l]
                };
            }
        }
        m = acc[0];
        for &a in &acc[1..] {
            m = if a.total_lt(m) { a } else { m };
        }
    }
    for &x in it.remainder() {
        m = if x.total_lt(m) { x } else { m };
    }
    m
}

/// Branch-free maximum of a non-empty slice (lane-parallel).
#[inline]
fn block_max<T: Value>(v: &[T]) -> T {
    let mut it = v.chunks_exact(LANES);
    let mut m = v[0];
    if let Some(first) = it.next() {
        let mut acc: [T; LANES] = core::array::from_fn(|l| first[l]);
        for ch in &mut it {
            for l in 0..LANES {
                acc[l] = if acc[l].total_lt(ch[l]) {
                    ch[l]
                } else {
                    acc[l]
                };
            }
        }
        m = acc[0];
        for &a in &acc[1..] {
            m = if m.total_lt(a) { a } else { m };
        }
    }
    for &x in it.remainder() {
        m = if m.total_lt(x) { x } else { m };
    }
    m
}

/// One-pass scan for short slices, pinned to conditional moves. The
/// tie rule is [`Tie::replaces_min`] — the same comparison SMAWK and
/// the parallel combiners use — and constant-folds after inlining.
#[inline]
fn small_argmin_tie<T: Value>(vals: &[T], tie: Tie) -> usize {
    let mut best = 0usize;
    let mut best_v = vals[0];
    for (k, &v) in vals.iter().enumerate().skip(1) {
        let take = tie.replaces_min(v, best_v);
        best = std::hint::select_unpredictable(take, k, best);
        best_v = std::hint::select_unpredictable(take, v, best_v);
    }
    best
}

#[inline]
fn small_argmax<T: Value>(vals: &[T]) -> usize {
    let mut best = 0usize;
    let mut best_v = vals[0];
    for (k, &v) in vals.iter().enumerate().skip(1) {
        let better = Tie::Left.replaces_max(v, best_v);
        best = std::hint::select_unpredictable(better, k, best);
        best_v = std::hint::select_unpredictable(better, v, best_v);
    }
    best
}

/// Index of the minimum of a non-empty slice under the given tie rule —
/// the one scan behind [`argmin_slice`] and [`argmin_slice_rightmost`].
/// Dispatches to the vector kernel ([`crate::kernel::argmin_lanes`])
/// when one is compiled in, supported and selected, else runs the
/// scalar blocked scan.
#[inline]
pub fn argmin_slice_tie<T: Value>(vals: &[T], tie: Tie) -> usize {
    debug_assert!(!vals.is_empty());
    add_comparisons(vals.len() as u64 - 1);
    if let Some(k) = crate::kernel::argmin_lanes(vals, tie) {
        return k;
    }
    argmin_slice_tie_scalar(vals, tie)
}

/// The scalar two-level blocked scan behind [`argmin_slice_tie`],
/// callable directly so tests and benchmarks can pin the reference
/// implementation regardless of the [`crate::kernel`] selection.
#[inline]
pub fn argmin_slice_tie_scalar<T: Value>(vals: &[T], tie: Tie) -> usize {
    debug_assert!(!vals.is_empty());
    if vals.len() < 2 * BLOCK {
        return small_argmin_tie(vals, tie);
    }
    // Under `Left` only strict improvement moves the winner, keeping the
    // *first* block attaining the minimum; under `Right` equality moves
    // it, keeping the *last*.
    let mut m = block_min(&vals[..BLOCK]);
    let mut best_start = 0usize;
    let mut start = BLOCK;
    while start < vals.len() {
        let end = (start + BLOCK).min(vals.len());
        let bm = block_min(&vals[start..end]);
        if tie.replaces_min(bm, m) {
            m = bm;
            best_start = start;
        }
        start = end;
    }
    let end = (best_start + BLOCK).min(vals.len());
    let block = vals[best_start..end].iter().enumerate();
    // Rescan the winning block from the tie rule's preferred side;
    // `x >= m` throughout, so `!(m < x)` means `x == m`.
    let k = match tie {
        Tie::Left => block.clone().find(|&(_, &x)| !m.total_lt(x)),
        Tie::Right => block.clone().rev().find(|&(_, &x)| !m.total_lt(x)),
    };
    // The winning block holds its own minimum, so the find always hits.
    best_start + k.map_or(0, |(k, _)| k)
}

/// Index of the **leftmost** minimum of a non-empty slice.
#[inline]
pub fn argmin_slice<T: Value>(vals: &[T]) -> usize {
    argmin_slice_tie(vals, Tie::Left)
}

/// Index of the **rightmost** minimum of a non-empty slice (ties move
/// right — the scan the reverse-and-negate maxima reductions need).
#[inline]
pub fn argmin_slice_rightmost<T: Value>(vals: &[T]) -> usize {
    argmin_slice_tie(vals, Tie::Right)
}

/// Index of the **leftmost** maximum of a non-empty slice. Dispatches
/// to the vector kernel like [`argmin_slice_tie`].
#[inline]
pub fn argmax_slice<T: Value>(vals: &[T]) -> usize {
    debug_assert!(!vals.is_empty());
    add_comparisons(vals.len() as u64 - 1);
    if let Some(k) = crate::kernel::argmax_lanes(vals) {
        return k;
    }
    argmax_slice_scalar(vals)
}

/// The scalar blocked scan behind [`argmax_slice`], callable directly
/// (see [`argmin_slice_tie_scalar`]).
#[inline]
pub fn argmax_slice_scalar<T: Value>(vals: &[T]) -> usize {
    debug_assert!(!vals.is_empty());
    if vals.len() < 2 * BLOCK {
        return small_argmax(vals);
    }
    let mut m = block_max(&vals[..BLOCK]);
    let mut best_start = 0usize;
    let mut start = BLOCK;
    while start < vals.len() {
        let end = (start + BLOCK).min(vals.len());
        let bm = block_max(&vals[start..end]);
        if m.total_lt(bm) {
            m = bm;
            best_start = start;
        }
        start = end;
    }
    let end = (best_start + BLOCK).min(vals.len());
    for (k, &x) in vals[best_start..end].iter().enumerate() {
        if !x.total_lt(m) {
            return best_start + k;
        }
    }
    best_start // unreachable: the winning block holds its own maximum
}

/// Grow-only scratch view: never shrinks and — crucially — never
/// re-zeroes memory the following `fill_row` will overwrite anyway.
#[inline]
fn scratch_slice<T: Value>(scratch: &mut Vec<T>, width: usize) -> &mut [T] {
    if scratch.len() < width {
        scratch.resize(width, T::ZERO);
    }
    &mut scratch[..width]
}

/// Chunk width of the streaming fused generate+reduce scans: one
/// stack-resident buffer of this many values (2 KiB for 64-bit types —
/// comfortably L1) is filled and reduced per round, so a generated row
/// never materializes in full. 256 also keeps the whole chunk inside
/// one scalar block of [`argmin_slice_tie_scalar`].
const STREAM_CHUNK: usize = 256;

/// Streaming leftmost/rightmost minimum of `a[row, lo..hi)` for arrays
/// whose rows are *generated* rather than stored
/// ([`Array2d::prefers_streaming`]): `fill_row` lands in a stack
/// buffer one `STREAM_CHUNK` at a time and each chunk is reduced
/// while it is hot in L1. This is what fixes the large-`n` regression
/// of the buffer-the-whole-row path — wide generated rows round-trip
/// through memory twice there (generate into scratch, then rescan),
/// and past the L1/L2 boundary the second pass is a cache-miss march.
///
/// Chunks are visited left to right, so merging each chunk's winner
/// with [`Tie::replaces_min`] preserves both tie conventions exactly.
#[inline]
pub fn stream_argmin_tie<T: Value, A: Array2d<T> + ?Sized>(
    a: &A,
    row: usize,
    lo: usize,
    hi: usize,
    tie: Tie,
) -> (usize, T) {
    debug_assert!(lo < hi);
    let mut buf = [T::ZERO; STREAM_CHUNK];
    let mut best_j = lo;
    let mut best_v = T::INFINITY;
    let mut first = true;
    let mut start = lo;
    while start < hi {
        let end = (start + STREAM_CHUNK).min(hi);
        let chunk = &mut buf[..end - start];
        a.fill_row(row, start..end, chunk);
        let k = argmin_slice_tie(chunk, tie);
        let v = chunk[k];
        // `first` guards the degenerate all-+∞ row: `replaces_min`
        // under `Left` would never replace the `INFINITY` seed.
        if first || tie.replaces_min(v, best_v) {
            best_j = start + k;
            best_v = v;
            first = false;
        }
        start = end;
    }
    (best_j, best_v)
}

/// Streaming leftmost maximum of `a[row, lo..hi)`; see
/// [`stream_argmin_tie`].
#[inline]
pub fn stream_argmax<T: Value, A: Array2d<T> + ?Sized>(
    a: &A,
    row: usize,
    lo: usize,
    hi: usize,
) -> (usize, T) {
    debug_assert!(lo < hi);
    let mut buf = [T::ZERO; STREAM_CHUNK];
    let mut best_j = lo;
    let mut best_v = T::NEG_INFINITY;
    let mut first = true;
    let mut start = lo;
    while start < hi {
        let end = (start + STREAM_CHUNK).min(hi);
        let chunk = &mut buf[..end - start];
        a.fill_row(row, start..end, chunk);
        let k = argmax_slice(chunk);
        let v = chunk[k];
        if first || Tie::Left.replaces_max(v, best_v) {
            best_j = start + k;
            best_v = v;
            first = false;
        }
        start = end;
    }
    (best_j, best_v)
}

/// Leftmost minimum of `a[row, lo..hi)`. Returns the *absolute* column
/// and its value. `lo < hi` required.
///
/// Arrays that hold the row in memory ([`Array2d::row_view`]) are
/// scanned in place with no copy at all; everything else goes through
/// one [`Array2d::fill_row`] into the reusable scratch buffer and one
/// slice scan.
#[inline]
pub fn interval_argmin<T: Value, A: Array2d<T>>(
    a: &A,
    row: usize,
    lo: usize,
    hi: usize,
    scratch: &mut Vec<T>,
) -> (usize, T) {
    crate::guard::checkpoint();
    debug_assert!(lo < hi);
    if let Some(vals) = a.row_view(row, lo..hi) {
        let k = argmin_slice(vals);
        return (lo + k, vals[k]);
    }
    if a.prefers_streaming() {
        return stream_argmin_tie(a, row, lo, hi, Tie::Left);
    }
    let buf = scratch_slice(scratch, hi - lo);
    a.fill_row(row, lo..hi, buf);
    let k = argmin_slice(buf);
    (lo + k, buf[k])
}

/// [`interval_argmin`] with the scratch buffer checked out of the
/// thread-local arena ([`crate::scratch`]): callers that cannot (or do
/// not want to) thread a `&mut Vec<T>` through their recursion get the
/// same zero-steady-state-allocation behavior for free.
#[inline]
pub fn interval_argmin_pooled<T: Value, A: Array2d<T>>(
    a: &A,
    row: usize,
    lo: usize,
    hi: usize,
) -> (usize, T) {
    crate::guard::checkpoint();
    if let Some(vals) = a.row_view(row, lo..hi) {
        let k = argmin_slice(vals);
        return (lo + k, vals[k]);
    }
    if a.prefers_streaming() {
        return stream_argmin_tie(a, row, lo, hi, Tie::Left);
    }
    crate::scratch::with_scratch(|scratch| interval_argmin(a, row, lo, hi, scratch))
}

/// Rightmost-minimum variant of [`interval_argmin_pooled`].
#[inline]
pub fn interval_argmin_rightmost_pooled<T: Value, A: Array2d<T>>(
    a: &A,
    row: usize,
    lo: usize,
    hi: usize,
) -> (usize, T) {
    crate::guard::checkpoint();
    if let Some(vals) = a.row_view(row, lo..hi) {
        let k = argmin_slice_rightmost(vals);
        return (lo + k, vals[k]);
    }
    if a.prefers_streaming() {
        return stream_argmin_tie(a, row, lo, hi, Tie::Right);
    }
    crate::scratch::with_scratch(|scratch| interval_argmin_rightmost(a, row, lo, hi, scratch))
}

/// Leftmost-maximum variant of [`interval_argmin_pooled`].
#[inline]
pub fn interval_argmax_pooled<T: Value, A: Array2d<T>>(
    a: &A,
    row: usize,
    lo: usize,
    hi: usize,
) -> (usize, T) {
    crate::guard::checkpoint();
    if let Some(vals) = a.row_view(row, lo..hi) {
        let k = argmax_slice(vals);
        return (lo + k, vals[k]);
    }
    if a.prefers_streaming() {
        return stream_argmax(a, row, lo, hi);
    }
    crate::scratch::with_scratch(|scratch| interval_argmax(a, row, lo, hi, scratch))
}

/// Rightmost-minimum variant of [`interval_argmin`].
#[inline]
pub fn interval_argmin_rightmost<T: Value, A: Array2d<T>>(
    a: &A,
    row: usize,
    lo: usize,
    hi: usize,
    scratch: &mut Vec<T>,
) -> (usize, T) {
    crate::guard::checkpoint();
    debug_assert!(lo < hi);
    if let Some(vals) = a.row_view(row, lo..hi) {
        let k = argmin_slice_rightmost(vals);
        return (lo + k, vals[k]);
    }
    if a.prefers_streaming() {
        return stream_argmin_tie(a, row, lo, hi, Tie::Right);
    }
    let buf = scratch_slice(scratch, hi - lo);
    a.fill_row(row, lo..hi, buf);
    let k = argmin_slice_rightmost(buf);
    (lo + k, buf[k])
}

/// Leftmost-maximum variant of [`interval_argmin`].
#[inline]
pub fn interval_argmax<T: Value, A: Array2d<T>>(
    a: &A,
    row: usize,
    lo: usize,
    hi: usize,
    scratch: &mut Vec<T>,
) -> (usize, T) {
    crate::guard::checkpoint();
    debug_assert!(lo < hi);
    if let Some(vals) = a.row_view(row, lo..hi) {
        let k = argmax_slice(vals);
        return (lo + k, vals[k]);
    }
    if a.prefers_streaming() {
        return stream_argmax(a, row, lo, hi);
    }
    let buf = scratch_slice(scratch, hi - lo);
    a.fill_row(row, lo..hi, buf);
    let k = argmax_slice(buf);
    (lo + k, buf[k])
}

/// A memoizing wrapper: rows of the inner array are materialized on
/// first touch and atomically published, so later reads — including
/// reads from other threads and other recursive subproblems — hit the
/// cache instead of re-evaluating entries.
///
/// The cache is sharded per row (one [`OnceLock`] each): the read path
/// is a single atomic load with no locks; the only synchronization is
/// the one-time publish of each row. Wrap arrays whose entries are
/// expensive to compute **and** whose rows are read densely or
/// repeatedly (implicit DIST factors, distance arrays scanned under
/// several goals). Do *not* wrap arrays consumed by a single sparse
/// `Θ(m + n)` pass such as one SMAWK call: materializing whole rows
/// would inflate that pass to `Θ(mn)` work.
pub struct CachedArray<T, A> {
    inner: A,
    rows: Box<[OnceLock<Box<[T]>>]>,
}

impl<T: Value, A: Array2d<T>> CachedArray<T, A> {
    /// Wraps an array, allocating the (empty) per-row cache shards.
    pub fn new(inner: A) -> Self {
        let m = inner.rows();
        let rows = (0..m).map(|_| OnceLock::new()).collect();
        Self { inner, rows }
    }

    /// The wrapped array.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Row `i`, materializing it on first touch.
    pub fn row_cached(&self, i: usize) -> &[T] {
        self.rows[i].get_or_init(|| {
            let n = self.inner.cols();
            let mut buf = vec![T::ZERO; n];
            self.inner.fill_row(i, 0..n, &mut buf);
            buf.into_boxed_slice()
        })
    }

    /// How many rows have been materialized so far.
    pub fn materialized_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.get().is_some()).count()
    }
}

impl<T: Value, A: Array2d<T>> Array2d<T> for CachedArray<T, A> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.inner.cols()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        self.row_cached(i)[j]
    }
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        out.copy_from_slice(&self.row_cached(i)[cols]);
    }
    fn row_view(&self, i: usize, cols: Range<usize>) -> Option<&[T]> {
        Some(&self.row_cached(i)[cols])
    }
}

/// An entry-evaluation counter: forwards to the inner array and counts
/// how many entries were computed (one per `entry` call, `cols.len()`
/// per `fill_row`). This is the metrics hook used to demonstrate that
/// [`CachedArray`] (and the batched engines) do strictly less evaluation
/// work.
pub struct CountingArray<A> {
    inner: A,
    count: AtomicU64,
}

impl<A> CountingArray<A> {
    /// Wraps an array with a zeroed counter.
    pub fn new(inner: A) -> Self {
        Self {
            inner,
            count: AtomicU64::new(0),
        }
    }

    /// Total entries evaluated through this wrapper so far.
    pub fn evaluations(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl<T: Value, A: Array2d<T>> Array2d<T> for CountingArray<A> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.inner.cols()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> T {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.entry(i, j)
    }
    fn fill_row(&self, i: usize, cols: Range<usize>, out: &mut [T]) {
        self.count.fetch_add(cols.len() as u64, Ordering::Relaxed);
        self.inner.fill_row(i, cols, out);
    }
    fn prefers_streaming(&self) -> bool {
        self.inner.prefers_streaming()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array2d::{Dense, FnArray};

    #[test]
    fn argmin_helpers_tie_break_correctly() {
        let v = [3i64, 1, 1, 2];
        assert_eq!(argmin_slice(&v), 1);
        assert_eq!(argmin_slice_rightmost(&v), 2);
        let w = [1i64, 4, 4, 0];
        assert_eq!(argmax_slice(&w), 1);
    }

    #[test]
    fn slice_scans_match_naive_reference() {
        // Dense plateaus exercise every tie-breaking branch; lengths
        // straddle the lane width, the block width and the small/blocked
        // crossover (2 * BLOCK = 512), plus 1- and 2-element edge cases.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [
            1usize, 2, 7, 8, 9, 63, 64, 65, 200, 255, 256, 257, 511, 512, 513, 1024, 2049,
        ] {
            for _ in 0..8 {
                let v: Vec<i64> = (0..len).map(|_| (next() % 4) as i64).collect();
                let naive_min = (0..len).min_by_key(|&k| (v[k], k)).unwrap();
                let naive_min_r = (0..len)
                    .min_by_key(|&k| (v[k], std::cmp::Reverse(k)))
                    .unwrap();
                let naive_max = (0..len)
                    .max_by_key(|&k| (v[k], std::cmp::Reverse(k)))
                    .unwrap();
                assert_eq!(argmin_slice(&v), naive_min, "len {len}");
                assert_eq!(argmin_slice_rightmost(&v), naive_min_r, "len {len}");
                assert_eq!(argmax_slice(&v), naive_max, "len {len}");
            }
        }
    }

    #[test]
    fn interval_scan_matches_entry_loop() {
        let a = Dense::tabulate(4, 9, |i, j| ((i * 13 + j * 7) % 11) as i64);
        let mut scratch = Vec::new();
        for i in 0..4 {
            let (j, v) = interval_argmin(&a, i, 2, 8, &mut scratch);
            let want = (2..8).min_by_key(|&j| (a.entry(i, j), j)).unwrap();
            assert_eq!(j, want);
            assert_eq!(v, a.entry(i, j));
        }
    }

    #[test]
    fn interval_scans_zero_copy_and_scratch_paths_agree() {
        let d = Dense::tabulate(3, 10, |i, j| ((i * 17 + j * 5) % 13) as i64 - 6);
        let f = FnArray::new(3, 10, |i, j| ((i * 17 + j * 5) % 13) as i64 - 6);
        assert!(d.row_view(0, 0..10).is_some());
        assert!(f.row_view(0, 0..10).is_none());
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        for i in 0..3 {
            assert_eq!(
                interval_argmin(&d, i, 1, 9, &mut s1),
                interval_argmin(&f, i, 1, 9, &mut s2)
            );
            assert_eq!(
                interval_argmin_rightmost(&d, i, 1, 9, &mut s1),
                interval_argmin_rightmost(&f, i, 1, 9, &mut s2)
            );
            assert_eq!(
                interval_argmax(&d, i, 1, 9, &mut s1),
                interval_argmax(&f, i, 1, 9, &mut s2)
            );
        }
        // The dense scans never needed the scratch buffer.
        assert!(s1.is_empty());
    }

    #[test]
    fn cached_array_serves_row_views() {
        let base = CountingArray::new(FnArray::new(4, 6, |i, j| (i * 6 + j) as i64));
        let cached = CachedArray::new(&base);
        assert_eq!(cached.row_view(2, 1..4).unwrap(), &[13, 14, 15]);
        assert_eq!(cached.row_view(2, 0..6).unwrap(), &[12, 13, 14, 15, 16, 17]);
        // One materialization served both views.
        assert_eq!(base.evaluations(), 6);
    }

    #[test]
    fn cached_array_evaluates_each_row_once() {
        let base = CountingArray::new(FnArray::new(5, 7, |i, j| (i * 7 + j) as i64));
        let cached = CachedArray::new(&base);
        for _pass in 0..3 {
            for i in 0..5 {
                for j in 0..7 {
                    assert_eq!(cached.entry(i, j), (i * 7 + j) as i64);
                }
            }
        }
        // Three full passes, but each row was materialized exactly once.
        assert_eq!(base.evaluations(), 5 * 7);
        assert_eq!(cached.materialized_rows(), 5);
    }

    #[test]
    fn cached_array_is_lazy_per_row() {
        let base = CountingArray::new(FnArray::new(6, 4, |i, j| (i + j) as i64));
        let cached = CachedArray::new(&base);
        let mut buf = vec![0i64; 2];
        cached.fill_row(3, 1..3, &mut buf);
        assert_eq!(buf, vec![4, 5]);
        assert_eq!(cached.materialized_rows(), 1);
        assert_eq!(base.evaluations(), 4); // one full row, nothing else
    }

    #[test]
    fn counting_array_counts_fill_row_elements() {
        let base = CountingArray::new(Dense::tabulate(3, 8, |i, j| (i + j) as i64));
        let mut buf = vec![0i64; 5];
        base.fill_row(1, 2..7, &mut buf);
        assert_eq!(base.evaluations(), 5);
        base.entry(0, 0);
        assert_eq!(base.evaluations(), 6);
    }
}
