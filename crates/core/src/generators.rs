//! Certified random instance generators.
//!
//! Every generator produces arrays that are Monge / inverse-Monge /
//! staircase-Monge *by construction*, so the test suite can both rely on
//! them and re-verify them with the predicates in [`crate::monge`].
//!
//! Two constructions are used:
//!
//! * **Density integration** (dense, the most general): a finite array is
//!   Monge iff its discrete mixed second difference ("density")
//!   `a[i,j] + a[i+1,j+1] - a[i,j+1] - a[i+1,j]` is everywhere `<= 0`.
//!   Drawing a non-negative random density `g` and integrating
//!   `a[i,j] = u[i] + v[j] - Σ_{i'<=i, j'<=j} g[i',j']` therefore yields a
//!   uniformly "generic" Monge array. `O(mn)` memory.
//! * **Structured implicit arrays** ([`ImplicitMonge`], `O(m + n + k)`
//!   memory, `O(k)` per entry): sums of terms `-w · min(x[i], y[j])` with
//!   ascending `x`, `y` and `w >= 0`, plus row/column offsets. `min` of
//!   monotone coordinates is supermodular, so each negated term is
//!   submodular (Monge), and Monge arrays are closed under addition. These
//!   power the large-`n` benchmarks where a dense array would not fit in
//!   memory.

use crate::array2d::{Array2d, Dense};
use crate::value::Value;
use rand::{Rng, RngExt};

/// Bounds used by the integer generators so that saturating arithmetic
/// (`i64` infinity at `i64::MAX / 4`) can never be reached by sums of
/// finitely many entries.
const OFFSET_RANGE: i64 = 1_000;
const DENSITY_RANGE: i64 = 16;

/// A dense random `m × n` Monge array over `i64` (density integration).
///
/// ```
/// use monge_core::generators::random_monge_dense;
/// use monge_core::monge::is_monge;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let a = random_monge_dense(8, 11, &mut StdRng::seed_from_u64(7));
/// assert!(is_monge(&a)); // certified by construction
/// ```
#[allow(clippy::needless_range_loop)] // u[i]/v[j] pair with prefix[j]
pub fn random_monge_dense(m: usize, n: usize, rng: &mut impl Rng) -> Dense<i64> {
    assert!(m > 0 && n > 0);
    // Prefix-summed density, built row by row.
    let mut prefix = vec![0i64; n];
    let mut data = Vec::with_capacity(m * n);
    let u: Vec<i64> = (0..m)
        .map(|_| rng.random_range(-OFFSET_RANGE..=OFFSET_RANGE))
        .collect();
    let v: Vec<i64> = (0..n)
        .map(|_| rng.random_range(-OFFSET_RANGE..=OFFSET_RANGE))
        .collect();
    for i in 0..m {
        let mut row_acc = 0i64;
        for j in 0..n {
            // Leave the first row and column density-free so the array's
            // margins stay random.
            let g = if i == 0 || j == 0 {
                0
            } else {
                rng.random_range(0..=DENSITY_RANGE)
            };
            row_acc += g;
            prefix[j] += row_acc;
            data.push(u[i] + v[j] - prefix[j]);
        }
    }
    Dense::from_vec(m, n, data)
}

/// A dense random `m × n` inverse-Monge array over `i64`.
pub fn random_inverse_monge_dense(m: usize, n: usize, rng: &mut impl Rng) -> Dense<i64> {
    let a = random_monge_dense(m, n, rng);
    let data = a.data().iter().map(|&x| -x).collect();
    Dense::from_vec(m, n, data)
}

/// A dense random `m × n` Monge array over `f64`.
pub fn random_monge_dense_f64(m: usize, n: usize, rng: &mut impl Rng) -> Dense<f64> {
    let a = random_monge_dense(m, n, rng);
    let data = a.data().iter().map(|&x| x as f64).collect();
    Dense::from_vec(m, n, data)
}

/// A random non-increasing staircase boundary `f_1 >= f_2 >= … >= f_m`,
/// with `1 <= f_i <= n` (every row keeps at least one finite entry, so row
/// minima stay well-defined).
pub fn random_staircase_boundary(m: usize, n: usize, rng: &mut impl Rng) -> Vec<usize> {
    assert!(m > 0 && n > 0);
    let mut f: Vec<usize> = (0..m).map(|_| rng.random_range(1..=n)).collect();
    f.sort_unstable_by(|a, b| b.cmp(a));
    f
}

/// A dense random `m × n` staircase-Monge array over `i64`: a Monge base
/// with a random legal staircase of `∞` entries.
pub fn random_staircase_monge_dense(m: usize, n: usize, rng: &mut impl Rng) -> Dense<i64> {
    let base = random_monge_dense(m, n, rng);
    let f = random_staircase_boundary(m, n, rng);
    apply_staircase(&base, &f)
}

/// A dense random `m × n` staircase-**inverse**-Monge array over `i64`
/// (negated Monge base under a legal staircase of `+∞`).
pub fn random_staircase_inverse_monge_dense(m: usize, n: usize, rng: &mut impl Rng) -> Dense<i64> {
    let base = random_monge_dense(m, n, rng);
    let f = random_staircase_boundary(m, n, rng);
    Dense::tabulate(m, n, |i, j| {
        if j >= f[i] {
            <i64 as Value>::INFINITY
        } else {
            -base.entry(i, j)
        }
    })
}

/// Masks `base` with the staircase boundary `f` (entries at columns
/// `>= f[i]` become `+∞`).
pub fn apply_staircase(base: &Dense<i64>, f: &[usize]) -> Dense<i64> {
    let (m, n) = (base.rows(), base.cols());
    assert_eq!(f.len(), m);
    Dense::tabulate(m, n, |i, j| {
        if j >= f[i] {
            <i64 as Value>::INFINITY
        } else {
            base.entry(i, j)
        }
    })
}

/// One `-w · min(x[i], y[j])` term of an [`ImplicitMonge`] array.
#[derive(Clone, Debug)]
struct Bump {
    weight: i64,
    x: Vec<i64>,
    y: Vec<i64>,
}

/// An implicit Monge array with `O(m + n)` memory and `O(k)`-time entries,
/// for benchmark sizes where dense storage is impossible.
///
/// `a[i,j] = row_off[i] + col_off[j] - Σ_k w_k · min(x_k[i], y_k[j])` with
/// `w_k >= 0` and each `x_k`, `y_k` ascending — Monge by the supermodularity
/// of `min` over monotone coordinates.
#[derive(Clone, Debug)]
pub struct ImplicitMonge {
    row_off: Vec<i64>,
    col_off: Vec<i64>,
    bumps: Vec<Bump>,
    negate: bool,
}

impl ImplicitMonge {
    /// A random implicit `m × n` Monge array with `k` structural terms.
    pub fn random(m: usize, n: usize, k: usize, rng: &mut impl Rng) -> Self {
        assert!(m > 0 && n > 0);
        let row_off = (0..m)
            .map(|_| rng.random_range(-OFFSET_RANGE..=OFFSET_RANGE))
            .collect();
        let col_off = (0..n)
            .map(|_| rng.random_range(-OFFSET_RANGE..=OFFSET_RANGE))
            .collect();
        let bumps = (0..k)
            .map(|_| {
                let mut x: Vec<i64> = (0..m).map(|_| rng.random_range(0..=OFFSET_RANGE)).collect();
                let mut y: Vec<i64> = (0..n).map(|_| rng.random_range(0..=OFFSET_RANGE)).collect();
                x.sort_unstable();
                y.sort_unstable();
                Bump {
                    weight: rng.random_range(0..=DENSITY_RANGE),
                    x,
                    y,
                }
            })
            .collect();
        Self {
            row_off,
            col_off,
            bumps,
            negate: false,
        }
    }

    /// A random implicit inverse-Monge array (entry-wise negation).
    pub fn random_inverse(m: usize, n: usize, k: usize, rng: &mut impl Rng) -> Self {
        let mut a = Self::random(m, n, k, rng);
        a.negate = true;
        a
    }
}

impl Array2d<i64> for ImplicitMonge {
    fn rows(&self) -> usize {
        self.row_off.len()
    }
    fn cols(&self) -> usize {
        self.col_off.len()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> i64 {
        let mut v = self.row_off[i] + self.col_off[j];
        for b in &self.bumps {
            v -= b.weight * b.x[i].min(b.y[j]);
        }
        if self.negate {
            -v
        } else {
            v
        }
    }
    fn fill_row(&self, i: usize, cols: std::ops::Range<usize>, out: &mut [i64]) {
        // Hoist the per-row terms (`row_off[i]`, each bump's `x[i]`) out
        // of the column loop; the inner loops run over contiguous slices.
        let ri = self.row_off[i];
        for (slot, &c) in out.iter_mut().zip(&self.col_off[cols.clone()]) {
            *slot = ri + c;
        }
        for b in &self.bumps {
            let (w, xi) = (b.weight, b.x[i]);
            // `y` is ascending, so `min(x[i], y[j])` crosses over once:
            // `y[j]` below the partition point, the constant `x[i]` at
            // and above it (equals may go either side — `min` agrees).
            // The prefix keeps the multiply; the suffix collapses to a
            // single splat subtraction, halving the work on average.
            let ys = &b.y[cols.clone()];
            let c = ys.partition_point(|&yj| yj < xi);
            for (slot, &yj) in out[..c].iter_mut().zip(&ys[..c]) {
                *slot -= w * yj;
            }
            let wx = w * xi;
            for slot in &mut out[c..] {
                *slot -= wx;
            }
        }
        if self.negate {
            for slot in out.iter_mut() {
                *slot = -*slot;
            }
        }
    }
    fn prefers_streaming(&self) -> bool {
        true
    }
}

/// The sorted-transportation Monge family `a[i,j] = |x_i - y_j|` for
/// ascending `x`, `y` — G. Monge's own 1781 example class, useful as a
/// structurally different test family.
#[derive(Clone, Debug)]
pub struct TransportArray {
    x: Vec<i64>,
    y: Vec<i64>,
}

impl TransportArray {
    /// Random sorted supply/demand positions.
    pub fn random(m: usize, n: usize, rng: &mut impl Rng) -> Self {
        let mut x: Vec<i64> = (0..m)
            .map(|_| rng.random_range(0..=OFFSET_RANGE * 10))
            .collect();
        let mut y: Vec<i64> = (0..n)
            .map(|_| rng.random_range(0..=OFFSET_RANGE * 10))
            .collect();
        x.sort_unstable();
        y.sort_unstable();
        Self { x, y }
    }
}

impl Array2d<i64> for TransportArray {
    fn rows(&self) -> usize {
        self.x.len()
    }
    fn cols(&self) -> usize {
        self.y.len()
    }
    #[inline]
    fn entry(&self, i: usize, j: usize) -> i64 {
        (self.x[i] - self.y[j]).abs()
    }
    fn fill_row(&self, i: usize, cols: std::ops::Range<usize>, out: &mut [i64]) {
        let xi = self.x[i];
        for (slot, &yj) in out.iter_mut().zip(&self.y[cols]) {
            *slot = (xi - yj).abs();
        }
    }
    fn prefers_streaming(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monge::{has_staircase_shape, is_inverse_monge, is_monge, is_staircase_monge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_generator_is_monge() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, n) in &[(1, 1), (2, 7), (7, 2), (16, 16), (23, 31)] {
            let a = random_monge_dense(m, n, &mut rng);
            assert!(is_monge(&a), "{m}x{n} not Monge");
        }
    }

    #[test]
    fn dense_inverse_generator_is_inverse_monge() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_inverse_monge_dense(13, 9, &mut rng);
        assert!(is_inverse_monge(&a));
    }

    #[test]
    fn f64_generator_is_monge() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_monge_dense_f64(10, 12, &mut rng);
        assert!(is_monge(&a));
    }

    #[test]
    fn staircase_generator_is_staircase_monge() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let a = random_staircase_monge_dense(12, 15, &mut rng);
            assert!(has_staircase_shape(&a));
            assert!(is_staircase_monge(&a));
        }
    }

    #[test]
    fn staircase_boundary_is_non_increasing_and_positive() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = random_staircase_boundary(50, 20, &mut rng);
        assert!(f.windows(2).all(|w| w[0] >= w[1]));
        assert!(f.iter().all(|&x| (1..=20).contains(&x)));
    }

    #[test]
    fn implicit_monge_is_monge() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = ImplicitMonge::random(17, 13, 4, &mut rng);
        assert!(is_monge(&a));
        let b = ImplicitMonge::random_inverse(9, 21, 3, &mut rng);
        assert!(is_inverse_monge(&b));
    }

    #[test]
    fn implicit_monge_zero_bumps_is_additive() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = ImplicitMonge::random(5, 5, 0, &mut rng);
        assert!(is_monge(&a));
        assert!(is_inverse_monge(&a)); // additive arrays are both
    }

    #[test]
    fn transport_array_is_monge() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = TransportArray::random(14, 18, &mut rng);
        assert!(is_monge(&a));
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let a = random_monge_dense(6, 6, &mut StdRng::seed_from_u64(42));
        let b = random_monge_dense(6, 6, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
