//! Submatrix query serving: build a [`QueryIndex`] over a fixed Monge
//! (or inverse-Monge) array once, then answer rectangle minimum /
//! maximum queries `(r1..r2, c1..c2)` without touching the source array
//! again.
//!
//! ## Structure
//!
//! The index is a segment tree over the row set. Each canonical node
//! covering rows `[lo, hi)` stores, for both objectives, the node's
//! **column-extrema envelope**: for every column `j`, the optimum of
//! `a[lo..hi, j]` together with the smallest row attaining it. Because
//! the transpose of a (inverse-)Monge array is (inverse-)Monge, the
//! owning-row map `j → row(j)` is computed with the existing SMAWK
//! layer — [`crate::smawk::row_minima_totally_monotone`] on the §1.2
//! lowering of the transposed row-slab — and is monotone, so it
//! compresses into a short list of **breakpoint segments** (constant
//! owning row per segment, at most `min(hi-lo, n)` of them).
//!
//! Per segment the envelope keeps the lexicographically best cell
//! `(value, row, col)`, and a sparse table over those champions answers
//! any run of *whole* segments in `O(1)`. A query decomposes its row
//! range into `O(lg m)` canonical nodes; inside each node a predecessor
//! search over the breakpoint starts locates the at-most-two *partial*
//! boundary segments, which are finished from the index's own row store
//! (dense copy of the array plus 64-wide block min/max summaries).
//! Queries therefore evaluate **zero** source-array entries, and cost
//! `O(lg m · (lg n + B))` store reads each.
//!
//! The build evaluates each source entry exactly once (the row-store
//! fill); every SMAWK pass and summary scan reads the store, not the
//! source. Build loops call [`crate::guard::checkpoint`], so guarded
//! builds honor deadlines and cancellation.
//!
//! ```
//! use monge_core::array2d::Dense;
//! use monge_core::problem::Structure;
//! use monge_core::queryindex::QueryIndex;
//!
//! let a = Dense::tabulate(16, 16, |i, j| {
//!     let d = i as i64 - j as i64;
//!     d * d // Monge
//! });
//! let ix = QueryIndex::build(&a, Structure::Monge).unwrap();
//! let ans = ix.query_min(2..9, 4..13).unwrap();
//! assert_eq!((ans.value, ans.row, ans.col), (0, 4, 4));
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::array2d::{Array2d, Dense, SubArray, Transpose};
use crate::guard::{checkpoint, SolveError};
use crate::problem::{lower_rows, mirror_indices, Objective, Structure};
use crate::smawk::row_minima_totally_monotone;
use crate::tiebreak::Tie;
use crate::value::Value;

/// Width of the row store's per-block summaries. Partial blocks at the
/// edges of a scan are finished element-wise, so a row-interval scan
/// reads `O(BLOCK + len/BLOCK)` stored values.
const BLOCK: usize = 64;

/// Child-pointer sentinel for leaf nodes.
const NONE: u32 = u32::MAX;

/// One rectangle-query answer: the optimal value and the cell that
/// attains it under the index's tie rule (smallest row, then smallest
/// column, among optimal cells).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryAnswer<T> {
    /// The optimum over the rectangle.
    pub value: T,
    /// Smallest row attaining the optimum.
    pub row: usize,
    /// Smallest column attaining the optimum within that row.
    pub col: usize,
}

/// A candidate cell during query combination (`u32` coordinates keep
/// the per-segment storage at 16 bytes + `T`).
#[derive(Clone, Copy)]
struct Cand<T> {
    value: T,
    row: u32,
    col: u32,
}

impl<T: Value> Cand<T> {
    /// Does `self` beat `other` under `objective`? Strictly better
    /// value wins; equal values fall back to the smaller `(row, col)`.
    fn beats(&self, other: &Cand<T>, objective: Objective) -> bool {
        let (a, b) = (self.value, other.value);
        let better = match objective {
            Objective::Minimize => T::total_lt(a, b),
            Objective::Maximize => T::total_lt(b, a),
        };
        if better {
            return true;
        }
        let worse = match objective {
            Objective::Minimize => T::total_lt(b, a),
            Objective::Maximize => T::total_lt(a, b),
        };
        if worse {
            return false;
        }
        (self.row, self.col) < (other.row, other.col)
    }
}

/// Folds `cand` into `acc`, keeping the better cell.
fn fold<T: Value>(acc: &mut Option<Cand<T>>, cand: Cand<T>, objective: Objective) {
    match acc {
        Some(best) if !cand.beats(best, objective) => {}
        _ => *acc = Some(cand),
    }
}

/// Dense copy of the source array plus 64-wide per-block min/max
/// summaries (value + leftmost attaining column). All query-time value
/// reads come from here, never from the source array.
struct RowStore<T> {
    dense: Dense<T>,
    blocks_per_row: usize,
    bmin: Vec<T>,
    bmin_col: Vec<u32>,
    bmax: Vec<T>,
    bmax_col: Vec<u32>,
    /// Any `±∞` sentinel present? Sentinel-bearing arrays satisfy the
    /// Monge inequality only in the absorbing arithmetic of
    /// [`Value::add`], which is too weak for SMAWK's total-monotonicity
    /// invariant (tied sentinels can move an argmin leftward), so the
    /// envelope build swaps to a direct column sweep.
    infinite: bool,
}

impl<T: Value> RowStore<T> {
    fn build(array: &dyn Array2d<T>) -> Self {
        let (m, n) = (array.rows(), array.cols());
        let mut data = vec![T::ZERO; m * n];
        for (i, row) in data.chunks_mut(n).enumerate() {
            checkpoint();
            array.fill_row(i, 0..n, row);
        }
        let dense = Dense::from_vec(m, n, data);
        let blocks_per_row = n.div_ceil(BLOCK);
        let mut bmin = Vec::with_capacity(m * blocks_per_row);
        let mut bmin_col = Vec::with_capacity(m * blocks_per_row);
        let mut bmax = Vec::with_capacity(m * blocks_per_row);
        let mut bmax_col = Vec::with_capacity(m * blocks_per_row);
        let mut infinite = false;
        for i in 0..m {
            checkpoint();
            let row = dense.row_view(i, 0..n).expect("dense rows are contiguous");
            for (b, chunk) in row.chunks(BLOCK).enumerate() {
                let base = (b * BLOCK) as u32;
                let (mut lo, mut lo_col) = (chunk[0], base);
                let (mut hi, mut hi_col) = (chunk[0], base);
                infinite |= chunk[0].is_infinite();
                for (off, &v) in chunk.iter().enumerate().skip(1) {
                    infinite |= v.is_infinite();
                    if T::total_lt(v, lo) {
                        lo = v;
                        lo_col = base + off as u32;
                    }
                    if T::total_lt(hi, v) {
                        hi = v;
                        hi_col = base + off as u32;
                    }
                }
                bmin.push(lo);
                bmin_col.push(lo_col);
                bmax.push(hi);
                bmax_col.push(hi_col);
            }
        }
        RowStore {
            dense,
            blocks_per_row,
            bmin,
            bmin_col,
            bmax,
            bmax_col,
            infinite,
        }
    }

    fn value(&self, row: usize, col: usize) -> T {
        self.dense.entry(row, col)
    }

    /// Leftmost optimum of the stored row over `cols` (non-empty).
    /// Short intervals scan directly; long ones use whole-block
    /// summaries between element-wise partial edges.
    fn scan(&self, row: usize, cols: Range<usize>, objective: Objective) -> Cand<T> {
        debug_assert!(!cols.is_empty());
        let (lo, hi) = (cols.start, cols.end);
        let row_u32 = row as u32;
        let slice = self
            .dense
            .row_view(row, 0..self.dense.cols())
            .expect("dense rows are contiguous");
        let scan_elems = |from: usize, to: usize, best: &mut Option<Cand<T>>| {
            for (off, &v) in slice[from..to].iter().enumerate() {
                fold(
                    best,
                    Cand {
                        value: v,
                        row: row_u32,
                        col: (from + off) as u32,
                    },
                    objective,
                );
            }
        };
        let mut best: Option<Cand<T>> = None;
        if hi - lo <= 2 * BLOCK {
            scan_elems(lo, hi, &mut best);
            return best.expect("non-empty scan");
        }
        let first_full = lo.div_ceil(BLOCK);
        let last_full = hi / BLOCK; // exclusive
        scan_elems(lo, first_full * BLOCK, &mut best);
        let base = row * self.blocks_per_row;
        for b in first_full..last_full {
            let (v, c) = match objective {
                Objective::Minimize => (self.bmin[base + b], self.bmin_col[base + b]),
                Objective::Maximize => (self.bmax[base + b], self.bmax_col[base + b]),
            };
            fold(
                &mut best,
                Cand {
                    value: v,
                    row: row_u32,
                    col: c,
                },
                objective,
            );
        }
        scan_elems(last_full * BLOCK, hi, &mut best);
        best.expect("non-empty scan")
    }

    fn bytes(&self) -> u64 {
        let t = std::mem::size_of::<T>() as u64;
        let cells = (self.dense.rows() * self.dense.cols()) as u64;
        let blocks = self.bmin.len() as u64;
        cells * t + blocks * (2 * t + 8)
    }
}

/// One canonical node's breakpoint envelope for one objective: the
/// column-extrema of the node's row slab, compressed into runs of
/// constant owning row, with per-segment champion cells and a sparse
/// table over them.
struct Envelope<T> {
    /// Segment start columns (`starts[0] == 0`), sorted ascending.
    starts: Vec<u32>,
    /// Owning row (absolute) per segment.
    owner: Vec<u32>,
    /// Champion value per segment (the segment's best column-extremum).
    best_val: Vec<T>,
    /// Champion column per segment (leftmost attaining `best_val`).
    best_col: Vec<u32>,
    /// Sparse table: `table[k-1][i]` is the champion segment index of
    /// segments `[i, i + 2^k)`.
    table: Vec<Vec<u32>>,
}

impl<T: Value> Envelope<T> {
    /// Builds the envelope of rows `[lo, hi)` from the store. Leaves
    /// skip SMAWK entirely (one segment owned by the single row).
    fn build(
        store: &RowStore<T>,
        structure: Structure,
        objective: Objective,
        rows: Range<usize>,
    ) -> Self {
        checkpoint();
        let n = store.dense.cols();
        let (lo, hi) = (rows.start, rows.end);
        if hi - lo == 1 {
            let champ = store.scan(lo, 0..n, objective);
            return Envelope {
                starts: vec![0],
                owner: vec![lo as u32],
                best_val: vec![champ.value],
                best_col: vec![champ.col],
                table: Vec::new(),
            };
        }
        // Column extrema of the slab = row extrema of its transpose,
        // which is (inverse-)Monge whenever the source is. The §1.2
        // lowering plus SMAWK yields, per column, the smallest owning
        // row (Tie::Left on the transpose's columns = rows here).
        //
        // Sentinel-bearing arrays (`±∞` staircase masks) are Monge only
        // under absorbing addition — SMAWK's monotone-argmin invariant
        // can break where sentinels tie — so they take a direct
        // column sweep instead (same lex rule, O(rows·cols) per node).
        let owners: Vec<usize> = if store.infinite {
            (0..n)
                .map(|j| {
                    let mut best = lo;
                    for i in lo + 1..hi {
                        let better = match objective {
                            Objective::Minimize => {
                                T::total_lt(store.value(i, j), store.value(best, j))
                            }
                            Objective::Maximize => {
                                T::total_lt(store.value(best, j), store.value(i, j))
                            }
                        };
                        if better {
                            best = i;
                        }
                    }
                    best - lo
                })
                .collect()
        } else {
            let slab = SubArray::new(&store.dense, lo..hi, 0..n);
            let t = Transpose(&slab);
            let (mut owners, mirror) =
                lower_rows(&t, structure, objective, Tie::Left, |arr, tie| {
                    row_minima_totally_monotone(&arr, tie)
                });
            if let Some(w) = mirror {
                mirror_indices(&mut owners, w);
            }
            owners
        };
        let mut starts = Vec::new();
        let mut owner = Vec::new();
        let mut best_val = Vec::new();
        let mut best_col = Vec::new();
        for (j, &off) in owners.iter().enumerate() {
            let row = (lo + off) as u32;
            let v = store.value(lo + off, j);
            if owner.last() == Some(&row) {
                let s = best_val.len() - 1;
                let better = match objective {
                    Objective::Minimize => T::total_lt(v, best_val[s]),
                    Objective::Maximize => T::total_lt(best_val[s], v),
                };
                if better {
                    best_val[s] = v;
                    best_col[s] = j as u32;
                }
            } else {
                starts.push(j as u32);
                owner.push(row);
                best_val.push(v);
                best_col.push(j as u32);
            }
        }
        let mut env = Envelope {
            starts,
            owner,
            best_val,
            best_col,
            table: Vec::new(),
        };
        env.build_table(objective);
        env
    }

    fn champion(&self, seg: usize) -> Cand<T> {
        Cand {
            value: self.best_val[seg],
            row: self.owner[seg],
            col: self.best_col[seg],
        }
    }

    fn build_table(&mut self, objective: Objective) {
        let s = self.starts.len();
        let mut prev: Vec<u32> = (0..s as u32).collect();
        let mut width = 1usize;
        while 2 * width <= s {
            let level: Vec<u32> = (0..s - 2 * width + 1)
                .map(|i| {
                    let (a, b) = (prev[i] as usize, prev[i + width] as usize);
                    if self.champion(a).beats(&self.champion(b), objective) {
                        a as u32
                    } else {
                        b as u32
                    }
                })
                .collect();
            self.table.push(level.clone());
            prev = level;
            width *= 2;
        }
    }

    /// Champion segment of the non-empty segment range `[a, b)`.
    fn range_champion(&self, a: usize, b: usize, objective: Objective) -> Cand<T> {
        debug_assert!(a < b);
        let k = usize::BITS - 1 - (b - a).leading_zeros();
        if k == 0 {
            return self.champion(a);
        }
        let left = self.table[(k - 1) as usize][a] as usize;
        let right = self.table[(k - 1) as usize][b - (1 << k)] as usize;
        let (lc, rc) = (self.champion(left), self.champion(right));
        if lc.beats(&rc, objective) {
            lc
        } else {
            rc
        }
    }

    /// Index of the segment containing column `c`, counting every
    /// binary-search step into `probes`.
    fn locate(&self, c: u32, probes: &mut u64) -> usize {
        let (mut lo, mut hi) = (0usize, self.starts.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            *probes += 1;
            if self.starts[mid] <= c {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo - 1
    }

    /// The envelope's best cell over columns `cols` (non-empty): up to
    /// two partial boundary segments finished from the row store, whole
    /// segments between them answered by the sparse table.
    fn query(
        &self,
        store: &RowStore<T>,
        objective: Objective,
        cols: Range<usize>,
        probes: &mut u64,
    ) -> Cand<T> {
        let (c1, c2) = (cols.start, cols.end);
        let s1 = self.locate(c1 as u32, probes);
        let s2 = self.locate((c2 - 1) as u32, probes);
        if s1 == s2 {
            return store.scan(self.owner[s1] as usize, c1..c2, objective);
        }
        let mut best: Option<Cand<T>> = None;
        let s1_end = self.starts[s1 + 1] as usize;
        fold(
            &mut best,
            store.scan(self.owner[s1] as usize, c1..s1_end, objective),
            objective,
        );
        if s1 + 1 < s2 {
            fold(
                &mut best,
                self.range_champion(s1 + 1, s2, objective),
                objective,
            );
        }
        let s2_start = self.starts[s2] as usize;
        fold(
            &mut best,
            store.scan(self.owner[s2] as usize, s2_start..c2, objective),
            objective,
        );
        best.expect("non-empty envelope query")
    }

    fn bytes(&self) -> u64 {
        let t = std::mem::size_of::<T>() as u64;
        let segs = self.starts.len() as u64;
        let table: u64 = self.table.iter().map(|l| l.len() as u64 * 4).sum();
        segs * (t + 12) + table
    }
}

/// One segment-tree node: a canonical row interval and its two
/// envelopes.
struct Node<T> {
    lo: u32,
    hi: u32,
    left: u32,
    right: u32,
    min_env: Envelope<T>,
    max_env: Envelope<T>,
}

/// A submatrix-query index over a fixed Monge or inverse-Monge array —
/// see the [module docs](self) for the structure. Build once with
/// [`QueryIndex::build`], then serve [`QueryIndex::query_min`] /
/// [`QueryIndex::query_max`] from any number of threads (`&self`
/// queries; the usage counters are atomic).
pub struct QueryIndex<T> {
    structure: Structure,
    store: RowStore<T>,
    nodes: Vec<Node<T>>,
    root: u32,
    breakpoints: u64,
    queries: AtomicU64,
    probes: AtomicU64,
}

impl<T: Value> std::fmt::Debug for QueryIndex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryIndex")
            .field("rows", &self.rows())
            .field("cols", &self.cols())
            .field("structure", &self.structure)
            .field("breakpoints", &self.breakpoints)
            .finish_non_exhaustive()
    }
}

impl<T: Value> QueryIndex<T> {
    /// Preprocesses `array` for rectangle min/max serving.
    ///
    /// The build evaluates each source entry exactly once and runs
    /// `O(m)` SMAWK passes over the internal store (`O(n lg m)` store
    /// reads total). Loops call [`checkpoint`], so a guarded caller's
    /// deadline or cancellation aborts mid-build.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidInput`] when the array is empty or the
    /// structural promise is [`Structure::Plain`] — without (inverse-)
    /// Monge structure the envelopes are not segment-decomposable and
    /// the index would silently return wrong answers.
    pub fn build(array: &dyn Array2d<T>, structure: Structure) -> Result<Self, SolveError> {
        if structure == Structure::Plain {
            return Err(SolveError::InvalidInput {
                reason: "query index requires a Monge or inverse-Monge promise".to_string(),
            });
        }
        let (m, n) = (array.rows(), array.cols());
        if m == 0 || n == 0 {
            return Err(SolveError::InvalidInput {
                reason: format!("query index over an empty array ({m} x {n})"),
            });
        }
        if m >= NONE as usize || n >= NONE as usize {
            return Err(SolveError::InvalidInput {
                reason: format!("array extent {m} x {n} exceeds the index's u32 coordinates"),
            });
        }
        let store = RowStore::build(array);
        let mut nodes = Vec::with_capacity(2 * m);
        let root = Self::build_node(&mut nodes, &store, structure, 0, m);
        let breakpoints = nodes
            .iter()
            .map(|nd| (nd.min_env.starts.len() + nd.max_env.starts.len()) as u64)
            .sum();
        Ok(QueryIndex {
            structure,
            store,
            nodes,
            root,
            breakpoints,
            queries: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        })
    }

    fn build_node(
        nodes: &mut Vec<Node<T>>,
        store: &RowStore<T>,
        structure: Structure,
        lo: usize,
        hi: usize,
    ) -> u32 {
        checkpoint();
        let (left, right) = if hi - lo == 1 {
            (NONE, NONE)
        } else {
            let mid = lo + (hi - lo) / 2;
            (
                Self::build_node(nodes, store, structure, lo, mid),
                Self::build_node(nodes, store, structure, mid, hi),
            )
        };
        let min_env = Envelope::build(store, structure, Objective::Minimize, lo..hi);
        let max_env = Envelope::build(store, structure, Objective::Maximize, lo..hi);
        nodes.push(Node {
            lo: lo as u32,
            hi: hi as u32,
            left,
            right,
            min_env,
            max_env,
        });
        (nodes.len() - 1) as u32
    }

    /// Rows of the indexed array.
    pub fn rows(&self) -> usize {
        self.store.dense.rows()
    }

    /// Columns of the indexed array.
    pub fn cols(&self) -> usize {
        self.store.dense.cols()
    }

    /// The structural promise the index was built under.
    pub fn structure(&self) -> Structure {
        self.structure
    }

    /// The rectangle minimum over `rows × cols`: smallest value, ties
    /// broken to the smallest row and then the smallest column.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidInput`] on an empty or out-of-bounds range.
    pub fn query_min(
        &self,
        rows: Range<usize>,
        cols: Range<usize>,
    ) -> Result<QueryAnswer<T>, SolveError> {
        self.query(rows, cols, Objective::Minimize)
    }

    /// The rectangle maximum over `rows × cols` (same tie rule as
    /// [`QueryIndex::query_min`]).
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidInput`] on an empty or out-of-bounds range.
    pub fn query_max(
        &self,
        rows: Range<usize>,
        cols: Range<usize>,
    ) -> Result<QueryAnswer<T>, SolveError> {
        self.query(rows, cols, Objective::Maximize)
    }

    fn query(
        &self,
        rows: Range<usize>,
        cols: Range<usize>,
        objective: Objective,
    ) -> Result<QueryAnswer<T>, SolveError> {
        if rows.is_empty() || cols.is_empty() {
            return Err(SolveError::InvalidInput {
                reason: format!("empty query range ({rows:?} x {cols:?})"),
            });
        }
        if rows.end > self.rows() || cols.end > self.cols() {
            return Err(SolveError::InvalidInput {
                reason: format!(
                    "query ({rows:?} x {cols:?}) exceeds the indexed array ({} x {})",
                    self.rows(),
                    self.cols()
                ),
            });
        }
        let mut probes = 0u64;
        let mut best: Option<Cand<T>> = None;
        self.visit(self.root, &rows, &cols, objective, &mut best, &mut probes);
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.probes.fetch_add(probes, Ordering::Relaxed);
        let best = best.expect("canonical decomposition covers a non-empty range");
        Ok(QueryAnswer {
            value: best.value,
            row: best.row as usize,
            col: best.col as usize,
        })
    }

    fn visit(
        &self,
        node: u32,
        rows: &Range<usize>,
        cols: &Range<usize>,
        objective: Objective,
        best: &mut Option<Cand<T>>,
        probes: &mut u64,
    ) {
        let nd = &self.nodes[node as usize];
        let (lo, hi) = (nd.lo as usize, nd.hi as usize);
        if rows.end <= lo || hi <= rows.start {
            return;
        }
        if rows.start <= lo && hi <= rows.end {
            let env = match objective {
                Objective::Minimize => &nd.min_env,
                Objective::Maximize => &nd.max_env,
            };
            fold(
                best,
                env.query(&self.store, objective, cols.clone(), probes),
                objective,
            );
            return;
        }
        self.visit(nd.left, rows, cols, objective, best, probes);
        self.visit(nd.right, rows, cols, objective, best, probes);
    }

    /// Approximate heap footprint of the index (store, summaries,
    /// envelopes, and sparse tables), in bytes.
    pub fn bytes(&self) -> u64 {
        let envs: u64 = self
            .nodes
            .iter()
            .map(|nd| nd.min_env.bytes() + nd.max_env.bytes() + 16)
            .sum();
        self.store.bytes() + envs
    }

    /// Total breakpoint segments stored across every canonical node's
    /// two envelopes.
    pub fn breakpoints(&self) -> u64 {
        self.breakpoints
    }

    /// Rectangle queries answered since the build (or the last
    /// [`QueryIndex::take_counters`]).
    pub fn queries_answered(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Predecessor-search probe steps performed while answering those
    /// queries.
    pub fn predecessor_probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Drains the usage counters, returning `(queries, probes)` — the
    /// service layer folds these into per-tenant telemetry rollups
    /// without double counting across drains.
    pub fn take_counters(&self) -> (u64, u64) {
        (
            self.queries.swap(0, Ordering::Relaxed),
            self.probes.swap(0, Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array2d::Negate;

    /// Brute rectangle optimum with the index's exact tie rule.
    fn brute<T: Value>(
        a: &dyn Array2d<T>,
        rows: Range<usize>,
        cols: Range<usize>,
        objective: Objective,
    ) -> QueryAnswer<T> {
        let mut best: Option<QueryAnswer<T>> = None;
        for i in rows {
            for j in cols.clone() {
                let v = a.entry(i, j);
                let replace = match &best {
                    None => true,
                    Some(b) => match objective {
                        Objective::Minimize => T::total_lt(v, b.value),
                        Objective::Maximize => T::total_lt(b.value, v),
                    },
                };
                if replace {
                    best = Some(QueryAnswer {
                        value: v,
                        row: i,
                        col: j,
                    });
                }
            }
        }
        best.expect("non-empty rectangle")
    }

    fn monge(m: usize, n: usize) -> Dense<i64> {
        Dense::tabulate(m, n, |i, j| {
            let d = i as i64 - j as i64;
            d * d + 3 * j as i64
        })
    }

    fn all_rects(m: usize, n: usize) -> Vec<(Range<usize>, Range<usize>)> {
        let mut out = Vec::new();
        for r1 in 0..m {
            for r2 in r1 + 1..=m {
                for c1 in 0..n {
                    for c2 in c1 + 1..=n {
                        out.push((r1..r2, c1..c2));
                    }
                }
            }
        }
        out
    }

    #[test]
    fn exhaustive_small_monge_min_and_max() {
        let a = monge(7, 9);
        assert!(crate::monge::is_monge(&a));
        let ix = QueryIndex::build(&a, Structure::Monge).unwrap();
        for (rows, cols) in all_rects(7, 9) {
            let got = ix.query_min(rows.clone(), cols.clone()).unwrap();
            assert_eq!(
                got,
                brute(&a, rows.clone(), cols.clone(), Objective::Minimize)
            );
            let got = ix.query_max(rows.clone(), cols.clone()).unwrap();
            assert_eq!(got, brute(&a, rows, cols, Objective::Maximize));
        }
    }

    #[test]
    fn exhaustive_small_inverse_monge() {
        let a = Dense::tabulate(8, 6, |i, j| -monge(8, 6).entry(i, j));
        assert!(crate::monge::is_inverse_monge(&a));
        let ix = QueryIndex::build(&a, Structure::InverseMonge).unwrap();
        for (rows, cols) in all_rects(8, 6) {
            let got = ix.query_min(rows.clone(), cols.clone()).unwrap();
            assert_eq!(
                got,
                brute(&a, rows.clone(), cols.clone(), Objective::Minimize)
            );
            let got = ix.query_max(rows.clone(), cols.clone()).unwrap();
            assert_eq!(got, brute(&a, rows, cols, Objective::Maximize));
        }
    }

    #[test]
    fn wide_rows_exercise_block_summaries() {
        // Columns beyond 2 * BLOCK force the summary path in scans.
        let n = 4 * BLOCK + 17;
        let a = monge(3, n);
        let ix = QueryIndex::build(&a, Structure::Monge).unwrap();
        for (rows, cols) in [
            (0..3, 0..n),
            (1..2, 5..n - 3),
            (0..2, BLOCK..3 * BLOCK + 1),
            (2..3, 0..2 * BLOCK + 1),
        ] {
            let got = ix.query_min(rows.clone(), cols.clone()).unwrap();
            assert_eq!(
                got,
                brute(&a, rows.clone(), cols.clone(), Objective::Minimize)
            );
            let got = ix.query_max(rows.clone(), cols.clone()).unwrap();
            assert_eq!(got, brute(&a, rows, cols, Objective::Maximize));
        }
    }

    #[test]
    fn floats_use_the_total_order() {
        let a = Dense::tabulate(5, 5, |i, j| {
            let d = i as f64 - j as f64;
            d * d * 0.5
        });
        let ix = QueryIndex::build(&a, Structure::Monge).unwrap();
        for (rows, cols) in all_rects(5, 5) {
            let got = ix.query_min(rows.clone(), cols.clone()).unwrap();
            assert_eq!(got, brute(&a, rows, cols, Objective::Minimize));
        }
    }

    #[test]
    fn negate_wrapper_builds_too() {
        // The build reads through the Array2d trait, so adapters work.
        let a = monge(6, 6);
        let neg = Negate(&a);
        let ix = QueryIndex::build(&neg, Structure::InverseMonge).unwrap();
        let got = ix.query_max(0..6, 0..6).unwrap();
        assert_eq!(got, brute(&neg, 0..6, 0..6, Objective::Maximize));
    }

    #[test]
    fn rejects_plain_empty_and_malformed() {
        let a = monge(4, 4);
        assert!(matches!(
            QueryIndex::build(&a, Structure::Plain),
            Err(SolveError::InvalidInput { .. })
        ));
        let empty = Dense::tabulate(0, 0, |_, _| 0i64);
        assert!(matches!(
            QueryIndex::build(&empty, Structure::Monge),
            Err(SolveError::InvalidInput { .. })
        ));
        let ix = QueryIndex::build(&a, Structure::Monge).unwrap();
        assert!(matches!(
            ix.query_min(2..2, 0..4),
            Err(SolveError::InvalidInput { .. })
        ));
        assert!(matches!(
            ix.query_min(0..4, 1..9),
            Err(SolveError::InvalidInput { .. })
        ));
    }

    #[test]
    fn counters_accumulate_and_drain() {
        let a = monge(9, 9);
        let ix = QueryIndex::build(&a, Structure::Monge).unwrap();
        assert_eq!(ix.queries_answered(), 0);
        ix.query_min(0..9, 0..9).unwrap();
        ix.query_max(2..5, 3..7).unwrap();
        assert_eq!(ix.queries_answered(), 2);
        let (q, p) = ix.take_counters();
        assert_eq!(q, 2);
        assert!(p > 0, "multi-segment queries must probe breakpoints");
        assert_eq!(ix.queries_answered(), 0);
        assert!(ix.bytes() > 0);
        assert!(ix.breakpoints() >= 2, "at least one segment per envelope");
    }
}
