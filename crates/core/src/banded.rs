//! Row minima / maxima of Monge arrays restricted to *monotone bands*.
//!
//! Several of the paper's applications (the rectangle problems, the
//! invisible-neighbor problem) produce Monge arrays whose entries are
//! only *valid* inside a per-row window `[lo_i, hi_i)` with both
//! endpoints monotone in `i` — a two-sided generalization of the
//! staircase shape.
//!
//! The tractable pairings keep the divide & conquer one-dimensional
//! (each recursion side searches a *single* interval):
//!
//! * **row maxima** with **non-increasing** bands: argmax positions are
//!   non-increasing, the escape region of an upper row (columns valid
//!   for it but not for the middle row) sits flush against `[j*, ·)`,
//!   and the lower rows' left escape merges with `(·, j*]`;
//! * **row minima** with **non-decreasing** bands: the mirror image.
//!
//! The opposite pairings (e.g. minima with non-increasing bands — which
//! contains the staircase-minima problem as the `lo_i = 0` special case)
//! produce disconnected feasible regions and genuinely need the paper's
//! staircase machinery ([`crate::staircase`]); that asymmetry is exactly
//! why the paper treats staircase row *minima* as the hard problem while
//! row *maxima* stay easy (§1.2).

use crate::array2d::Array2d;
use crate::eval::{interval_argmax, interval_argmin};
use crate::value::Value;

/// Leftmost row minima of a Monge array within **non-decreasing** bands
/// `[lo_i, hi_i)`. Rows with empty bands yield `None`. `O((m + n) lg m)`.
pub fn banded_row_minima_monge<T: Value, A: Array2d<T>>(
    a: &A,
    lo: &[usize],
    hi: &[usize],
) -> Vec<Option<usize>> {
    debug_assert!(
        lo.windows(2).all(|w| w[0] <= w[1]) && hi.windows(2).all(|w| w[0] <= w[1]),
        "minima bands must be non-decreasing"
    );
    banded(a, lo, hi, false)
}

/// Leftmost row maxima of a Monge array within **non-increasing** bands
/// `[lo_i, hi_i)`. Rows with empty bands yield `None`. `O((m + n) lg m)`.
///
/// ```
/// use monge_core::array2d::Dense;
/// use monge_core::banded::banded_row_maxima_monge;
///
/// let a = Dense::tabulate(3, 5, |i, j| -((i * j) as i64)); // Monge
/// // Bands shrink leftward down the rows (the staircase direction
/// // maxima pair with).
/// let lo = vec![2, 1, 0];
/// let hi = vec![5, 4, 2];
/// let arg = banded_row_maxima_monge(&a, &lo, &hi);
/// assert_eq!(arg, vec![Some(2), Some(1), Some(0)]);
/// ```
pub fn banded_row_maxima_monge<T: Value, A: Array2d<T>>(
    a: &A,
    lo: &[usize],
    hi: &[usize],
) -> Vec<Option<usize>> {
    debug_assert!(
        lo.windows(2).all(|w| w[0] >= w[1]) && hi.windows(2).all(|w| w[0] >= w[1]),
        "maxima bands must be non-increasing"
    );
    banded(a, lo, hi, true)
}

fn banded<T: Value, A: Array2d<T>>(
    a: &A,
    lo: &[usize],
    hi: &[usize],
    maxima: bool,
) -> Vec<Option<usize>> {
    let m = a.rows();
    assert_eq!(lo.len(), m);
    assert_eq!(hi.len(), m);
    debug_assert!((0..m).all(|i| hi[i] <= a.cols()));
    let mut out = vec![None; m];
    // Only rows with nonempty bands participate; skipping rows preserves
    // the Monge structure.
    let rows: Vec<usize> = (0..m).filter(|&i| lo[i] < hi[i]).collect();
    if rows.is_empty() {
        return out;
    }
    let n = a.cols();
    let mut scratch = Vec::new();
    rec(
        a,
        lo,
        hi,
        &rows,
        0,
        rows.len(),
        0,
        n,
        maxima,
        &mut out,
        &mut scratch,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn rec<T: Value, A: Array2d<T>>(
    a: &A,
    lo: &[usize],
    hi: &[usize],
    rows: &[usize],
    r0: usize,
    r1: usize,
    cur_lo: usize,
    cur_hi: usize,
    maxima: bool,
    out: &mut [Option<usize>],
    scratch: &mut Vec<T>,
) {
    if r0 >= r1 {
        return;
    }
    let mid = r0 + (r1 - r0) / 2;
    let row = rows[mid];
    let from = cur_lo.max(lo[row]);
    let to = cur_hi.min(hi[row]);
    debug_assert!(from < to, "invariant violated: empty middle interval");
    let (best, _) = if maxima {
        interval_argmax(a, row, from, to, scratch)
    } else {
        interval_argmin(a, row, from, to, scratch)
    };
    out[row] = Some(best);
    if maxima {
        // Argmax non-increasing: rows above search right of j*, rows
        // below left of it (escapes merge into single intervals for
        // non-increasing bands).
        rec(a, lo, hi, rows, r0, mid, best, cur_hi, maxima, out, scratch);
        rec(
            a,
            lo,
            hi,
            rows,
            mid + 1,
            r1,
            cur_lo,
            best + 1,
            maxima,
            out,
            scratch,
        );
    } else {
        // Argmin non-decreasing: the mirror (non-decreasing bands).
        rec(
            a,
            lo,
            hi,
            rows,
            r0,
            mid,
            cur_lo,
            best + 1,
            maxima,
            out,
            scratch,
        );
        rec(
            a,
            lo,
            hi,
            rows,
            mid + 1,
            r1,
            best,
            cur_hi,
            maxima,
            out,
            scratch,
        );
    }
}

/// Brute-force oracle for banded minima.
pub fn banded_row_minima_brute<T: Value, A: Array2d<T>>(
    a: &A,
    lo: &[usize],
    hi: &[usize],
) -> Vec<Option<usize>> {
    banded_brute(a, lo, hi, false)
}

/// Brute-force oracle for banded maxima.
pub fn banded_row_maxima_brute<T: Value, A: Array2d<T>>(
    a: &A,
    lo: &[usize],
    hi: &[usize],
) -> Vec<Option<usize>> {
    banded_brute(a, lo, hi, true)
}

fn banded_brute<T: Value, A: Array2d<T>>(
    a: &A,
    lo: &[usize],
    hi: &[usize],
    maxima: bool,
) -> Vec<Option<usize>> {
    (0..a.rows())
        .map(|i| {
            if lo[i] >= hi[i] {
                return None;
            }
            let mut best = lo[i];
            let mut best_v = a.entry(i, best);
            for j in lo[i] + 1..hi[i] {
                let v = a.entry(i, j);
                let better = if maxima {
                    best_v.total_lt(v)
                } else {
                    v.total_lt(best_v)
                };
                if better {
                    best = j;
                    best_v = v;
                }
            }
            Some(best)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_monge_dense;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_bands(
        m: usize,
        n: usize,
        increasing: bool,
        rng: &mut StdRng,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut lo: Vec<usize> = (0..m).map(|_| rng.random_range(0..=n)).collect();
        let mut hi: Vec<usize> = (0..m).map(|_| rng.random_range(0..=n)).collect();
        if increasing {
            lo.sort_unstable();
            hi.sort_unstable();
        } else {
            lo.sort_unstable_by(|a, b| b.cmp(a));
            hi.sort_unstable_by(|a, b| b.cmp(a));
        }
        let lo: Vec<usize> = lo.iter().zip(&hi).map(|(&l, &h)| l.min(h)).collect();
        (lo, hi)
    }

    #[test]
    fn minima_matches_brute() {
        let mut rng = StdRng::seed_from_u64(140);
        for trial in 0..60 {
            let (m, n) = (1 + trial % 20, 1 + (trial * 7) % 20);
            let a = random_monge_dense(m, n, &mut rng);
            let (lo, hi) = random_bands(m, n, true, &mut rng);
            assert_eq!(
                banded_row_minima_monge(&a, &lo, &hi),
                banded_row_minima_brute(&a, &lo, &hi),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn maxima_matches_brute() {
        let mut rng = StdRng::seed_from_u64(141);
        for trial in 0..60 {
            let (m, n) = (1 + (trial * 3) % 20, 1 + (trial * 5) % 20);
            let a = random_monge_dense(m, n, &mut rng);
            let (lo, hi) = random_bands(m, n, false, &mut rng);
            assert_eq!(
                banded_row_maxima_monge(&a, &lo, &hi),
                banded_row_maxima_brute(&a, &lo, &hi),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn full_band_equals_plain_search() {
        let mut rng = StdRng::seed_from_u64(142);
        let a = random_monge_dense(15, 12, &mut rng);
        let lo = vec![0usize; 15];
        let hi = vec![12usize; 15];
        let got: Vec<usize> = banded_row_minima_monge(&a, &lo, &hi)
            .into_iter()
            .map(Option::unwrap)
            .collect();
        assert_eq!(got, crate::monge::brute_row_minima(&a));
        let got: Vec<usize> = banded_row_maxima_monge(&a, &lo, &hi)
            .into_iter()
            .map(Option::unwrap)
            .collect();
        assert_eq!(got, crate::monge::brute_row_maxima(&a));
    }

    #[test]
    fn all_empty_bands() {
        let mut rng = StdRng::seed_from_u64(143);
        let a = random_monge_dense(5, 5, &mut rng);
        let lo = vec![5usize; 5];
        let hi = vec![5usize; 5];
        assert!(banded_row_minima_monge(&a, &lo, &hi)
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn staircase_maxima_is_a_special_band() {
        // The `lo = 0`, non-increasing-`hi` band is exactly the staircase
        // shape, and row *maxima* (the easy direction, §1.2) are solved
        // by the banded search directly.
        use crate::generators::random_staircase_boundary;
        let mut rng = StdRng::seed_from_u64(144);
        let a = random_monge_dense(18, 14, &mut rng);
        let f = random_staircase_boundary(18, 14, &mut rng);
        let lo = vec![0usize; 18];
        let got: Vec<usize> = banded_row_maxima_monge(&a, &lo, &f)
            .into_iter()
            .map(Option::unwrap)
            .collect();
        let masked = crate::generators::apply_staircase(&a, &f);
        assert_eq!(
            got,
            crate::staircase::staircase_row_maxima_brute(&masked, &f)
        );
    }
}
