//! Vectorized `(min, argmin)` lane kernels and their runtime selection.
//!
//! The scalar slice scans in [`crate::eval`] are already branch-free and
//! lane-structured, but they still retire one compare/select chain per
//! element. On x86-64 hosts with AVX2 the kernels here reduce four
//! 64-bit values per instruction in two cheap passes: a pure vertical
//! min/max reduction (four independent accumulators, no index
//! bookkeeping), then a directional equality scan that locates the
//! leftmost (or rightmost) position attaining the extremum — the same
//! answer, to the index, that the scalar scan produces.
//!
//! ## Selection precedence
//!
//! Which implementation actually runs is decided per call by
//! [`argmin_lanes`]/[`argmax_lanes`] from three inputs:
//!
//! 1. **Compile time** — the `simd` cargo feature gates the vector
//!    bodies entirely; without it every query returns `None` and the
//!    scalar scans run unconditionally (`--no-default-features` builds
//!    are pure safe Rust).
//! 2. **Process selection** — [`select`] stores a process-global
//!    [`Kernel`] choice (an atomic, like the comparison tally in
//!    [`crate::eval`]). It is seeded from the `MONGE_KERNEL`
//!    environment variable (`auto` | `scalar` | `simd`) on first read;
//!    `monge_parallel`'s dispatcher re-applies its `Tuning::kernel`
//!    knob here on entry. Because the selection is process-wide,
//!    concurrent solves with *different* kernel forcings race on it;
//!    answers are unaffected (every kernel is exact), only speed.
//! 3. **Run time** — [`simd_available`] caches one
//!    `is_x86_feature_detected!("avx2")` probe. Forcing
//!    [`Kernel::Simd`] on a host without AVX2 (or a non-x86-64 host;
//!    aarch64 has no vector bodies yet) silently degrades to scalar —
//!    selection is a performance hint, never a correctness switch.
//!
//! Only `i64` and `f64` slices have vector bodies (the types every
//! engine and application in this workspace searches); other `Value`
//! types always take the scalar path. Dispatch from the generic scans
//! is by `TypeId` — sound because [`Value`] requires `'static`, so
//! equal `TypeId`s prove equal types.
//!
//! `f64` lanes compare with ordered (`_OQ`) predicates, which agree
//! with [`Value::total_lt`] (`<`) on every NaN-free input — and the
//! [`Value`] contract forbids NaN by construction.

use crate::tiebreak::Tie;
use crate::value::Value;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which `(min, argmin)` implementation the slice scans should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Use SIMD when compiled in and the host supports it (default).
    #[default]
    Auto,
    /// Always the scalar blocked scan, even when SIMD is available.
    Scalar,
    /// Request the vector kernels; degrades to scalar when they are
    /// not compiled in or the host lacks AVX2.
    Simd,
}

impl Kernel {
    /// Parses `auto` / `scalar` / `simd` (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(Kernel::Auto),
            "scalar" => Some(Kernel::Scalar),
            "simd" => Some(Kernel::Simd),
            _ => None,
        }
    }

    /// The `MONGE_KERNEL` environment selection, if set and valid.
    pub fn from_env() -> Option<Kernel> {
        std::env::var("MONGE_KERNEL")
            .ok()
            .and_then(|s| Kernel::parse(&s))
    }
}

/// Process-global selection. `u8::MAX` = not yet seeded from the
/// environment; otherwise a `Kernel` discriminant.
static SELECTED: AtomicU8 = AtomicU8::new(u8::MAX);

fn encode(k: Kernel) -> u8 {
    match k {
        Kernel::Auto => 0,
        Kernel::Scalar => 1,
        Kernel::Simd => 2,
    }
}

/// Sets the process-global kernel selection.
///
/// This is a raw, unscoped write: nothing restores the previous
/// selection, and a panic between a `select` and its manual restore
/// leaves the pin stale for the rest of the process. Code that pins
/// temporarily — measurement probes, differential tests — should use
/// [`scoped`] instead.
pub fn select(k: Kernel) {
    SELECTED.store(encode(k), Ordering::Relaxed);
}

/// Pins the process-global kernel selection for the lifetime of the
/// returned guard, restoring the prior selection on drop — including
/// on unwind, so a panicking measurement or test assertion can never
/// leave a stale pin behind.
///
/// Pins are process-global state, not a stack: two overlapping guards
/// on different threads race, and the one dropped last wins. Callers
/// that interleave pinned sections (the kernel differential tests, the
/// autotune measurement loop) must serialize them externally.
///
/// ```
/// use monge_core::kernel::{self, Kernel};
///
/// let before = kernel::selected();
/// {
///     let _pin = kernel::scoped(Kernel::Scalar);
///     assert_eq!(kernel::selected(), Kernel::Scalar);
/// }
/// assert_eq!(kernel::selected(), before);
/// ```
#[must_use = "the pin is released when the guard drops"]
pub fn scoped(k: Kernel) -> ScopedKernel {
    let prev = selected();
    select(k);
    ScopedKernel { prev }
}

/// RAII guard for a temporary kernel pin; see [`scoped`].
#[derive(Debug)]
pub struct ScopedKernel {
    prev: Kernel,
}

impl ScopedKernel {
    /// The selection this guard will restore when dropped.
    pub fn previous(&self) -> Kernel {
        self.prev
    }
}

impl Drop for ScopedKernel {
    fn drop(&mut self) {
        select(self.prev);
    }
}

/// The current process-global selection; seeds itself from
/// `MONGE_KERNEL` (default [`Kernel::Auto`]) on first read.
pub fn selected() -> Kernel {
    match SELECTED.load(Ordering::Relaxed) {
        0 => Kernel::Auto,
        1 => Kernel::Scalar,
        2 => Kernel::Simd,
        _ => {
            let k = Kernel::from_env().unwrap_or(Kernel::Auto);
            SELECTED.store(encode(k), Ordering::Relaxed);
            k
        }
    }
}

/// Were the vector bodies compiled in at all (`simd` feature on an
/// x86-64 target)?
pub const fn simd_compiled() -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64"))
}

/// Compiled in *and* supported by the running host (AVX2 probe,
/// cached after the first call).
pub fn simd_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Will the next eligible slice scan actually run the vector kernel?
pub fn simd_active() -> bool {
    simd_available() && selected() != Kernel::Scalar
}

/// Slices shorter than this always take the scalar path: below two
/// full vector blocks the horizontal reduction dominates.
pub const MIN_SIMD_LEN: usize = 16;

/// Index of the minimum of `vals` under `tie`, via the vector kernel —
/// `None` when the scalar scan should run instead (feature off, host
/// unsupported, selection pinned to scalar, slice too short, or an
/// element type without a vector body).
#[inline]
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(unsafe_code))]
pub fn argmin_lanes<T: Value>(vals: &[T], tie: Tie) -> Option<usize> {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::any::TypeId;
        if vals.len() >= MIN_SIMD_LEN && simd_active() {
            if TypeId::of::<T>() == TypeId::of::<i64>() {
                // Sound: `TypeId` equality proves `T == i64` (`Value`
                // requires `'static`), so the slice layouts are equal.
                let s = unsafe { &*(vals as *const [T] as *const [i64]) };
                return Some(unsafe { avx2::argmin_i64(s, tie) });
            }
            if TypeId::of::<T>() == TypeId::of::<f64>() {
                let s = unsafe { &*(vals as *const [T] as *const [f64]) };
                return Some(unsafe { avx2::argmin_f64(s, tie) });
            }
        }
    }
    let _ = (vals, tie);
    None
}

/// Index of the **leftmost** maximum of `vals` via the vector kernel;
/// `None` under the same conditions as [`argmin_lanes`].
#[inline]
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(unsafe_code))]
pub fn argmax_lanes<T: Value>(vals: &[T]) -> Option<usize> {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::any::TypeId;
        if vals.len() >= MIN_SIMD_LEN && simd_active() {
            if TypeId::of::<T>() == TypeId::of::<i64>() {
                let s = unsafe { &*(vals as *const [T] as *const [i64]) };
                return Some(unsafe { avx2::argmax_i64(s) });
            }
            if TypeId::of::<T>() == TypeId::of::<f64>() {
                let s = unsafe { &*(vals as *const [T] as *const [f64]) };
                return Some(unsafe { avx2::argmax_f64(s) });
            }
        }
    }
    let _ = vals;
    None
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    //! The AVX2 bodies, organized as **two cheap passes** rather than
    //! one pass with `(value, index)` accumulator lanes:
    //!
    //! 1. *Reduce* — a pure vertical min/max over four 64-bit lanes
    //!    (one compare + one blend per vector for `i64`, a single
    //!    `vminpd`/`vmaxpd` for `f64`), horizontally folded to the
    //!    exact extremum `m`. No index bookkeeping at all, so the loop
    //!    retires ~2 µops per 4 elements.
    //! 2. *Locate* — an equality scan for `m`: compare-equal + movemask
    //!    per vector, taking the **first** matching position scanning
    //!    forward (leftmost tie) or the **last** scanning backward
    //!    (rightmost tie). Equality against the exact extremum is the
    //!    tie rule: every position the scalar scan could pick compares
    //!    equal to `m`, and the directional scan picks the same end of
    //!    the plateau.
    //!
    //! Index-lane tracking (blend an index vector alongside the value
    //! vector) measures *slower* than the scalar blocked scan in
    //! [`crate::eval`] — the scalar fallback already auto-vectorizes
    //! its block minima, so the extra blends per vector erase the win.
    //! Two passes keep each loop at the machine's load throughput and
    //! beat both.
    //!
    //! `f64` equality in the locate pass uses `_CMP_EQ_OQ`, under which
    //! `-0.0 == 0.0` — the same equivalence `total_lt` (`<`) induces,
    //! so mixed-sign zero plateaus tie-break by position exactly like
    //! the scalar scan. NaN-free input is a `Value` precondition.

    use super::Tie;
    use core::arch::x86_64::*;

    /// Lane-wise `min` for signed 64-bit lanes (AVX2 has no `vpminsq`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn min_epi64(a: __m256i, b: __m256i) -> __m256i {
        _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b))
    }

    /// Lane-wise `max` for signed 64-bit lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn max_epi64(a: __m256i, b: __m256i) -> __m256i {
        _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(b, a))
    }

    /// Exact minimum of `vals`. Four independent accumulators hide the
    /// compare+blend latency chain — a single accumulator is latency-
    /// bound and measures *slower* than the auto-vectorized scalar
    /// blocked scan.
    /// # Safety
    /// AVX2 must be available; `vals` must be non-empty.
    #[target_feature(enable = "avx2")]
    unsafe fn min_i64(vals: &[i64]) -> i64 {
        let n = vals.len();
        let p = vals.as_ptr();
        unsafe {
            if n >= 16 {
                let mut a0 = _mm256_loadu_si256(p as *const __m256i);
                let mut a1 = _mm256_loadu_si256(p.add(4) as *const __m256i);
                let mut a2 = _mm256_loadu_si256(p.add(8) as *const __m256i);
                let mut a3 = _mm256_loadu_si256(p.add(12) as *const __m256i);
                let mut i = 16;
                while i + 16 <= n {
                    a0 = min_epi64(a0, _mm256_loadu_si256(p.add(i) as *const __m256i));
                    a1 = min_epi64(a1, _mm256_loadu_si256(p.add(i + 4) as *const __m256i));
                    a2 = min_epi64(a2, _mm256_loadu_si256(p.add(i + 8) as *const __m256i));
                    a3 = min_epi64(a3, _mm256_loadu_si256(p.add(i + 12) as *const __m256i));
                    i += 16;
                }
                while i + 4 <= n {
                    a0 = min_epi64(a0, _mm256_loadu_si256(p.add(i) as *const __m256i));
                    i += 4;
                }
                let acc = min_epi64(min_epi64(a0, a1), min_epi64(a2, a3));
                let mut lanes = [0i64; 4];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                let mut m = lanes[0].min(lanes[1]).min(lanes[2].min(lanes[3]));
                while i < n {
                    m = m.min(*p.add(i));
                    i += 1;
                }
                m
            } else {
                let mut m = *p;
                for i in 1..n {
                    m = m.min(*p.add(i));
                }
                m
            }
        }
    }

    /// Position of the first (`Tie::Left`) or last (`Tie::Right`)
    /// element equal to `m`, which must occur in `vals`.
    /// # Safety
    /// AVX2 must be available; `m` must occur in `vals`.
    #[target_feature(enable = "avx2")]
    unsafe fn locate_eq_i64(vals: &[i64], m: i64, tie: Tie) -> usize {
        let n = vals.len();
        let p = vals.as_ptr();
        unsafe {
            let needle = _mm256_set1_epi64x(m);
            match tie {
                Tie::Left => {
                    let mut i = 0;
                    while i + 4 <= n {
                        let eq = _mm256_cmpeq_epi64(
                            _mm256_loadu_si256(p.add(i) as *const __m256i),
                            needle,
                        );
                        let mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
                        if mask != 0 {
                            return i + mask.trailing_zeros() as usize;
                        }
                        i += 4;
                    }
                    while i < n {
                        if *p.add(i) == m {
                            return i;
                        }
                        i += 1;
                    }
                }
                Tie::Right => {
                    let mut i = n;
                    while i > n - (n % 4) {
                        i -= 1;
                        if *p.add(i) == m {
                            return i;
                        }
                    }
                    while i >= 4 {
                        i -= 4;
                        let eq = _mm256_cmpeq_epi64(
                            _mm256_loadu_si256(p.add(i) as *const __m256i),
                            needle,
                        );
                        let mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
                        if mask != 0 {
                            return i + (31 - mask.leading_zeros()) as usize;
                        }
                    }
                }
            }
            // Unreachable when the precondition holds; keep the scan
            // total anyway.
            0
        }
    }

    /// # Safety
    /// AVX2 must be available; `vals` must be non-empty.
    #[target_feature(enable = "avx2")]
    pub unsafe fn argmin_i64(vals: &[i64], tie: Tie) -> usize {
        unsafe {
            let m = min_i64(vals);
            locate_eq_i64(vals, m, tie)
        }
    }

    /// # Safety
    /// AVX2 must be available; `vals` must be non-empty.
    #[target_feature(enable = "avx2")]
    pub unsafe fn argmax_i64(vals: &[i64]) -> usize {
        let n = vals.len();
        let p = vals.as_ptr();
        unsafe {
            let mut m;
            if n >= 16 {
                let mut a0 = _mm256_loadu_si256(p as *const __m256i);
                let mut a1 = _mm256_loadu_si256(p.add(4) as *const __m256i);
                let mut a2 = _mm256_loadu_si256(p.add(8) as *const __m256i);
                let mut a3 = _mm256_loadu_si256(p.add(12) as *const __m256i);
                let mut i = 16;
                while i + 16 <= n {
                    a0 = max_epi64(a0, _mm256_loadu_si256(p.add(i) as *const __m256i));
                    a1 = max_epi64(a1, _mm256_loadu_si256(p.add(i + 4) as *const __m256i));
                    a2 = max_epi64(a2, _mm256_loadu_si256(p.add(i + 8) as *const __m256i));
                    a3 = max_epi64(a3, _mm256_loadu_si256(p.add(i + 12) as *const __m256i));
                    i += 16;
                }
                while i + 4 <= n {
                    a0 = max_epi64(a0, _mm256_loadu_si256(p.add(i) as *const __m256i));
                    i += 4;
                }
                let acc = max_epi64(max_epi64(a0, a1), max_epi64(a2, a3));
                let mut lanes = [0i64; 4];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                m = lanes[0].max(lanes[1]).max(lanes[2].max(lanes[3]));
                while i < n {
                    m = m.max(*p.add(i));
                    i += 1;
                }
            } else {
                m = *p;
                for i in 1..n {
                    m = m.max(*p.add(i));
                }
            }
            locate_eq_i64(vals, m, Tie::Left)
        }
    }

    /// Exact minimum (`MAX = true` flips every fold for a maximum).
    /// # Safety
    /// AVX2 must be available; `vals` non-empty and NaN-free.
    #[target_feature(enable = "avx2")]
    unsafe fn extremum_f64<const MAX: bool>(vals: &[f64]) -> f64 {
        let n = vals.len();
        let p = vals.as_ptr();
        unsafe {
            let vfold = |a, b| {
                if MAX {
                    _mm256_max_pd(a, b)
                } else {
                    _mm256_min_pd(a, b)
                }
            };
            let fold = |a: f64, b: f64| if MAX { a.max(b) } else { a.min(b) };
            if n >= 16 {
                let mut a0 = _mm256_loadu_pd(p);
                let mut a1 = _mm256_loadu_pd(p.add(4));
                let mut a2 = _mm256_loadu_pd(p.add(8));
                let mut a3 = _mm256_loadu_pd(p.add(12));
                let mut i = 16;
                while i + 16 <= n {
                    a0 = vfold(a0, _mm256_loadu_pd(p.add(i)));
                    a1 = vfold(a1, _mm256_loadu_pd(p.add(i + 4)));
                    a2 = vfold(a2, _mm256_loadu_pd(p.add(i + 8)));
                    a3 = vfold(a3, _mm256_loadu_pd(p.add(i + 12)));
                    i += 16;
                }
                while i + 4 <= n {
                    a0 = vfold(a0, _mm256_loadu_pd(p.add(i)));
                    i += 4;
                }
                let acc = vfold(vfold(a0, a1), vfold(a2, a3));
                let mut lanes = [0f64; 4];
                _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
                let mut m = fold(fold(lanes[0], lanes[1]), fold(lanes[2], lanes[3]));
                while i < n {
                    m = fold(m, *p.add(i));
                    i += 1;
                }
                m
            } else {
                let mut m = *p;
                for i in 1..n {
                    m = fold(m, *p.add(i));
                }
                m
            }
        }
    }

    /// See [`locate_eq_i64`]; `_CMP_EQ_OQ` treats `-0.0 == 0.0`, like
    /// the scalar `total_lt` ordering.
    /// # Safety
    /// AVX2 must be available; `m` must occur (up to `==`) in `vals`.
    #[target_feature(enable = "avx2")]
    unsafe fn locate_eq_f64(vals: &[f64], m: f64, tie: Tie) -> usize {
        let n = vals.len();
        let p = vals.as_ptr();
        unsafe {
            let needle = _mm256_set1_pd(m);
            match tie {
                Tie::Left => {
                    let mut i = 0;
                    while i + 4 <= n {
                        let eq = _mm256_cmp_pd::<_CMP_EQ_OQ>(_mm256_loadu_pd(p.add(i)), needle);
                        let mask = _mm256_movemask_pd(eq) as u32;
                        if mask != 0 {
                            return i + mask.trailing_zeros() as usize;
                        }
                        i += 4;
                    }
                    while i < n {
                        if *p.add(i) == m {
                            return i;
                        }
                        i += 1;
                    }
                }
                Tie::Right => {
                    let mut i = n;
                    while i > n - (n % 4) {
                        i -= 1;
                        if *p.add(i) == m {
                            return i;
                        }
                    }
                    while i >= 4 {
                        i -= 4;
                        let eq = _mm256_cmp_pd::<_CMP_EQ_OQ>(_mm256_loadu_pd(p.add(i)), needle);
                        let mask = _mm256_movemask_pd(eq) as u32;
                        if mask != 0 {
                            return i + (31 - mask.leading_zeros()) as usize;
                        }
                    }
                }
            }
            0
        }
    }

    /// # Safety
    /// AVX2 must be available; `vals` non-empty and NaN-free.
    #[target_feature(enable = "avx2")]
    pub unsafe fn argmin_f64(vals: &[f64], tie: Tie) -> usize {
        unsafe {
            let m = extremum_f64::<false>(vals);
            locate_eq_f64(vals, m, tie)
        }
    }

    /// # Safety
    /// AVX2 must be available; `vals` non-empty and NaN-free.
    #[target_feature(enable = "avx2")]
    pub unsafe fn argmax_f64(vals: &[f64]) -> usize {
        unsafe {
            let m = extremum_f64::<true>(vals);
            locate_eq_f64(vals, m, Tie::Left)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_parse_round_trip() {
        assert_eq!(Kernel::parse("auto"), Some(Kernel::Auto));
        assert_eq!(Kernel::parse(" Scalar "), Some(Kernel::Scalar));
        assert_eq!(Kernel::parse("SIMD"), Some(Kernel::Simd));
        assert_eq!(Kernel::parse("avx512"), None);
        assert_eq!(Kernel::default(), Kernel::Auto);
    }

    /// Serializes the tests that mutate the process-global selection.
    static SELECT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn selection_is_sticky() {
        let _g = SELECT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = selected();
        select(Kernel::Scalar);
        assert_eq!(selected(), Kernel::Scalar);
        assert!(!simd_active());
        select(before);
        assert_eq!(selected(), before);
    }

    #[test]
    fn scoped_pin_restores_on_drop_and_unwind() {
        let _g = SELECT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = selected();
        {
            let pin = scoped(Kernel::Scalar);
            assert_eq!(selected(), Kernel::Scalar);
            assert_eq!(pin.previous(), before);
            // Nested pins restore in LIFO order.
            {
                let _inner = scoped(Kernel::Auto);
                assert_eq!(selected(), Kernel::Auto);
            }
            assert_eq!(selected(), Kernel::Scalar);
        }
        assert_eq!(selected(), before);
        // A panic inside a pinned section must not leave the pin stale.
        let result = std::panic::catch_unwind(|| {
            let _pin = scoped(Kernel::Scalar);
            panic!("measurement blew up");
        });
        assert!(result.is_err());
        assert_eq!(selected(), before);
    }

    #[test]
    fn availability_is_consistent() {
        // Can't assert the probe's value (host-dependent), only its
        // implications.
        if simd_available() {
            assert!(simd_compiled());
        }
        if !simd_compiled() {
            assert!(!simd_available());
        }
    }
}
