//! Scalar values stored in Monge arrays.
//!
//! The paper's staircase-Monge arrays contain "either a real number or `∞`"
//! (§1.1, definition item 1). We model this with a [`Value`] trait providing
//! an explicit positive/negative infinity and an addition that saturates at
//! infinity, so that `∞`-padded arrays behave like the paper's arrays under
//! the `(min,+)` and `(max,+)` operations used throughout.
//!
//! Two families of instances are provided:
//!
//! * `f64` / `f32` — the natural choice for the geometric applications,
//!   using IEEE infinities.
//! * `i64` / `i32` — exact integers for property-based testing (no rounding
//!   noise when validating the quadrangle inequality), with an infinity
//!   placed far enough from the representable range that a single saturated
//!   addition cannot overflow.

use std::fmt::Debug;

/// A scalar usable as a Monge-array entry.
///
/// Implementations must form a totally ordered additive group on their
/// finite values, extended with `+∞`/`-∞` absorbing elements. `NaN` is
/// forbidden by construction: all generators and algorithms in this
/// workspace only produce values through [`Value::add`]/[`Value::sub`] on
/// finite inputs or the explicit infinities.
pub trait Value: Copy + PartialOrd + Debug + Send + Sync + 'static {
    /// The additive identity.
    const ZERO: Self;

    /// Positive infinity: the padding value of staircase-Monge arrays.
    const INFINITY: Self;

    /// Negative infinity: used when converting maxima problems to minima
    /// problems by negation.
    const NEG_INFINITY: Self;

    /// Saturating addition: if either operand is infinite the result is the
    /// corresponding infinity.
    fn add(self, other: Self) -> Self;

    /// Saturating subtraction (`self + (-other)`).
    fn sub(self, other: Self) -> Self;

    /// Negation; maps `+∞` to `-∞` and vice versa.
    fn neg(self) -> Self;

    /// Is this value `+∞` or `-∞`?
    fn is_infinite(self) -> bool;

    /// Is this value `+∞`?
    fn is_pos_infinite(self) -> bool;

    /// Total-order comparison. Finite values compare numerically;
    /// `-∞ < finite < +∞`.
    fn total_lt(self, other: Self) -> bool;

    /// `self <= other` under the same total order.
    fn total_le(self, other: Self) -> bool {
        !other.total_lt(self)
    }
}

macro_rules! impl_value_float {
    ($t:ty) => {
        impl Value for $t {
            const ZERO: Self = 0.0;
            const INFINITY: Self = <$t>::INFINITY;
            const NEG_INFINITY: Self = <$t>::NEG_INFINITY;

            #[inline]
            fn add(self, other: Self) -> Self {
                // IEEE addition already saturates at infinity; `∞ + -∞`
                // never occurs because arrays mix at most one sign of
                // infinity with finite values.
                self + other
            }

            #[inline]
            fn sub(self, other: Self) -> Self {
                self - other
            }

            #[inline]
            fn neg(self) -> Self {
                -self
            }

            #[inline]
            fn is_infinite(self) -> bool {
                <$t>::is_infinite(self)
            }

            #[inline]
            fn is_pos_infinite(self) -> bool {
                <$t>::is_infinite(self) && self > 0.0
            }

            #[inline]
            fn total_lt(self, other: Self) -> bool {
                self < other
            }
        }
    };
}

impl_value_float!(f64);
impl_value_float!(f32);

macro_rules! impl_value_int {
    ($t:ty) => {
        impl Value for $t {
            const ZERO: Self = 0;
            // Keep infinities a factor 4 inside the representable range so
            // that one saturated addition of a finite value (bounded by the
            // generators to |x| < INFINITY / 4) cannot wrap.
            const INFINITY: Self = <$t>::MAX / 4;
            const NEG_INFINITY: Self = <$t>::MIN / 4;

            #[inline]
            fn add(self, other: Self) -> Self {
                if self.is_infinite() {
                    self
                } else if other.is_infinite() {
                    other
                } else {
                    self + other
                }
            }

            #[inline]
            fn sub(self, other: Self) -> Self {
                Value::add(self, Value::neg(other))
            }

            #[inline]
            fn neg(self) -> Self {
                if self == Self::INFINITY {
                    Self::NEG_INFINITY
                } else if self == Self::NEG_INFINITY {
                    Self::INFINITY
                } else {
                    -self
                }
            }

            #[inline]
            fn is_infinite(self) -> bool {
                self >= Self::INFINITY || self <= Self::NEG_INFINITY
            }

            #[inline]
            fn is_pos_infinite(self) -> bool {
                self >= Self::INFINITY
            }

            #[inline]
            fn total_lt(self, other: Self) -> bool {
                self < other
            }
        }
    };
}

impl_value_int!(i64);
impl_value_int!(i32);

/// Returns the smaller of two values under the total order, preferring
/// `a` on ties.
#[inline]
pub fn min_left<T: Value>(a: T, b: T) -> T {
    if b.total_lt(a) {
        b
    } else {
        a
    }
}

/// Returns the larger of two values under the total order, preferring
/// `a` on ties.
#[inline]
pub fn max_left<T: Value>(a: T, b: T) -> T {
    if a.total_lt(b) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_infinity_saturates() {
        assert!(f64::INFINITY.is_pos_infinite());
        assert_eq!(Value::add(f64::INFINITY, -5.0), f64::INFINITY);
        assert_eq!(Value::neg(f64::INFINITY), f64::NEG_INFINITY);
        assert!((-3.0f64).total_lt(2.0));
    }

    #[test]
    fn int_infinity_saturates() {
        let inf = <i64 as Value>::INFINITY;
        assert!(Value::is_pos_infinite(inf));
        assert_eq!(Value::add(inf, -1234), inf);
        assert_eq!(Value::add(inf, inf), inf);
        assert_eq!(Value::neg(inf), <i64 as Value>::NEG_INFINITY);
        assert!(!Value::is_infinite(0i64));
    }

    #[test]
    fn int_finite_arithmetic_is_exact() {
        assert_eq!(Value::add(3i64, 4), 7);
        assert_eq!(Value::sub(3i64, 4), -1);
        assert_eq!(Value::neg(3i64), -3);
    }

    #[test]
    fn min_max_tie_prefers_left() {
        assert_eq!(min_left(1.0f64, 1.0), 1.0);
        assert_eq!(min_left(2.0f64, 1.0), 1.0);
        assert_eq!(max_left(2i64, 2), 2);
        assert_eq!(max_left(1i64, 2), 2);
    }

    #[test]
    fn total_order_places_infinities_at_ends() {
        assert!(<i64 as Value>::NEG_INFINITY.total_lt(0));
        assert!(0i64.total_lt(<i64 as Value>::INFINITY));
        assert!(f64::NEG_INFINITY.total_lt(0.0));
        assert!(0.0f64.total_lt(f64::INFINITY));
    }
}
