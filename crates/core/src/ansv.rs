//! All Nearest Smaller Values (ANSV).
//!
//! Defined by Berkman, Breslauer, Galil, Schieber and Vishkin \[BBG+89\] and
//! used by the paper's Lemma 2.2: "an application of their ANSV algorithm
//! followed by sorting enables us to allocate processors". Given a list
//! `a_1, …, a_n`, determine for each `a_i` the nearest element to its left
//! and the nearest element to its right that are (strictly) less than
//! `a_i`, if they exist.
//!
//! This module provides the `O(n)` sequential stack algorithm; the
//! work-optimal parallel version lives in `monge-parallel::ansv_par`. In
//! the staircase-Monge algorithm the left-match of each sampled-row minimum
//! identifies the minimum that *brackets* it (its closest north-west
//! neighbor in Figure 2.2), which determines the extra feasible Monge
//! regions.

/// Result of an ANSV computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ansv {
    /// `left[i]` is the index of the nearest `j < i` with `a[j] < a[i]`.
    pub left: Vec<Option<usize>>,
    /// `right[i]` is the index of the nearest `j > i` with `a[j] < a[i]`.
    pub right: Vec<Option<usize>>,
}

/// Sequential stack-based ANSV in `O(n)` time.
pub fn ansv<T: PartialOrd>(a: &[T]) -> Ansv {
    let n = a.len();
    let mut left = vec![None; n];
    let mut right = vec![None; n];
    let mut stack: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        while let Some(&top) = stack.last() {
            if a[top] < a[i] {
                break;
            }
            stack.pop();
        }
        left[i] = stack.last().copied();
        stack.push(i);
    }
    stack.clear();
    for i in (0..n).rev() {
        while let Some(&top) = stack.last() {
            if a[top] < a[i] {
                break;
            }
            stack.pop();
        }
        right[i] = stack.last().copied();
        stack.push(i);
    }
    Ansv { left, right }
}

/// Brute-force ANSV oracle, `O(n²)` — used in tests.
pub fn ansv_brute<T: PartialOrd>(a: &[T]) -> Ansv {
    let n = a.len();
    let left = (0..n)
        .map(|i| (0..i).rev().find(|&j| a[j] < a[i]))
        .collect();
    let right = (0..n).map(|i| (i + 1..n).find(|&j| a[j] < a[i])).collect();
    Ansv { left, right }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_case() {
        let a = [3, 1, 4, 1, 5, 9, 2, 6];
        let r = ansv(&a);
        assert_eq!(r.left[0], None);
        assert_eq!(r.left[2], Some(1)); // nearest smaller left of 4 is a[1]=1
        assert_eq!(r.right[5], Some(6)); // nearest smaller right of 9 is 2
        assert_eq!(r, ansv_brute(&a));
    }

    #[test]
    fn strictly_increasing() {
        let a: Vec<i32> = (0..10).collect();
        let r = ansv(&a);
        for i in 1..10 {
            assert_eq!(r.left[i], Some(i - 1));
            assert_eq!(r.right[i], None);
        }
        assert_eq!(r.left[0], None);
    }

    #[test]
    fn strictly_decreasing() {
        let a: Vec<i32> = (0..10).rev().collect();
        let r = ansv(&a);
        for i in 0..9 {
            assert_eq!(r.right[i], Some(i + 1));
            assert_eq!(r.left[i], None);
        }
    }

    #[test]
    fn equal_elements_are_not_smaller() {
        let a = [5, 5, 5];
        let r = ansv(&a);
        assert!(r.left.iter().all(Option::is_none));
        assert!(r.right.iter().all(Option::is_none));
    }

    #[test]
    fn empty_and_singleton() {
        let r = ansv::<i32>(&[]);
        assert!(r.left.is_empty() && r.right.is_empty());
        let r = ansv(&[7]);
        assert_eq!(r.left, vec![None]);
        assert_eq!(r.right, vec![None]);
    }

    #[test]
    fn matches_brute_on_random() {
        // Deterministic pseudo-random without pulling rand into unit scope.
        let mut x: u64 = 0x2545F4914F6CDD1D;
        for len in [2usize, 3, 17, 64, 129] {
            let a: Vec<u64> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % 16
                })
                .collect();
            assert_eq!(ansv(&a), ansv_brute(&a), "len={len}");
        }
    }
}
