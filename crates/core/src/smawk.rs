//! The SMAWK algorithm of Aggarwal, Klawe, Moran, Shor and Wilber
//! (\[AKM+87\]): row minima / maxima of an `m × n` (inverse-)Monge array in
//! `Θ(m + n)` time — the sequential baseline of the paper's Tables 1.1–1.3.
//!
//! The core routine [`row_minima_totally_monotone`] works on any array that
//! is *totally monotone* with respect to row minima. The four public
//! wrappers handle the Monge / inverse-Monge × minima / maxima matrix via
//! the reductions of §1.2 ("reversing the order of an array's columns
//! and/or negating its entries"):
//!
//! | problem | reduction |
//! |---|---|
//! | minima of Monge | direct (leftmost tie-break) |
//! | maxima of inverse-Monge | negate → minima of Monge |
//! | maxima of Monge | reverse columns, negate → *rightmost* minima of Monge, map back |
//! | minima of inverse-Monge | reverse columns → *rightmost* minima of Monge, map back |
//!
//! All wrappers return the **leftmost** optimum of each row, matching the
//! paper's convention ("if a row has several maxima, then we take the
//! leftmost one").

use crate::array2d::Array2d;
use crate::problem::{lower_rows, mirror_indices, Objective, Structure};
use crate::value::Value;

pub use crate::tiebreak::Tie;

/// Positions and values of each row's optimum.
#[derive(Clone, Debug, PartialEq)]
pub struct RowExtrema<T> {
    /// `index[i]` is the column of row `i`'s optimum.
    pub index: Vec<usize>,
    /// `value[i]` is the optimal entry of row `i`.
    pub value: Vec<T>,
}

impl<T: Value> RowExtrema<T> {
    /// Gathers values from the array for a vector of argmin positions.
    pub fn from_indices<A: Array2d<T>>(a: &A, index: Vec<usize>) -> Self {
        let value = index
            .iter()
            .enumerate()
            .map(|(i, &j)| a.entry(i, j))
            .collect();
        Self { index, value }
    }

    /// Boundary-aware gather for staircase problems: a row whose finite
    /// prefix is empty (`boundary[i] == 0`) gets the canonical sentinel
    /// answer — index `0`, value `+∞` — **without reading the array**
    /// (the infeasible region may hold garbage, not just `∞`). Every
    /// staircase backend routes its final gather through here so the
    /// sentinel is identical across engines, which is what the
    /// differential fuzzer diffs against.
    pub fn from_staircase_indices<A: Array2d<T>>(
        a: &A,
        boundary: &[usize],
        mut index: Vec<usize>,
    ) -> Self {
        debug_assert_eq!(boundary.len(), index.len());
        let value = index
            .iter_mut()
            .enumerate()
            .map(|(i, j)| {
                if boundary[i] == 0 {
                    *j = 0;
                    T::INFINITY
                } else {
                    a.entry(i, *j)
                }
            })
            .collect();
        Self { index, value }
    }
}

/// Row minima of a totally monotone array (SMAWK), `Θ(m + n)` for Monge
/// inputs.
///
/// Requirements: for all `i < k` and `j < l`, `a[i,l] < a[i,j]` implies
/// `a[k,l] < a[k,j]` (and the non-strict analogue, which holds for all
/// Monge arrays, when `tie == Tie::Right`). Returns the per-row argmin
/// under the given tie rule.
pub fn row_minima_totally_monotone<T: Value, A: Array2d<T>>(a: &A, tie: Tie) -> Vec<usize> {
    let mut out = vec![0usize; a.rows()];
    row_minima_totally_monotone_into(a, tie, &mut out);
    out
}

/// [`row_minima_totally_monotone`] writing into a caller-provided buffer
/// of length `a.rows()` — with every internal vector checked out of the
/// thread-local arena ([`crate::scratch`]), a warmed-up call performs no
/// heap allocation at all. This is the per-plane primitive of the tube
/// engines, which call SMAWK `p` times per product.
pub fn row_minima_totally_monotone_into<T: Value, A: Array2d<T>>(
    a: &A,
    tie: Tie,
    out: &mut [usize],
) {
    let (m, n) = (a.rows(), a.cols());
    assert!(n > 0, "row minima of a zero-column array are undefined");
    assert_eq!(out.len(), m, "output buffer must have one slot per row");
    if m == 0 {
        return;
    }
    out.fill(0);
    // Comparisons are tallied locally through the recursion and flushed
    // to the process-global telemetry counter once per call, keeping the
    // atomic off the REDUCE hot path.
    let mut cmp = 0u64;
    crate::scratch::with_scratch2(|rows: &mut Vec<usize>, cols: &mut Vec<usize>| {
        rows.clear();
        rows.extend(0..m);
        cols.clear();
        cols.extend(0..n);
        smawk_rec(a, rows, cols, tie, out, &mut cmp);
    });
    crate::eval::add_comparisons(cmp);
}

fn smawk_rec<T: Value, A: Array2d<T>>(
    a: &A,
    rows: &[usize],
    cols: &[usize],
    tie: Tie,
    out: &mut [usize],
    cmp: &mut u64,
) {
    crate::guard::checkpoint();
    if rows.is_empty() {
        return;
    }

    // REDUCE: keep at most |rows| columns that can still contain a row
    // minimum. `stack[k]` is a live column competing at row `rows[k]`;
    // `vals[k]` caches `a.entry(rows[k], stack[k])` so each comparison
    // evaluates only the challenger, not the incumbent again. The stack
    // and value buffers come from the thread-local arena: the recursion
    // settles at `O(lg m)` pooled buffers and allocates nothing after
    // warm-up.
    crate::scratch::with_scratch2(|stack: &mut Vec<usize>, vals: &mut Vec<T>| {
        stack.clear();
        vals.clear();
        for &c in cols {
            while let Some(&inc) = vals.last() {
                let r = rows[stack.len() - 1];
                *cmp += 1;
                if tie.replaces_min(a.entry(r, c), inc) {
                    stack.pop();
                    vals.pop();
                } else {
                    break;
                }
            }
            if stack.len() < rows.len() {
                vals.push(a.entry(rows[stack.len()], c));
                stack.push(c);
            }
        }
        debug_assert!(!stack.is_empty());

        // Recurse on the odd-indexed rows with the surviving columns.
        crate::scratch::with_scratch(|odd_rows: &mut Vec<usize>| {
            odd_rows.clear();
            odd_rows.extend(rows.iter().copied().skip(1).step_by(2));
            smawk_rec(a, odd_rows, stack, tie, out, cmp);
        });

        // INTERPOLATE: fill even-indexed rows. The argmin of rows[i] lies
        // between the argmins of its odd neighbours within `stack`, and those
        // are non-decreasing, so one pointer sweep suffices.
        let mut k = 0usize;
        let nr = rows.len();
        for i in (0..nr).step_by(2) {
            let row = rows[i];
            let stop_col = if i + 1 < nr {
                out[rows[i + 1]]
            } else {
                *stack.last().expect("non-empty stack")
            };
            let mut best = stack[k];
            let mut best_v = a.entry(row, best);
            while stack[k] != stop_col {
                k += 1;
                let c = stack[k];
                let v = a.entry(row, c);
                *cmp += 1;
                if tie.replaces_min(v, best_v) {
                    best = c;
                    best_v = v;
                }
            }
            out[row] = best;
        }
    });
}

/// Leftmost row minima of a Monge array in `Θ(m + n)` time.
///
/// ```
/// use monge_core::array2d::Dense;
/// use monge_core::smawk::row_minima_monge;
///
/// // a[i][j] = (i - j)² is Monge (convex in the difference): each row's
/// // minimum sits on the diagonal and argmins are non-decreasing.
/// let a = Dense::tabulate(4, 6, |i, j| {
///     let d = i as i64 - j as i64;
///     d * d
/// });
/// let ex = row_minima_monge(&a);
/// assert_eq!(ex.index, vec![0, 1, 2, 3]);
/// assert_eq!(ex.value, vec![0, 0, 0, 0]);
/// ```
pub fn row_minima_monge<T: Value, A: Array2d<T>>(a: &A) -> RowExtrema<T> {
    debug_assert!(crate::monge::is_monge(a), "input is not Monge");
    let index = row_minima_totally_monotone(a, Tie::Left);
    RowExtrema::from_indices(a, index)
}

/// Shared body of the duality wrappers: lower to leftmost-convention
/// row minima via [`lower_rows`] (the workspace's one implementation of
/// the §1.2 reductions), run SMAWK, and map indices back.
fn extrema_lowered<T: Value, A: Array2d<T>>(
    a: &A,
    structure: Structure,
    objective: Objective,
    out: &mut [usize],
) {
    let (_, mirror) = lower_rows(a, structure, objective, Tie::Left, |arr, tie| {
        row_minima_totally_monotone_into(&arr, tie, out)
    });
    if let Some(n) = mirror {
        mirror_indices(out, n);
    }
}

/// Leftmost row maxima of an inverse-Monge array in `Θ(m + n)` time.
///
/// This is the routine behind the Figure 1.1 example: the inter-chain
/// distance array of a convex polygon is inverse-Monge, and its row maxima
/// give each vertex's farthest neighbor on the other chain.
pub fn row_maxima_inverse_monge<T: Value, A: Array2d<T>>(a: &A) -> RowExtrema<T> {
    debug_assert!(
        crate::monge::is_inverse_monge(a),
        "input is not inverse-Monge"
    );
    let mut index = vec![0usize; a.rows()];
    extrema_lowered(a, Structure::InverseMonge, Objective::Maximize, &mut index);
    RowExtrema::from_indices(a, index)
}

/// Leftmost row maxima of a Monge array in `Θ(m + n)` time (Table 1.1's
/// problem).
pub fn row_maxima_monge<T: Value, A: Array2d<T>>(a: &A) -> RowExtrema<T> {
    debug_assert!(crate::monge::is_monge(a), "input is not Monge");
    let mut index = vec![0usize; a.rows()];
    extrema_lowered(a, Structure::Monge, Objective::Maximize, &mut index);
    RowExtrema::from_indices(a, index)
}

/// [`row_minima_monge`] writing argmins into a caller-provided buffer
/// (no `RowExtrema` allocation, no Monge debug re-verification — the
/// allocation-free per-plane primitive of the tube engines).
pub fn row_minima_monge_into<T: Value, A: Array2d<T>>(a: &A, out: &mut [usize]) {
    row_minima_totally_monotone_into(a, Tie::Left, out);
}

/// [`row_maxima_monge`] writing argmaxes into a caller-provided buffer.
pub fn row_maxima_monge_into<T: Value, A: Array2d<T>>(a: &A, out: &mut [usize]) {
    extrema_lowered(a, Structure::Monge, Objective::Maximize, out);
}

/// [`row_maxima_inverse_monge`] writing argmaxes into a caller-provided
/// buffer.
pub fn row_maxima_inverse_monge_into<T: Value, A: Array2d<T>>(a: &A, out: &mut [usize]) {
    extrema_lowered(a, Structure::InverseMonge, Objective::Maximize, out);
}

/// Leftmost row minima of an inverse-Monge array in `Θ(m + n)` time.
pub fn row_minima_inverse_monge<T: Value, A: Array2d<T>>(a: &A) -> RowExtrema<T> {
    debug_assert!(
        crate::monge::is_inverse_monge(a),
        "input is not inverse-Monge"
    );
    let mut index = vec![0usize; a.rows()];
    extrema_lowered(a, Structure::InverseMonge, Objective::Minimize, &mut index);
    RowExtrema::from_indices(a, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array2d::Dense;
    use crate::monge::{brute_row_maxima, brute_row_minima};

    /// The classic 9x18 totally monotone example from the SMAWK literature.
    fn classic() -> Dense<i64> {
        let rows = vec![
            vec![
                25, 21, 13, 10, 20, 13, 19, 35, 37, 41, 58, 66, 82, 99, 124, 133, 156, 178,
            ],
            vec![
                42, 35, 26, 20, 29, 21, 25, 37, 36, 39, 56, 64, 76, 91, 116, 125, 146, 164,
            ],
            vec![
                57, 48, 35, 28, 33, 24, 28, 40, 37, 37, 54, 61, 72, 83, 107, 113, 131, 146,
            ],
            vec![
                78, 65, 51, 42, 44, 35, 38, 48, 42, 42, 55, 61, 70, 80, 100, 106, 120, 135,
            ],
            vec![
                90, 76, 58, 48, 49, 39, 42, 48, 39, 35, 47, 51, 56, 63, 80, 86, 97, 110,
            ],
            vec![
                103, 85, 67, 56, 55, 44, 44, 49, 39, 33, 41, 44, 49, 56, 71, 75, 84, 96,
            ],
            vec![
                123, 105, 86, 75, 73, 59, 57, 62, 51, 44, 50, 52, 55, 59, 72, 74, 80, 92,
            ],
            vec![
                142, 123, 100, 86, 82, 65, 61, 62, 50, 43, 47, 45, 46, 46, 58, 59, 65, 73,
            ],
            vec![
                151, 130, 104, 88, 80, 59, 52, 49, 37, 29, 29, 24, 23, 20, 28, 25, 31, 39,
            ],
        ];
        Dense::from_rows(rows)
    }

    #[test]
    fn classic_example_minima() {
        let a = classic();
        let got = row_minima_totally_monotone(&a, Tie::Left);
        assert_eq!(got, brute_row_minima(&a));
    }

    #[test]
    fn monge_minima_small() {
        let a = Dense::tabulate(7, 9, |i, j| {
            let (i, j) = (i as i64, j as i64);
            (i - j) * (i - j) + 3 * i + 2 * j
        });
        // a[i,j] = (i-j)^2 + 3i + 2j is Monge (convex in the difference).
        assert!(crate::monge::is_monge(&a));
        let got = row_minima_monge(&a);
        assert_eq!(got.index, brute_row_minima(&a));
    }

    #[test]
    fn monge_maxima_small() {
        let a = Dense::tabulate(6, 8, |i, j| -((i * j) as i64) + (j % 3) as i64);
        assert!(crate::monge::is_monge(&a));
        let got = row_maxima_monge(&a);
        assert_eq!(got.index, brute_row_maxima(&a));
    }

    #[test]
    fn inverse_monge_maxima_matches_brute() {
        let a = Dense::tabulate(5, 11, |i, j| {
            let (i, j) = (i as i64, j as i64);
            i * j - 3 * j + i
        });
        assert!(crate::monge::is_inverse_monge(&a));
        let got = row_maxima_inverse_monge(&a);
        assert_eq!(got.index, brute_row_maxima(&a));
    }

    #[test]
    fn inverse_monge_minima_matches_brute() {
        let a = Dense::tabulate(9, 5, |i, j| {
            let (i, j) = (i as i64, j as i64);
            2 * i * j - 5 * j + i
        });
        assert!(crate::monge::is_inverse_monge(&a));
        let got = row_minima_inverse_monge(&a);
        assert_eq!(got.index, brute_row_minima(&a));
    }

    #[test]
    fn leftmost_tie_break_on_constant_array() {
        let a = Dense::filled(4, 6, 7i64);
        assert_eq!(row_minima_monge(&a).index, vec![0; 4]);
        assert_eq!(row_maxima_monge(&a).index, vec![0; 4]);
    }

    #[test]
    fn single_row_and_single_column() {
        let a = Dense::from_rows(vec![vec![5i64, 3, 4, 3]]);
        assert_eq!(row_minima_monge(&a).index, vec![1]);
        let b = Dense::from_rows(vec![vec![2i64], vec![1], vec![9]]);
        assert_eq!(row_minima_monge(&b).index, vec![0, 0, 0]);
    }

    #[test]
    fn empty_rows_ok() {
        let a = Dense::from_vec(0, 3, Vec::<i64>::new());
        assert!(row_minima_totally_monotone(&a, Tie::Left).is_empty());
    }

    #[test]
    fn values_match_indices() {
        let a = Dense::tabulate(8, 8, |i, j| -((i * j) as i64));
        let ex = row_minima_monge(&a);
        for (i, (&j, &v)) in ex.index.iter().zip(ex.value.iter()).enumerate() {
            assert_eq!(a.entry(i, j), v);
        }
    }
}
