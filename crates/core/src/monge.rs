//! Verification predicates for the array classes of §1.1.
//!
//! All predicates run in `O(mn)` time: for Monge-type conditions it is a
//! classical fact that checking the quadrangle inequality on all *adjacent*
//! `2 × 2` sub-arrays suffices (the general `i < k`, `j < l` inequality is a
//! telescoping sum of adjacent ones). The predicates are used by the test
//! suite to certify generator output and by debug assertions inside the
//! searching algorithms.

use crate::array2d::Array2d;
use crate::value::Value;

/// Is `A` Monge? (Inequality (1.1): `a[i,j] + a[i+1,j+1] <= a[i,j+1] + a[i+1,j]`.)
pub fn is_monge<T: Value, A: Array2d<T>>(a: &A) -> bool {
    adjacent_quadrangles_hold(a, |lhs, rhs| lhs.total_le(rhs))
}

/// Is `A` inverse-Monge? (Inequality (1.2), the reverse of (1.1).)
pub fn is_inverse_monge<T: Value, A: Array2d<T>>(a: &A) -> bool {
    adjacent_quadrangles_hold(a, |lhs, rhs| rhs.total_le(lhs))
}

fn adjacent_quadrangles_hold<T: Value, A: Array2d<T>>(a: &A, ok: impl Fn(T, T) -> bool) -> bool {
    let (m, n) = (a.rows(), a.cols());
    for i in 0..m.saturating_sub(1) {
        for j in 0..n.saturating_sub(1) {
            let lhs = a.entry(i, j).add(a.entry(i + 1, j + 1));
            let rhs = a.entry(i, j + 1).add(a.entry(i + 1, j));
            if !ok(lhs, rhs) {
                return false;
            }
        }
    }
    true
}

/// Does the `∞`-pattern of `A` form a legal staircase?
///
/// Definition (§1.1, item 2): `b[i,j] = ∞` implies `b[i,l] = ∞` for `l > j`
/// and `b[k,j] = ∞` for `k > i` — the infinite region spreads right and
/// down. Equivalently, the first infinite column `f_i` of each row is
/// non-increasing in `i`.
pub fn has_staircase_shape<T: Value, A: Array2d<T>>(a: &A) -> bool {
    let (m, n) = (a.rows(), a.cols());
    let mut prev_f = n + 1;
    for i in 0..m {
        let f = staircase_boundary_row(a, i);
        // Within the row, everything at or beyond f must be infinite
        // (checked by staircase_boundary_row), and f must not grow.
        if f > prev_f {
            return false;
        }
        for j in f..n {
            if !a.entry(i, j).is_pos_infinite() {
                return false;
            }
        }
        prev_f = f;
    }
    true
}

/// The first infinite column `f_i` of row `i` (or `n` if the row is fully
/// finite). Assumes nothing about shape; scans left to right.
pub fn staircase_boundary_row<T: Value, A: Array2d<T>>(a: &A, i: usize) -> usize {
    let n = a.cols();
    (0..n)
        .find(|&j| a.entry(i, j).is_pos_infinite())
        .unwrap_or(n)
}

/// The full staircase boundary `f_1, …, f_m`.
pub fn staircase_boundary<T: Value, A: Array2d<T>>(a: &A) -> Vec<usize> {
    (0..a.rows())
        .map(|i| staircase_boundary_row(a, i))
        .collect()
}

/// Is `A` staircase-Monge? (Items 1–3 of the §1.1 definition: legal
/// staircase shape, and (1.1) holds whenever all four entries are finite.)
pub fn is_staircase_monge<T: Value, A: Array2d<T>>(a: &A) -> bool {
    has_staircase_shape(a) && finite_quadrangles_hold(a, |lhs, rhs| lhs.total_le(rhs))
}

/// Is `A` staircase-inverse-Monge?
pub fn is_staircase_inverse_monge<T: Value, A: Array2d<T>>(a: &A) -> bool {
    has_staircase_shape(a) && finite_quadrangles_hold(a, |lhs, rhs| rhs.total_le(lhs))
}

fn finite_quadrangles_hold<T: Value, A: Array2d<T>>(a: &A, ok: impl Fn(T, T) -> bool) -> bool {
    // For staircase shapes it again suffices to check adjacent quadruples:
    // any all-finite quadruple (i,k,j,l) decomposes into adjacent all-finite
    // quadruples because the finite region is closed up and to the left.
    let (m, n) = (a.rows(), a.cols());
    for i in 0..m.saturating_sub(1) {
        for j in 0..n.saturating_sub(1) {
            let e00 = a.entry(i, j);
            let e01 = a.entry(i, j + 1);
            let e10 = a.entry(i + 1, j);
            let e11 = a.entry(i + 1, j + 1);
            if e00.is_infinite() || e01.is_infinite() || e10.is_infinite() || e11.is_infinite() {
                continue;
            }
            if !ok(e00.add(e11), e01.add(e10)) {
                return false;
            }
        }
    }
    true
}

/// Is `A` totally monotone with respect to row minima?
///
/// For all `i < k`, `j < l`: `a[i,j] > a[i,l]` implies `a[k,j] > a[k,l]`
/// ("if row `i` strictly prefers the right column, every later row does
/// too"). Every Monge array is totally monotone; the converse fails. This
/// is the property SMAWK actually needs. Checked in `O(m n²)` — used only
/// in tests on small arrays.
pub fn is_totally_monotone_minima<T: Value, A: Array2d<T>>(a: &A) -> bool {
    let (m, n) = (a.rows(), a.cols());
    for j in 0..n {
        for l in j + 1..n {
            let mut seen_prefer_right = false;
            for i in 0..m {
                let prefers_right = a.entry(i, l).total_lt(a.entry(i, j));
                if seen_prefer_right && !prefers_right {
                    return false;
                }
                seen_prefer_right |= prefers_right;
            }
        }
    }
    true
}

/// Brute-force leftmost row minima: the oracle every search algorithm is
/// tested against. For staircase arrays, `∞` entries lose to any finite
/// entry, so the scan naturally stays in the finite region.
pub fn brute_row_minima<T: Value, A: Array2d<T>>(a: &A) -> Vec<usize> {
    brute_rows(a, |cand, best| cand.total_lt(best))
}

/// Brute-force leftmost row maxima.
pub fn brute_row_maxima<T: Value, A: Array2d<T>>(a: &A) -> Vec<usize> {
    brute_rows(a, |cand, best| best.total_lt(cand))
}

fn brute_rows<T: Value, A: Array2d<T>>(a: &A, better: impl Fn(T, T) -> bool) -> Vec<usize> {
    let (m, n) = (a.rows(), a.cols());
    assert!(n > 0, "arrays must have at least one column");
    (0..m)
        .map(|i| {
            let mut best = 0;
            let mut best_v = a.entry(i, 0);
            for j in 1..n {
                let v = a.entry(i, j);
                if better(v, best_v) {
                    best = j;
                    best_v = v;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array2d::{Dense, Negate, ReverseCols, Transpose};

    const INF: i64 = <i64 as Value>::INFINITY;

    fn monge_example() -> Dense<i64> {
        // a[i,j] = -(i*j) is submodular (Monge): the adjacent quadrangle
        // difference is -(i+1)(j+1) - ij + i(j+1) + (i+1)j = -1 <= 0.
        // (a[i,j] = (i-j)^2 is also Monge; i*j is inverse-Monge.)
        Dense::tabulate(5, 6, |i, j| -((i * j) as i64))
    }

    fn inverse_monge_example() -> Dense<i64> {
        // i*j is supermodular (inverse-Monge).
        Dense::tabulate(5, 6, |i, j| (i * j) as i64)
    }

    #[test]
    fn detects_monge() {
        assert!(is_monge(&monge_example()));
        assert!(!is_inverse_monge(&monge_example()));
    }

    #[test]
    fn detects_inverse_monge() {
        assert!(is_inverse_monge(&inverse_monge_example()));
        assert!(!is_monge(&inverse_monge_example()));
    }

    #[test]
    fn additive_arrays_are_both() {
        // a[i,j] = r[i] + c[j] satisfies (1.1) and (1.2) with equality.
        let a = Dense::tabulate(4, 4, |i, j| (3 * i + 7 * j) as i64);
        assert!(is_monge(&a));
        assert!(is_inverse_monge(&a));
    }

    #[test]
    fn adapters_convert_classes() {
        let a = monge_example();
        assert!(is_inverse_monge(&Negate(&a)));
        assert!(is_inverse_monge(&ReverseCols(&a)));
        assert!(is_monge(&Transpose(&a)));
    }

    #[test]
    fn staircase_shape_accepts_non_increasing_boundary() {
        let a = Dense::from_rows(vec![
            vec![1, 2, 3, INF],
            vec![1, 2, INF, INF],
            vec![1, INF, INF, INF],
        ]);
        assert!(has_staircase_shape(&a));
        assert_eq!(staircase_boundary(&a), vec![3, 2, 1]);
    }

    #[test]
    fn staircase_shape_rejects_increasing_boundary() {
        let a = Dense::from_rows(vec![vec![1, INF], vec![1, 2]]);
        assert!(!has_staircase_shape(&a));
    }

    #[test]
    fn staircase_shape_rejects_holes() {
        let a = Dense::from_rows(vec![vec![1, INF, 3]]);
        assert!(!has_staircase_shape(&a));
    }

    #[test]
    fn staircase_monge_checks_finite_quadrangles_only() {
        // The 2x2 all-finite block violates (1.1); with an infinity in it,
        // the violation is ignored.
        let bad = Dense::from_rows(vec![vec![0, 0], vec![0, 5]]);
        assert!(!is_staircase_monge(&bad));
        // Masking one entry of the violating quadruple with ∞ (legally:
        // f_0 = 2 >= f_1 = 1) makes the array staircase-Monge, because the
        // quadrangle inequality is only required on all-finite quadruples.
        let masked = Dense::from_rows(vec![vec![0, 0], vec![0, INF]]);
        assert!(has_staircase_shape(&masked));
        assert!(is_staircase_monge(&masked));
    }

    #[test]
    fn staircase_monge_full_example() {
        // Monge base with a legal staircase of infinities.
        let a = Dense::from_rows(vec![
            vec![0, -1, -2, INF],
            vec![0, -2, -4, INF],
            vec![0, -3, INF, INF],
        ]);
        assert!(is_staircase_monge(&a));
    }

    #[test]
    fn monge_implies_totally_monotone() {
        assert!(is_totally_monotone_minima(&monge_example()));
        let a = Dense::tabulate(6, 6, |i, j| -((i * j) as i64) + (j as i64));
        assert!(is_monge(&a));
        assert!(is_totally_monotone_minima(&a));
    }

    #[test]
    fn totally_monotone_does_not_imply_monge() {
        // Classic: total monotonicity is weaker than Monge.
        let a = Dense::from_rows(vec![vec![0, 100], vec![0, 1]]);
        // Quadrangle: 0 + 1 <= 100 + 0 holds -> actually Monge. Pick another:
        let b = Dense::from_rows(vec![vec![0, 1], vec![0, 100]]);
        // 0+100 <= 1+0 is false -> not Monge.
        assert!(!is_monge(&b));
        // Row 0 prefers col 0 (0 < 1), row 1 prefers col 0: monotone.
        assert!(is_totally_monotone_minima(&b));
        let _ = a;
    }

    #[test]
    fn brute_minima_and_maxima() {
        let a = Dense::from_rows(vec![vec![3, 1, 1], vec![0, 5, -2]]);
        assert_eq!(brute_row_minima(&a), vec![1, 2]);
        assert_eq!(brute_row_maxima(&a), vec![0, 1]);
    }

    #[test]
    fn brute_minima_ignores_infinite_tail() {
        let a = Dense::from_rows(vec![vec![3, 1, INF], vec![2, INF, INF]]);
        assert_eq!(brute_row_minima(&a), vec![1, 0]);
    }
}
