//! Verification predicates for the array classes of §1.1.
//!
//! All predicates run in `O(mn)` time: for Monge-type conditions it is a
//! classical fact that checking the quadrangle inequality on all *adjacent*
//! `2 × 2` sub-arrays suffices (the general `i < k`, `j < l` inequality is a
//! telescoping sum of adjacent ones). The predicates are used by the test
//! suite to certify generator output and by debug assertions inside the
//! searching algorithms.

use crate::array2d::Array2d;
use crate::value::Value;

/// The first violating quadruple a structure check found: rows
/// `i < k`, columns `j < l`, and the four entry values — the witness
/// the guard layer reuses in `SolveError::StructureViolation`. For the
/// adjacent-quadruple scans below, `k = i + 1` and `l = j + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MongeViolation<T> {
    /// Row `i` of the quadruple.
    pub i: usize,
    /// Row `k > i` of the quadruple.
    pub k: usize,
    /// Column `j` of the quadruple.
    pub j: usize,
    /// Column `l > j` of the quadruple.
    pub l: usize,
    /// `a[i, j]`.
    pub a_ij: T,
    /// `a[i, l]`.
    pub a_il: T,
    /// `a[k, j]`.
    pub a_kj: T,
    /// `a[k, l]`.
    pub a_kl: T,
}

/// Is `A` Monge? (Inequality (1.1): `a[i,j] + a[i+1,j+1] <= a[i,j+1] + a[i+1,j]`.)
pub fn is_monge<T: Value, A: Array2d<T>>(a: &A) -> bool {
    check_monge(a).is_ok()
}

/// Is `A` inverse-Monge? (Inequality (1.2), the reverse of (1.1).)
pub fn is_inverse_monge<T: Value, A: Array2d<T>>(a: &A) -> bool {
    check_inverse_monge(a).is_ok()
}

/// Checks (1.1) on every adjacent quadruple, reporting the first
/// violating quadruple (indices and values) instead of a bare bool.
pub fn check_monge<T: Value, A: Array2d<T>>(a: &A) -> Result<(), MongeViolation<T>> {
    first_adjacent_violation(a, |lhs, rhs| lhs.total_le(rhs), all_quadruples(a))
}

/// Checks (1.2) on every adjacent quadruple, reporting the first
/// violating quadruple.
pub fn check_inverse_monge<T: Value, A: Array2d<T>>(a: &A) -> Result<(), MongeViolation<T>> {
    first_adjacent_violation(a, |lhs, rhs| rhs.total_le(lhs), all_quadruples(a))
}

/// Spot-checks (1.1) on `samples` seeded pseudo-random adjacent
/// quadruples — the `O(m + n)`-budget validation tier of the guard
/// layer. Deterministic in `(samples, seed)`.
pub fn spot_check_monge<T: Value, A: Array2d<T>>(
    a: &A,
    samples: usize,
    seed: u64,
) -> Result<(), MongeViolation<T>> {
    first_adjacent_violation(
        a,
        |lhs, rhs| lhs.total_le(rhs),
        sampled_quadruples(a.rows(), a.cols(), samples, seed),
    )
}

/// Spot-checks (1.2) on seeded pseudo-random adjacent quadruples.
pub fn spot_check_inverse_monge<T: Value, A: Array2d<T>>(
    a: &A,
    samples: usize,
    seed: u64,
) -> Result<(), MongeViolation<T>> {
    first_adjacent_violation(
        a,
        |lhs, rhs| rhs.total_le(lhs),
        sampled_quadruples(a.rows(), a.cols(), samples, seed),
    )
}

/// Checks (1.1) on the adjacent quadruples lying inside a staircase's
/// finite prefixes: quadruple `(i, i+1, j, j+1)` is checked iff
/// `j + 1 < boundary[i + 1]` (the boundary being non-increasing, this
/// puts all four entries in the finite region). Entries at or beyond
/// the boundary are never read.
pub fn check_staircase_monge_prefix<T: Value, A: Array2d<T>>(
    a: &A,
    boundary: &[usize],
) -> Result<(), MongeViolation<T>> {
    let quads = prefix_quadruples(a.rows(), a.cols(), boundary);
    first_adjacent_violation(a, |lhs, rhs| lhs.total_le(rhs), quads)
}

/// The inverse-Monge variant of [`check_staircase_monge_prefix`].
pub fn check_staircase_inverse_monge_prefix<T: Value, A: Array2d<T>>(
    a: &A,
    boundary: &[usize],
) -> Result<(), MongeViolation<T>> {
    let quads = prefix_quadruples(a.rows(), a.cols(), boundary);
    first_adjacent_violation(a, |lhs, rhs| rhs.total_le(lhs), quads)
}

/// Seeded spot-check of the staircase finite-prefix quadruples.
pub fn spot_check_staircase_monge_prefix<T: Value, A: Array2d<T>>(
    a: &A,
    boundary: &[usize],
    samples: usize,
    seed: u64,
) -> Result<(), MongeViolation<T>> {
    let (m, n) = (a.rows(), a.cols());
    let quads = (0..samples).filter_map(move |s| {
        if m < 2 || n < 2 {
            return None;
        }
        let i = (splitmix(seed.wrapping_add(2 * s as u64)) % (m as u64 - 1)) as usize;
        // The quadruple needs j + 1 < boundary[i + 1].
        let width = boundary.get(i + 1).copied().unwrap_or(0).min(n);
        if width < 2 {
            return None;
        }
        let j = (splitmix(seed.wrapping_add(2 * s as u64 + 1)) % (width as u64 - 1)) as usize;
        Some((i, j))
    });
    first_adjacent_violation(a, |lhs, rhs| lhs.total_le(rhs), quads)
}

/// Checks (1.1) on the adjacent quadruples lying wholly inside per-row
/// candidate bands `lo[i] ≤ j < hi[i]` — entries outside the bands are
/// never read (banded problems give no license to read them).
pub fn check_monge_banded<T: Value, A: Array2d<T>>(
    a: &A,
    lo: &[usize],
    hi: &[usize],
) -> Result<(), MongeViolation<T>> {
    let quads = banded_quadruples(a.rows(), a.cols(), lo, hi, None);
    first_adjacent_violation(a, |lhs, rhs| lhs.total_le(rhs), quads)
}

/// Seeded spot-check of the in-band adjacent quadruples.
pub fn spot_check_monge_banded<T: Value, A: Array2d<T>>(
    a: &A,
    lo: &[usize],
    hi: &[usize],
    samples: usize,
    seed: u64,
) -> Result<(), MongeViolation<T>> {
    let quads = banded_quadruples(a.rows(), a.cols(), lo, hi, Some((samples, seed)));
    first_adjacent_violation(a, |lhs, rhs| lhs.total_le(rhs), quads)
}

/// In-band adjacent quadruples: `(i, j)` such that both `j` and `j+1`
/// lie in the bands of rows `i` and `i+1`. `sample` switches from the
/// exhaustive scan to `samples` seeded draws.
fn banded_quadruples<'a>(
    m: usize,
    n: usize,
    lo: &'a [usize],
    hi: &'a [usize],
    sample: Option<(usize, u64)>,
) -> Box<dyn Iterator<Item = (usize, usize)> + 'a> {
    let overlap = move |i: usize| -> Option<(usize, usize)> {
        let start = lo.get(i)?.max(lo.get(i + 1)?);
        let end = (*hi.get(i)?).min(*hi.get(i + 1)?).min(n);
        // Need two adjacent in-band columns: j and j+1 < end.
        (start + 1 < end).then_some((*start, end))
    };
    match sample {
        None => Box::new((0..m.saturating_sub(1)).flat_map(move |i| {
            let (start, end) = overlap(i).unwrap_or((0, 0));
            (start..end.saturating_sub(1)).map(move |j| (i, j))
        })),
        Some((samples, seed)) => Box::new((0..samples).filter_map(move |s| {
            if m < 2 {
                return None;
            }
            let i = (splitmix(seed.wrapping_add(2 * s as u64)) % (m as u64 - 1)) as usize;
            let (start, end) = overlap(i)?;
            let span = (end - 1 - start) as u64;
            let j = start + (splitmix(seed.wrapping_add(2 * s as u64 + 1)) % span) as usize;
            Some((i, j))
        })),
    }
}

fn all_quadruples<T: Value, A: Array2d<T>>(a: &A) -> impl Iterator<Item = (usize, usize)> {
    let (m, n) = (a.rows(), a.cols());
    (0..m.saturating_sub(1)).flat_map(move |i| (0..n.saturating_sub(1)).map(move |j| (i, j)))
}

fn prefix_quadruples(
    m: usize,
    n: usize,
    boundary: &[usize],
) -> impl Iterator<Item = (usize, usize)> + '_ {
    (0..m.saturating_sub(1)).flat_map(move |i| {
        let width = boundary.get(i + 1).copied().unwrap_or(0).min(n);
        (0..width.saturating_sub(1)).map(move |j| (i, j))
    })
}

fn sampled_quadruples(
    m: usize,
    n: usize,
    samples: usize,
    seed: u64,
) -> impl Iterator<Item = (usize, usize)> {
    (0..samples).filter_map(move |s| {
        if m < 2 || n < 2 {
            return None;
        }
        let i = (splitmix(seed.wrapping_add(2 * s as u64)) % (m as u64 - 1)) as usize;
        let j = (splitmix(seed.wrapping_add(2 * s as u64 + 1)) % (n as u64 - 1)) as usize;
        Some((i, j))
    })
}

/// SplitMix64 finalizer (same mixer the fault injector uses).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn first_adjacent_violation<T: Value, A: Array2d<T>>(
    a: &A,
    ok: impl Fn(T, T) -> bool,
    quadruples: impl Iterator<Item = (usize, usize)>,
) -> Result<(), MongeViolation<T>> {
    for (i, j) in quadruples {
        let (a_ij, a_il) = (a.entry(i, j), a.entry(i, j + 1));
        let (a_kj, a_kl) = (a.entry(i + 1, j), a.entry(i + 1, j + 1));
        let lhs = a_ij.add(a_kl);
        let rhs = a_il.add(a_kj);
        if !ok(lhs, rhs) {
            return Err(MongeViolation {
                i,
                k: i + 1,
                j,
                l: j + 1,
                a_ij,
                a_il,
                a_kj,
                a_kl,
            });
        }
    }
    Ok(())
}

/// Does the `∞`-pattern of `A` form a legal staircase?
///
/// Definition (§1.1, item 2): `b[i,j] = ∞` implies `b[i,l] = ∞` for `l > j`
/// and `b[k,j] = ∞` for `k > i` — the infinite region spreads right and
/// down. Equivalently, the first infinite column `f_i` of each row is
/// non-increasing in `i`.
pub fn has_staircase_shape<T: Value, A: Array2d<T>>(a: &A) -> bool {
    let (m, n) = (a.rows(), a.cols());
    let mut prev_f = n + 1;
    for i in 0..m {
        let f = staircase_boundary_row(a, i);
        // Within the row, everything at or beyond f must be infinite
        // (checked by staircase_boundary_row), and f must not grow.
        if f > prev_f {
            return false;
        }
        for j in f..n {
            if !a.entry(i, j).is_pos_infinite() {
                return false;
            }
        }
        prev_f = f;
    }
    true
}

/// The first infinite column `f_i` of row `i` (or `n` if the row is fully
/// finite). Assumes nothing about shape; scans left to right.
pub fn staircase_boundary_row<T: Value, A: Array2d<T>>(a: &A, i: usize) -> usize {
    let n = a.cols();
    (0..n)
        .find(|&j| a.entry(i, j).is_pos_infinite())
        .unwrap_or(n)
}

/// The full staircase boundary `f_1, …, f_m`.
pub fn staircase_boundary<T: Value, A: Array2d<T>>(a: &A) -> Vec<usize> {
    (0..a.rows())
        .map(|i| staircase_boundary_row(a, i))
        .collect()
}

/// Is `A` staircase-Monge? (Items 1–3 of the §1.1 definition: legal
/// staircase shape, and (1.1) holds whenever all four entries are finite.)
pub fn is_staircase_monge<T: Value, A: Array2d<T>>(a: &A) -> bool {
    has_staircase_shape(a) && check_finite_quadrangles(a, |lhs, rhs| lhs.total_le(rhs)).is_ok()
}

/// Is `A` staircase-inverse-Monge?
pub fn is_staircase_inverse_monge<T: Value, A: Array2d<T>>(a: &A) -> bool {
    has_staircase_shape(a) && check_finite_quadrangles(a, |lhs, rhs| rhs.total_le(lhs)).is_ok()
}

/// Checks (1.1) on every all-finite adjacent quadruple of an
/// `∞`-patterned staircase array, reporting the first violation.
pub fn check_staircase_monge<T: Value, A: Array2d<T>>(a: &A) -> Result<(), MongeViolation<T>> {
    check_finite_quadrangles(a, |lhs, rhs| lhs.total_le(rhs))
}

fn check_finite_quadrangles<T: Value, A: Array2d<T>>(
    a: &A,
    ok: impl Fn(T, T) -> bool,
) -> Result<(), MongeViolation<T>> {
    // For staircase shapes it again suffices to check adjacent quadruples:
    // any all-finite quadruple (i,k,j,l) decomposes into adjacent all-finite
    // quadruples because the finite region is closed up and to the left.
    let (m, n) = (a.rows(), a.cols());
    for i in 0..m.saturating_sub(1) {
        for j in 0..n.saturating_sub(1) {
            let e00 = a.entry(i, j);
            let e01 = a.entry(i, j + 1);
            let e10 = a.entry(i + 1, j);
            let e11 = a.entry(i + 1, j + 1);
            if e00.is_infinite() || e01.is_infinite() || e10.is_infinite() || e11.is_infinite() {
                continue;
            }
            if !ok(e00.add(e11), e01.add(e10)) {
                return Err(MongeViolation {
                    i,
                    k: i + 1,
                    j,
                    l: j + 1,
                    a_ij: e00,
                    a_il: e01,
                    a_kj: e10,
                    a_kl: e11,
                });
            }
        }
    }
    Ok(())
}

/// Is `A` totally monotone with respect to row minima?
///
/// For all `i < k`, `j < l`: `a[i,j] > a[i,l]` implies `a[k,j] > a[k,l]`
/// ("if row `i` strictly prefers the right column, every later row does
/// too"). Every Monge array is totally monotone; the converse fails. This
/// is the property SMAWK actually needs. Checked in `O(m n²)` — used only
/// in tests on small arrays.
pub fn is_totally_monotone_minima<T: Value, A: Array2d<T>>(a: &A) -> bool {
    let (m, n) = (a.rows(), a.cols());
    for j in 0..n {
        for l in j + 1..n {
            let mut seen_prefer_right = false;
            for i in 0..m {
                let prefers_right = a.entry(i, l).total_lt(a.entry(i, j));
                if seen_prefer_right && !prefers_right {
                    return false;
                }
                seen_prefer_right |= prefers_right;
            }
        }
    }
    true
}

/// Brute-force leftmost row minima: the oracle every search algorithm is
/// tested against. For staircase arrays, `∞` entries lose to any finite
/// entry, so the scan naturally stays in the finite region.
pub fn brute_row_minima<T: Value, A: Array2d<T>>(a: &A) -> Vec<usize> {
    brute_rows(a, |cand, best| cand.total_lt(best))
}

/// Brute-force leftmost row maxima.
pub fn brute_row_maxima<T: Value, A: Array2d<T>>(a: &A) -> Vec<usize> {
    brute_rows(a, |cand, best| best.total_lt(cand))
}

fn brute_rows<T: Value, A: Array2d<T>>(a: &A, better: impl Fn(T, T) -> bool) -> Vec<usize> {
    let (m, n) = (a.rows(), a.cols());
    assert!(n > 0, "arrays must have at least one column");
    (0..m)
        .map(|i| {
            let mut best = 0;
            let mut best_v = a.entry(i, 0);
            for j in 1..n {
                let v = a.entry(i, j);
                if better(v, best_v) {
                    best = j;
                    best_v = v;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array2d::{Dense, Negate, ReverseCols, Transpose};

    const INF: i64 = <i64 as Value>::INFINITY;

    fn monge_example() -> Dense<i64> {
        // a[i,j] = -(i*j) is submodular (Monge): the adjacent quadrangle
        // difference is -(i+1)(j+1) - ij + i(j+1) + (i+1)j = -1 <= 0.
        // (a[i,j] = (i-j)^2 is also Monge; i*j is inverse-Monge.)
        Dense::tabulate(5, 6, |i, j| -((i * j) as i64))
    }

    fn inverse_monge_example() -> Dense<i64> {
        // i*j is supermodular (inverse-Monge).
        Dense::tabulate(5, 6, |i, j| (i * j) as i64)
    }

    #[test]
    fn detects_monge() {
        assert!(is_monge(&monge_example()));
        assert!(!is_inverse_monge(&monge_example()));
    }

    #[test]
    fn detects_inverse_monge() {
        assert!(is_inverse_monge(&inverse_monge_example()));
        assert!(!is_monge(&inverse_monge_example()));
    }

    #[test]
    fn additive_arrays_are_both() {
        // a[i,j] = r[i] + c[j] satisfies (1.1) and (1.2) with equality.
        let a = Dense::tabulate(4, 4, |i, j| (3 * i + 7 * j) as i64);
        assert!(is_monge(&a));
        assert!(is_inverse_monge(&a));
    }

    #[test]
    fn adapters_convert_classes() {
        let a = monge_example();
        assert!(is_inverse_monge(&Negate(&a)));
        assert!(is_inverse_monge(&ReverseCols(&a)));
        assert!(is_monge(&Transpose(&a)));
    }

    #[test]
    fn staircase_shape_accepts_non_increasing_boundary() {
        let a = Dense::from_rows(vec![
            vec![1, 2, 3, INF],
            vec![1, 2, INF, INF],
            vec![1, INF, INF, INF],
        ]);
        assert!(has_staircase_shape(&a));
        assert_eq!(staircase_boundary(&a), vec![3, 2, 1]);
    }

    #[test]
    fn staircase_shape_rejects_increasing_boundary() {
        let a = Dense::from_rows(vec![vec![1, INF], vec![1, 2]]);
        assert!(!has_staircase_shape(&a));
    }

    #[test]
    fn staircase_shape_rejects_holes() {
        let a = Dense::from_rows(vec![vec![1, INF, 3]]);
        assert!(!has_staircase_shape(&a));
    }

    #[test]
    fn staircase_monge_checks_finite_quadrangles_only() {
        // The 2x2 all-finite block violates (1.1); with an infinity in it,
        // the violation is ignored.
        let bad = Dense::from_rows(vec![vec![0, 0], vec![0, 5]]);
        assert!(!is_staircase_monge(&bad));
        // Masking one entry of the violating quadruple with ∞ (legally:
        // f_0 = 2 >= f_1 = 1) makes the array staircase-Monge, because the
        // quadrangle inequality is only required on all-finite quadruples.
        let masked = Dense::from_rows(vec![vec![0, 0], vec![0, INF]]);
        assert!(has_staircase_shape(&masked));
        assert!(is_staircase_monge(&masked));
    }

    #[test]
    fn staircase_monge_full_example() {
        // Monge base with a legal staircase of infinities.
        let a = Dense::from_rows(vec![
            vec![0, -1, -2, INF],
            vec![0, -2, -4, INF],
            vec![0, -3, INF, INF],
        ]);
        assert!(is_staircase_monge(&a));
    }

    #[test]
    fn monge_implies_totally_monotone() {
        assert!(is_totally_monotone_minima(&monge_example()));
        let a = Dense::tabulate(6, 6, |i, j| -((i * j) as i64) + (j as i64));
        assert!(is_monge(&a));
        assert!(is_totally_monotone_minima(&a));
    }

    #[test]
    fn totally_monotone_does_not_imply_monge() {
        // Classic: total monotonicity is weaker than Monge.
        let a = Dense::from_rows(vec![vec![0, 100], vec![0, 1]]);
        // Quadrangle: 0 + 1 <= 100 + 0 holds -> actually Monge. Pick another:
        let b = Dense::from_rows(vec![vec![0, 1], vec![0, 100]]);
        // 0+100 <= 1+0 is false -> not Monge.
        assert!(!is_monge(&b));
        // Row 0 prefers col 0 (0 < 1), row 1 prefers col 0: monotone.
        assert!(is_totally_monotone_minima(&b));
        let _ = a;
    }

    #[test]
    fn check_monge_reports_the_first_violating_quadruple() {
        // Monge except for one bumped entry at (2, 3): the scan runs
        // row-major, so the first violated adjacent quadruple is the one
        // with (2,3) in its bottom-right (anti-diagonal) corner... the
        // bump raises a[2,3] which sits on the RHS there, so the first
        // *violated* quadruple is the one with (2,3) on its diagonal:
        // (1,2)-(2,3) has it as a[k,l] (LHS). Verify the witness indices
        // and values rather than guessing: recompute the inequality.
        let mut rows: Vec<Vec<i64>> = (0..5)
            .map(|i| (0..6).map(|j| -((i * j) as i64)).collect())
            .collect();
        rows[2][3] += 100;
        let a = Dense::from_rows(rows);
        let v = check_monge(&a).expect_err("bumped array is not Monge");
        assert_eq!((v.k, v.l), (v.i + 1, v.j + 1));
        let lhs = v.a_ij + v.a_kl;
        let rhs = v.a_il + v.a_kj;
        assert!(lhs > rhs, "witness must actually violate: {lhs} <= {rhs}");
        assert_eq!(v.a_ij, a.entry(v.i, v.j));
        assert_eq!(v.a_kl, a.entry(v.k, v.l));
        // And the clean array passes.
        assert!(check_monge(&monge_example()).is_ok());
        assert!(check_inverse_monge(&inverse_monge_example()).is_ok());
    }

    #[test]
    fn spot_check_finds_dense_corruption_and_passes_clean_arrays() {
        let clean = monge_example();
        assert!(spot_check_monge(&clean, 64, 42).is_ok());
        // Corrupt a whole row band: sampled checks at a generous budget
        // must find it for any seed we try.
        let mut rows: Vec<Vec<i64>> = (0..8)
            .map(|i| (0..8).map(|j| -((i * j) as i64)).collect())
            .collect();
        for (j, v) in rows[4].iter_mut().enumerate() {
            *v += (j as i64) * (j as i64) * 50;
        }
        let bad = Dense::from_rows(rows);
        assert!(check_monge(&bad).is_err());
        assert!(spot_check_monge(&bad, 512, 7).is_err());
    }

    #[test]
    fn staircase_prefix_check_honors_the_boundary() {
        // Finite prefixes 3,3,2: the (1,2)-(2,3)-ish quadruples beyond
        // the boundary are never read (entries there are garbage, not ∞).
        let a = Dense::from_rows(vec![
            vec![0, -1, -2, 999],
            vec![0, -2, -4, -999],
            vec![0, -3, 77, 888],
        ]);
        let b = vec![3, 3, 2];
        assert!(check_staircase_monge_prefix(&a, &b).is_ok());
        assert!(spot_check_staircase_monge_prefix(&a, &b, 64, 3).is_ok());
        // A violation inside the prefix is caught.
        let bad = Dense::from_rows(vec![vec![0, 0, 0], vec![0, 5, 0], vec![0, 0, 0]]);
        let b = vec![3, 3, 3];
        let v = check_staircase_monge_prefix(&bad, &b).expect_err("in-prefix violation");
        assert!(v.i < 2 && v.j < 2);
        assert!(spot_check_staircase_monge_prefix(&bad, &b, 256, 9).is_err());
    }

    #[test]
    fn infinity_patterned_staircase_check_reports_witness() {
        let bad = Dense::from_rows(vec![vec![0, 0], vec![0, 5]]);
        let v = check_staircase_monge(&bad).expect_err("finite quadruple violates");
        assert_eq!((v.i, v.k, v.j, v.l), (0, 1, 0, 1));
        let masked = Dense::from_rows(vec![vec![0, 0], vec![0, INF]]);
        assert!(check_staircase_monge(&masked).is_ok());
    }

    #[test]
    fn brute_minima_and_maxima() {
        let a = Dense::from_rows(vec![vec![3, 1, 1], vec![0, 5, -2]]);
        assert_eq!(brute_row_minima(&a), vec![1, 2]);
        assert_eq!(brute_row_maxima(&a), vec![0, 1]);
    }

    #[test]
    fn brute_minima_ignores_infinite_tail() {
        let a = Dense::from_rows(vec![vec![3, 1, INF], vec![2, INF, INF]]);
        assert_eq!(brute_row_minima(&a), vec![1, 0]);
    }
}
