//! The single source of truth for extremum tie-breaking.
//!
//! Every engine in this workspace ultimately asks one question — *does a
//! candidate entry replace the incumbent optimum of its row?* — and the
//! paper fixes the answer: "if a row has several maxima, then we take
//! the leftmost one". Before this module the strict/non-strict
//! comparison pair implementing that rule was re-derived independently
//! in SMAWK's REDUCE step, the rayon engine's lexicographic reduction
//! combiner, the staircase engines' candidate merge, and the eval
//! layer's branchless scans; keeping four copies in sync is exactly how
//! the parallel-reduce tie-break bug fixed in PR 1 happened. Now
//! [`Tie`] owns the comparisons and everyone else calls in.

use crate::value::Value;

/// Tie-breaking rule for equal optima within a row.
///
/// `Left` is the paper's convention and the default everywhere; `Right`
/// exists because the §1.2 reverse-and-negate reductions turn a
/// leftmost problem on the original array into a *rightmost* problem on
/// the reflected one (see [`crate::problem::lower_rows`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tie {
    /// Prefer the smallest column index.
    Left,
    /// Prefer the largest column index.
    Right,
}

impl Tie {
    /// The opposite preference — what a tie rule becomes on the other
    /// side of a column reversal.
    #[inline]
    #[must_use]
    pub fn flip(self) -> Tie {
        match self {
            Tie::Left => Tie::Right,
            Tie::Right => Tie::Left,
        }
    }

    /// Does a *minimum* candidate appearing **after** (to the right of)
    /// the incumbent replace it?
    ///
    /// This is the only comparison a left-to-right minimum scan needs:
    /// under `Left` the candidate must strictly improve, under `Right`
    /// equality suffices.
    #[inline]
    pub fn replaces_min<T: Value>(self, candidate: T, incumbent: T) -> bool {
        match self {
            Tie::Left => candidate.total_lt(incumbent),
            Tie::Right => candidate.total_le(incumbent),
        }
    }

    /// Does a *maximum* candidate appearing **after** the incumbent
    /// replace it?
    #[inline]
    pub fn replaces_max<T: Value>(self, candidate: T, incumbent: T) -> bool {
        match self {
            Tie::Left => incumbent.total_lt(candidate),
            Tie::Right => incumbent.total_le(candidate),
        }
    }
}

/// Order-insensitive combiner for `(column, value)` minimum candidates:
/// smaller value wins, and on equal values the tie rule picks the
/// column. Associative and commutative, so a parallel reduction returns
/// the same answer no matter how the runtime associates it.
#[inline]
pub fn lex_min<T: Value>(x: (usize, T), y: (usize, T), tie: Tie) -> (usize, T) {
    let y_wins = y.1.total_lt(x.1)
        || (!x.1.total_lt(y.1)
            && match tie {
                Tie::Left => y.0 < x.0,
                Tie::Right => y.0 > x.0,
            });
    if y_wins {
        y
    } else {
        x
    }
}

/// Merges a `(value, column)` minimum candidate into a row's running
/// optimum slot, keeping the **leftmost** minimum. The staircase
/// engines' divide & conquer visits each row from several independent
/// subproblems in no particular column order, so the merge must compare
/// columns explicitly rather than rely on scan direction.
#[inline]
pub fn merge_min_candidate<T: Value>(slot: &mut Option<(T, usize)>, v: T, j: usize) {
    match slot {
        None => *slot = Some((v, j)),
        Some((bv, bj)) => {
            if v.total_lt(*bv) || (!bv.total_lt(v) && j < *bj) {
                *slot = Some((v, j));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plateau (all-equal) array is the adversarial case for every
    /// tie rule: each comparison is a tie, so only the rule decides.
    #[test]
    fn plateau_scans_obey_the_tie_rule() {
        let row = [7i64; 13];
        let mut left = 0usize;
        let mut right = 0usize;
        for (k, &v) in row.iter().enumerate().skip(1) {
            if Tie::Left.replaces_min(v, row[left]) {
                left = k;
            }
            if Tie::Right.replaces_min(v, row[right]) {
                right = k;
            }
        }
        assert_eq!(left, 0, "leftmost rule must keep the first of a plateau");
        assert_eq!(right, 12, "rightmost rule must take the last of a plateau");
    }

    #[test]
    fn plateau_reduction_is_order_insensitive() {
        // Combine plateau candidates in several association orders; the
        // leftmost rule must always return column 0 and the rightmost
        // rule the largest column.
        let cands: Vec<(usize, i64)> = (0..9).map(|j| (j, 4)).collect();
        let fold_l = cands
            .iter()
            .copied()
            .reduce(|x, y| lex_min(x, y, Tie::Left))
            .unwrap();
        let fold_r = cands
            .iter()
            .copied()
            .rev()
            .reduce(|x, y| lex_min(y, x, Tie::Right))
            .unwrap();
        assert_eq!(fold_l.0, 0);
        assert_eq!(fold_r.0, 8);
        // Tree-shaped association.
        let tree = lex_min(
            lex_min(cands[3], cands[1], Tie::Left),
            lex_min(cands[0], cands[7], Tie::Left),
            Tie::Left,
        );
        assert_eq!(tree.0, 0);
    }

    #[test]
    fn plateau_merge_keeps_leftmost() {
        let mut slot: Option<(i64, usize)> = None;
        for j in [5usize, 2, 8, 2, 0, 9] {
            merge_min_candidate(&mut slot, 3, j);
        }
        assert_eq!(slot, Some((3, 0)));
        merge_min_candidate(&mut slot, 2, 7);
        assert_eq!(slot, Some((2, 7)), "strictly smaller value always wins");
    }

    #[test]
    fn max_rule_mirrors_min_rule() {
        assert!(Tie::Left.replaces_max(5i64, 4));
        assert!(!Tie::Left.replaces_max(4i64, 4));
        assert!(Tie::Right.replaces_max(4i64, 4));
        assert!(!Tie::Right.replaces_max(3i64, 4));
        assert_eq!(Tie::Left.flip(), Tie::Right);
        assert_eq!(Tie::Right.flip(), Tie::Left);
    }
}
