//! Tube maxima / minima of Monge-composite arrays.
//!
//! A `p × q × r` array `C = {c[i,j,k]}` is Monge-composite when
//! `c[i,j,k] = d[i,j] + e[j,k]` for Monge arrays `D` (`p × q`) and `E`
//! (`q × r`) (§1.1). Following the applications in [AP89a, AALM88] (string
//! editing, Huffman codes), the *tube* over the pair `(i, k)` varies the
//! **middle** coordinate `j`:
//!
//! ```text
//! tube-max(i, k) = max_j  d[i,j] + e[j,k]
//! ```
//!
//! i.e. tube maxima is the `(max,+)` matrix product `D ⊗ E`, and tube
//! minima the `(min,+)` product — exactly the DIST-matrix combination step
//! of the grid-DAG string-editing algorithm.
//!
//! (The extended abstract's §1.2 literally defines the `(i,j)` tube as
//! varying the third coordinate, under which the problem degenerates to
//! `d[i,j] + max_k e[j,k]`; that variant is provided as
//! [`tube_maxima_literal`] for completeness. See DESIGN.md §3.)
//!
//! Key structural fact used everywhere: for fixed `i`, the *plane*
//! `F_i[k][j] = d[i,j] + e[j,k]` is a Monge array in `(k, j)`, so each
//! plane's row maxima/minima take `Θ(q + r)` time by SMAWK, giving the
//! sequential `O((p + r) q)` bound of §1.2 for square-ish inputs.

use crate::array2d::Array2d;
use crate::smawk::row_maxima_monge;
use crate::value::Value;
use std::ops::Range;

/// A Monge-composite array `c[i,j,k] = d[i,j] + e[j,k]`.
#[derive(Clone, Debug)]
pub struct MongeComposite<T, A, B> {
    /// The `p × q` left factor.
    pub d: A,
    /// The `q × r` right factor.
    pub e: B,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Value, A: Array2d<T>, B: Array2d<T>> MongeComposite<T, A, B> {
    /// Wraps two factors; their inner dimensions must agree.
    pub fn new(d: A, e: B) -> Self {
        assert_eq!(
            d.cols(),
            e.rows(),
            "inner dimensions disagree: D is {}x{}, E is {}x{}",
            d.rows(),
            d.cols(),
            e.rows(),
            e.cols()
        );
        Self {
            d,
            e,
            _marker: std::marker::PhantomData,
        }
    }

    /// `p`, the first dimension.
    pub fn p(&self) -> usize {
        self.d.rows()
    }
    /// `q`, the middle dimension.
    pub fn q(&self) -> usize {
        self.d.cols()
    }
    /// `r`, the third dimension.
    pub fn r(&self) -> usize {
        self.e.cols()
    }

    /// The entry `c[i,j,k] = d[i,j] + e[j,k]`.
    #[inline]
    pub fn entry(&self, i: usize, j: usize, k: usize) -> T {
        self.d.entry(i, j).add(self.e.entry(j, k))
    }
}

/// Results of a tube search: for every `(i, k)` the optimizing middle
/// coordinate `j` and the optimal value.
#[derive(Clone, Debug, PartialEq)]
pub struct TubeExtrema<T> {
    /// First dimension `p`.
    pub p: usize,
    /// Third dimension `r`.
    pub r: usize,
    /// Row-major `p × r` argopt array (middle coordinate `j`).
    pub index: Vec<usize>,
    /// Row-major `p × r` optimal values.
    pub value: Vec<T>,
}

impl<T: Value> TubeExtrema<T> {
    /// The optimizing `j` for the tube `(i, k)`.
    #[inline]
    pub fn arg(&self, i: usize, k: usize) -> usize {
        self.index[i * self.r + k]
    }
    /// The optimal value of the tube `(i, k)`.
    #[inline]
    pub fn val(&self, i: usize, k: usize) -> T {
        self.value[i * self.r + k]
    }
}

/// The Monge plane `F_i[k][j] = d[i,j] + e[j,k]` for a fixed `i`.
///
/// A named array type (rather than a closure) so that `fill_row` can
/// batch: the `d` terms of a plane row are a contiguous slice of row `i`
/// of `D`, fetched with one [`Array2d::fill_row`] call, and only the `e`
/// terms need per-element evaluation.
#[derive(Clone, Debug)]
pub struct Plane<'a, T, A, B> {
    d: &'a A,
    e: &'a B,
    i: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<'a, T: Value, A: Array2d<T>, B: Array2d<T>> Array2d<T> for Plane<'a, T, A, B> {
    fn rows(&self) -> usize {
        self.e.cols()
    }
    fn cols(&self) -> usize {
        self.d.cols()
    }
    #[inline]
    fn entry(&self, k: usize, j: usize) -> T {
        self.d.entry(self.i, j).add(self.e.entry(j, k))
    }
    fn fill_row(&self, k: usize, cols: Range<usize>, out: &mut [T]) {
        // `out` doubles as the buffer for the d-row slice; the e column
        // is folded in place, so no temporary allocation is needed.
        self.d.fill_row(self.i, cols.clone(), out);
        for (slot, j) in out.iter_mut().zip(cols) {
            *slot = slot.add(self.e.entry(j, k));
        }
    }
    fn prefers_streaming(&self) -> bool {
        // Every plane row is computed (d-row slice + folded e column),
        // so wide tube scans stream regardless of how D is stored.
        true
    }
}

/// Builds the plane `F_i` of the composite `c[i,j,k] = d[i,j] + e[j,k]`.
pub fn plane<'a, T: Value, A: Array2d<T>, B: Array2d<T>>(
    d: &'a A,
    e: &'a B,
    i: usize,
) -> Plane<'a, T, A, B> {
    Plane {
        d,
        e,
        i,
        _marker: std::marker::PhantomData,
    }
}

/// Which per-plane SMAWK reduction a tube search runs.
enum PlaneSolve {
    /// Leftmost row minima of a Monge plane.
    MongeMin,
    /// Leftmost row maxima of a Monge plane.
    MongeMax,
    /// Leftmost row maxima of an inverse-Monge plane.
    InverseMax,
}

/// Shared per-plane driver: one SMAWK call per plane, with the argmin
/// buffer checked out of the thread-local arena once for the whole
/// product. Combined with the arena-backed SMAWK recursion, the per-plane
/// loop — the sequential leaf every parallel tube engine bottoms out
/// into — performs no heap allocation beyond the `p × r` output in
/// steady state.
fn tube_by_planes<T: Value, A: Array2d<T>, B: Array2d<T>>(
    d: &A,
    e: &B,
    which: PlaneSolve,
) -> TubeExtrema<T> {
    assert_eq!(d.cols(), e.rows(), "inner dimensions disagree");
    let (p, q, r) = (d.rows(), d.cols(), e.cols());
    assert!(q > 0, "tube over an empty middle dimension is undefined");
    let mut index = Vec::with_capacity(p * r);
    let mut value = Vec::with_capacity(p * r);
    crate::scratch::with_scratch(|idx: &mut Vec<usize>| {
        idx.clear();
        idx.resize(r, 0);
        for i in 0..p {
            crate::guard::checkpoint();
            let pl = plane(d, e, i);
            match which {
                PlaneSolve::MongeMin => crate::smawk::row_minima_monge_into(&pl, idx),
                PlaneSolve::MongeMax => crate::smawk::row_maxima_monge_into(&pl, idx),
                PlaneSolve::InverseMax => crate::smawk::row_maxima_inverse_monge_into(&pl, idx),
            }
            index.extend_from_slice(idx);
            value.extend(idx.iter().enumerate().map(|(k, &j)| pl.entry(k, j)));
        }
    });
    TubeExtrema { p, r, index, value }
}

/// Tube maxima (`(max,+)` product) by per-plane SMAWK:
/// `O(p (q + r))` time. Ties take the smallest `j`, matching the paper's
/// "minimum third coordinate" convention transported to the middle
/// coordinate.
pub fn tube_maxima<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> TubeExtrema<T> {
    tube_by_planes(d, e, PlaneSolve::MongeMax)
}

/// Tube minima (`(min,+)` product) by per-plane SMAWK, `O(p (q + r))`.
///
/// ```
/// use monge_core::array2d::Dense;
/// use monge_core::tube::{tube_minima, tube_minima_brute};
///
/// // Two small Monge factors; the tube minima are the (min,+) product.
/// let d = Dense::tabulate(3, 4, |i, j| -((i * j) as i64));
/// let e = Dense::tabulate(4, 3, |j, k| (j as i64 - k as i64).pow(2));
/// let fast = tube_minima(&d, &e);
/// assert_eq!(fast, tube_minima_brute(&d, &e));
/// assert_eq!(fast.val(2, 1), (0..4).map(|j| d.entry(2, j) + e.entry(j, 1)).min().unwrap());
/// # use monge_core::Array2d;
/// ```
pub fn tube_minima<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> TubeExtrema<T> {
    tube_by_planes(d, e, PlaneSolve::MongeMin)
}

/// Tube maxima of a composite of **inverse-Monge** factors: for
/// inverse-Monge `E` every plane `F_i[k][j] = d[i,j] + e[j,k]` is
/// inverse-Monge (the `d` terms cancel out of every quadrangle), so the
/// per-plane search uses [`crate::smawk::row_maxima_inverse_monge`]. `O(p (q + r))`.
pub fn tube_maxima_inverse<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> TubeExtrema<T> {
    tube_by_planes(d, e, PlaneSolve::InverseMax)
}

/// Brute-force tube maxima oracle, `O(p q r)`.
pub fn tube_maxima_brute<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> TubeExtrema<T> {
    tube_brute(d, e, |cand, best| best.total_lt(cand))
}

/// Brute-force tube minima oracle, `O(p q r)`.
pub fn tube_minima_brute<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> TubeExtrema<T> {
    tube_brute(d, e, |cand, best| cand.total_lt(best))
}

fn tube_brute<T: Value, A: Array2d<T>, B: Array2d<T>>(
    d: &A,
    e: &B,
    better: impl Fn(T, T) -> bool,
) -> TubeExtrema<T> {
    assert_eq!(d.cols(), e.rows(), "inner dimensions disagree");
    let (p, q, r) = (d.rows(), d.cols(), e.cols());
    assert!(q > 0);
    let mut index = Vec::with_capacity(p * r);
    let mut value = Vec::with_capacity(p * r);
    for i in 0..p {
        for k in 0..r {
            let mut best = 0usize;
            let mut best_v = d.entry(i, 0).add(e.entry(0, k));
            for j in 1..q {
                let v = d.entry(i, j).add(e.entry(j, k));
                if better(v, best_v) {
                    best = j;
                    best_v = v;
                }
            }
            index.push(best);
            value.push(best_v);
        }
    }
    TubeExtrema { p, r, index, value }
}

/// The extended abstract's literal tube definition: for each `(i, j)`,
/// optimize over the **third** coordinate `k`. Because
/// `c[i,j,k] = d[i,j] + e[j,k]`, this decomposes as
/// `d[i,j] + max_k e[j,k]`: one row-maxima computation on `E` answers all
/// `p × q` tubes. Ties take the minimum third coordinate (leftmost).
pub fn tube_maxima_literal<T: Value, A: Array2d<T>, B: Array2d<T>>(d: &A, e: &B) -> TubeExtrema<T> {
    assert_eq!(d.cols(), e.rows(), "inner dimensions disagree");
    let (p, q) = (d.rows(), d.cols());
    assert!(e.cols() > 0);
    let emax = row_maxima_monge(e);
    let mut index = Vec::with_capacity(p * q);
    let mut value = Vec::with_capacity(p * q);
    for i in 0..p {
        for j in 0..q {
            index.push(emax.index[j]);
            value.push(d.entry(i, j).add(emax.value[j]));
        }
    }
    TubeExtrema {
        p,
        r: q,
        index,
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_monge_dense;
    use crate::monge::is_monge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planes_are_monge() {
        let mut rng = StdRng::seed_from_u64(20);
        let d = random_monge_dense(6, 8, &mut rng);
        let e = random_monge_dense(8, 5, &mut rng);
        for i in 0..6 {
            assert!(is_monge(&plane(&d, &e, i)), "plane {i} not Monge");
        }
    }

    #[test]
    fn tube_maxima_matches_brute() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(p, q, r) in &[(1usize, 1usize, 1usize), (4, 7, 3), (9, 5, 9), (6, 6, 6)] {
            let d = random_monge_dense(p, q, &mut rng);
            let e = random_monge_dense(q, r, &mut rng);
            assert_eq!(
                tube_maxima(&d, &e),
                tube_maxima_brute(&d, &e),
                "{p}x{q}x{r}"
            );
        }
    }

    #[test]
    fn tube_minima_matches_brute() {
        let mut rng = StdRng::seed_from_u64(22);
        for &(p, q, r) in &[(3usize, 9usize, 4usize), (8, 8, 8), (2, 3, 11)] {
            let d = random_monge_dense(p, q, &mut rng);
            let e = random_monge_dense(q, r, &mut rng);
            assert_eq!(
                tube_minima(&d, &e),
                tube_minima_brute(&d, &e),
                "{p}x{q}x{r}"
            );
        }
    }

    #[test]
    fn composite_entry_is_sum() {
        let mut rng = StdRng::seed_from_u64(23);
        let d = random_monge_dense(3, 4, &mut rng);
        let e = random_monge_dense(4, 5, &mut rng);
        let c = MongeComposite::new(&d, &e);
        assert_eq!(c.p(), 3);
        assert_eq!(c.q(), 4);
        assert_eq!(c.r(), 5);
        assert_eq!(c.entry(2, 1, 3), d.entry(2, 1) + e.entry(1, 3));
    }

    #[test]
    fn literal_tubes_decompose() {
        let mut rng = StdRng::seed_from_u64(24);
        let d = random_monge_dense(4, 5, &mut rng);
        let e = random_monge_dense(5, 6, &mut rng);
        let lit = tube_maxima_literal(&d, &e);
        for i in 0..4 {
            for j in 0..5 {
                let mut best = 0;
                let mut best_v = e.entry(j, 0);
                for k in 1..6 {
                    if best_v < e.entry(j, k) {
                        best = k;
                        best_v = e.entry(j, k);
                    }
                }
                assert_eq!(lit.arg(i, j), best);
                assert_eq!(lit.val(i, j), d.entry(i, j) + best_v);
            }
        }
    }

    #[test]
    fn tie_break_takes_smallest_middle_coordinate() {
        use crate::array2d::Dense;
        // All-zero factors: every j ties; smallest must win.
        let d = Dense::filled(2, 3, 0i64);
        let e = Dense::filled(3, 2, 0i64);
        let mx = tube_maxima(&d, &e);
        let mn = tube_minima(&d, &e);
        assert!(mx.index.iter().all(|&j| j == 0));
        assert!(mn.index.iter().all(|&j| j == 0));
    }
}
