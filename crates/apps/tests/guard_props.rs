//! Property tests for the guarded dispatch layer: full validation
//! accepts every genuinely Monge / staircase-Monge instance (and the
//! guarded solve agrees with the sequential reference), rejects every
//! instance with one injected violation, and sampled validation has no
//! false negatives at violation densities of `1/n` and above.

use monge_core::array2d::{Array2d, Dense};
use monge_core::generators::{apply_staircase, random_monge_dense, random_staircase_boundary};
use monge_core::guard::{GuardPolicy, SolveError};
use monge_core::problem::Problem;
use monge_parallel::{Dispatcher, Tuning};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Copy of `a` with `delta` added at the single entry `(i, j)`. For an
/// interior `(i, j)` and a positive `delta`, this breaks the adjacent
/// quadruple `(i-1, i, j-1, j)`, which has `(i, j)` on its diagonal.
fn corrupt_one(a: &Dense<i64>, i: usize, j: usize, delta: i64) -> Dense<i64> {
    let rows: Vec<Vec<i64>> = (0..a.rows())
        .map(|r| {
            (0..a.cols())
                .map(|c| {
                    let v = a.entry(r, c);
                    if (r, c) == (i, j) {
                        v + delta
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    Dense::from_rows(rows)
}

/// Copy of `a` with `i * delta` added down column `j` (a constant shift
/// of a column preserves Monge; a row-linear one breaks every adjacent
/// quadruple touching columns `(j-1, j)`): `m - 1` of the
/// `(m-1)(n-1)` adjacent quadruples violated — density `1/(n-1) > 1/n`,
/// the regime where sampled validation must never miss.
fn corrupt_column(a: &Dense<i64>, j: usize, delta: i64) -> Dense<i64> {
    let rows: Vec<Vec<i64>> = (0..a.rows())
        .map(|r| {
            (0..a.cols())
                .map(|c| {
                    let v = a.entry(r, c);
                    if c == j {
                        v + (r as i64) * delta
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    Dense::from_rows(rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_validation_accepts_every_monge_instance(
        m in 2usize..12, n in 2usize..12, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_monge_dense(m, n, &mut rng);
        let d = Dispatcher::with_default_backends();
        let policy = GuardPolicy::full_validation().fail_on_violation();
        let (sol, tel) = d
            .solve_guarded(&Problem::row_minima(&a), &policy)
            .expect("genuinely Monge instances pass full validation");
        let (reference, _) = d
            .solve_on("sequential", &Problem::row_minima(&a), Tuning::DEFAULT)
            .expect("sequential is total");
        prop_assert_eq!(sol.into_rows().index, reference.into_rows().index);
        let guard = tel.guard.expect("guarded solves stamp an outcome");
        prop_assert!(!guard.quarantined);
        prop_assert!(guard.witness.is_none());
    }

    #[test]
    fn full_validation_accepts_every_staircase_instance(
        m in 2usize..12, n in 2usize..12, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_monge_dense(m, n, &mut rng);
        let boundary = random_staircase_boundary(m, n, &mut rng);
        let stair = apply_staircase(&base, &boundary);
        let d = Dispatcher::with_default_backends();
        let policy = GuardPolicy::full_validation().fail_on_violation();
        let problem = Problem::staircase_row_minima(&stair, &boundary);
        let (sol, tel) = d
            .solve_guarded(&problem, &policy)
            .expect("genuine staircase-Monge instances pass full validation");
        let (reference, _) = d
            .solve_on("sequential", &problem, Tuning::DEFAULT)
            .expect("sequential is total");
        prop_assert_eq!(sol.into_rows().index, reference.into_rows().index);
        prop_assert!(!tel.guard.expect("outcome stamped").quarantined);
    }

    #[test]
    fn full_validation_rejects_one_injected_violation(
        m in 2usize..12, n in 2usize..12, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_monge_dense(m, n, &mut rng);
        // An interior corruption site derived from the seed.
        let i = 1 + (seed % (m as u64 - 1).max(1)) as usize;
        let j = 1 + ((seed >> 16) % (n as u64 - 1).max(1)) as usize;
        let bad = corrupt_one(&a, i.min(m - 1), j.min(n - 1), 10_000_000);
        let d = Dispatcher::with_default_backends();
        let policy = GuardPolicy::full_validation().fail_on_violation();
        match d.solve_guarded(&Problem::row_minima(&bad), &policy) {
            Err(SolveError::StructureViolation(w)) => {
                // The reported witness must be a real violation of the
                // corrupted array, not just a flag.
                prop_assert!(w.i < w.k && w.j < w.l);
                let lhs = bad.entry(w.i, w.j) + bad.entry(w.k, w.l);
                let rhs = bad.entry(w.i, w.l) + bad.entry(w.k, w.j);
                prop_assert!(lhs > rhs, "witness does not violate Monge: {}", w);
            }
            other => prop_assert!(false, "expected StructureViolation, got {:?}", other),
        }
    }

    #[test]
    fn quarantine_still_answers_correctly_for_the_corrupted_array(
        m in 2usize..12, n in 2usize..12, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_monge_dense(m, n, &mut rng);
        let i = 1 + (seed % (m as u64 - 1).max(1)) as usize;
        let j = 1 + ((seed >> 16) % (n as u64 - 1).max(1)) as usize;
        let bad = corrupt_one(&a, i.min(m - 1), j.min(n - 1), 10_000_000);
        let d = Dispatcher::with_default_backends();
        let (sol, tel) = d
            .solve_guarded(&Problem::row_minima(&bad), &GuardPolicy::full_validation())
            .expect("quarantine degrades, it does not fail");
        // Leftmost row minima of the array as it actually is.
        let expect: Vec<usize> = (0..m)
            .map(|r| {
                let mut best = 0usize;
                for c in 1..n {
                    if bad.entry(r, c) < bad.entry(r, best) {
                        best = c;
                    }
                }
                best
            })
            .collect();
        prop_assert_eq!(sol.into_rows().index, expect);
        let guard = tel.guard.expect("outcome stamped");
        prop_assert!(guard.quarantined);
        prop_assert_eq!(guard.fallback_path(), vec!["brute"]);
    }

    #[test]
    fn sampled_mode_never_misses_density_above_one_over_n(
        m in 2usize..12, n in 2usize..12, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_monge_dense(m, n, &mut rng);
        let j = 1 + ((seed >> 8) % (n as u64 - 1).max(1)) as usize;
        let bad = corrupt_column(&a, j.min(n - 1), 10_000_000);
        let d = Dispatcher::with_default_backends();
        let policy = GuardPolicy::sampled_validation()
            .with_seed(seed ^ 0xD15EA5E)
            .fail_on_violation();
        let res = d.solve_guarded(&Problem::row_minima(&bad), &policy);
        prop_assert!(
            matches!(res, Err(SolveError::StructureViolation(_))),
            "sampled validation missed a density-1/(n-1) corruption"
        );
    }
}
