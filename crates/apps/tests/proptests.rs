//! Property-based tests for the applications: every fast algorithm
//! against its brute-force oracle on randomized instances, plus the
//! structural facts the reductions depend on.

use monge_apps::empty_rect::{
    is_empty_rect, largest_empty_rectangle, largest_empty_rectangle_brute,
};
use monge_apps::farthest::{all_farthest_neighbors, all_farthest_neighbors_brute};
use monge_apps::geometry::{ConvexPolygon, Point, Rect};
use monge_apps::lws::{lws_brute, lws_concave, LotSize};
use monge_apps::max_rect::{largest_corner_rectangle, largest_corner_rectangle_brute};
use monge_apps::neighbors::{neighbors_brute, neighbors_seq, visible_fast, Goal};
use monge_apps::obst::{optimal_bst, optimal_bst_cubic};
use monge_apps::string_edit::{
    apply_script, edit_distance_antidiagonal, edit_distance_dist_tree, edit_distance_dp,
    edit_script, CostModel,
};
use monge_apps::transport::{min_cost_transport, northwest_corner, plan_cost};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn points_from_seed(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn empty_rectangle_is_optimal(n in 1usize..24, seed in any::<u64>()) {
        let pts = points_from_seed(n, seed);
        let bbox = Rect::new(0.0, 0.0, 100.0, 100.0);
        let fast = largest_empty_rectangle(&pts, bbox);
        let brute = largest_empty_rectangle_brute(&pts, bbox);
        prop_assert!(is_empty_rect(&pts, fast));
        prop_assert!((fast.area() - brute.area()).abs() < 1e-6);
    }

    #[test]
    fn corner_rectangle_is_optimal(n in 2usize..40, seed in any::<u64>()) {
        let pts = points_from_seed(n, seed);
        let fast = largest_corner_rectangle(&pts);
        let brute = largest_corner_rectangle_brute(&pts);
        prop_assert!((fast.area - brute.area).abs() < 1e-6);
    }

    #[test]
    fn neighbor_goals_match_oracle(m in 4usize..12, n in 4usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = ConvexPolygon::random(m.max(3), 0.0, 0.0, 10.0, &mut rng);
        let q = ConvexPolygon::random(n.max(3), 40.0, 5.0, 10.0, &mut rng);
        for goal in [Goal::NearestVisible, Goal::NearestInvisible,
                     Goal::FarthestVisible, Goal::FarthestInvisible] {
            let fast = neighbors_seq(&p, &q, goal);
            let brute = neighbors_brute(&p, &q, goal);
            for i in 0..m.max(3) {
                match (fast[i], brute[i]) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        let da = p.vertices[i].dist(q.vertices[a]);
                        let db = p.vertices[i].dist(q.vertices[b]);
                        prop_assert!((da - db).abs() < 1e-9, "{goal:?} row {i}");
                    }
                    other => prop_assert!(false, "{goal:?} row {i}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn visibility_predicate_matches_clipping(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = ConvexPolygon::random(7, 0.0, 0.0, 10.0, &mut rng);
        let q = ConvexPolygon::random(8, 40.0, -5.0, 12.0, &mut rng);
        for i in 0..7 {
            for j in 0..8 {
                prop_assert_eq!(
                    visible_fast(&p, i, &q, j),
                    monge_apps::geometry::visible(&p, p.vertices[i], &q, q.vertices[j])
                );
            }
        }
    }

    #[test]
    fn all_farthest_distances_match(n in 4usize..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let poly = ConvexPolygon::random(n.max(4), 0.0, 0.0, 50.0, &mut rng);
        let got = all_farthest_neighbors(&poly.vertices);
        let want = all_farthest_neighbors_brute(&poly.vertices);
        for i in 0..poly.len() {
            let dg = poly.vertices[i].dist(poly.vertices[got[i]]);
            let dw = poly.vertices[i].dist(poly.vertices[want[i]]);
            prop_assert!((dg - dw).abs() < 1e-9);
        }
    }

    #[test]
    fn edit_engines_agree(m in 0usize..30, n in 0usize..30, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<u8> = (0..m).map(|_| b'a' + rng.random_range(0u8..4)).collect();
        let y: Vec<u8> = (0..n).map(|_| b'a' + rng.random_range(0u8..4)).collect();
        for c in [CostModel::unit(), CostModel::weighted()] {
            let d = edit_distance_dp(&x, &y, &c);
            prop_assert_eq!(edit_distance_antidiagonal(&x, &y, &c), d);
            prop_assert_eq!(edit_distance_dist_tree(&x, &y, &c, 4), d);
            let (cost, ops) = edit_script(&x, &y, &c);
            prop_assert_eq!(cost, d);
            prop_assert_eq!(apply_script(&x, &y, &ops), y.clone());
        }
    }

    #[test]
    fn lws_stack_matches_brute(n in 0usize..80, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fo: Vec<f64> = (0..=n).map(|_| rng.random_range(0.0..2.0)).collect();
        let w = move |i: usize, j: usize| ((j - i) as f64).sqrt() + fo[i];
        let (e1, _) = lws_concave(n, &w);
        let (e2, _) = lws_brute(n, &w);
        for (a, b) in e1.iter().zip(&e2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn lot_size_optimal(n in 1usize..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let demand: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..10.0)).collect();
        let ls = LotSize::new(demand, rng.random_range(1.0..40.0), rng.random_range(0.05..2.0));
        let (cost, _) = ls.solve();
        let lot = |i: usize, j: usize| ls.w(i, j);
        let (e, _) = lws_brute(n, &lot);
        prop_assert!((cost - e[n]).abs() < 1e-9);
    }

    #[test]
    fn obst_speedup_is_exact(n in 1usize..30, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let freq: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..3.0)).collect();
        let fast = optimal_bst(&freq);
        let slow = optimal_bst_cubic(&freq);
        prop_assert!((fast.total_cost() - slow.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn garsia_wachs_matches_dp(n in 1usize..50, seed in any::<u64>()) {
        use monge_apps::alphabetic::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..5.0)).collect();
        let (gw, depths) = garsia_wachs(&w);
        prop_assert!((gw - alphabetic_dp(&w)).abs() < 1e-7);
        prop_assert!(tree_from_depths(&depths).is_some());
        prop_assert!(gw >= huffman_cost(&w) - 1e-9);
    }

    #[test]
    fn pram_corner_rectangle_matches(n in 2usize..60, seed in any::<u64>()) {
        use monge_parallel::MinPrimitive;
        let pts = points_from_seed(n, seed);
        let want = largest_corner_rectangle(&pts);
        let (got, metrics) =
            monge_apps::max_rect::pram_largest_corner_rectangle(&pts, MinPrimitive::DoublyLog);
        prop_assert!((got.area - want.area).abs() < 1e-6);
        prop_assert!(metrics.steps > 0 || n < 2);
    }

    #[test]
    fn hoffman_greedy_is_optimal_on_monge(m in 2usize..5, n in 2usize..5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = monge_core::generators::random_monge_dense(m, n, &mut rng);
        let a: Vec<i64> = (0..m).map(|_| rng.random_range(0..8)).collect();
        let total: i64 = a.iter().sum();
        let mut b = vec![0i64; n];
        let mut left = total;
        for item in b.iter_mut().take(n - 1) {
            let x = if left > 0 { rng.random_range(0..=left) } else { 0 };
            *item = x;
            left -= x;
        }
        b[n - 1] = left;
        let plan = northwest_corner(&a, &b);
        prop_assert_eq!(plan_cost(&plan, &c), min_cost_transport(&a, &b, &c));
    }
}
