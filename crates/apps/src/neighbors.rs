//! §1.3 application 3: nearest / farthest, visible / invisible neighbors
//! between two non-intersecting convex polygons.
//!
//! For each vertex `p` of `P`, find the vertex of `Q` nearest to (or
//! farthest from) `p` among those visible (or invisible) from `p`, where
//! visibility means the open segment meets neither polygon's interior.
//!
//! ## Structure
//!
//! For disjoint convex polygons, a vertex `q` of `Q` is *blocked* in
//! exactly two ways, both `O(1)`-testable:
//!
//! * **by `Q` itself** — `q` lies beyond the tangent chain: `p` is inside
//!   both half-planes of `q`'s adjacent edges;
//! * **by `P`** — the direction `p → q` enters `P`'s interior wedge at
//!   `p`: `q` is inside both half-planes of `p`'s adjacent edges.
//!
//! The invisible set of each `p` is a contiguous *arc* of `Q` (verified
//! by the structural tests), whose endpoints rotate monotonically with
//! `p` — the geometry behind the paper's staircase-Monge formulation.
//! The engine here evaluates the `O(1)` predicates over all pairs
//! (`O(mn)` work, parallel over `P`'s vertices), against an
//! `O(mn(m+n))` segment-clipping oracle; the paper's staircase-Monge
//! search inside the arcs is exercised by Table 1.2's engines (see
//! DESIGN.md §3 for this recorded substitution).

use crate::geometry::{cross, visible, ConvexPolygon};
use monge_core::array2d::FnArray;
use monge_core::eval::CachedArray;
use monge_core::problem::Problem;
use monge_parallel::tuning::Tuning;
use monge_parallel::Dispatcher;
use rayon::prelude::*;

/// Which neighbor is sought.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Goal {
    /// Nearest visible vertex.
    NearestVisible,
    /// Nearest invisible vertex.
    NearestInvisible,
    /// Farthest visible vertex.
    FarthestVisible,
    /// Farthest invisible vertex.
    FarthestInvisible,
}

/// `O(1)` visibility predicate for vertices of two disjoint convex ccw
/// polygons (see module docs). `i` indexes `P`, `j` indexes `Q`.
pub fn visible_fast(p: &ConvexPolygon, i: usize, q: &ConvexPolygon, j: usize) -> bool {
    let m = p.vertices.len();
    let n = q.vertices.len();
    let pv = p.vertices[i];
    let qv = q.vertices[j];
    // Blocked by P: q strictly inside both adjacent-edge half-planes at p.
    let p_prev = p.vertices[(i + m - 1) % m];
    let p_next = p.vertices[(i + 1) % m];
    let blocked_by_p = cross(p_prev, pv, qv) > 1e-9 && cross(pv, p_next, qv) > 1e-9;
    // Blocked by Q: p strictly inside both adjacent-edge half-planes at q.
    let q_prev = q.vertices[(j + n - 1) % n];
    let q_next = q.vertices[(j + 1) % n];
    let blocked_by_q = cross(q_prev, qv, pv) > 1e-9 && cross(qv, q_next, pv) > 1e-9;
    !blocked_by_p && !blocked_by_q
}

/// The goal-seeking engine over exact `O(1)` predicates, parallel over
/// `P`'s vertices. Returns, per vertex of `P`, the best `Q` index (or
/// `None` when the sought class is empty).
pub fn neighbors(p: &ConvexPolygon, q: &ConvexPolygon, goal: Goal) -> Vec<Option<usize>> {
    solve(p, q, goal, Some(Tuning::from_env()))
}

/// [`neighbors`] with explicit tuning: rows are dealt to rayon tasks in
/// blocks of [`Tuning::seq_rows`] so a small polygon doesn't pay one
/// spawn per vertex.
pub fn neighbors_with(
    p: &ConvexPolygon,
    q: &ConvexPolygon,
    goal: Goal,
    t: Tuning,
) -> Vec<Option<usize>> {
    solve(p, q, goal, Some(t))
}

/// Sequential variant of [`neighbors`].
pub fn neighbors_seq(p: &ConvexPolygon, q: &ConvexPolygon, goal: Goal) -> Vec<Option<usize>> {
    solve(p, q, goal, None)
}

fn solve(
    p: &ConvexPolygon,
    q: &ConvexPolygon,
    goal: Goal,
    parallel: Option<Tuning>,
) -> Vec<Option<usize>> {
    let m = p.vertices.len();
    let n = q.vertices.len();
    let want_visible = matches!(goal, Goal::NearestVisible | Goal::FarthestVisible);
    let want_min = matches!(goal, Goal::NearestVisible | Goal::NearestInvisible);
    // The masked distance array: pairs outside the sought class carry
    // the absorbing element of the objective. Not totally monotone (the
    // mask cuts arcs out of the inverse-Monge distance array), so it
    // dispatches honestly as a `Plain` rows problem; an infinite row
    // optimum means the class is empty for that vertex.
    let masked = FnArray::new(m, n, |i: usize, j: usize| {
        if visible_fast(p, i, q, j) == want_visible {
            p.vertices[i].dist(q.vertices[j])
        } else if want_min {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    });
    let problem = if want_min {
        Problem::plain_row_minima(&masked)
    } else {
        Problem::plain_row_maxima(&masked)
    };
    let d = Dispatcher::with_default_backends();
    let (sol, _) = match parallel {
        Some(t) => d.solve_with(&problem, t),
        None => d
            .solve_on("sequential", &problem, Tuning::DEFAULT)
            .expect("sequential backend handles plain rows"),
    };
    let ex = sol.into_rows();
    ex.index
        .iter()
        .zip(&ex.value)
        .map(|(&j, &v)| v.is_finite().then_some(j))
        .collect()
}

/// All four goals at once over one *shared, memoized* distance array.
///
/// Answering the goals separately evaluates every `p`–`q` distance four
/// times; here a [`CachedArray`] over the implicit distance array
/// materializes each row once and the four goal scans (and any later
/// consumer holding the same wrapper) reuse it. Results are indexed by
/// [`Goal`] declaration order: `[NearestVisible, NearestInvisible,
/// FarthestVisible, FarthestInvisible]`.
pub fn neighbors_all_goals(p: &ConvexPolygon, q: &ConvexPolygon) -> [Vec<Option<usize>>; 4] {
    let m = p.vertices.len();
    let n = q.vertices.len();
    let dist = FnArray::new(m, n, |i: usize, j: usize| p.vertices[i].dist(q.vertices[j]));
    let cached = CachedArray::new(dist);
    let per_row: Vec<[Option<usize>; 4]> = (0..m)
        .into_par_iter()
        .map(|i| {
            let row = cached.row_cached(i);
            let vis: Vec<bool> = (0..n).map(|j| visible_fast(p, i, q, j)).collect();
            let mut best = [None::<(f64, usize)>; 4];
            for (g, slot) in best.iter_mut().enumerate() {
                let want_visible = g % 2 == 0; // NearestVisible, FarthestVisible
                let want_min = g < 2; // NearestVisible, NearestInvisible
                for (j, &d) in row.iter().enumerate() {
                    if vis[j] != want_visible {
                        continue;
                    }
                    let better = match *slot {
                        None => true,
                        Some((bd, _)) => {
                            if want_min {
                                d < bd
                            } else {
                                d > bd
                            }
                        }
                    };
                    if better {
                        *slot = Some((d, j));
                    }
                }
            }
            best.map(|b| b.map(|(_, j)| j))
        })
        .collect();
    let mut out = [vec![], vec![], vec![], vec![]];
    for row in per_row {
        for (g, j) in row.into_iter().enumerate() {
            out[g].push(j);
        }
    }
    out
}

/// Segment-clipping oracle (`O(mn(m+n))`): the ground truth the fast
/// predicates are validated against.
pub fn neighbors_brute(p: &ConvexPolygon, q: &ConvexPolygon, goal: Goal) -> Vec<Option<usize>> {
    let want_visible = matches!(goal, Goal::NearestVisible | Goal::FarthestVisible);
    let want_min = matches!(goal, Goal::NearestVisible | Goal::NearestInvisible);
    p.vertices
        .iter()
        .map(|&pv| {
            let mut best: Option<(f64, usize)> = None;
            for (j, &qv) in q.vertices.iter().enumerate() {
                if visible(p, pv, q, qv) != want_visible {
                    continue;
                }
                let d = pv.dist(qv);
                let better = match best {
                    None => true,
                    Some((bd, _)) => {
                        if want_min {
                            d < bd
                        } else {
                            d > bd
                        }
                    }
                };
                if better {
                    best = Some((d, j));
                }
            }
            best.map(|(_, j)| j)
        })
        .collect()
}

/// The invisible arc of each `P`-vertex: `Some((start, len))` in `Q`'s
/// cyclic order, `None` when everything is visible. Exposed for the
/// structural tests (the paper's staircase-Monge formulation rests on
/// these arcs and their monotone rotation).
pub fn invisible_arcs(p: &ConvexPolygon, q: &ConvexPolygon) -> Vec<Option<(usize, usize)>> {
    let n = q.vertices.len();
    (0..p.vertices.len())
        .map(|i| {
            let inv: Vec<bool> = (0..n).map(|j| !visible_fast(p, i, q, j)).collect();
            let cnt = inv.iter().filter(|&&b| b).count();
            if cnt == 0 {
                return None;
            }
            if cnt == n {
                return Some((0, n));
            }
            let s = (0..n).find(|&j| inv[j] && !inv[(j + n - 1) % n])?;
            Some((s, cnt))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(m: usize, n: usize, seed: u64) -> (ConvexPolygon, ConvexPolygon) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = ConvexPolygon::random(m, 0.0, 0.0, 10.0, &mut rng);
        let q = ConvexPolygon::random(n, 35.0, 3.0, 10.0, &mut rng);
        (p, q)
    }

    #[test]
    fn fast_predicate_matches_oracle() {
        for seed in 0..20u64 {
            let (p, q) = instance(8, 9, seed);
            for i in 0..8 {
                for j in 0..9 {
                    assert_eq!(
                        visible_fast(&p, i, &q, j),
                        visible(&p, p.vertices[i], &q, q.vertices[j]),
                        "seed {seed} pair ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn all_goals_match_brute() {
        for seed in 0..12u64 {
            let (p, q) = instance(10, 12, seed);
            for goal in [
                Goal::NearestVisible,
                Goal::NearestInvisible,
                Goal::FarthestVisible,
                Goal::FarthestInvisible,
            ] {
                let fast = neighbors(&p, &q, goal);
                let brute = neighbors_brute(&p, &q, goal);
                // Compare by distance (exact ties are measure-zero).
                for i in 0..10 {
                    match (fast[i], brute[i]) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            let da = p.vertices[i].dist(q.vertices[a]);
                            let db = p.vertices[i].dist(q.vertices[b]);
                            assert!((da - db).abs() < 1e-9, "seed {seed} {goal:?} row {i}");
                        }
                        other => panic!("seed {seed} {goal:?} row {i}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn all_goals_shared_cache_matches_per_goal_scans() {
        for seed in [3u64, 11, 29] {
            let (p, q) = instance(13, 17, seed);
            let all = neighbors_all_goals(&p, &q);
            for (g, goal) in [
                Goal::NearestVisible,
                Goal::NearestInvisible,
                Goal::FarthestVisible,
                Goal::FarthestInvisible,
            ]
            .into_iter()
            .enumerate()
            {
                assert_eq!(all[g], neighbors(&p, &q, goal), "seed {seed} {goal:?}");
            }
        }
    }

    #[test]
    fn shared_cache_evaluates_each_distance_once() {
        use monge_core::array2d::FnArray;
        use monge_core::{CachedArray, CountingArray};
        let (p, q) = instance(11, 14, 5);
        let counted = CountingArray::new(FnArray::new(11, 14, |i: usize, j: usize| {
            p.vertices[i].dist(q.vertices[j])
        }));
        let cached = CachedArray::new(&counted);
        // Four full passes (one per goal) over every row…
        for _ in 0..4 {
            for i in 0..11 {
                let _ = cached.row_cached(i);
            }
        }
        // …but each distance was computed exactly once.
        assert_eq!(counted.evaluations(), 11 * 14);
        assert_eq!(cached.materialized_rows(), 11);
    }

    #[test]
    fn invisible_sets_are_arcs() {
        for seed in 0..25u64 {
            let (p, q) = instance(9, 11, seed);
            let arcs = invisible_arcs(&p, &q);
            for (i, arc) in arcs.iter().enumerate() {
                let inv: Vec<bool> = (0..11).map(|j| !visible_fast(&p, i, &q, j)).collect();
                match arc {
                    None => assert!(inv.iter().all(|&b| !b)),
                    Some((s, len)) => {
                        for d in 0..*len {
                            assert!(inv[(s + d) % 11], "seed {seed} row {i}: not an arc");
                        }
                        assert_eq!(inv.iter().filter(|&&b| b).count(), *len);
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (p, q) = instance(40, 50, 7);
        for goal in [Goal::NearestVisible, Goal::FarthestInvisible] {
            assert_eq!(neighbors(&p, &q, goal), neighbors_seq(&p, &q, goal));
        }
    }

    #[test]
    fn far_side_is_invisible_near_side_visible() {
        // Two squares side by side, vertically offset so no segment is
        // collinear with an edge: facing corners visible, the far-top
        // corner blocked by Q itself.
        use crate::geometry::Point;
        let p = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]);
        let q = ConvexPolygon::new(vec![
            Point::new(5.0, 0.5),
            Point::new(6.0, 0.5),
            Point::new(6.0, 1.5),
            Point::new(5.0, 1.5),
        ]);
        // From p vertex (1,0): q's near-left corners are visible.
        assert!(visible_fast(&p, 1, &q, 0));
        assert!(visible_fast(&p, 1, &q, 3));
        // The far-top corner (6,1.5) is blocked by Q's own body.
        assert!(!visible_fast(&p, 1, &q, 2));
        // From below, the bottom-right corner (6,0.5) is reachable under
        // the polygon.
        assert!(visible_fast(&p, 1, &q, 1));
        // Agreement with the clipping oracle on every pair.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    visible_fast(&p, i, &q, j),
                    visible(&p, p.vertices[i], &q, q.vertices[j]),
                    "pair ({i},{j})"
                );
            }
        }
    }
}
