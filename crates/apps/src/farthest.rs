//! The paper's motivating example (Figure 1.1): farthest neighbors across
//! the two chains of a convex polygon, and the all-farthest-neighbors
//! problem it powers (\[AKM+87\]'s application).
//!
//! Split a convex polygon's counterclockwise vertex sequence into chains
//! `P = p_1 … p_m` and `Q = q_1 … q_n`. For `i < k` and `j < l`, the
//! quadrilateral `p_i p_k q_j q_l` is convex in that cyclic order, so the
//! quadrangle inequality gives
//! `d(p_i,q_j) + d(p_k,q_l) ≥ d(p_i,q_l) + d(p_k,q_j)` — the inter-chain
//! distance array is **inverse-Monge**, and one row-maxima computation
//! answers every vertex's farthest cross-chain neighbor in `Θ(m + n)`
//! sequential time (\[AKM+87\]) or polylog parallel time.

use crate::geometry::Point;
use monge_core::array2d::{Array2d, FnArray};
use monge_core::guard::SolveError;
use monge_core::problem::Problem;
use monge_core::smawk::RowExtrema;
use monge_parallel::tuning::Tuning;
use monge_parallel::Dispatcher;

/// One cross-chain farthest search, routed through the dispatcher: the
/// inverse-Monge row-maxima problem, solved by whichever host backend
/// the grain policy picks for this chain pair's shape.
fn cross_maxima(d: &Dispatcher<f64>, a: &dyn Array2d<f64>, t: Tuning) -> RowExtrema<f64> {
    d.solve_with(&Problem::row_maxima_inverse_monge(a), t)
        .0
        .into_rows()
}

/// The same search pinned to the sequential backend (for the
/// `Θ(m + n)` sequential entry points).
fn cross_maxima_seq(d: &Dispatcher<f64>, a: &dyn Array2d<f64>) -> RowExtrema<f64> {
    d.solve_on(
        "sequential",
        &Problem::row_maxima_inverse_monge(a),
        Tuning::DEFAULT,
    )
    .expect("sequential backend is always registered and eligible")
    .0
    .into_rows()
}

/// The inverse-Monge cross-chain distance array of Figure 1.1.
///
/// `P` and `Q` must be consecutive counterclockwise chains of one convex
/// polygon (i.e. `p_1 … p_m q_1 … q_n` is the ccw vertex order).
pub fn chain_distance_array<'a>(
    p: &'a [Point],
    q: &'a [Point],
) -> FnArray<impl Fn(usize, usize) -> f64 + 'a> {
    FnArray::new(p.len(), q.len(), move |i: usize, j: usize| p[i].dist(q[j]))
}

/// For every vertex of `P`, its farthest vertex of `Q` (index into `Q`),
/// sequential SMAWK, `Θ(m + n)`.
pub fn farthest_across_chains(p: &[Point], q: &[Point]) -> Vec<usize> {
    assert!(!p.is_empty() && !q.is_empty());
    let a = chain_distance_array(p, q);
    debug_assert!(monge_core::monge::is_inverse_monge(&a));
    let d = Dispatcher::with_default_backends();
    cross_maxima_seq(&d, &a).index
}

/// Parallel (rayon) version of [`farthest_across_chains`].
pub fn par_farthest_across_chains(p: &[Point], q: &[Point]) -> Vec<usize> {
    assert!(!p.is_empty() && !q.is_empty());
    let a = chain_distance_array(p, q);
    let d = Dispatcher::with_default_backends();
    d.solve_on(
        "rayon",
        &Problem::row_maxima_inverse_monge(&a),
        Tuning::from_env(),
    )
    .expect("rayon backend handles all rows problems")
    .0
    .into_rows()
    .index
}

/// Brute-force oracle, `O(mn)`.
pub fn farthest_across_chains_brute(p: &[Point], q: &[Point]) -> Vec<usize> {
    p.iter()
        .map(|&pt| {
            let mut best = 0usize;
            let mut best_d = pt.dist(q[0]);
            for (j, &qt) in q.iter().enumerate().skip(1) {
                let d = pt.dist(qt);
                if d > best_d {
                    best = j;
                    best_d = d;
                }
            }
            best
        })
        .collect()
}

/// A chain (or polygon) must be non-degenerate and fully finite before
/// the distance array can be declared inverse-Monge.
fn check_chain(label: &str, pts: &[Point], min_len: usize) -> Result<(), SolveError> {
    if pts.len() < min_len {
        return Err(SolveError::InvalidInput {
            reason: format!(
                "{label} needs at least {min_len} vertices, got {}",
                pts.len()
            ),
        });
    }
    for (k, p) in pts.iter().enumerate() {
        if !(p.x.is_finite() && p.y.is_finite()) {
            return Err(SolveError::InvalidInput {
                reason: format!("{label} vertex {k} has a non-finite coordinate"),
            });
        }
    }
    Ok(())
}

/// [`farthest_across_chains`] behind input validation: empty chains or
/// non-finite vertices become [`SolveError::InvalidInput`] instead of a
/// panic.
pub fn try_farthest_across_chains(p: &[Point], q: &[Point]) -> Result<Vec<usize>, SolveError> {
    check_chain("chain P", p, 1)?;
    check_chain("chain Q", q, 1)?;
    Ok(farthest_across_chains(p, q))
}

/// [`all_farthest_neighbors`] behind input validation: polygons with
/// fewer than two vertices or non-finite coordinates become
/// [`SolveError::InvalidInput`] instead of a panic.
pub fn try_all_farthest_neighbors(poly: &[Point]) -> Result<Vec<usize>, SolveError> {
    check_chain("polygon", poly, 2)?;
    Ok(all_farthest_neighbors(poly))
}

/// All-farthest-neighbors of a convex polygon: for every vertex, the
/// index of the farthest other vertex. Divide & conquer over chain
/// splits: cross-chain queries are Monge searches (`Θ(m+n)` each), and
/// same-chain queries recurse — `O(n lg n)` total, against the `O(n²)`
/// brute force.
pub fn all_farthest_neighbors(poly: &[Point]) -> Vec<usize> {
    let n = poly.len();
    assert!(n >= 2);
    let idx: Vec<usize> = (0..n).collect();
    let mut best: Vec<Option<(f64, usize)>> = vec![None; n];
    let d = Dispatcher::with_default_backends();
    rec(&d, poly, &idx, &mut best);
    best.into_iter().map(|b| b.expect("filled").1).collect()
}

fn rec(disp: &Dispatcher<f64>, poly: &[Point], chain: &[usize], best: &mut [Option<(f64, usize)>]) {
    let n = chain.len();
    if n < 2 {
        return;
    }
    if n <= 4 {
        for (a, &i) in chain.iter().enumerate() {
            for &j in chain.iter().skip(a + 1) {
                let d = poly[i].dist(poly[j]);
                merge(&mut best[i], d, j);
                merge(&mut best[j], d, i);
            }
        }
        return;
    }
    let (p, q) = chain.split_at(n / 2);
    // Cross-chain farthest via the inverse-Monge array (both directions).
    let pa = FnArray::new(p.len(), q.len(), |i: usize, j: usize| {
        poly[p[i]].dist(poly[q[j]])
    });
    let fq = cross_maxima_seq(disp, &pa);
    for (i, (&j, &d)) in fq.index.iter().zip(&fq.value).enumerate() {
        merge(&mut best[p[i]], d, q[j]);
        merge(&mut best[q[j]], d, p[i]);
    }
    // The transposed search catches Q-vertices whose farthest P-vertex
    // was not some P-vertex's farthest Q-vertex. (Q followed by P is
    // also a consecutive ccw chain pair, so this array is inverse-Monge
    // too.)
    let qa = FnArray::new(q.len(), p.len(), |j: usize, i: usize| {
        poly[q[j]].dist(poly[p[i]])
    });
    let fp = cross_maxima_seq(disp, &qa);
    for (j, (&i, &d)) in fp.index.iter().zip(&fp.value).enumerate() {
        merge(&mut best[q[j]], d, p[i]);
    }
    rec(disp, poly, p, best);
    rec(disp, poly, q, best);
}

/// Parallel all-farthest-neighbors: every cross-chain query runs on the
/// rayon row-maxima engine (the two directions fork against each other)
/// and the two same-chain recursions run under `rayon::join`, so the
/// whole divide & conquer — not just one search — scales with cores.
pub fn par_all_farthest_neighbors(poly: &[Point]) -> Vec<usize> {
    par_all_farthest_neighbors_with(poly, Tuning::from_env())
}

/// [`par_all_farthest_neighbors`] with explicit tuning
/// ([`Tuning::seq_rows`] bounds the chain length solved without
/// forking).
pub fn par_all_farthest_neighbors_with(poly: &[Point], t: Tuning) -> Vec<usize> {
    let n = poly.len();
    assert!(n >= 2);
    let mut best: Vec<Option<(f64, usize)>> = vec![None; n];
    let d = Dispatcher::with_default_backends();
    par_rec(&d, poly, 0, n, &mut best, t);
    best.into_iter().map(|b| b.expect("filled").1).collect()
}

/// Solves the contiguous chain `lo..hi`; `best` covers exactly those
/// vertices (`best[i - lo]` is vertex `i`'s candidate).
fn par_rec(
    disp: &Dispatcher<f64>,
    poly: &[Point],
    lo: usize,
    hi: usize,
    best: &mut [Option<(f64, usize)>],
    t: Tuning,
) {
    let n = hi - lo;
    if n < 2 {
        return;
    }
    if n <= 4 {
        for i in lo..hi {
            for j in i + 1..hi {
                let d = poly[i].dist(poly[j]);
                merge(&mut best[i - lo], d, j);
                merge(&mut best[j - lo], d, i);
            }
        }
        return;
    }
    let mid = lo + n / 2;
    // Cross-chain farthest via the inverse-Monge array, both directions
    // (see `rec` for why the transposed search is needed); the searches
    // are independent, so they fork against each other. Each search's
    // own engine choice (sequential vs rayon) is the dispatcher's.
    let pa = FnArray::new(mid - lo, hi - mid, |i: usize, j: usize| {
        poly[lo + i].dist(poly[mid + j])
    });
    let qa = FnArray::new(hi - mid, mid - lo, |j: usize, i: usize| {
        poly[mid + j].dist(poly[lo + i])
    });
    let (fq, fp) = if n > t.seq_rows.max(1) {
        rayon::join(|| cross_maxima(disp, &pa, t), || cross_maxima(disp, &qa, t))
    } else {
        (cross_maxima(disp, &pa, t), cross_maxima(disp, &qa, t))
    };
    for (i, (&j, &d)) in fq.index.iter().zip(&fq.value).enumerate() {
        merge(&mut best[i], d, mid + j);
        merge(&mut best[mid + j - lo], d, lo + i);
    }
    for (j, (&i, &d)) in fp.index.iter().zip(&fp.value).enumerate() {
        merge(&mut best[mid + j - lo], d, lo + i);
    }
    let (bp, bq) = best.split_at_mut(mid - lo);
    if n > t.seq_rows.max(1) {
        rayon::join(
            || par_rec(disp, poly, lo, mid, bp, t),
            || par_rec(disp, poly, mid, hi, bq, t),
        );
    } else {
        par_rec(disp, poly, lo, mid, bp, t);
        par_rec(disp, poly, mid, hi, bq, t);
    }
}

fn merge(slot: &mut Option<(f64, usize)>, d: f64, j: usize) {
    match slot {
        None => *slot = Some((d, j)),
        Some((bd, bj)) => {
            if d > *bd || (d == *bd && j < *bj) {
                *slot = Some((d, j));
            }
        }
    }
}

/// Brute-force all-farthest oracle, `O(n²)`.
pub fn all_farthest_neighbors_brute(poly: &[Point]) -> Vec<usize> {
    let n = poly.len();
    (0..n)
        .map(|i| {
            let mut best = usize::MAX;
            let mut best_d = f64::NEG_INFINITY;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let d = poly[i].dist(poly[j]);
                if d > best_d {
                    best = j;
                    best_d = d;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ConvexPolygon;
    use monge_core::monge::is_inverse_monge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chains(n: usize, m: usize, seed: u64) -> (Vec<Point>, Vec<Point>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let poly = ConvexPolygon::random(n + m, 0.0, 0.0, 100.0, &mut rng);
        let p = poly.vertices[..m].to_vec();
        let q = poly.vertices[m..].to_vec();
        (p, q)
    }

    #[test]
    fn chain_array_is_inverse_monge() {
        for seed in 0..10 {
            let (p, q) = chains(30, 13, seed);
            let a = chain_distance_array(&p, &q);
            assert!(is_inverse_monge(&a), "seed {seed}");
        }
    }

    #[test]
    fn farthest_matches_brute() {
        for seed in 0..20 {
            let (p, q) = chains(24, 11, seed);
            assert_eq!(
                farthest_across_chains(&p, &q),
                farthest_across_chains_brute(&p, &q),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (p, q) = chains(64, 40, 77);
        assert_eq!(
            par_farthest_across_chains(&p, &q),
            farthest_across_chains(&p, &q)
        );
    }

    #[test]
    fn all_farthest_matches_brute() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [4usize, 7, 16, 33, 64] {
            let poly = ConvexPolygon::random(n, 0.0, 0.0, 50.0, &mut rng);
            let got = all_farthest_neighbors(&poly.vertices);
            let want = all_farthest_neighbors_brute(&poly.vertices);
            // Distances must match (indices may differ on exact ties,
            // which random real coordinates make measure-zero).
            for i in 0..n {
                let dg = poly.vertices[i].dist(poly.vertices[got[i]]);
                let dw = poly.vertices[i].dist(poly.vertices[want[i]]);
                assert!((dg - dw).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn two_vertex_polygon() {
        let poly = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        assert_eq!(all_farthest_neighbors(&poly), vec![1, 0]);
        assert_eq!(par_all_farthest_neighbors(&poly), vec![1, 0]);
    }

    #[test]
    fn parallel_all_farthest_matches_sequential_distances() {
        let mut rng = StdRng::seed_from_u64(6);
        for n in [5usize, 16, 33, 64, 150] {
            let poly = ConvexPolygon::random(n, 0.0, 0.0, 50.0, &mut rng);
            let seq = all_farthest_neighbors(&poly.vertices);
            for t in [
                Tuning::DEFAULT,
                Tuning {
                    seq_rows: 1,
                    ..Tuning::DEFAULT
                },
            ] {
                let par = par_all_farthest_neighbors_with(&poly.vertices, t);
                for i in 0..n {
                    let dp = poly.vertices[i].dist(poly.vertices[par[i]]);
                    let ds = poly.vertices[i].dist(poly.vertices[seq[i]]);
                    assert!((dp - ds).abs() < 1e-9, "n={n} i={i}");
                }
            }
        }
    }
}
