//! §1.3 application 1: the largest-area empty rectangle — given a
//! bounding rectangle containing `n` points, find the largest-area
//! axis-parallel rectangle inside it containing no point in its interior.
//!
//! ## Structure
//!
//! Divide & conquer on the points' median `x` (the \[AS87\] skeleton):
//! rectangles entirely left or right of the median line recurse;
//! rectangles *crossing* it are enumerated by their horizontal **window**
//! `(b, t)`: for each window, the widest crossing rectangle has its left
//! edge on the rightmost left-half point inside the window (or the left
//! wall) and its right edge on the leftmost right-half point (or right
//! wall) — every window yields an empty rectangle, and every maximal
//! crossing rectangle arises from a window bounded by points or walls.
//!
//! The crossing case scans all `O(k²)` windows with incremental
//! left/right supports, parallelized over bottoms with rayon (work
//! `O(n²)` total for the algorithm, against the `O(n³)` strip-enumeration
//! brute force). \[AS87\] and this paper instead search the crossing case
//! with staircase-Monge row minima, reaching `O(n lg² n)` work — that
//! decomposition is one of the few pieces of the paper's pipeline whose
//! details the extended abstract leaves to the cited full papers, and our
//! probe experiments confirm the *undecomposed* window array is not
//! totally monotone, so we substitute the parallel quadratic scan and
//! record the deviation in DESIGN.md §3.

use crate::geometry::{Point, Rect};
use monge_parallel::tuning::Tuning;
use rayon::prelude::*;

/// Brute-force oracle, `O(n³)`: enumerate all (left, right) support
/// pairs, then the vertical gaps inside each strip.
pub fn largest_empty_rectangle_brute(points: &[Point], bbox: Rect) -> Rect {
    let mut xs: Vec<f64> = vec![bbox.x0, bbox.x1];
    xs.extend(points.iter().map(|p| p.x));
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.dedup();
    let mut best = Rect::new(bbox.x0, bbox.y0, bbox.x0, bbox.y0);
    let mut best_area = -1.0f64;
    for (a, &xl) in xs.iter().enumerate() {
        for &xr in xs.iter().skip(a + 1) {
            // Points strictly inside the strip.
            let mut ys: Vec<f64> = vec![bbox.y0, bbox.y1];
            ys.extend(points.iter().filter(|p| p.x > xl && p.x < xr).map(|p| p.y));
            ys.sort_by(|u, v| u.partial_cmp(v).unwrap());
            for w in ys.windows(2) {
                let area = (xr - xl) * (w[1] - w[0]);
                if area > best_area {
                    best_area = area;
                    best = Rect::new(xl, w[0], xr, w[1]);
                }
            }
        }
    }
    best
}

/// Largest empty rectangle by median divide & conquer with a
/// window-scanned crossing case; `O(n²)` work, parallel over windows.
pub fn largest_empty_rectangle(points: &[Point], bbox: Rect) -> Rect {
    let mut sorted: Vec<Point> = points.to_vec();
    sorted.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
    rec(&sorted, bbox, None)
}

/// Parallel variant (rayon): recursion sides and window scans run
/// concurrently, with environment-seeded grain sizes.
pub fn par_largest_empty_rectangle(points: &[Point], bbox: Rect) -> Rect {
    par_largest_empty_rectangle_with(points, bbox, Tuning::from_env())
}

/// [`par_largest_empty_rectangle`] with explicit tuning:
/// [`Tuning::seq_rows`] bounds both the point count a recursion side
/// handles without forking and the window count a crossing case scans
/// without fanning out (each bottom's scan is one row's worth of work,
/// so the row grain transfers directly).
pub fn par_largest_empty_rectangle_with(points: &[Point], bbox: Rect, t: Tuning) -> Rect {
    let mut sorted: Vec<Point> = points.to_vec();
    sorted.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
    rec(&sorted, bbox, Some(t))
}

fn better(a: Rect, b: Rect) -> Rect {
    if b.area() > a.area() {
        b
    } else {
        a
    }
}

fn rec(points: &[Point], bbox: Rect, parallel: Option<Tuning>) -> Rect {
    let n = points.len();
    if n == 0 {
        return bbox;
    }
    if n == 1 {
        let p = points[0];
        let cands = [
            Rect::new(bbox.x0, bbox.y0, p.x, bbox.y1),
            Rect::new(p.x, bbox.y0, bbox.x1, bbox.y1),
            Rect::new(bbox.x0, bbox.y0, bbox.x1, p.y),
            Rect::new(bbox.x0, p.y, bbox.x1, bbox.y1),
        ];
        return cands.into_iter().reduce(better).unwrap();
    }
    let x_med = points[n / 2].x;
    let left: Vec<Point> = points.iter().copied().filter(|p| p.x < x_med).collect();
    let right: Vec<Point> = points.iter().copied().filter(|p| p.x > x_med).collect();
    let cross = crossing(points, x_med, bbox, parallel);
    let lbox = Rect::new(bbox.x0, bbox.y0, x_med, bbox.y1);
    let rbox = Rect::new(x_med, bbox.y0, bbox.x1, bbox.y1);
    // Guard against non-shrinking recursions when many points share the
    // median x (they block crossing but belong to neither side).
    let fork = parallel
        .map(|t| left.len() + right.len() > t.seq_rows.max(1))
        .unwrap_or(false);
    let (lb, rb) = if fork {
        rayon::join(
            || rec(&left, lbox, parallel),
            || rec(&right, rbox, parallel),
        )
    } else {
        (rec(&left, lbox, parallel), rec(&right, rbox, parallel))
    };
    better(better(lb, rb), cross)
}

/// Best rectangle crossing the vertical line `x = x_med`.
fn crossing(points: &[Point], x_med: f64, bbox: Rect, parallel: Option<Tuning>) -> Rect {
    // Window candidates: walls plus point ordinates, sorted.
    let mut ys: Vec<f64> = vec![bbox.y0, bbox.y1];
    ys.extend(points.iter().map(|p| p.y));
    ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ys.dedup();
    // Points sorted by y for the incremental scan.
    let mut by_y: Vec<Point> = points.to_vec();
    by_y.sort_by(|a, b| a.y.partial_cmp(&b.y).unwrap());

    let scan_bottom = |bi: usize| -> Rect {
        let b = ys[bi];
        let mut l = bbox.x0;
        let mut r = bbox.x1;
        let mut best = Rect::new(x_med, b, x_med, b);
        let mut best_area = -1.0;
        // Extend the top over the remaining candidates, absorbing the
        // points whose y falls into the widening window.
        let mut pi = by_y.partition_point(|p| p.y <= b);
        for &t in &ys[bi + 1..] {
            // Absorb points with b < y < t.
            while pi < by_y.len() && by_y[pi].y < t {
                let p = by_y[pi];
                if p.x < x_med {
                    l = l.max(p.x);
                } else {
                    r = r.min(p.x);
                }
                pi += 1;
            }
            let area = (r - l).max(0.0) * (t - b);
            if area > best_area {
                best_area = area;
                best = Rect::new(l.min(r), b, r.max(l), t);
            }
        }
        best
    };

    let k = ys.len();
    let fan_out = parallel.map(|t| k > t.seq_rows.max(1)).unwrap_or(false);
    if fan_out {
        (0..k - 1)
            .into_par_iter()
            .map(scan_bottom)
            .reduce(|| Rect::new(x_med, bbox.y0, x_med, bbox.y0), better)
    } else {
        (0..k - 1)
            .map(scan_bottom)
            .fold(Rect::new(x_med, bbox.y0, x_med, bbox.y0), better)
    }
}

/// Is `r` empty (no point strictly inside)? Test helper.
pub fn is_empty_rect(points: &[Point], r: Rect) -> bool {
    points.iter().all(|&p| !r.strictly_contains(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn bbox() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn no_points_returns_whole_box() {
        let r = largest_empty_rectangle(&[], bbox());
        assert_eq!(r.area(), 100.0 * 100.0);
    }

    #[test]
    fn single_point_best_side() {
        let pts = vec![Point::new(30.0, 50.0)];
        let r = largest_empty_rectangle(&pts, bbox());
        assert!((r.area() - 70.0 * 100.0).abs() < 1e-9);
        assert!(is_empty_rect(&pts, r));
    }

    #[test]
    fn matches_brute_on_random_instances() {
        for seed in 0..25u64 {
            let n = 1 + (seed as usize * 3) % 30;
            let pts = random_points(n, seed);
            let fast = largest_empty_rectangle(&pts, bbox());
            let brute = largest_empty_rectangle_brute(&pts, bbox());
            assert!(is_empty_rect(&pts, fast), "seed {seed}: not empty");
            assert!(
                (fast.area() - brute.area()).abs() < 1e-6,
                "seed {seed}: {} vs {}",
                fast.area(),
                brute.area()
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let pts = random_points(300, 42);
        let a = largest_empty_rectangle(&pts, bbox());
        let b = par_largest_empty_rectangle(&pts, bbox());
        assert!((a.area() - b.area()).abs() < 1e-9);
    }

    #[test]
    fn grid_points() {
        // Regular 3x3 grid: the best empty rectangle is a full-height or
        // full-width band between adjacent grid lines... verify against
        // brute instead of guessing.
        let mut pts = Vec::new();
        for i in 1..=3 {
            for j in 1..=3 {
                pts.push(Point::new(i as f64 * 25.0, j as f64 * 25.0));
            }
        }
        let fast = largest_empty_rectangle(&pts, bbox());
        let brute = largest_empty_rectangle_brute(&pts, bbox());
        assert!((fast.area() - brute.area()).abs() < 1e-9);
    }

    #[test]
    fn duplicate_x_coordinates() {
        let pts = vec![
            Point::new(50.0, 10.0),
            Point::new(50.0, 60.0),
            Point::new(50.0, 90.0),
            Point::new(20.0, 50.0),
        ];
        let fast = largest_empty_rectangle(&pts, bbox());
        let brute = largest_empty_rectangle_brute(&pts, bbox());
        assert!((fast.area() - brute.area()).abs() < 1e-9);
        assert!(is_empty_rect(&pts, fast));
    }
}
