//! §1.3 application 1: the largest-area empty rectangle — given a
//! bounding rectangle containing `n` points, find the largest-area
//! axis-parallel rectangle inside it containing no point in its interior.
//!
//! ## Structure
//!
//! Divide & conquer on the points' median `x` (the \[AS87\] skeleton):
//! rectangles entirely left or right of the median line recurse;
//! rectangles *crossing* it are enumerated by their horizontal **window**
//! `(b, t)`: for each window, the widest crossing rectangle has its left
//! edge on the rightmost left-half point inside the window (or the left
//! wall) and its right edge on the leftmost right-half point (or right
//! wall) — every window yields an empty rectangle, and every maximal
//! crossing rectangle arises from a window bounded by points or walls.
//!
//! The crossing case is expressed as a **`Plain` row-maxima problem**
//! over the lazy window-area array (`rows` = window bottoms, `cols` =
//! window tops, `-∞` below the diagonal) and dispatched: the batched
//! `fill_row` runs the incremental left/right-support sweep once per
//! bottom, and the rayon backend fans the bottoms out over cores (work
//! `O(n²)` total for the algorithm, against the `O(n³)`
//! strip-enumeration brute force). \[AS87\] and this paper instead
//! search the crossing case with staircase-Monge row minima, reaching
//! `O(n lg² n)` work — that decomposition is one of the few pieces of
//! the paper's pipeline whose details the extended abstract leaves to
//! the cited full papers, and our probe experiments confirm the
//! *undecomposed* window array is not totally monotone, so we keep the
//! quadratic scan but dispatch it honestly as `Structure::Plain` and
//! record the deviation in DESIGN.md §3.

use crate::geometry::{Point, Rect};
use monge_core::array2d::Array2d;
use monge_core::guard::SolveError;
use monge_core::problem::Problem;
use monge_core::scratch::with_scratch;
use monge_parallel::tuning::Tuning;
use monge_parallel::Dispatcher;

/// Brute-force oracle, `O(n³)`: enumerate all (left, right) support
/// pairs, then the vertical gaps inside each strip.
pub fn largest_empty_rectangle_brute(points: &[Point], bbox: Rect) -> Rect {
    let mut xs: Vec<f64> = vec![bbox.x0, bbox.x1];
    xs.extend(points.iter().map(|p| p.x));
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    let mut best = Rect::new(bbox.x0, bbox.y0, bbox.x0, bbox.y0);
    let mut best_area = -1.0f64;
    for (a, &xl) in xs.iter().enumerate() {
        for &xr in xs.iter().skip(a + 1) {
            // Points strictly inside the strip.
            let mut ys: Vec<f64> = vec![bbox.y0, bbox.y1];
            ys.extend(points.iter().filter(|p| p.x > xl && p.x < xr).map(|p| p.y));
            ys.sort_by(f64::total_cmp);
            for w in ys.windows(2) {
                let area = (xr - xl) * (w[1] - w[0]);
                if area > best_area {
                    best_area = area;
                    best = Rect::new(xl, w[0], xr, w[1]);
                }
            }
        }
    }
    best
}

/// Largest empty rectangle by median divide & conquer with a
/// window-scanned crossing case; `O(n²)` work, parallel over windows.
pub fn largest_empty_rectangle(points: &[Point], bbox: Rect) -> Rect {
    let mut sorted: Vec<Point> = points.to_vec();
    sorted.sort_by(|a, b| a.x.total_cmp(&b.x));
    let d = Dispatcher::with_default_backends();
    rec(&d, &sorted, bbox, None)
}

/// Parallel variant (rayon): recursion sides and window scans run
/// concurrently, with environment-seeded grain sizes.
pub fn par_largest_empty_rectangle(points: &[Point], bbox: Rect) -> Rect {
    par_largest_empty_rectangle_with(points, bbox, Tuning::from_env())
}

/// [`par_largest_empty_rectangle`] with explicit tuning:
/// [`Tuning::seq_rows`] bounds both the point count a recursion side
/// handles without forking and the window count a crossing case scans
/// without fanning out (each bottom's scan is one row's worth of work,
/// so the row grain transfers directly).
pub fn par_largest_empty_rectangle_with(points: &[Point], bbox: Rect, t: Tuning) -> Rect {
    let mut sorted: Vec<Point> = points.to_vec();
    sorted.sort_by(|a, b| a.x.total_cmp(&b.x));
    let d = Dispatcher::with_default_backends();
    rec(&d, &sorted, bbox, Some(t))
}

/// Validation shared by the `try_` entry points: the box must be finite
/// and well-ordered, and every point must be finite and inside it.
fn check_instance(points: &[Point], bbox: Rect) -> Result<(), SolveError> {
    let corners = [bbox.x0, bbox.y0, bbox.x1, bbox.y1];
    if corners.iter().any(|v| !v.is_finite()) {
        return Err(SolveError::InvalidInput {
            reason: "bounding box has a non-finite coordinate".into(),
        });
    }
    if bbox.x0 > bbox.x1 || bbox.y0 > bbox.y1 {
        return Err(SolveError::InvalidInput {
            reason: "bounding box is inverted (x0 > x1 or y0 > y1)".into(),
        });
    }
    for (k, p) in points.iter().enumerate() {
        if !(p.x.is_finite() && p.y.is_finite()) {
            return Err(SolveError::InvalidInput {
                reason: format!("point {k} has a non-finite coordinate"),
            });
        }
        if p.x < bbox.x0 || p.x > bbox.x1 || p.y < bbox.y0 || p.y > bbox.y1 {
            return Err(SolveError::InvalidInput {
                reason: format!("point {k} lies outside the bounding box"),
            });
        }
    }
    Ok(())
}

/// [`largest_empty_rectangle`] behind input validation: returns
/// [`SolveError::InvalidInput`] for non-finite coordinates, an inverted
/// box, or points outside it, instead of panicking or silently producing
/// a nonsense rectangle.
pub fn try_largest_empty_rectangle(points: &[Point], bbox: Rect) -> Result<Rect, SolveError> {
    check_instance(points, bbox)?;
    Ok(largest_empty_rectangle(points, bbox))
}

/// [`par_largest_empty_rectangle`] behind the same input validation as
/// [`try_largest_empty_rectangle`].
pub fn try_par_largest_empty_rectangle(points: &[Point], bbox: Rect) -> Result<Rect, SolveError> {
    check_instance(points, bbox)?;
    Ok(par_largest_empty_rectangle(points, bbox))
}

fn better(a: Rect, b: Rect) -> Rect {
    if b.area() > a.area() {
        b
    } else {
        a
    }
}

fn rec(disp: &Dispatcher<f64>, points: &[Point], bbox: Rect, parallel: Option<Tuning>) -> Rect {
    let n = points.len();
    if n == 0 {
        return bbox;
    }
    if n == 1 {
        let p = points[0];
        let cands = [
            Rect::new(bbox.x0, bbox.y0, p.x, bbox.y1),
            Rect::new(p.x, bbox.y0, bbox.x1, bbox.y1),
            Rect::new(bbox.x0, bbox.y0, bbox.x1, p.y),
            Rect::new(bbox.x0, p.y, bbox.x1, bbox.y1),
        ];
        return cands.into_iter().fold(cands[0], better);
    }
    let x_med = points[n / 2].x;
    let left: Vec<Point> = points.iter().copied().filter(|p| p.x < x_med).collect();
    let right: Vec<Point> = points.iter().copied().filter(|p| p.x > x_med).collect();
    let cross = crossing(disp, points, x_med, bbox, parallel);
    let lbox = Rect::new(bbox.x0, bbox.y0, x_med, bbox.y1);
    let rbox = Rect::new(x_med, bbox.y0, bbox.x1, bbox.y1);
    // Guard against non-shrinking recursions when many points share the
    // median x (they block crossing but belong to neither side).
    let fork = parallel
        .map(|t| left.len() + right.len() > t.seq_rows.max(1))
        .unwrap_or(false);
    let (lb, rb) = if fork {
        rayon::join(
            || rec(disp, &left, lbox, parallel),
            || rec(disp, &right, rbox, parallel),
        )
    } else {
        (
            rec(disp, &left, lbox, parallel),
            rec(disp, &right, rbox, parallel),
        )
    };
    better(better(lb, rb), cross)
}

/// The crossing case's window-area array: row `bi` = window bottom
/// `ys[bi]`, column `ti` = window top `ys[ti]`, entry = area of the
/// widest empty crossing rectangle for that window (`-∞` for `ti ≤ bi`).
/// Not totally monotone (see the module docs), so it dispatches as
/// [`monge_core::problem::Structure::Plain`]. The batched `fill_row`
/// runs one incremental support sweep per bottom, preserving the
/// `O(k + n)` per-row cost of the hand-written scan.
struct WindowArray<'a> {
    ys: &'a [f64],
    /// Points sorted by `y`.
    by_y: &'a [Point],
    x_med: f64,
    bbox: Rect,
}

impl WindowArray<'_> {
    /// Left/right supports of the open window `(b, t)`.
    fn supports(&self, b: f64, t: f64) -> (f64, f64) {
        let mut l = self.bbox.x0;
        let mut r = self.bbox.x1;
        for p in self.by_y {
            if p.y <= b {
                continue;
            }
            if p.y >= t {
                break;
            }
            if p.x < self.x_med {
                l = l.max(p.x);
            } else {
                r = r.min(p.x);
            }
        }
        (l, r)
    }
}

impl Array2d<f64> for WindowArray<'_> {
    fn rows(&self) -> usize {
        self.ys.len() - 1
    }

    fn cols(&self) -> usize {
        self.ys.len()
    }

    fn entry(&self, bi: usize, ti: usize) -> f64 {
        if ti <= bi {
            return f64::NEG_INFINITY;
        }
        let (b, t) = (self.ys[bi], self.ys[ti]);
        let (l, r) = self.supports(b, t);
        (r - l).max(0.0) * (t - b)
    }

    // `prefers_streaming` stays `false`: like `DistProduct`, each
    // `fill_row` runs a row-granular incremental sweep, so chunked
    // streaming would repeat the sweep per chunk.
    fn fill_row(&self, bi: usize, cols: std::ops::Range<usize>, out: &mut [f64]) {
        // One incremental sweep computes the whole row; the requested
        // slice is copied out.
        let b = self.ys[bi];
        with_scratch(|row: &mut Vec<f64>| {
            row.clear();
            row.resize(self.ys.len(), f64::NEG_INFINITY);
            let mut l = self.bbox.x0;
            let mut r = self.bbox.x1;
            let mut pi = self.by_y.partition_point(|p| p.y <= b);
            for (ti, slot) in row.iter_mut().enumerate().skip(bi + 1) {
                let t = self.ys[ti];
                // Absorb points with b < y < t.
                while pi < self.by_y.len() && self.by_y[pi].y < t {
                    let p = self.by_y[pi];
                    if p.x < self.x_med {
                        l = l.max(p.x);
                    } else {
                        r = r.min(p.x);
                    }
                    pi += 1;
                }
                *slot = (r - l).max(0.0) * (t - b);
            }
            for (slot, ti) in out.iter_mut().zip(cols) {
                *slot = row[ti];
            }
        });
    }
}

/// Best rectangle crossing the vertical line `x = x_med`: a dispatched
/// `Plain` row-maxima solve over [`WindowArray`], then one support
/// rescan to rebuild the winning rectangle's geometry.
fn crossing(
    disp: &Dispatcher<f64>,
    points: &[Point],
    x_med: f64,
    bbox: Rect,
    parallel: Option<Tuning>,
) -> Rect {
    // Window candidates: walls plus point ordinates, sorted.
    let mut ys: Vec<f64> = vec![bbox.y0, bbox.y1];
    ys.extend(points.iter().map(|p| p.y));
    ys.sort_by(f64::total_cmp);
    ys.dedup();
    let degenerate = Rect::new(x_med, bbox.y0, x_med, bbox.y0);
    if ys.len() < 2 {
        return degenerate;
    }
    // Points sorted by y for the incremental sweeps.
    let mut by_y: Vec<Point> = points.to_vec();
    by_y.sort_by(|a, b| a.y.total_cmp(&b.y));

    let wa = WindowArray {
        ys: &ys,
        by_y: &by_y,
        x_med,
        bbox,
    };
    let problem = Problem::plain_row_maxima(&wa);
    let (sol, _) = match parallel {
        Some(t) => disp.solve_with(&problem, t),
        None => disp
            .solve_on("sequential", &problem, Tuning::DEFAULT)
            .expect("sequential backend handles plain rows"),
    };
    let ex = sol.into_rows();
    let mut best = None;
    for (bi, (&ti, &area)) in ex.index.iter().zip(&ex.value).enumerate() {
        if best.is_none_or(|(_, _, a)| area > a) {
            best = Some((bi, ti, area));
        }
    }
    match best {
        Some((bi, ti, _)) => {
            let (b, t) = (ys[bi], ys[ti]);
            let (l, r) = wa.supports(b, t);
            Rect::new(l.min(r), b, r.max(l), t)
        }
        None => degenerate,
    }
}

/// Is `r` empty (no point strictly inside)? Test helper.
pub fn is_empty_rect(points: &[Point], r: Rect) -> bool {
    points.iter().all(|&p| !r.strictly_contains(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn bbox() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn no_points_returns_whole_box() {
        let r = largest_empty_rectangle(&[], bbox());
        assert_eq!(r.area(), 100.0 * 100.0);
    }

    #[test]
    fn single_point_best_side() {
        let pts = vec![Point::new(30.0, 50.0)];
        let r = largest_empty_rectangle(&pts, bbox());
        assert!((r.area() - 70.0 * 100.0).abs() < 1e-9);
        assert!(is_empty_rect(&pts, r));
    }

    #[test]
    fn matches_brute_on_random_instances() {
        for seed in 0..25u64 {
            let n = 1 + (seed as usize * 3) % 30;
            let pts = random_points(n, seed);
            let fast = largest_empty_rectangle(&pts, bbox());
            let brute = largest_empty_rectangle_brute(&pts, bbox());
            assert!(is_empty_rect(&pts, fast), "seed {seed}: not empty");
            assert!(
                (fast.area() - brute.area()).abs() < 1e-6,
                "seed {seed}: {} vs {}",
                fast.area(),
                brute.area()
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let pts = random_points(300, 42);
        let a = largest_empty_rectangle(&pts, bbox());
        let b = par_largest_empty_rectangle(&pts, bbox());
        assert!((a.area() - b.area()).abs() < 1e-9);
    }

    #[test]
    fn grid_points() {
        // Regular 3x3 grid: the best empty rectangle is a full-height or
        // full-width band between adjacent grid lines... verify against
        // brute instead of guessing.
        let mut pts = Vec::new();
        for i in 1..=3 {
            for j in 1..=3 {
                pts.push(Point::new(i as f64 * 25.0, j as f64 * 25.0));
            }
        }
        let fast = largest_empty_rectangle(&pts, bbox());
        let brute = largest_empty_rectangle_brute(&pts, bbox());
        assert!((fast.area() - brute.area()).abs() < 1e-9);
    }

    #[test]
    fn duplicate_x_coordinates() {
        let pts = vec![
            Point::new(50.0, 10.0),
            Point::new(50.0, 60.0),
            Point::new(50.0, 90.0),
            Point::new(20.0, 50.0),
        ];
        let fast = largest_empty_rectangle(&pts, bbox());
        let brute = largest_empty_rectangle_brute(&pts, bbox());
        assert!((fast.area() - brute.area()).abs() < 1e-9);
        assert!(is_empty_rect(&pts, fast));
    }
}
