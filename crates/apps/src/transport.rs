//! The transportation problem on Monge costs — the origin story the
//! paper opens with: G. Monge's 1781 cannonball observation, and
//! A. J. Hoffman's 1961 theorem (\[Hof61\]) that "a greedy algorithm
//! correctly solves the transportation problem for `m` sources and `n`
//! sinks if the corresponding `m × n` cost array is a Monge array".
//!
//! Given supplies `a_i`, demands `b_j` (`Σa = Σb`) and a Monge cost array
//! `c[i][j]`, the **northwest-corner greedy** — repeatedly ship as much
//! as possible between the first unfinished source and the first
//! unfinished sink — is optimal. This module implements the greedy plus
//! a successive-shortest-paths min-cost-flow oracle that certifies
//! optimality on arbitrary (including non-Monge) instances.

use monge_core::array2d::Array2d;
use monge_core::guard::SolveError;
use monge_core::problem::Problem;
use monge_parallel::Dispatcher;

/// A shipment in a transportation plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Shipment {
    /// Source index.
    pub from: usize,
    /// Sink index.
    pub to: usize,
    /// Quantity shipped.
    pub amount: i64,
}

/// Hoffman's northwest-corner greedy: optimal for Monge costs,
/// `O(m + n)` shipments, `O(m + n)` time.
///
/// ```
/// use monge_apps::transport::{northwest_corner, plan_cost};
/// use monge_core::array2d::Dense;
///
/// let c = Dense::tabulate(2, 2, |i, j| ((i as i64) - (j as i64)).abs());
/// let plan = northwest_corner(&[2, 1], &[1, 2]);
/// assert_eq!(plan.len(), 3);
/// assert_eq!(plan_cost(&plan, &c), 1); // ship diagonally where possible
/// ```
pub fn northwest_corner(supply: &[i64], demand: &[i64]) -> Vec<Shipment> {
    assert_eq!(
        supply.iter().sum::<i64>(),
        demand.iter().sum::<i64>(),
        "supply and demand must balance"
    );
    assert!(supply.iter().all(|&x| x >= 0) && demand.iter().all(|&x| x >= 0));
    let mut plan = Vec::with_capacity(supply.len() + demand.len());
    let mut a = supply.to_vec();
    let mut b = demand.to_vec();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] == 0 {
            i += 1;
            continue;
        }
        if b[j] == 0 {
            j += 1;
            continue;
        }
        let q = a[i].min(b[j]);
        plan.push(Shipment {
            from: i,
            to: j,
            amount: q,
        });
        a[i] -= q;
        b[j] -= q;
    }
    debug_assert!(a.iter().all(|&x| x == 0) && b.iter().all(|&x| x == 0));
    plan
}

/// [`northwest_corner`] behind input validation: imbalance or negative
/// quantities become [`SolveError::InvalidInput`] instead of a panic.
pub fn try_northwest_corner(supply: &[i64], demand: &[i64]) -> Result<Vec<Shipment>, SolveError> {
    if supply.iter().any(|&x| x < 0) || demand.iter().any(|&x| x < 0) {
        return Err(SolveError::InvalidInput {
            reason: "supplies and demands must be non-negative".into(),
        });
    }
    let (sa, sb) = (checked_sum(supply)?, checked_sum(demand)?);
    if sa != sb {
        return Err(SolveError::InvalidInput {
            reason: format!("supply {sa} and demand {sb} must balance"),
        });
    }
    Ok(northwest_corner(supply, demand))
}

fn checked_sum(xs: &[i64]) -> Result<i64, SolveError> {
    xs.iter().try_fold(0i64, |acc, &x| {
        acc.checked_add(x).ok_or(SolveError::Overflow {
            context: "transport quantity total",
        })
    })
}

/// Total cost of a plan under a cost array.
///
/// Panics on `i64` overflow; [`try_plan_cost`] is the checked variant for
/// adversarial weights.
pub fn plan_cost<A: Array2d<i64>>(plan: &[Shipment], c: &A) -> i64 {
    try_plan_cost(plan, c).expect("plan cost overflowed i64")
}

/// [`plan_cost`] with checked arithmetic: amount × cost products and
/// their running total that exceed `i64` report
/// [`SolveError::Overflow`] instead of wrapping; out-of-range shipment
/// indices report [`SolveError::InvalidInput`].
pub fn try_plan_cost<A: Array2d<i64>>(plan: &[Shipment], c: &A) -> Result<i64, SolveError> {
    let (m, n) = (c.rows(), c.cols());
    plan.iter().try_fold(0i64, |acc, s| {
        if s.from >= m || s.to >= n {
            return Err(SolveError::InvalidInput {
                reason: format!(
                    "shipment ({}, {}) outside the {m}×{n} cost array",
                    s.from, s.to
                ),
            });
        }
        s.amount
            .checked_mul(c.entry(s.from, s.to))
            .and_then(|term| acc.checked_add(term))
            .ok_or(SolveError::Overflow {
                context: "transport plan cost",
            })
    })
}

/// Each source's cheapest sink under a Monge cost array — the row minima
/// of `c`, dispatched through the unified solver registry. Ties go to the
/// leftmost (earliest) sink, matching Hoffman's greedy orientation.
pub fn cheapest_sink_per_source<A: Array2d<i64>>(c: &A) -> Vec<usize> {
    let d = Dispatcher::with_default_backends();
    let (sol, _) = d.solve(&Problem::row_minima(c));
    sol.into_rows().index
}

/// A lower bound certifying greedy plans: every unit shipped from source
/// `i` costs at least `min_j c[i][j]`, so `Σ aᵢ · minⱼ c[i][j]` bounds the
/// optimum from below. The row minima come from the dispatcher.
pub fn shipping_lower_bound<A: Array2d<i64>>(supply: &[i64], c: &A) -> i64 {
    try_shipping_lower_bound(supply, c).expect("shipping lower bound overflowed i64")
}

/// [`shipping_lower_bound`] with checked arithmetic: a supply/cost
/// mismatch reports [`SolveError::InvalidInput`]; adversarial weights
/// whose products or total exceed `i64` report [`SolveError::Overflow`]
/// instead of wrapping.
pub fn try_shipping_lower_bound<A: Array2d<i64>>(supply: &[i64], c: &A) -> Result<i64, SolveError> {
    if supply.len() != c.rows() {
        return Err(SolveError::InvalidInput {
            reason: format!(
                "supply length {} does not match the {} cost rows",
                supply.len(),
                c.rows()
            ),
        });
    }
    cheapest_sink_per_source(c)
        .into_iter()
        .zip(supply)
        .enumerate()
        .try_fold(0i64, |acc, (i, (j, &a))| {
            a.checked_mul(c.entry(i, j))
                .and_then(|term| acc.checked_add(term))
                .ok_or(SolveError::Overflow {
                    context: "transport shipping lower bound",
                })
        })
}

/// Exact minimum-cost transportation by successive shortest paths
/// (Bellman–Ford on the residual network) — the oracle certifying the
/// greedy. Exponential in nothing, polynomial in total supply units and
/// network size; intended for test-sized instances.
pub fn min_cost_transport<A: Array2d<i64>>(supply: &[i64], demand: &[i64], c: &A) -> i64 {
    let (m, n) = (supply.len(), demand.len());
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), n);
    // Nodes: 0 = source, 1..=m supplies, m+1..=m+n demands, m+n+1 = sink.
    let nodes = m + n + 2;
    let (s, t) = (0usize, m + n + 1);
    #[derive(Clone)]
    struct E {
        to: usize,
        cap: i64,
        cost: i64,
        rev: usize,
    }
    let mut g: Vec<Vec<E>> = vec![Vec::new(); nodes];
    let add = |g: &mut Vec<Vec<E>>, u: usize, v: usize, cap: i64, cost: i64| {
        let ru = g[v].len();
        let rv = g[u].len();
        g[u].push(E {
            to: v,
            cap,
            cost,
            rev: ru,
        });
        g[v].push(E {
            to: u,
            cap: 0,
            cost: -cost,
            rev: rv,
        });
    };
    for (i, &a) in supply.iter().enumerate() {
        add(&mut g, s, 1 + i, a, 0);
    }
    for (j, &b) in demand.iter().enumerate() {
        add(&mut g, 1 + m + j, t, b, 0);
    }
    for i in 0..m {
        for j in 0..n {
            add(&mut g, 1 + i, 1 + m + j, i64::MAX / 4, c.entry(i, j));
        }
    }
    let mut total = 0i64;
    loop {
        // Bellman–Ford shortest path s -> t in the residual network.
        let inf = i64::MAX / 4;
        let mut dist = vec![inf; nodes];
        let mut pre: Vec<Option<(usize, usize)>> = vec![None; nodes];
        dist[s] = 0;
        for _ in 0..nodes {
            let mut changed = false;
            for u in 0..nodes {
                if dist[u] >= inf {
                    continue;
                }
                for (k, e) in g[u].iter().enumerate() {
                    if e.cap > 0 && dist[u] + e.cost < dist[e.to] {
                        dist[e.to] = dist[u] + e.cost;
                        pre[e.to] = Some((u, k));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if dist[t] >= inf {
            break;
        }
        // Bottleneck along the path.
        let mut push = i64::MAX;
        let mut v = t;
        while let Some((u, k)) = pre[v] {
            push = push.min(g[u][k].cap);
            v = u;
        }
        if push == 0 || push == i64::MAX {
            break;
        }
        let mut v = t;
        while let Some((u, k)) = pre[v] {
            g[u][k].cap -= push;
            let rev = g[u][k].rev;
            let to = g[u][k].to;
            g[to][rev].cap += push;
            total += push * g[u][k].cost;
            v = u;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_core::array2d::Dense;
    use monge_core::generators::{random_monge_dense, TransportArray};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_balanced(m: usize, n: usize, rng: &mut StdRng) -> (Vec<i64>, Vec<i64>) {
        let a: Vec<i64> = (0..m).map(|_| rng.random_range(0..20)).collect();
        let total: i64 = a.iter().sum();
        // Random composition of `total` into n parts.
        let mut b = vec![0i64; n];
        let mut left = total;
        for item in b.iter_mut().take(n - 1) {
            let x = if left > 0 {
                rng.random_range(0..=left)
            } else {
                0
            };
            *item = x;
            left -= x;
        }
        b[n - 1] = left;
        (a, b)
    }

    #[test]
    fn greedy_is_optimal_on_monge_costs() {
        let mut rng = StdRng::seed_from_u64(220);
        for trial in 0..15 {
            let (m, n) = (2 + trial % 5, 2 + (trial * 3) % 5);
            // Shift the Monge array to non-negative costs (shifting by a
            // constant preserves Monge-ness and adds a constant to every
            // feasible plan of fixed total volume... it is simplest to
            // just compare plan costs under the same array).
            let c = random_monge_dense(m, n, &mut rng);
            let (a, b) = random_balanced(m, n, &mut rng);
            if a.iter().sum::<i64>() == 0 {
                continue;
            }
            let plan = northwest_corner(&a, &b);
            let greedy = plan_cost(&plan, &c);
            let opt = min_cost_transport(&a, &b, &c);
            assert_eq!(greedy, opt, "trial {trial}: greedy {greedy} vs opt {opt}");
        }
    }

    #[test]
    fn monges_original_family() {
        // |x_i - y_j| over sorted positions: the 1781 instance class.
        let mut rng = StdRng::seed_from_u64(221);
        for _ in 0..10 {
            let c = TransportArray::random(4, 6, &mut rng);
            let (a, b) = random_balanced(4, 6, &mut rng);
            let plan = northwest_corner(&a, &b);
            assert_eq!(plan_cost(&plan, &c), min_cost_transport(&a, &b, &c));
        }
    }

    #[test]
    fn greedy_can_fail_on_non_monge_costs() {
        // A deliberately anti-Monge cost array where NW-corner is wrong.
        let c = Dense::from_rows(vec![vec![0i64, 10], vec![10, 0]]);
        // is it anti-Monge? 0 + 0 <= 10 + 10 -> actually Monge. Flip:
        let c2 = Dense::from_rows(vec![vec![10i64, 0], vec![0, 10]]);
        assert!(!monge_core::monge::is_monge(&c2));
        let a = vec![1, 1];
        let b = vec![1, 1];
        let plan = northwest_corner(&a, &b);
        let greedy = plan_cost(&plan, &c2);
        let opt = min_cost_transport(&a, &b, &c2);
        assert!(
            greedy > opt,
            "greedy {greedy} should be suboptimal vs {opt}"
        );
        let _ = c;
    }

    #[test]
    fn plan_is_feasible() {
        let mut rng = StdRng::seed_from_u64(222);
        let (a, b) = random_balanced(6, 4, &mut rng);
        let plan = northwest_corner(&a, &b);
        let mut shipped_out = vec![0i64; 6];
        let mut shipped_in = vec![0i64; 4];
        for s in &plan {
            assert!(s.amount > 0);
            shipped_out[s.from] += s.amount;
            shipped_in[s.to] += s.amount;
        }
        assert_eq!(shipped_out, a);
        assert_eq!(shipped_in, b);
        // NW-corner plans have at most m + n - 1 shipments.
        assert!(plan.len() < 6 + 4);
    }

    #[test]
    #[should_panic(expected = "balance")]
    fn unbalanced_instances_are_rejected() {
        let _ = northwest_corner(&[3, 2], &[4]);
    }

    #[test]
    fn cheapest_sinks_match_a_row_scan() {
        let mut rng = StdRng::seed_from_u64(223);
        for trial in 0..20 {
            let (m, n) = (1 + trial % 8, 1 + (trial * 3) % 9);
            let c = random_monge_dense(m, n, &mut rng);
            let got = cheapest_sink_per_source(&c);
            for (i, &j) in got.iter().enumerate() {
                for jj in 0..n {
                    let (v, best) = (c.entry(i, jj), c.entry(i, j));
                    assert!(best < v || (best == v && j <= jj), "trial {trial} row {i}");
                }
            }
        }
    }

    #[test]
    fn adversarial_weights_overflow_to_typed_errors() {
        // amount × cost adjacent to i64::MAX must report Overflow, not
        // wrap into a plausible-looking total.
        let c = Dense::from_rows(vec![vec![i64::MAX - 1, 1], vec![1, i64::MAX - 1]]);
        let plan = vec![
            Shipment {
                from: 0,
                to: 0,
                amount: 2,
            },
            Shipment {
                from: 1,
                to: 1,
                amount: 2,
            },
        ];
        assert!(matches!(
            try_plan_cost(&plan, &c),
            Err(SolveError::Overflow { .. })
        ));
        // A single in-range product that overflows only in the running
        // total is also caught.
        let c1 = Dense::from_rows(vec![vec![i64::MAX / 2], vec![i64::MAX / 2]]);
        let plan1 = vec![
            Shipment {
                from: 0,
                to: 0,
                amount: 2,
            },
            Shipment {
                from: 1,
                to: 0,
                amount: 2,
            },
        ];
        assert!(matches!(
            try_plan_cost(&plan1, &c1),
            Err(SolveError::Overflow { .. })
        ));
        // Out-of-range shipment indices are invalid input, not a panic.
        let stray = vec![Shipment {
            from: 5,
            to: 0,
            amount: 1,
        }];
        assert!(matches!(
            try_plan_cost(&stray, &c),
            Err(SolveError::InvalidInput { .. })
        ));
        assert!(matches!(
            try_shipping_lower_bound(&[2, 2], &c1),
            Err(SolveError::Overflow { .. })
        ));
        // Benign instances agree with the panicking wrappers.
        let ok = Dense::from_rows(vec![vec![3i64, 1], vec![2, 4]]);
        let plan_ok = northwest_corner(&[1, 1], &[1, 1]);
        assert_eq!(
            try_plan_cost(&plan_ok, &ok).expect("small costs cannot overflow"),
            plan_cost(&plan_ok, &ok)
        );
        assert_eq!(
            try_shipping_lower_bound(&[1, 1], &ok).expect("small costs cannot overflow"),
            shipping_lower_bound(&[1, 1], &ok)
        );
    }

    #[test]
    fn unbalanced_or_negative_instances_get_typed_errors() {
        assert!(matches!(
            try_northwest_corner(&[3, 2], &[4]),
            Err(SolveError::InvalidInput { .. })
        ));
        assert!(matches!(
            try_northwest_corner(&[-1, 2], &[1]),
            Err(SolveError::InvalidInput { .. })
        ));
        assert!(matches!(
            try_northwest_corner(&[i64::MAX, i64::MAX], &[1]),
            Err(SolveError::Overflow { .. })
        ));
        let plan = try_northwest_corner(&[2, 1], &[1, 2]).expect("balanced instance");
        assert_eq!(plan, northwest_corner(&[2, 1], &[1, 2]));
    }

    #[test]
    fn lower_bound_never_exceeds_the_optimum() {
        let mut rng = StdRng::seed_from_u64(224);
        for _ in 0..10 {
            let c = TransportArray::random(5, 7, &mut rng);
            let (a, b) = random_balanced(5, 7, &mut rng);
            let bound = shipping_lower_bound(&a, &c);
            let opt = min_cost_transport(&a, &b, &c);
            assert!(bound <= opt, "bound {bound} exceeds optimum {opt}");
        }
    }
}
