//! The least-weight-subsequence (LWS) problem and the economic lot-size
//! model — the dynamic-programming family the paper's introduction cites
//! (\[AP90\]: "Aggarwal and Park have used Monge arrays to obtain efficient
//! algorithms for the economic lot-size model"; \[LS89\], \[EGGI90\] for the
//! molecular-biology relatives).
//!
//! Given a weight function `w(i, j)` for `0 ≤ i < j ≤ n`, compute
//!
//! ```text
//! e[0] = 0,    e[j] = min_{0 ≤ i < j}  e[i] + w(i, j).
//! ```
//!
//! When `w` satisfies either quadrangle-inequality orientation, the
//! online champion-stack engines of [`monge_core::online`] solve the
//! recurrence in `O(n lg n)` against the `O(n²)` brute force:
//!
//! * [`lws_monge`] — Monge weights (convex gap functions, the lot-size
//!   costs);
//! * [`lws_concave`] — inverse-Monge weights (concave gap functions such
//!   as `√(j-i)` or `ln(1+j-i)`, the classical "concave LWS" of the
//!   molecular-biology literature).
//!
//! The recurrence itself is inherently online (`e[i]` gates row `j`),
//! but once the value vector is known the predecessor recovery is an
//! *offline* staircase searching problem — [`lws_parents`] dispatches
//! it through the unified solver layer, which is also the natural
//! certificate check for the online engines.

use monge_core::array2d::FnArray;
use monge_core::online::{online_inverse_monge_minima, online_monge_minima};
use monge_core::problem::Problem;
use monge_parallel::Dispatcher;

/// Solves the LWS recurrence for **Monge** (convex-gap) weights;
/// returns `(e, parent)` where `parent[j]` is the argmin predecessor.
pub fn lws_monge(n: usize, w: &impl Fn(usize, usize) -> f64) -> (Vec<f64>, Vec<usize>) {
    assemble(n, online_monge_minima(n, w, |_, m| m, 0.0))
}

/// Solves the LWS recurrence for **inverse-Monge** (concave-gap)
/// weights.
pub fn lws_concave(n: usize, w: &impl Fn(usize, usize) -> f64) -> (Vec<f64>, Vec<usize>) {
    assemble(n, online_inverse_monge_minima(n, w, |_, m| m, 0.0))
}

fn assemble(n: usize, rows: Vec<(f64, usize)>) -> (Vec<f64>, Vec<usize>) {
    let mut e = vec![0.0f64; n + 1];
    let mut parent = vec![0usize; n + 1];
    for (k, (m, arg)) in rows.into_iter().enumerate() {
        e[k + 1] = m;
        parent[k + 1] = arg;
    }
    (e, parent)
}

/// Recovers the argmin predecessors of a solved LWS value vector `e` by
/// one dispatched staircase solve over `A[j][i] = e[i] + w(i, j)`,
/// `i < j`.
///
/// Listing the rows in *descending* `j` order makes the finite-prefix
/// boundary `f[r] = n - r` non-increasing — the paper's staircase shape
/// — and flips the weight's quadrangle orientation: convex (Monge) `w`
/// becomes a staircase-*inverse*-Monge problem (sequential-only in the
/// registry), concave (inverse-Monge) `w` becomes staircase-Monge, the
/// class every staircase engine implements.
pub fn lws_parents(
    n: usize,
    w: &(impl Fn(usize, usize) -> f64 + Sync),
    e: &[f64],
    convex: bool,
) -> Vec<usize> {
    assert_eq!(e.len(), n + 1);
    if n == 0 {
        return vec![0];
    }
    let a = FnArray::new(n, n, |r: usize, i: usize| e[i] + w(i, n - r));
    let f: Vec<usize> = (0..n).map(|r| n - r).collect();
    let problem = if convex {
        Problem::staircase_inverse_row_minima(&a, &f)
    } else {
        Problem::staircase_row_minima(&a, &f)
    };
    let d = Dispatcher::with_default_backends();
    let (sol, _) = d.solve(&problem);
    let mut parent = vec![0usize; n + 1];
    for (r, &i) in sol.into_rows().index.iter().enumerate() {
        parent[n - r] = i;
    }
    parent
}

/// Brute-force LWS oracle, `O(n²)`.
pub fn lws_brute(n: usize, w: &impl Fn(usize, usize) -> f64) -> (Vec<f64>, Vec<usize>) {
    let mut e = vec![0.0f64; n + 1];
    let mut parent = vec![0usize; n + 1];
    for j in 1..=n {
        let mut best = 0usize;
        let mut best_v = e[0] + w(0, j);
        #[allow(clippy::needless_range_loop)] // i feeds both e[] and w()
        for i in 1..j {
            let v = e[i] + w(i, j);
            if v < best_v {
                best = i;
                best_v = v;
            }
        }
        e[j] = best_v;
        parent[j] = best;
    }
    (e, parent)
}

/// An economic lot-size instance (Wagner–Whitin): demands per period, a
/// fixed setup cost per production run, and linear holding costs.
/// Producing in period `i+1` to cover demand through period `j` costs
/// `setup + Σ_{t=i+1..j} holding·(t - i - 1)·demand_t` — a **Monge**
/// weight function (verified by the tests), so the optimal plan is an
/// `O(n lg n)` LWS.
#[derive(Clone, Debug)]
pub struct LotSize {
    /// Demand of each period.
    pub demand: Vec<f64>,
    /// Fixed cost of a production run.
    pub setup: f64,
    /// Per-period, per-unit holding cost.
    pub holding: f64,
    /// Prefix sums of demand.
    d1: Vec<f64>,
    /// Prefix sums of `t · demand_t`.
    dt: Vec<f64>,
}

impl LotSize {
    /// Builds an instance (precomputes prefix sums so `w` is `O(1)`).
    ///
    /// ```
    /// use monge_apps::lws::LotSize;
    ///
    /// // Huge setup cost: produce once, up front.
    /// let ls = LotSize::new(vec![5.0, 5.0, 5.0], 1_000.0, 0.1);
    /// let (cost, runs) = ls.solve();
    /// assert_eq!(runs, vec![0]);
    /// assert!((cost - (1000.0 + 0.1 * (5.0 + 10.0))).abs() < 1e-9);
    /// ```
    pub fn new(demand: Vec<f64>, setup: f64, holding: f64) -> Self {
        let mut d1 = vec![0.0];
        let mut dt = vec![0.0];
        for (t, &d) in demand.iter().enumerate() {
            d1.push(d1[t] + d);
            dt.push(dt[t] + (t as f64 + 1.0) * d);
        }
        Self {
            demand,
            setup,
            holding,
            d1,
            dt,
        }
    }

    /// The LWS weight: cost of one production run in period `i+1`
    /// covering periods `i+1 ..= j`.
    pub fn w(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < j && j <= self.demand.len());
        // Σ_{t=i+1..j} h (t - i - 1) d_t = h [ Σ t·d_t - (i+1) Σ d_t ].
        let sum_d = self.d1[j] - self.d1[i];
        let sum_td = self.dt[j] - self.dt[i];
        self.setup + self.holding * (sum_td - (i as f64 + 1.0) * sum_d)
    }

    /// Optimal plan: total cost and the production periods (0-based).
    /// Values come from the online champion-stack engine; predecessors
    /// are re-derived through the dispatched staircase solve
    /// ([`lws_parents`]), which doubles as a certificate that the two
    /// layers agree on the optimum.
    pub fn solve(&self) -> (f64, Vec<usize>) {
        let n = self.demand.len();
        let lot = |i: usize, j: usize| self.w(i, j);
        let (e, _) = lws_monge(n, &lot);
        let parent = lws_parents(n, &lot, &e, true);
        let mut runs = Vec::new();
        let mut j = n;
        while j > 0 {
            runs.push(parent[j]);
            j = parent[j];
        }
        runs.reverse();
        (e[n], runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn concave_family_matches_brute() {
        // sqrt gap + per-candidate additive terms: inverse-Monge.
        let mut rng = StdRng::seed_from_u64(200);
        for n in [1usize, 2, 5, 30, 200] {
            let fo: Vec<f64> = (0..=n).map(|_| rng.random_range(0.0..3.0)).collect();
            let w = move |i: usize, j: usize| ((j - i) as f64).sqrt() + fo[i];
            let (e1, _) = lws_concave(n, &w);
            let (e2, _) = lws_brute(n, &w);
            assert_close(&e1, &e2);
        }
    }

    #[test]
    fn log_gap_weights() {
        for n in [3usize, 17, 101] {
            let w = |i: usize, j: usize| ((j - i) as f64).ln_1p() + (i as f64) * 0.01;
            let (e1, _) = lws_concave(n, &w);
            let (e2, _) = lws_brute(n, &w);
            assert_close(&e1, &e2);
        }
    }

    #[test]
    fn convex_family_matches_brute() {
        let mut rng = StdRng::seed_from_u64(203);
        for n in [1usize, 2, 5, 30, 200] {
            let fo: Vec<f64> = (0..=n).map(|_| rng.random_range(0.0..3.0)).collect();
            let w = move |i: usize, j: usize| {
                let d = (j - i) as f64;
                0.01 * d * d + fo[i]
            };
            let (e1, _) = lws_monge(n, &w);
            let (e2, _) = lws_brute(n, &w);
            assert_close(&e1, &e2);
        }
    }

    #[test]
    fn lot_size_weight_is_monge() {
        let mut rng = StdRng::seed_from_u64(201);
        let demand: Vec<f64> = (0..20).map(|_| rng.random_range(0.0..10.0)).collect();
        let ls = LotSize::new(demand, 25.0, 0.7);
        // Quadrangle inequality on the valid simplex i < i' < j < j'.
        for i in 0..18 {
            for i2 in i + 1..19 {
                for j in i2 + 1..20 {
                    for j2 in j + 1..=20 {
                        let lhs = ls.w(i, j) + ls.w(i2, j2);
                        let rhs = ls.w(i, j2) + ls.w(i2, j);
                        assert!(lhs <= rhs + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn lot_size_plan_matches_brute() {
        let mut rng = StdRng::seed_from_u64(202);
        for n in [1usize, 4, 12, 60, 200] {
            let demand: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..10.0)).collect();
            let ls = LotSize::new(
                demand,
                rng.random_range(5.0..50.0),
                rng.random_range(0.1..2.0),
            );
            let lot = |i: usize, j: usize| ls.w(i, j);
            let (e2, _) = lws_brute(n, &lot);
            let (cost, runs) = ls.solve();
            assert!((cost - e2[n]).abs() < 1e-9, "n={n}");
            assert_eq!(runs.first().copied(), Some(0));
        }
    }

    #[test]
    fn dispatched_parents_reconstruct_the_optimum() {
        // The staircase-dispatched predecessor recovery must yield a
        // chain whose cost equals the online engine's optimum, for both
        // quadrangle orientations.
        let mut rng = StdRng::seed_from_u64(204);
        for n in [1usize, 2, 7, 40, 150] {
            let fo: Vec<f64> = (0..=n).map(|_| rng.random_range(0.0..3.0)).collect();
            let convex = {
                let fo = fo.clone();
                move |i: usize, j: usize| {
                    let d = (j - i) as f64;
                    0.01 * d * d + fo[i]
                }
            };
            let concave = move |i: usize, j: usize| ((j - i) as f64).sqrt() + fo[i];
            for (is_convex, w) in [
                (true, &convex as &(dyn Fn(usize, usize) -> f64 + Sync)),
                (false, &concave),
            ] {
                let (e, _) = if is_convex {
                    lws_monge(n, &w)
                } else {
                    lws_concave(n, &w)
                };
                let parent = lws_parents(n, &w, &e, is_convex);
                let mut cost = 0.0;
                let mut j = n;
                while j > 0 {
                    assert!(parent[j] < j, "n={n} j={j}");
                    cost += w(parent[j], j);
                    j = parent[j];
                }
                assert!((cost - e[n]).abs() < 1e-9, "n={n} convex={is_convex}");
            }
        }
    }

    #[test]
    fn plan_reconstruction_is_consistent() {
        let w = |i: usize, j: usize| ((j - i) as f64).sqrt() + 1.0;
        let n = 50;
        let (e, parent) = lws_concave(n, &w);
        let mut cost = 0.0;
        let mut j = n;
        while j > 0 {
            cost += w(parent[j], j);
            j = parent[j];
        }
        assert!((cost - e[n]).abs() < 1e-9);
    }

    #[test]
    fn large_instance_stays_subquadratic_in_evaluations() {
        use std::cell::Cell;
        let n = 20_000;
        let count = Cell::new(0u64);
        let w = |i: usize, j: usize| {
            count.set(count.get() + 1);
            ((j - i) as f64).sqrt()
        };
        let _ = lws_concave(n, &w);
        assert!(
            count.get() < 3_000_000,
            "too many weight evaluations: {}",
            count.get()
        );
    }
}
