//! # monge-apps
//!
//! The applications of §1.3 of *Aggarwal, Kravets, Park, Sen (SPAA 1990)*,
//! each built on the array-searching engines of `monge-core` /
//! `monge-parallel`:
//!
//! 1. [`empty_rect`] — the largest-area empty rectangle problem
//!    (median divide & conquer with a window-scanned crossing case; see
//!    DESIGN.md §3 for the recorded substitution).
//! 2. [`max_rect`] — the largest-area rectangle spanned by two points as
//!    opposite corners (Melville's circuit-leakage motivation); a clean
//!    Monge reduction over dominance staircases with banded searching.
//! 3. [`neighbors`] — nearest/farthest visible and invisible neighbors
//!    between two disjoint convex polygons (arc-structured visibility).
//! 4. [`string_edit`] — string editing via grid-DAG DIST matrices
//!    combined with Monge-composite tube minima.
//!
//! Plus the paper's motivating example — [`farthest`], all farthest
//! neighbors between the two chains of a convex polygon (Figure 1.1) —
//! the geometric substrate they share ([`geometry`]), and the
//! introduction's Monge-structured dynamic programs:
//!
//! * [`lws`] — concave least-weight subsequence and the economic
//!   lot-size model (\[AP90\]);
//! * [`obst`] — Knuth–Yao optimal binary search trees (\[Yao80\]);
//! * [`transport`] — Hoffman's transportation greedy on Monge costs
//!   (\[Mon81\], \[Hof61\]), with a min-cost-flow oracle.
//!
//! ## Error handling
//!
//! User-reachable entry points come in pairs: a panicking function for
//! trusted inputs and a `try_`-prefixed variant returning
//! [`monge_core::guard::SolveError`] for untrusted ones (input
//! validation, checked arithmetic). Library code may only panic on
//! internal invariants, via `expect` with a message naming the
//! invariant — `unwrap()` is denied crate-wide outside tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod alphabetic;
pub mod empty_rect;
pub mod farthest;
pub mod geometry;
pub mod lws;
pub mod max_rect;
pub mod neighbors;
pub mod obst;
pub mod string_edit;
pub mod transport;
