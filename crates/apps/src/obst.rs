//! Optimal binary search trees by the Knuth–Yao quadrangle-inequality
//! speedup — the paper's introduction credits F. Yao (\[Yao80\]: "used
//! these arrays to obtain an efficient sequential algorithm for computing
//! optimal binary trees").
//!
//! Given access frequencies `freq[0..n]` for `n` keys, the classic
//! recurrence
//!
//! ```text
//! e[i][j] = w(i, j) + min_{i < r <= j} ( e[i][r-1] + e[r][j] )
//! ```
//!
//! costs `O(n³)` naively. Because `w(i, j) = Σ freq[i..j]` satisfies the
//! quadrangle inequality and is monotone in inclusion, the cost table
//! itself satisfies the QI, which forces the optimal roots to be monotone:
//! `root[i][j-1] ≤ root[i][j] ≤ root[i+1][j]`. Searching only that window
//! collapses the total work to `O(n²)` — the archetype of Monge-structured
//! dynamic programming.
//!
//! Each length-`len` diagonal is phrased as a [`Problem::banded_row_minima`]
//! over the array `B[i][r] = e[i][r-1] + e[r][i+len]` with the Knuth–Yao
//! windows as (non-decreasing) bands, and solved through the unified
//! [`Dispatcher`].

use monge_core::array2d::FnArray;
use monge_core::problem::Problem;
use monge_parallel::Dispatcher;

/// Result of an optimal-BST computation.
#[derive(Clone, Debug, PartialEq)]
pub struct Obst {
    /// Number of keys.
    pub n: usize,
    /// `cost[i][j]` (flattened) = optimal cost of keys `i+1..=j`.
    cost: Vec<f64>,
    /// `root[i][j]` = optimal root of keys `i+1..=j` (0 when empty).
    root: Vec<usize>,
}

impl Obst {
    fn at(&self, i: usize, j: usize) -> usize {
        i * (self.n + 1) + j
    }
    /// Optimal total weighted depth of all keys.
    pub fn total_cost(&self) -> f64 {
        self.cost[self.at(0, self.n)]
    }
    /// Optimal root of the subproblem over keys `i+1..=j`.
    pub fn root_of(&self, i: usize, j: usize) -> usize {
        self.root[self.at(i, j)]
    }
    /// Extracts the tree as `parent[k]` for each key `k ∈ 1..=n`
    /// (the root's parent is 0).
    pub fn parents(&self) -> Vec<usize> {
        let mut parent = vec![0usize; self.n + 1];
        let mut stack = vec![(0usize, self.n, 0usize)];
        while let Some((i, j, p)) = stack.pop() {
            if i >= j {
                continue;
            }
            let r = self.root_of(i, j);
            parent[r] = p;
            stack.push((i, r - 1, r));
            stack.push((r, j, r));
        }
        parent
    }
}

/// Knuth–Yao `O(n²)` optimal BST over access frequencies `freq[k]` for
/// keys `1..=n` (successful searches only — the simple variant).
///
/// ```
/// use monge_apps::obst::optimal_bst;
///
/// // A dominant middle key should be the root.
/// let t = optimal_bst(&[1.0, 10.0, 1.0]);
/// assert_eq!(t.root_of(0, 3), 2);
/// assert_eq!(t.total_cost(), 10.0 + 2.0 * 2.0);
/// ```
pub fn optimal_bst(freq: &[f64]) -> Obst {
    let n = freq.len();
    let prefix = prefix_sums(freq);
    let mut t = base_table(freq);
    let d = Dispatcher::with_default_backends();
    for len in 2..=n {
        let m = n - len + 1;
        // Knuth–Yao windows from the previous diagonals; root monotonicity
        // makes both endpoints non-decreasing in `i`, the exact band shape
        // the minima search supports.
        let mut lo = Vec::with_capacity(m);
        let mut hi = Vec::with_capacity(m);
        for i in 0..m {
            let j = i + len;
            lo.push(t.root[t.at(i, j - 1)].max(i + 1));
            hi.push(t.root[t.at(i + 1, j)] + 1);
        }
        let (arg, val) = {
            let cost = &t.cost;
            let stride = n + 1;
            // Only probed inside the band, where i < r <= i + len keeps
            // both subproblem lookups in range.
            let b = FnArray::new(m, n + 1, move |i: usize, r: usize| {
                cost[i * stride + (r - 1)] + cost[r * stride + (i + len)]
            });
            let (sol, _) = d.solve(&Problem::banded_row_minima(&b, &lo, &hi));
            let (arg, val) = sol.banded();
            (arg.to_vec(), val.to_vec())
        };
        for i in 0..m {
            let j = i + len;
            let a = t.at(i, j);
            t.cost[a] = val[i].expect("Knuth-Yao bands are never empty") + prefix[j] - prefix[i];
            t.root[a] = arg[i].expect("Knuth-Yao bands are never empty");
        }
    }
    t
}

/// The `O(n³)` dynamic program without the monotonicity window — the
/// oracle the speedup is verified against.
pub fn optimal_bst_cubic(freq: &[f64]) -> Obst {
    let n = freq.len();
    let prefix = prefix_sums(freq);
    let mut t = base_table(freq);
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len;
            let mut best = f64::INFINITY;
            let mut best_r = i + 1;
            for r in i + 1..=j {
                let c = t.cost[t.at(i, r - 1)] + t.cost[t.at(r, j)];
                if c < best {
                    best = c;
                    best_r = r;
                }
            }
            let a = t.at(i, j);
            t.cost[a] = best + prefix[j] - prefix[i];
            t.root[a] = best_r;
        }
    }
    t
}

fn prefix_sums(freq: &[f64]) -> Vec<f64> {
    let mut prefix = vec![0.0f64; freq.len() + 1];
    for (k, &f) in freq.iter().enumerate() {
        prefix[k + 1] = prefix[k] + f;
    }
    prefix
}

fn base_table(freq: &[f64]) -> Obst {
    let n = freq.len();
    let mut t = Obst {
        n,
        cost: vec![0.0; (n + 1) * (n + 1)],
        root: vec![0; (n + 1) * (n + 1)],
    };
    // Base: single keys.
    #[allow(clippy::needless_range_loop)] // i feeds t.at() too
    for i in 0..n {
        let a = t.at(i, i + 1);
        t.cost[a] = freq[i];
        t.root[a] = i + 1;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn knuth_matches_cubic() {
        let mut rng = StdRng::seed_from_u64(210);
        for n in [1usize, 2, 3, 8, 25, 60] {
            let freq: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..5.0)).collect();
            let fast = optimal_bst(&freq);
            let slow = optimal_bst_cubic(&freq);
            assert!(
                (fast.total_cost() - slow.total_cost()).abs() < 1e-9,
                "n={n}: {} vs {}",
                fast.total_cost(),
                slow.total_cost()
            );
            // Every subproblem agrees, not just the root one: the banded
            // dispatch reproduces the whole cost table.
            for i in 0..n {
                for j in i + 1..=n {
                    let (f, s) = (fast.cost[fast.at(i, j)], slow.cost[slow.at(i, j)]);
                    assert!((f - s).abs() < 1e-9, "n={n} cell ({i},{j}): {f} vs {s}");
                }
            }
        }
    }

    #[test]
    fn roots_are_monotone() {
        let mut rng = StdRng::seed_from_u64(211);
        let n = 40;
        let freq: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..5.0)).collect();
        let t = optimal_bst(&freq);
        for len in 2..=n {
            for i in 0..=(n - len) {
                let j = i + len;
                assert!(t.root_of(i, j - 1) <= t.root_of(i, j));
                assert!(t.root_of(i, j) <= t.root_of(i + 1, j));
            }
        }
    }

    #[test]
    fn known_small_case() {
        // Keys with freq 0.5, 0.1, 0.4: best root is key 1 or 3? Classic:
        // root 1: cost = 1*0.5 + (subtree {2,3}: root 3: 0.4 + 2*0.1) ->
        // 0.5 + 0.1 + 0.4 + (0.4 + 2*0.1)... compute via oracle instead.
        let freq = [0.5, 0.1, 0.4];
        let t = optimal_bst(&freq);
        let o = optimal_bst_cubic(&freq);
        assert!((t.total_cost() - o.total_cost()).abs() < 1e-12);
        // Depth-weighted cost of the explicit tree root=1, right={3,{2}}:
        // 0.5*1 + 0.4*2 + 0.1*3 = 1.6.
        assert!((t.total_cost() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn uniform_frequencies_give_balanced_tree() {
        let freq = vec![1.0; 15];
        let t = optimal_bst(&freq);
        // Balanced tree over 15 uniform keys: cost = sum of depths =
        // 1*1 + 2*2 + 4*3 + 8*4 = 49.
        assert!((t.total_cost() - 49.0).abs() < 1e-9);
        assert_eq!(t.root_of(0, 15), 8);
    }

    #[test]
    fn parents_form_a_tree() {
        let mut rng = StdRng::seed_from_u64(212);
        let n = 30;
        let freq: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..2.0)).collect();
        let t = optimal_bst(&freq);
        let parent = t.parents();
        let root = t.root_of(0, n);
        assert_eq!(parent[root], 0);
        // Every key reaches the root.
        for k in 1..=n {
            let mut cur = k;
            let mut hops = 0;
            while cur != root {
                cur = parent[cur];
                hops += 1;
                assert!(hops <= n, "cycle detected");
            }
        }
        // BST property: left subtree keys < r < right subtree keys, checked
        // via in-order positions being the key order by construction of
        // the recurrence (structural recursion guarantees it).
    }

    #[test]
    fn evaluation_count_is_quadratic_not_cubic() {
        // Indirect: time-free check via the window sizes. Sum of
        // (root[i+1][j] - root[i][j-1] + 1) over all cells is O(n²)
        // by telescoping; verify on an instance.
        let mut rng = StdRng::seed_from_u64(213);
        let n = 120;
        let freq: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..2.0)).collect();
        let t = optimal_bst(&freq);
        let mut window_total = 0usize;
        for len in 2..=n {
            for i in 0..=(n - len) {
                let j = i + len;
                let lo = t.root_of(i, j - 1).max(i + 1);
                let hi = t.root_of(i + 1, j);
                window_total += hi.saturating_sub(lo) + 1;
            }
        }
        assert!(
            window_total < 4 * n * n,
            "window work {window_total} not O(n^2)"
        );
    }
}
