//! Optimal alphabetic binary codes — the tree-construction family of the
//! paper's \[AKL+89\] citation ("Atallah, Kosaraju, Larmore, Miller, and
//! Teng have used Monge-composite arrays to construct Huffman and other
//! such codes on CRCW- and CREW-PRAMs").
//!
//! Given weights `w_1 … w_n` in fixed left-to-right order, find a binary
//! tree with the weights at its leaves *in that order* minimizing
//! `Σ w_i · depth_i` (an optimal alphabetic code). Three algorithms:
//!
//! * [`alphabetic_dp`] — the quadrangle-inequality dynamic program
//!   (the leaf-only sibling of Knuth–Yao OBST), `O(n²)`;
//! * [`alphabetic_dp_cubic`] — the unwindowed `O(n³)` oracle;
//! * [`garsia_wachs`] — the Garsia–Wachs algorithm, `O(n²)` in this
//!   simple-list form (`O(n lg n)` with better structures): combine the
//!   leftmost *locally minimal* pair, reinsert the merged weight behind
//!   the nearest larger predecessor, read off optimal depths, and
//!   rebuild an alphabetic tree from the depth sequence.
//!
//! Plus [`huffman_cost`], the unordered lower bound every alphabetic
//! code must dominate.

/// `O(n²)` optimal alphabetic cost via the QI-windowed dynamic program.
pub fn alphabetic_dp(w: &[f64]) -> f64 {
    dp(w, true)
}

/// `O(n³)` oracle.
pub fn alphabetic_dp_cubic(w: &[f64]) -> f64 {
    dp(w, false)
}

fn dp(w: &[f64], windowed: bool) -> f64 {
    let n = w.len();
    if n == 0 {
        return 0.0;
    }
    let mut prefix = vec![0.0f64; n + 1];
    for (k, &x) in w.iter().enumerate() {
        prefix[k + 1] = prefix[k] + x;
    }
    let wsum = |i: usize, j: usize| prefix[j] - prefix[i];
    let at = |i: usize, j: usize| i * (n + 1) + j;
    let mut cost = vec![0.0f64; (n + 1) * (n + 1)];
    let mut split = vec![0usize; (n + 1) * (n + 1)];
    for i in 0..n {
        split[at(i, i + 1)] = i + 1;
    }
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len;
            let (lo, hi) = if windowed {
                (
                    split[at(i, j - 1)].max(i + 1),
                    split[at(i + 1, j)].min(j - 1).max(i + 1),
                )
            } else {
                (i + 1, j - 1)
            };
            let mut best = f64::INFINITY;
            let mut best_r = lo;
            for r in lo..=hi {
                let c = cost[at(i, r)] + cost[at(r, j)];
                if c < best {
                    best = c;
                    best_r = r;
                }
            }
            cost[at(i, j)] = best + wsum(i, j);
            split[at(i, j)] = best_r;
        }
    }
    cost[at(0, n)]
}

/// Optimal alphabetic depths and total cost by Garsia–Wachs.
///
/// ```
/// use monge_apps::alphabetic::{alphabetic_dp, garsia_wachs};
///
/// // Heavy outer weights: the optimal code keeps them shallow (cost 15)
/// // rather than balancing everything at depth 2 (cost 16).
/// let w = [3.0, 1.0, 1.0, 3.0];
/// let (cost, depths) = garsia_wachs(&w);
/// assert_eq!(cost, 15.0);
/// assert_eq!(cost, alphabetic_dp(&w));
/// assert_eq!(depths.iter().filter(|&&d| d == 3).count(), 2); // the two light leaves
/// ```
pub fn garsia_wachs(w: &[f64]) -> (f64, Vec<usize>) {
    let n = w.len();
    if n == 0 {
        return (0.0, Vec::new());
    }
    if n == 1 {
        return (0.0, vec![0]);
    }
    // Working list of (weight, merge-tree node id); node ids 0..n are the
    // leaves in order, merges append new nodes.
    #[derive(Clone, Copy)]
    struct Item {
        weight: f64,
        node: usize,
    }
    let mut list: Vec<Item> = w
        .iter()
        .enumerate()
        .map(|(k, &x)| Item { weight: x, node: k })
        .collect();
    let mut children: Vec<Option<(usize, usize)>> = vec![None; n];

    while list.len() > 1 {
        // Leftmost locally minimal pair: smallest i with
        // list[i-1].weight <= list[i+1].weight (sentinels = +inf).
        let len = list.len();
        let get = |list: &Vec<Item>, k: isize| -> f64 {
            if k < 0 || k as usize >= len {
                f64::INFINITY
            } else {
                list[k as usize].weight
            }
        };
        let mut i = 1usize;
        while i < len {
            if get(&list, i as isize - 1) <= get(&list, i as isize + 1) {
                break;
            }
            i += 1;
        }
        if i == len {
            i = len - 1; // combine the last pair
        }
        let a = list[i - 1];
        let b = list[i];
        let merged = Item {
            weight: a.weight + b.weight,
            node: children.len(),
        };
        children.push(Some((a.node, b.node)));
        list.drain(i - 1..=i);
        // Reinsert just after the nearest preceding element whose weight
        // is >= merged (Garsia–Wachs's key move).
        let mut pos = i - 1;
        while pos > 0 && list[pos - 1].weight < merged.weight {
            pos -= 1;
        }
        list.insert(pos, merged);
    }

    // Depths of the original leaves in the merge tree.
    let mut depth = vec![0usize; children.len()];
    // Children appear before parents in `children` (ids increase), so a
    // reverse sweep propagates depths top-down.
    for id in (0..children.len()).rev() {
        if let Some((l, r)) = children[id] {
            depth[l] = depth[id] + 1;
            depth[r] = depth[id] + 1;
        }
    }
    let leaf_depths: Vec<usize> = depth[..n].to_vec();
    let cost = w
        .iter()
        .zip(&leaf_depths)
        .map(|(&x, &d)| x * d as f64)
        .sum();
    (cost, leaf_depths)
}

/// Rebuilds an explicit alphabetic tree from a (valid) leaf-depth
/// sequence; returns `parent`-style arrays for inspection. Returns
/// `None` when the depths do not describe a binary tree (Kraft sum ≠ 1).
pub fn tree_from_depths(depths: &[usize]) -> Option<Vec<(usize, usize)>> {
    // Stack-based construction: push leaves left to right; whenever the
    // two top entries have equal depth, merge them into an internal node
    // of depth-1. Node encoding: (id, depth); internal nodes get fresh
    // ids after the leaves.
    let n = depths.len();
    if n == 0 {
        return Some(Vec::new());
    }
    let mut next_id = n;
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new(); // (parent, child)
    for (leaf, &d) in depths.iter().enumerate() {
        stack.push((leaf, d));
        while stack.len() >= 2 {
            let (b, db) = stack[stack.len() - 1];
            let (a, da) = stack[stack.len() - 2];
            if da == db && da > 0 {
                stack.truncate(stack.len() - 2);
                let p = next_id;
                next_id += 1;
                edges.push((p, a));
                edges.push((p, b));
                stack.push((p, da - 1));
            } else {
                break;
            }
        }
    }
    if stack.len() == 1 && stack[0].1 == 0 {
        Some(edges)
    } else {
        None
    }
}

/// Huffman (unordered) optimal cost: the lower bound for any alphabetic
/// code over the same weights.
pub fn huffman_cost(w: &[f64]) -> f64 {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    if w.len() <= 1 {
        return 0.0;
    }
    // f64 is not Ord; weights are non-negative, compare via bits of the
    // scaled value is overkill — use a total order wrapper.
    #[derive(PartialEq)]
    struct F(f64);
    impl Eq for F {}
    impl PartialOrd for F {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for F {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&o.0).expect("no NaN weights")
        }
    }
    let mut heap: BinaryHeap<Reverse<F>> = w.iter().map(|&x| Reverse(F(x))).collect();
    let mut total = 0.0;
    while heap.len() > 1 {
        let a = heap.pop().expect("heap holds at least two weights").0 .0;
        let b = heap.pop().expect("heap holds at least two weights").0 .0;
        total += a + b;
        heap.push(Reverse(F(a + b)));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn dp_windowed_matches_cubic() {
        let mut rng = StdRng::seed_from_u64(240);
        for n in [1usize, 2, 3, 7, 20, 50] {
            let w: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..5.0)).collect();
            assert!(
                (alphabetic_dp(&w) - alphabetic_dp_cubic(&w)).abs() < 1e-9,
                "n={n}"
            );
        }
    }

    #[test]
    fn garsia_wachs_matches_dp() {
        let mut rng = StdRng::seed_from_u64(241);
        for n in [1usize, 2, 3, 4, 8, 17, 40, 100] {
            let w: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..5.0)).collect();
            let (gw, _) = garsia_wachs(&w);
            let dp = alphabetic_dp(&w);
            assert!((gw - dp).abs() < 1e-7, "n={n}: GW {gw} vs DP {dp}");
        }
    }

    #[test]
    fn depths_form_a_valid_tree() {
        let mut rng = StdRng::seed_from_u64(242);
        for n in [1usize, 2, 5, 30, 80] {
            let w: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..5.0)).collect();
            let (_, depths) = garsia_wachs(&w);
            let edges = tree_from_depths(&depths);
            assert!(edges.is_some(), "n={n}: depths {depths:?} not a tree");
            // Kraft equality for full binary trees.
            let kraft: f64 = depths.iter().map(|&d| 0.5f64.powi(d as i32)).sum();
            assert!((kraft - 1.0).abs() < 1e-9 || n == 1, "n={n} kraft {kraft}");
        }
    }

    #[test]
    fn alphabetic_dominates_huffman() {
        let mut rng = StdRng::seed_from_u64(243);
        for _ in 0..20 {
            let n = rng.random_range(2..60);
            let w: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..5.0)).collect();
            let (gw, _) = garsia_wachs(&w);
            let hf = huffman_cost(&w);
            assert!(gw >= hf - 1e-9, "alphabetic {gw} below Huffman {hf}");
        }
    }

    #[test]
    fn sorted_weights_make_them_equal() {
        // For non-decreasing weights, an optimal Huffman tree can be made
        // alphabetic (sibling property), so the costs coincide.
        let w: Vec<f64> = (1..=16).map(|k| k as f64).collect();
        let (gw, _) = garsia_wachs(&w);
        let hf = huffman_cost(&w);
        assert!((gw - hf).abs() < 1e-9, "{gw} vs {hf}");
    }

    #[test]
    fn known_tiny_cases() {
        // Two leaves: one level each.
        let (c, d) = garsia_wachs(&[3.0, 5.0]);
        assert_eq!(d, vec![1, 1]);
        assert!((c - 8.0).abs() < 1e-12);
        // Balanced four.
        let (c4, d4) = garsia_wachs(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(d4, vec![2, 2, 2, 2]);
        assert!((c4 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_depths_rejected() {
        assert!(tree_from_depths(&[1, 1, 1]).is_none());
        assert!(tree_from_depths(&[2, 2, 1]).is_some());
        assert!(tree_from_depths(&[1, 2, 2]).is_some());
        assert!(tree_from_depths(&[3, 3, 3]).is_none());
    }
}
