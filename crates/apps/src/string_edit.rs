//! §1.3 application 4: string editing via grid-DAGs and Monge-composite
//! searching.
//!
//! Transform `x` into `y` with minimum total cost using deletions
//! (`D(x_i)`), insertions (`I(y_j)`) and substitutions (`S(x_i, y_j)`)
//! — \[WF74\]'s `O(st)` dynamic program is the sequential baseline.
//!
//! The parallel algorithms ([AP89a, AALM88], and §1.3's hypercube claim)
//! reduce the problem to shortest paths in a *grid-DAG* and split the
//! grid into horizontal strips. Every source-to-sink path crosses each
//! strip boundary exactly once, so a strip is summarized by its **DIST
//! matrix** (boundary-to-boundary shortest paths), which is Monge on its
//! finite band by the crossing-paths argument; adjacent strips combine by
//! a `(min,+)` product — a *tube minima* computation on a
//! Monge-composite array (Table 1.3's primitive). This module provides:
//!
//! * [`edit_distance_dp`] — Wagner–Fischer, the oracle;
//! * [`edit_distance_antidiagonal`] — the wavefront parallelization (the
//!   shape of the Ranka–Sahni SIMD-hypercube baseline the paper compares
//!   against);
//! * [`strip_dist`] / [`combine_dist`] / [`edit_distance_dist_tree`] —
//!   the DIST-matrix pipeline: per-strip DIST by parallel DP over
//!   boundary starts, then a combining tree of banded doubly-monotone
//!   `(min,+)` products;
//! * [`edit_script`] — operation recovery by traceback.

use monge_core::array2d::{Array2d, Dense};
use monge_core::eval;
use monge_core::guard::SolveError;
use monge_core::problem::Problem;
use monge_core::scratch::{with_scratch, with_scratch2};
use monge_core::tube::plane;
use monge_core::value::Value;
use monge_parallel::tuning::Tuning;
use monge_parallel::Dispatcher;
use rayon::prelude::*;

/// Edit-operation cost model (plain function pointers keep the model
/// `Copy` and the arrays `O(1)`-evaluable).
#[derive(Clone, Copy)]
pub struct CostModel {
    /// Cost of deleting character `c` from `x`.
    pub del: fn(u8) -> i64,
    /// Cost of inserting character `c` of `y`.
    pub ins: fn(u8) -> i64,
    /// Cost of substituting `a` (from `x`) by `b` (from `y`).
    pub sub: fn(u8, u8) -> i64,
}

impl CostModel {
    /// Levenshtein: unit insert/delete/substitute, free match.
    pub fn unit() -> Self {
        Self {
            del: |_| 1,
            ins: |_| 1,
            sub: |a, b| i64::from(a != b),
        }
    }

    /// A weighted model exercising non-uniform costs (per-character
    /// weights derived from the byte values).
    pub fn weighted() -> Self {
        Self {
            del: |c| 1 + i64::from(c % 3),
            ins: |c| 1 + i64::from(c % 2),
            sub: |a, b| {
                if a == b {
                    0
                } else {
                    2 + i64::from((a ^ b) % 3)
                }
            },
        }
    }
}

/// Largest per-operation cost magnitude over the byte alphabets actually
/// present in `x` and `y` (at most 256 × 256 probes, independent of the
/// string lengths).
fn max_abs_cost(x: &[u8], y: &[u8], c: &CostModel) -> i64 {
    let mut in_x = [false; 256];
    let mut in_y = [false; 256];
    for &b in x {
        in_x[b as usize] = true;
    }
    for &b in y {
        in_y[b as usize] = true;
    }
    let mut m = 0i64;
    for a in 0..256u16 {
        if !in_x[a as usize] {
            continue;
        }
        m = m.max((c.del)(a as u8).saturating_abs());
        for b in 0..256u16 {
            if in_y[b as usize] {
                m = m.max((c.sub)(a as u8, b as u8).saturating_abs());
            }
        }
    }
    for b in 0..256u16 {
        if in_y[b as usize] {
            m = m.max((c.ins)(b as u8).saturating_abs());
        }
    }
    m
}

/// Pre-flight overflow audit for the editing pipelines: any source-to-
/// sink path of the grid-DAG performs at most `|x| + |y| + 1` operations,
/// and the DIST combining tree only ever adds two such path costs, so all
/// accumulated scores stay strictly below the `i64` infinity sentinel
/// (`i64::MAX / 4`) iff `max|cost| · (|x| + |y| + 1)` stays below half of
/// it. Adversarial weights near `i64::MAX` fail here with
/// [`SolveError::Overflow`] instead of silently wrapping inside the DP.
pub fn check_cost_range(x: &[u8], y: &[u8], c: &CostModel) -> Result<(), SolveError> {
    let ops = (x.len() + y.len() + 1) as i64;
    let bound = <i64 as Value>::INFINITY / 2;
    match max_abs_cost(x, y, c).checked_mul(ops) {
        Some(total) if total < bound => Ok(()),
        _ => Err(SolveError::Overflow {
            context: "string_edit cost accumulation",
        }),
    }
}

/// [`edit_distance_dp`] behind the [`check_cost_range`] overflow audit.
pub fn try_edit_distance_dp(x: &[u8], y: &[u8], c: &CostModel) -> Result<i64, SolveError> {
    check_cost_range(x, y, c)?;
    Ok(edit_distance_dp(x, y, c))
}

/// [`edit_distance_dist_tree`] behind the [`check_cost_range`] overflow
/// audit: the DIST combine (`(min,+)` tube minima) adds two path costs
/// per probe, which the audit proves cannot wrap.
pub fn try_edit_distance_dist_tree(
    x: &[u8],
    y: &[u8],
    c: &CostModel,
    strips: usize,
) -> Result<i64, SolveError> {
    check_cost_range(x, y, c)?;
    Ok(edit_distance_dist_tree(x, y, c, strips))
}

/// Wagner–Fischer dynamic program, `O(|x|·|y|)` time, `O(|y|)` space.
///
/// ```
/// use monge_apps::string_edit::{edit_distance_dp, CostModel};
///
/// let c = CostModel::unit();
/// assert_eq!(edit_distance_dp(b"kitten", b"sitting", &c), 3);
/// ```
pub fn edit_distance_dp(x: &[u8], y: &[u8], c: &CostModel) -> i64 {
    let n = y.len();
    let mut prev: Vec<i64> = Vec::with_capacity(n + 1);
    prev.push(0);
    for j in 0..n {
        prev.push(prev[j] + (c.ins)(y[j]));
    }
    let mut cur = vec![0i64; n + 1];
    for &xc in x {
        cur[0] = prev[0] + (c.del)(xc);
        for j in 1..=n {
            cur[j] = (prev[j] + (c.del)(xc))
                .min(cur[j - 1] + (c.ins)(y[j - 1]))
                .min(prev[j - 1] + (c.sub)(xc, y[j - 1]));
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Antidiagonal wavefront: cells of one antidiagonal depend only on the
/// two previous ones, so each diagonal is a parallel step — the
/// `O(m + n)`-span, `O(mn)`-work shape of the SIMD-hypercube baselines
/// the paper improves on.
pub fn edit_distance_antidiagonal(x: &[u8], y: &[u8], c: &CostModel) -> i64 {
    let (m, n) = (x.len(), y.len());
    if m + n == 0 {
        return 0;
    }
    let inf = i64::MAX / 4;
    // Diagonal d holds cells (i, d - i) for i in [max(0, d-n), min(d, m)],
    // stored from that lower index.
    let mut prev2: Vec<i64> = vec![0]; // d = 0
    let mut prev1: Vec<i64> = {
        // d = 1: cells (0,1) (if n >= 1) then (1,0) (if m >= 1), in
        // ascending i order.
        let mut v = Vec::with_capacity(2);
        if n >= 1 {
            v.push((c.ins)(y[0]));
        }
        if m >= 1 {
            v.push((c.del)(x[0]));
        }
        v
    };
    if m + n == 1 {
        return prev1[0];
    }
    for d in 2..=(m + n) {
        let i_lo = d.saturating_sub(n);
        let i_hi = d.min(m);
        let p1_lo = (d - 1).saturating_sub(n);
        let p1_hi = (d - 1).min(m);
        let p2_lo = (d - 2).saturating_sub(n);
        let p2_hi = (d - 2).min(m);
        let cells: Vec<i64> = (i_lo..=i_hi)
            .into_par_iter()
            .map(|i| {
                let j = d - i;
                let mut best = inf;
                if i >= 1 && (p1_lo..=p1_hi).contains(&(i - 1)) {
                    best = best.min(prev1[i - 1 - p1_lo] + (c.del)(x[i - 1]));
                }
                if j >= 1 && (p1_lo..=p1_hi).contains(&i) {
                    best = best.min(prev1[i - p1_lo] + (c.ins)(y[j - 1]));
                }
                if i >= 1 && j >= 1 && (p2_lo..=p2_hi).contains(&(i - 1)) {
                    best = best.min(prev2[i - 1 - p2_lo] + (c.sub)(x[i - 1], y[j - 1]));
                }
                best
            })
            .collect();
        prev2 = std::mem::replace(&mut prev1, cells);
    }
    // The last diagonal (d = m + n) contains only the sink (m, n).
    prev1[0]
}

/// The DIST matrix of the strip of `x[r0..r1]` against all of `y`:
/// `DIST[i][j]` = cheapest path from boundary column `i` above the strip
/// to boundary column `j` below it (`∞` for `j < i`, since grid-DAG
/// columns never decrease). Computed by one DP per start column,
/// parallel over starts: `O((n + h) · h · n)` work for height `h`.
pub fn strip_dist(xs: &[u8], y: &[u8], c: &CostModel) -> Dense<i64> {
    let n = y.len();
    let inf = <i64 as Value>::INFINITY;
    let rows: Vec<Vec<i64>> = (0..=n)
        .into_par_iter()
        .map(|start| {
            // DP over the strip from (row 0, col start).
            let mut prev = vec![inf; n + 1];
            prev[start] = 0;
            for j in start + 1..=n {
                prev[j] = prev[j - 1].saturating_add((c.ins)(y[j - 1]));
            }
            let mut cur = vec![inf; n + 1];
            for &xc in xs {
                for j in 0..=n {
                    let mut best = prev[j].saturating_add((c.del)(xc));
                    if j >= 1 {
                        best = best
                            .min(cur[j - 1].saturating_add((c.ins)(y[j - 1])))
                            .min(prev[j - 1].saturating_add((c.sub)(xc, y[j - 1])));
                    }
                    cur[j] = best.min(inf);
                }
                std::mem::swap(&mut prev, &mut cur);
                cur.fill(inf);
            }
            // Clamp to the saturating infinity so Monge checks stay exact.
            prev.iter().map(|&v| v.min(inf)).collect()
        })
        .collect();
    Dense::from_rows(rows)
}

/// Banded `(min,+)` product of two DIST matrices by the doubly-monotone
/// divide & conquer (tube minima of the Monge-composite array, clipped to
/// the finite band `j ∈ [i, k]`): `O(s²)`-ish per product instead of
/// `O(s³)`.
pub fn combine_dist(a: &Dense<i64>, b: &Dense<i64>) -> Dense<i64> {
    combine_dist_arrays(a, b)
}

/// [`combine_dist`] generalized over any [`Array2d`] factors, so a
/// combining tree can consume lazy products ([`DistProduct`], possibly
/// wrapped in [`monge_core::CachedArray`]) without materializing them.
pub fn combine_dist_arrays<A: Array2d<i64>, B: Array2d<i64>>(a: &A, b: &B) -> Dense<i64> {
    combine_dist_arrays_with(a, b, Tuning::from_env())
}

/// [`combine_dist_arrays`] with explicit tuning: the row halving forks
/// under `rayon::join` once a block is taller than
/// [`Tuning::tube_seq_planes`] (the output is split at row boundaries,
/// so the halves write disjoint slices), and all per-level scratch comes
/// from the thread-local arena.
pub fn combine_dist_arrays_with<A: Array2d<i64>, B: Array2d<i64>>(
    a: &A,
    b: &B,
    t: Tuning,
) -> Dense<i64> {
    let s = a.rows();
    assert_eq!(a.cols(), s);
    assert_eq!(b.rows(), s);
    assert_eq!(b.cols(), s);
    let inf = <i64 as Value>::INFINITY;
    let mut out = vec![inf; s * s];
    // Solve rows (of the output) by halving with per-column sandwiches.
    with_scratch2(|lo: &mut Vec<usize>, hi: &mut Vec<usize>| {
        lo.clear();
        lo.resize(s, 0);
        hi.clear();
        hi.resize(s, s.saturating_sub(1));
        with_scratch(|scratch: &mut Vec<i64>| {
            dc(a, b, 0, s, lo, hi, &mut out, scratch, t);
        });
    });
    Dense::from_vec(s, s, out)
}

/// Solves output rows `i0..i1`; `out` is the row-major slice covering
/// exactly those rows (`(i1 - i0) * s` entries).
#[allow(clippy::too_many_arguments)]
fn dc<A: Array2d<i64>, B: Array2d<i64>>(
    a: &A,
    b: &B,
    i0: usize,
    i1: usize,
    lo: &[usize],
    hi: &[usize],
    out: &mut [i64],
    scratch: &mut Vec<i64>,
    t: Tuning,
) {
    if i0 >= i1 {
        return;
    }
    let s = a.rows();
    let mid = i0 + (i1 - i0) / 2;
    let (top, rest) = out.split_at_mut((mid - i0) * s);
    let (mid_row, bot) = rest.split_at_mut(s);
    // The middle output row lives on the Monge plane
    // F[k][j] = a[mid,j] + b[j,k]; each sandwich is one batched scan.
    with_scratch(|args: &mut Vec<usize>| {
        args.clear();
        args.resize(s, 0);
        {
            let pl = plane(a, b, mid);
            let mut from = 0usize;
            for k in 0..s {
                // Feasible middle coordinates: j in [mid, k] (band) ∩ sandwich.
                if k < mid {
                    args[k] = mid.min(k); // unused; out stays ∞ (j<i infeasible)
                    continue;
                }
                let l = lo[k].max(from).max(mid);
                let h = hi[k].min(k);
                let (bj, bv) = eval::interval_argmin(&pl, k, l, h.max(l) + 1, scratch);
                mid_row[k] = bv;
                args[k] = bj;
                from = bj;
            }
        }
        // `args` is both the upper block's inclusive upper bounds and the
        // lower block's lower bounds (double argmin monotonicity).
        if i1 - i0 > t.tube_seq_planes.max(1) {
            rayon::join(
                || with_scratch(|sc: &mut Vec<i64>| dc(a, b, i0, mid, lo, args, top, sc, t)),
                || with_scratch(|sc: &mut Vec<i64>| dc(a, b, mid + 1, i1, args, hi, bot, sc, t)),
            );
        } else {
            dc(a, b, i0, mid, lo, args, top, scratch, t);
            dc(a, b, mid + 1, i1, args, hi, bot, scratch, t);
        }
    });
}

/// A **lazy** banded `(min,+)` DIST product: entries are computed on
/// demand from the factors instead of materializing the `s × s` result.
///
/// An entry costs a band scan and a whole row costs one monotone sweep,
/// so consuming the same entries repeatedly (as the next level of a
/// combining tree does) recomputes expensive work — wrap the product in
/// [`monge_core::CachedArray`] to materialize each row at most once.
/// The `cached_lazy_product_*` test demonstrates the evaluation-count
/// difference via [`monge_core::CountingArray`].
pub struct DistProduct<'a, A, B> {
    a: &'a A,
    b: &'a B,
}

impl<'a, A: Array2d<i64>, B: Array2d<i64>> DistProduct<'a, A, B> {
    /// Wraps two square DIST factors of equal order.
    pub fn new(a: &'a A, b: &'a B) -> Self {
        let s = a.rows();
        assert_eq!(a.cols(), s);
        assert_eq!(b.rows(), s);
        assert_eq!(b.cols(), s);
        Self { a, b }
    }
}

impl<'a, A: Array2d<i64>, B: Array2d<i64>> Array2d<i64> for DistProduct<'a, A, B> {
    fn rows(&self) -> usize {
        self.a.rows()
    }
    fn cols(&self) -> usize {
        self.a.rows()
    }
    fn entry(&self, i: usize, k: usize) -> i64 {
        if k < i {
            return <i64 as Value>::INFINITY;
        }
        let mut best = <i64 as Value>::INFINITY;
        for j in i..=k {
            let v = self.a.entry(i, j).add(self.b.entry(j, k));
            if v < best {
                best = v;
            }
        }
        best
    }
    fn fill_row(&self, i: usize, cols: std::ops::Range<usize>, out: &mut [i64]) {
        // One monotone sweep computes the whole output row in
        // O(s + argmin span) factor evaluations; the requested slice is
        // copied out. (Row granularity matches CachedArray's.) Both the
        // row buffer and the scan scratch are pooled, so repeated calls
        // (a combining tree touches every row of every level) allocate
        // nothing.
        let s = self.a.rows();
        let inf = <i64 as Value>::INFINITY;
        // NOTE: because this computes the *whole* row per call (the
        // monotone sweep is row-granular), `prefers_streaming` stays
        // at its default `false` — chunked streaming would re-run the
        // sweep once per chunk.
        with_scratch2(|row: &mut Vec<i64>, scratch: &mut Vec<i64>| {
            row.clear();
            row.resize(s, inf);
            let pl = plane(self.a, self.b, i);
            let mut from = i;
            for (k, slot) in row.iter_mut().enumerate().skip(i) {
                let (bj, bv) = eval::interval_argmin(&pl, k, from, k + 1, scratch);
                *slot = bv;
                from = bj;
            }
            for (slot, k) in out.iter_mut().zip(cols) {
                *slot = row[k];
            }
        });
    }
}

/// Brute-force `(min,+)` oracle for DIST products.
pub fn combine_dist_brute(a: &Dense<i64>, b: &Dense<i64>) -> Dense<i64> {
    let s = a.rows();
    Dense::tabulate(s, s, |i, k| {
        let mut best = <i64 as Value>::INFINITY;
        for j in 0..s {
            let v = a.entry(i, j).add(b.entry(j, k));
            if v < best {
                best = v;
            }
        }
        best
    })
}

/// Edit distance through the DIST pipeline: split `x` into `strips`
/// horizontal strips, build each strip's DIST in parallel, combine with
/// a parallel reduction tree of banded `(min,+)` products, and read
/// `DIST[0][n]`.
pub fn edit_distance_dist_tree(x: &[u8], y: &[u8], c: &CostModel, strips: usize) -> i64 {
    edit_distance_dist_tree_with(x, y, c, strips, Tuning::from_env())
}

/// [`edit_distance_dist_tree`] with explicit tuning: every stage is
/// parallel — the per-strip DIST builds fan out over rayon, and each
/// `(min,+)` combination in the reduction tree runs the forked
/// [`combine_dist_arrays_with`] divide & conquer, so two combines *and*
/// the row blocks within one combine execute concurrently.
pub fn edit_distance_dist_tree_with(
    x: &[u8],
    y: &[u8],
    c: &CostModel,
    strips: usize,
    t: Tuning,
) -> i64 {
    let strips = strips.clamp(1, x.len().max(1));
    let chunk = x.len().div_ceil(strips);
    let parts: Vec<&[u8]> = if x.is_empty() {
        vec![&[][..]]
    } else {
        x.chunks(chunk).collect()
    };
    let dists: Vec<Dense<i64>> = parts.par_iter().map(|xs| strip_dist(xs, y, c)).collect();
    let combined = dists
        .into_par_iter()
        .reduce_with(|a, b| combine_dist_arrays_with(&a, &b, t))
        .expect("at least one strip");
    combined.entry(0, y.len())
}

/// Edit distance with the DIST combining tree executed on the simulated
/// hypercube — §1.3's headline claim ("the string editing problem … can
/// be solved in `O(lg n lg m)` time on an `nm`-processor hypercube,
/// cube-connected cycles, or shuffle-exchange network"). Strip DIST
/// matrices are built host-side; every `(min,+)` combination is
/// dispatched to the hypercube backend as a
/// [`Problem::tube_minima`], and the returned metrics accumulate the
/// exchanges of all `⌈lg strips⌉` combining rounds (each round's
/// combines run on disjoint sub-networks, so the critical path adds the
/// *maximum* steps per round).
pub fn edit_distance_hc(
    x: &[u8],
    y: &[u8],
    c: &CostModel,
    strips: usize,
) -> (i64, monge_hypercube::NetMetrics) {
    let strips = strips.clamp(1, x.len().max(1));
    let chunk = x.len().div_ceil(strips);
    let parts: Vec<&[u8]> = if x.is_empty() {
        vec![&[][..]]
    } else {
        x.chunks(chunk).collect()
    };
    let mut level: Vec<Dense<i64>> = parts.iter().map(|xs| strip_dist(xs, y, c)).collect();
    let disp = Dispatcher::with_default_backends();
    let mut total = monge_hypercube::NetMetrics::default();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut round_steps = 0u64;
        let mut round_local = 0u64;
        let mut iter = level.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => {
                    let (sol, tel) = disp
                        .solve_on(
                            "hypercube",
                            &Problem::tube_minima(&a, &b),
                            Tuning::from_env(),
                        )
                        .expect("hypercube backend implements tube minima");
                    round_steps = round_steps.max(tel.machine.comm_steps);
                    round_local = round_local.max(tel.machine.local_steps);
                    total.messages += tel.machine.messages;
                    let extrema = sol.into_tube();
                    next.push(Dense::from_vec(extrema.p, extrema.r, extrema.value));
                }
                None => next.push(a),
            }
        }
        total.comm_steps += round_steps;
        total.local_steps += round_local;
        level = next;
    }
    let d = level.pop().expect("at least one strip");
    (d.entry(0, y.len()), total)
}

/// One edit operation of a recovered script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Delete `x[i]`.
    Delete(usize),
    /// Insert `y[j]` .
    Insert(usize),
    /// Substitute `x[i]` by `y[j]` (possibly a free match).
    Substitute(usize, usize),
}

/// Full DP with traceback: returns the optimal cost and one optimal
/// script. `O(mn)` time and space.
pub fn edit_script(x: &[u8], y: &[u8], c: &CostModel) -> (i64, Vec<EditOp>) {
    let (m, n) = (x.len(), y.len());
    let mut dp = vec![0i64; (m + 1) * (n + 1)];
    let at = |i: usize, j: usize| i * (n + 1) + j;
    for j in 1..=n {
        dp[at(0, j)] = dp[at(0, j - 1)] + (c.ins)(y[j - 1]);
    }
    for i in 1..=m {
        dp[at(i, 0)] = dp[at(i - 1, 0)] + (c.del)(x[i - 1]);
        for j in 1..=n {
            dp[at(i, j)] = (dp[at(i - 1, j)] + (c.del)(x[i - 1]))
                .min(dp[at(i, j - 1)] + (c.ins)(y[j - 1]))
                .min(dp[at(i - 1, j - 1)] + (c.sub)(x[i - 1], y[j - 1]));
        }
    }
    // Traceback.
    let mut ops = Vec::new();
    let (mut i, mut j) = (m, n);
    while i > 0 || j > 0 {
        let cur = dp[at(i, j)];
        if i > 0 && j > 0 && cur == dp[at(i - 1, j - 1)] + (c.sub)(x[i - 1], y[j - 1]) {
            ops.push(EditOp::Substitute(i - 1, j - 1));
            i -= 1;
            j -= 1;
        } else if i > 0 && cur == dp[at(i - 1, j)] + (c.del)(x[i - 1]) {
            ops.push(EditOp::Delete(i - 1));
            i -= 1;
        } else {
            ops.push(EditOp::Insert(j - 1));
            j -= 1;
        }
    }
    ops.reverse();
    (dp[at(m, n)], ops)
}

/// Applies a script to `x`, producing the edited byte string (test
/// helper asserting script validity).
pub fn apply_script(x: &[u8], y: &[u8], ops: &[EditOp]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut xi = 0usize;
    for &op in ops {
        match op {
            EditOp::Delete(i) => {
                assert_eq!(i, xi, "script out of order");
                xi += 1;
            }
            EditOp::Insert(j) => out.push(y[j]),
            EditOp::Substitute(i, j) => {
                assert_eq!(i, xi);
                out.push(y[j]);
                xi += 1;
            }
        }
    }
    assert_eq!(xi, x.len(), "script did not consume x");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_string(n: usize, sigma: u8, rng: &mut StdRng) -> Vec<u8> {
        (0..n).map(|_| b'a' + rng.random_range(0..sigma)).collect()
    }

    #[test]
    fn dp_known_cases() {
        let c = CostModel::unit();
        assert_eq!(edit_distance_dp(b"kitten", b"sitting", &c), 3);
        assert_eq!(edit_distance_dp(b"", b"abc", &c), 3);
        assert_eq!(edit_distance_dp(b"abc", b"", &c), 3);
        assert_eq!(edit_distance_dp(b"abc", b"abc", &c), 0);
        assert_eq!(edit_distance_dp(b"", b"", &c), 0);
    }

    #[test]
    fn antidiagonal_matches_dp() {
        let mut rng = StdRng::seed_from_u64(160);
        for _ in 0..20 {
            let m = rng.random_range(0..40);
            let n = rng.random_range(0..40);
            let x = random_string(m, 4, &mut rng);
            let y = random_string(n, 4, &mut rng);
            for c in [CostModel::unit(), CostModel::weighted()] {
                assert_eq!(
                    edit_distance_antidiagonal(&x, &y, &c),
                    edit_distance_dp(&x, &y, &c),
                    "m={m} n={n}"
                );
            }
        }
    }

    #[test]
    fn dist_matrices_are_monge_on_the_finite_band() {
        let mut rng = StdRng::seed_from_u64(161);
        let x = random_string(6, 4, &mut rng);
        let y = random_string(9, 4, &mut rng);
        let c = CostModel::unit();
        let d = strip_dist(&x, &y, &c);
        let s = d.rows();
        for i in 0..s {
            for k in i + 1..s {
                for j in 0..s {
                    for l in j + 1..s {
                        let (a1, a2, a3, a4) =
                            (d.entry(i, j), d.entry(i, l), d.entry(k, j), d.entry(k, l));
                        let inf = <i64 as Value>::INFINITY;
                        if a1 < inf && a2 < inf && a3 < inf && a4 < inf {
                            assert!(a1 + a4 <= a2 + a3, "quadrangle fails at {i},{k},{j},{l}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn combine_matches_brute() {
        let mut rng = StdRng::seed_from_u64(162);
        let y = random_string(12, 4, &mut rng);
        let c = CostModel::weighted();
        let x1 = random_string(5, 4, &mut rng);
        let x2 = random_string(7, 4, &mut rng);
        let a = strip_dist(&x1, &y, &c);
        let b = strip_dist(&x2, &y, &c);
        assert_eq!(combine_dist(&a, &b), combine_dist_brute(&a, &b));
    }

    #[test]
    fn lazy_product_matches_dense_product() {
        let mut rng = StdRng::seed_from_u64(164);
        let y = random_string(14, 4, &mut rng);
        let c = CostModel::weighted();
        let a = strip_dist(&random_string(6, 4, &mut rng), &y, &c);
        let b = strip_dist(&random_string(5, 4, &mut rng), &y, &c);
        let dense = combine_dist(&a, &b);
        let lazy = DistProduct::new(&a, &b);
        let s = dense.rows();
        assert_eq!(lazy.to_dense(), dense);
        let mut buf = vec![0i64; s];
        for i in 0..s {
            lazy.fill_row(i, 0..s, &mut buf);
            for (k, &v) in buf.iter().enumerate() {
                assert_eq!(v, dense.entry(i, k), "row {i} col {k}");
            }
        }
    }

    #[test]
    fn cached_lazy_product_does_fewer_factor_evaluations() {
        use monge_core::{CachedArray, CountingArray};
        // Three strips combined as (d1 ⊗ d2) ⊗ d3, with the inner product
        // kept lazy. Every touch of the lazy product re-sweeps the factors,
        // so the CachedArray wrapper (one sweep per row, then memcpy) must
        // show far fewer factor evaluations for the same output.
        let mut rng = StdRng::seed_from_u64(165);
        let y = random_string(16, 4, &mut rng);
        let c = CostModel::weighted();
        let d1 = strip_dist(&random_string(6, 4, &mut rng), &y, &c);
        let d2 = strip_dist(&random_string(7, 4, &mut rng), &y, &c);
        let d3 = strip_dist(&random_string(5, 4, &mut rng), &y, &c);
        let want = combine_dist(&combine_dist(&d1, &d2), &d3);

        let (ca, cb) = (CountingArray::new(&d1), CountingArray::new(&d2));
        let lazy = DistProduct::new(&ca, &cb);
        let got_plain = combine_dist_arrays(&lazy, &d3);
        let plain_evals = ca.evaluations() + cb.evaluations();

        let (ca, cb) = (CountingArray::new(&d1), CountingArray::new(&d2));
        let lazy = DistProduct::new(&ca, &cb);
        let cached = CachedArray::new(&lazy);
        let got_cached = combine_dist_arrays(&cached, &d3);
        let cached_evals = ca.evaluations() + cb.evaluations();

        assert_eq!(got_plain, want);
        assert_eq!(got_cached, want);
        assert!(
            cached_evals < plain_evals,
            "cached {cached_evals} vs plain {plain_evals}"
        );
    }

    #[test]
    fn dist_tree_matches_dp() {
        let mut rng = StdRng::seed_from_u64(163);
        for strips in [1usize, 2, 3, 5, 8] {
            let m = rng.random_range(1..50);
            let n = rng.random_range(1..50);
            let x = random_string(m, 3, &mut rng);
            let y = random_string(n, 3, &mut rng);
            for c in [CostModel::unit(), CostModel::weighted()] {
                assert_eq!(
                    edit_distance_dist_tree(&x, &y, &c, strips),
                    edit_distance_dp(&x, &y, &c),
                    "strips={strips} m={m} n={n}"
                );
            }
        }
    }

    #[test]
    fn script_is_valid_and_optimal() {
        let mut rng = StdRng::seed_from_u64(164);
        for _ in 0..10 {
            let x = random_string(rng.random_range(0..25), 3, &mut rng);
            let y = random_string(rng.random_range(0..25), 3, &mut rng);
            let c = CostModel::unit();
            let (cost, ops) = edit_script(&x, &y, &c);
            assert_eq!(cost, edit_distance_dp(&x, &y, &c));
            assert_eq!(apply_script(&x, &y, &ops), y);
            // Unit model: script cost equals the number of non-free ops.
            let paid = ops
                .iter()
                .filter(|op| match op {
                    EditOp::Substitute(i, j) => x[*i] != y[*j],
                    _ => true,
                })
                .count() as i64;
            assert_eq!(paid, cost);
        }
    }

    #[test]
    fn hypercube_combine_matches_dp() {
        let mut rng = StdRng::seed_from_u64(165);
        for strips in [2usize, 3, 4] {
            let m = rng.random_range(4..16);
            let n = rng.random_range(4..16);
            let x = random_string(m, 4, &mut rng);
            let y = random_string(n, 4, &mut rng);
            let c = CostModel::unit();
            let (d, metrics) = edit_distance_hc(&x, &y, &c, strips);
            assert_eq!(
                d,
                edit_distance_dp(&x, &y, &c),
                "strips={strips} m={m} n={n}"
            );
            assert!(metrics.comm_steps > 0);
        }
    }

    #[test]
    fn hypercube_combine_steps_are_polylogarithmic() {
        let c = CostModel::unit();
        let steps_of = |n: usize| {
            let (x, y) = (
                (0..n).map(|i| b'a' + (i % 4) as u8).collect::<Vec<_>>(),
                (0..n).map(|i| b'a' + (i % 3) as u8).collect::<Vec<_>>(),
            );
            edit_distance_hc(&x, &y, &c, 2).1.comm_steps
        };
        let s12 = steps_of(8);
        let s24 = steps_of(16);
        // Doubling n must grow the exchange count far slower than the
        // O(n²) work a flat DP would need.
        assert!(s24 <= 3 * s12, "{s12} -> {s24}");
    }

    #[test]
    fn empty_strip_edge_cases() {
        let c = CostModel::unit();
        assert_eq!(edit_distance_dist_tree(b"", b"abc", &c, 4), 3);
        assert_eq!(edit_distance_dist_tree(b"abc", b"", &c, 2), 3);
    }

    #[test]
    fn adversarial_weights_are_rejected_not_wrapped() {
        // Costs adjacent to i64::MAX: one operation already exceeds the
        // finite budget, so the audit must refuse before the DP wraps.
        let evil = CostModel {
            del: |_| i64::MAX - 1,
            ins: |_| i64::MAX - 1,
            sub: |_, _| i64::MAX - 1,
        };
        assert!(matches!(
            try_edit_distance_dp(b"ab", b"cd", &evil),
            Err(SolveError::Overflow { .. })
        ));
        assert!(matches!(
            try_edit_distance_dist_tree(b"ab", b"cd", &evil, 2),
            Err(SolveError::Overflow { .. })
        ));
        // The largest per-op cost the audit admits for this length still
        // solves, and matches the unchecked DP.
        let ops = 2 + 2 + 1;
        let max_ok = <i64 as Value>::INFINITY / 2 / ops - 1;
        assert!(max_ok > 0);
        let benign = CostModel {
            del: |_| 3,
            ins: |_| 2,
            sub: |a, b| i64::from(a != b) * 4,
        };
        assert_eq!(
            try_edit_distance_dp(b"ab", b"cd", &benign).expect("benign model passes the audit"),
            edit_distance_dp(b"ab", b"cd", &benign)
        );
        assert_eq!(
            try_edit_distance_dist_tree(b"kitten", b"sitting", &CostModel::unit(), 3)
                .expect("unit model passes the audit"),
            3
        );
    }
}
