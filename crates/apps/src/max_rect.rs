//! §1.3 application 2: the largest-area rectangle formed by two of the
//! `n` given points as opposite corners (axis-parallel sides) — the
//! integrated-circuit leakage-path problem of \[Mel89\]. The paper obtains
//! an optimal `Θ(lg n)`-time, `n`-processor CRCW algorithm.
//!
//! ## Monge reduction
//!
//! For a NE-oriented pair (lower-left corner `p`, upper-right corner
//! `q`), `p` may be replaced by a *SW-staircase* point (one dominated by
//! no other point from below-left) and `q` by a *NE-staircase* point,
//! without decreasing the area. Index rows by the SW staircase sorted by
//! `x` ascending (`y` strictly descending) and columns by the NE
//! staircase sorted by `y` ascending (`x` strictly descending). The area
//! array
//!
//! ```text
//! A[i][j] = (x_cj - x_ri) · (y_cj - y_ri)
//! ```
//!
//! has quadrangle difference
//! `(y_ri - y_rk)(x_cl - x_cj) + (x_ri - x_rk)(y_cl - y_cj) ≤ 0` under
//! those orderings — **Monge** — and the validity constraints
//! `x_cj > x_ri`, `y_cj > y_ri` carve *non-increasing bands*, the exact
//! class [`monge_core::banded::banded_row_maxima_monge`] searches in
//! `O(n lg n)`. SE-oriented pairs are the same problem on `y`-reflected
//! points.

use crate::geometry::Point;
use monge_core::array2d::FnArray;
use monge_core::problem::Problem;
use monge_parallel::{Dispatcher, PramBackend, Tuning};

/// The best rectangle found: area plus the two corner points.
#[derive(Clone, Copy, Debug)]
pub struct CornerRect {
    /// Rectangle area (0.0 when every pair is axis-degenerate).
    pub area: f64,
    /// One corner (a point of the input).
    pub a: Point,
    /// The opposite corner (a point of the input).
    pub b: Point,
}

/// Brute-force oracle, `O(n²)`: maximize `|Δx·Δy|` over all pairs.
pub fn largest_corner_rectangle_brute(points: &[Point]) -> CornerRect {
    assert!(points.len() >= 2);
    let mut best = CornerRect {
        area: -1.0,
        a: points[0],
        b: points[1],
    };
    for (i, &p) in points.iter().enumerate() {
        for &q in points.iter().skip(i + 1) {
            let area = ((q.x - p.x) * (q.y - p.y)).abs();
            if area > best.area {
                best = CornerRect { area, a: p, b: q };
            }
        }
    }
    best
}

/// The SW staircase: points not weakly dominated from below-left, sorted
/// by `x` ascending (`y` strictly descending).
fn sw_staircase(points: &[Point]) -> Vec<Point> {
    let mut sorted: Vec<Point> = points.to_vec();
    sorted.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    let mut stair: Vec<Point> = Vec::new();
    for &p in &sorted {
        // Keep p iff nothing kept so far has y <= p.y (the last kept
        // point has the minimal y so far).
        if stair.last().is_none_or(|l| p.y < l.y) {
            stair.push(p);
        }
    }
    stair
}

/// The NE staircase: points not weakly dominated from above-right, sorted
/// by `x` ascending (`y` strictly descending).
fn ne_staircase(points: &[Point]) -> Vec<Point> {
    let mut sorted: Vec<Point> = points.to_vec();
    sorted.sort_by(|a, b| b.x.total_cmp(&a.x).then(b.y.total_cmp(&a.y)));
    let mut stair: Vec<Point> = Vec::new();
    for &p in &sorted {
        if stair.last().is_none_or(|l| p.y > l.y) {
            stair.push(p);
        }
    }
    stair.reverse(); // x ascending, y descending
    stair
}

/// Best NE-oriented pair via the banded Monge search.
fn best_ne_pair(points: &[Point]) -> Option<CornerRect> {
    let rows = sw_staircase(points); // x asc, y desc
    let mut cols = ne_staircase(points); // x asc, y desc
    cols.reverse(); // y ascending, x descending
    let (m, n) = (rows.len(), cols.len());
    if m == 0 || n == 0 {
        return None;
    }
    // Bands: valid j satisfy y_cj > y_ri (j >= lo_i) and x_cj > x_ri
    // (j < hi_i); both bounds are non-increasing in i.
    let lo: Vec<usize> = rows
        .iter()
        .map(|r| cols.partition_point(|c| c.y <= r.y))
        .collect();
    let hi: Vec<usize> = rows
        .iter()
        .map(|r| cols.partition_point(|c| c.x > r.x))
        .collect();
    let rows_ref = &rows;
    let cols_ref = &cols;
    let a = FnArray::new(m, n, move |i: usize, j: usize| {
        (cols_ref[j].x - rows_ref[i].x) * (cols_ref[j].y - rows_ref[i].y)
    });
    let d = Dispatcher::with_default_backends();
    let (sol, _) = d.solve(&Problem::banded_row_maxima(&a, &lo, &hi));
    let (arg, _) = sol.banded();
    let mut best: Option<CornerRect> = None;
    for (i, j) in arg.iter().copied().enumerate() {
        if let Some(j) = j {
            let area = (cols[j].x - rows[i].x) * (cols[j].y - rows[i].y);
            if best.is_none_or(|b| area > b.area) {
                best = Some(CornerRect {
                    area,
                    a: rows[i],
                    b: cols[j],
                });
            }
        }
    }
    best
}

/// Largest two-corner rectangle in `O(n lg n)` time via two banded Monge
/// searches (NE pairs, and SE pairs by reflecting `y`).
pub fn largest_corner_rectangle(points: &[Point]) -> CornerRect {
    assert!(points.len() >= 2);
    let ne = best_ne_pair(points);
    let reflected: Vec<Point> = points.iter().map(|p| Point::new(p.x, -p.y)).collect();
    let se = best_ne_pair(&reflected).map(|r| CornerRect {
        area: r.area,
        a: Point::new(r.a.x, -r.a.y),
        b: Point::new(r.b.x, -r.b.y),
    });
    let zero = CornerRect {
        area: 0.0,
        a: points[0],
        b: points[1],
    };
    [ne, se]
        .into_iter()
        .flatten()
        .fold(zero, |acc, r| if r.area > acc.area { r } else { acc })
}

/// Parallel variant: the two orientation cases run concurrently under
/// rayon (the staircase constructions and band searches are each
/// near-linear, so the case-level split captures most of the available
/// parallelism at realistic sizes).
pub fn par_largest_corner_rectangle(points: &[Point]) -> CornerRect {
    assert!(points.len() >= 2);
    let reflected: Vec<Point> = points.iter().map(|p| Point::new(p.x, -p.y)).collect();
    let (ne, se) = rayon::join(|| best_ne_pair(points), || best_ne_pair(&reflected));
    let se = se.map(|r| CornerRect {
        area: r.area,
        a: Point::new(r.a.x, -r.a.y),
        b: Point::new(r.b.x, -r.b.y),
    });
    let zero = CornerRect {
        area: 0.0,
        a: points[0],
        b: points[1],
    };
    [ne, se]
        .into_iter()
        .flatten()
        .fold(zero, |acc, r| if r.area > acc.area { r } else { acc })
}

/// The paper's claimed machine for this problem: a `Θ(lg n)`-time,
/// `n`-processor CRCW algorithm. This runs the banded Monge searches of
/// both orientation cases on the simulated PRAM and returns the best
/// rectangle plus the machine metrics (steps on the critical path with
/// both cases as parallel branches).
pub fn pram_largest_corner_rectangle(
    points: &[Point],
    prim: monge_parallel::MinPrimitive,
) -> (CornerRect, monge_pram::Metrics) {
    assert!(points.len() >= 2);
    // f64 entries ride directly on the generic PRAM engine.
    let mut best = CornerRect {
        area: 0.0,
        a: points[0],
        b: points[1],
    };
    let mut metrics = monge_pram::Metrics::default();
    for reflect in [false, true] {
        let pts: Vec<Point> = if reflect {
            points.iter().map(|p| Point::new(p.x, -p.y)).collect()
        } else {
            points.to_vec()
        };
        let rows = sw_staircase(&pts);
        let mut cols = ne_staircase(&pts);
        cols.reverse();
        let (m, n) = (rows.len(), cols.len());
        if m == 0 || n == 0 {
            continue;
        }
        let lo: Vec<usize> = rows
            .iter()
            .map(|r| cols.partition_point(|c| c.y <= r.y))
            .collect();
        let hi: Vec<usize> = rows
            .iter()
            .map(|r| cols.partition_point(|c| c.x > r.x))
            .collect();
        let rows_ref = &rows;
        let cols_ref = &cols;
        let a = FnArray::new(m, n, move |i: usize, j: usize| {
            (cols_ref[j].x - rows_ref[i].x) * (cols_ref[j].y - rows_ref[i].y)
        });
        let d = Dispatcher::with_all_backends();
        let (sol, tel) = d
            .solve_on(
                PramBackend::name_of(prim),
                &Problem::banded_row_maxima(&a, &lo, &hi),
                Tuning::from_env(),
            )
            .expect("PRAM backends handle banded problems");
        let (arg, _) = sol.banded();
        // The two orientation cases are parallel branches: critical path
        // takes the max, work adds.
        metrics.steps = metrics.steps.max(tel.machine.steps);
        metrics.work += tel.machine.work;
        for (i, j) in arg.iter().copied().enumerate() {
            if let Some(j) = j {
                let area = (cols[j].x - rows[i].x) * (cols[j].y - rows[i].y);
                if area > best.area {
                    let (pa, pb) = if reflect {
                        (
                            Point::new(rows[i].x, -rows[i].y),
                            Point::new(cols[j].x, -cols[j].y),
                        )
                    } else {
                        (rows[i], cols[j])
                    };
                    best = CornerRect { area, a: pa, b: pb };
                }
            }
        }
    }
    (best, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
            .collect()
    }

    #[test]
    fn staircases_are_monotone() {
        let pts = random_points(100, 1);
        let sw = sw_staircase(&pts);
        assert!(sw.windows(2).all(|w| w[0].x <= w[1].x && w[0].y > w[1].y));
        let mut ne = ne_staircase(&pts);
        assert!(ne.windows(2).all(|w| w[0].x <= w[1].x && w[0].y > w[1].y));
        ne.reverse();
        assert!(ne.windows(2).all(|w| w[0].y <= w[1].y));
    }

    #[test]
    fn matches_brute_on_random_instances() {
        for seed in 0..30u64 {
            let pts = random_points(2 + (seed as usize * 7) % 60, seed);
            let fast = largest_corner_rectangle(&pts);
            let brute = largest_corner_rectangle_brute(&pts);
            assert!(
                (fast.area - brute.area).abs() < 1e-6,
                "seed {seed}: {} vs {}",
                fast.area,
                brute.area
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let pts = random_points(500, 99);
        let a = largest_corner_rectangle(&pts);
        let b = par_largest_corner_rectangle(&pts);
        assert!((a.area - b.area).abs() < 1e-9);
    }

    #[test]
    fn collinear_points_give_zero_area() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 5.0)).collect();
        let r = largest_corner_rectangle(&pts);
        assert_eq!(r.area, 0.0);
    }

    #[test]
    fn two_points() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        let r = largest_corner_rectangle(&pts);
        assert!((r.area - 12.0).abs() < 1e-12);
    }

    #[test]
    fn pram_engine_matches_and_is_logarithmic() {
        use monge_parallel::MinPrimitive;
        for seed in 0..10u64 {
            let pts = random_points(2 + (seed as usize * 13) % 100, seed + 500);
            let want = largest_corner_rectangle(&pts);
            let (got, _) = pram_largest_corner_rectangle(&pts, MinPrimitive::Constant);
            assert!((got.area - want.area).abs() < 1e-6, "seed {seed}");
        }
        // Step growth: quadrupling n adds O(1) levels of lg.
        let s_small = pram_largest_corner_rectangle(&random_points(256, 9), MinPrimitive::Constant)
            .1
            .steps;
        let s_big = pram_largest_corner_rectangle(&random_points(4096, 9), MinPrimitive::Constant)
            .1
            .steps;
        assert!(s_big <= s_small + 40, "{s_small} -> {s_big}");
    }

    #[test]
    fn se_orientation_detected() {
        // Best pair is NW/SE oriented.
        let pts = vec![
            Point::new(0.0, 10.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 5.2),
            Point::new(5.2, 5.0),
        ];
        let r = largest_corner_rectangle(&pts);
        assert!((r.area - 100.0).abs() < 1e-12);
    }
}
