//! Geometric substrate: points, convex polygons, visibility.

use rand::{Rng, RngExt};

/// A point in the plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// x-coordinate.
    pub x: f64,
    /// y-coordinate.
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Twice the signed area of triangle `abc` (positive iff counterclockwise).
pub fn cross(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// A convex polygon with vertices in counterclockwise order.
#[derive(Clone, Debug)]
pub struct ConvexPolygon {
    /// Counterclockwise vertex list.
    pub vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Wraps a counterclockwise vertex list; debug builds verify
    /// convexity.
    pub fn new(vertices: Vec<Point>) -> Self {
        let p = Self { vertices };
        debug_assert!(p.is_convex_ccw(), "vertices are not convex ccw");
        p
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Is the polygon empty?
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Is the vertex list convex and counterclockwise (allowing collinear
    /// runs)?
    pub fn is_convex_ccw(&self) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return n > 0;
        }
        (0..n).all(|i| {
            cross(
                self.vertices[i],
                self.vertices[(i + 1) % n],
                self.vertices[(i + 2) % n],
            ) >= -1e-9
        })
    }

    /// A random convex polygon: `n` points on a circle of radius `r`
    /// (sorted random angles), jittered radially while preserving
    /// convexity margins, centered at `(cx, cy)`.
    pub fn random(n: usize, cx: f64, cy: f64, r: f64, rng: &mut impl Rng) -> Self {
        assert!(n >= 3);
        let mut angles: Vec<f64> = (0..n)
            .map(|_| rng.random_range(0.0..std::f64::consts::TAU))
            .collect();
        angles.sort_by(f64::total_cmp);
        // Points on a circle are always in convex position.
        let vertices = angles
            .into_iter()
            .map(|t| Point::new(cx + r * t.cos(), cy + r * t.sin()))
            .collect();
        Self::new(vertices)
    }

    /// Does the *open* segment `ab` intersect the polygon's interior?
    ///
    /// Used by the visibility predicates: a vertex of one polygon sees a
    /// vertex of another iff the connecting segment meets neither
    /// polygon's interior. `O(n)` per query (binary-search variants exist;
    /// the oracle favors simplicity).
    pub fn segment_crosses_interior(&self, a: Point, b: Point) -> bool {
        // Sample the open segment against the convex polygon: the segment
        // crosses the interior iff some strictly interior point of the
        // segment is strictly inside the polygon. For convex polygons,
        // clip the segment against every edge half-plane and test whether
        // a positive-length sub-segment remains strictly inside.
        let n = self.vertices.len();
        let (mut t0, mut t1) = (0.0f64, 1.0f64);
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            // Inside = left of edge pq: cross(p, q, x) >= 0.
            let fa = cross(p, q, a);
            let fb = cross(p, q, b);
            let da = fa;
            let db = fb;
            if da < 0.0 && db < 0.0 {
                return false; // fully outside this half-plane
            }
            if da < 0.0 || db < 0.0 {
                // Clip.
                let t = da / (da - db);
                if da < 0.0 {
                    t0 = t0.max(t);
                } else {
                    t1 = t1.min(t);
                }
            }
        }
        if t0 >= t1 {
            return false;
        }
        // A positive-length piece lies inside the closed polygon; it
        // crosses the *interior* iff its midpoint is strictly inside.
        let tm = 0.5 * (t0 + t1);
        let m = Point::new(a.x + tm * (b.x - a.x), a.y + tm * (b.y - a.y));
        self.strictly_contains(m)
    }

    /// Is `p` strictly inside the polygon?
    pub fn strictly_contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        (0..n).all(|i| cross(self.vertices[i], self.vertices[(i + 1) % n], p) > 1e-9)
    }
}

/// Is vertex `q` of polygon `qp` visible from vertex `p` of polygon `pp`?
/// (The open segment must avoid both interiors; touching boundaries at
/// the endpoints is allowed.)
pub fn visible(pp: &ConvexPolygon, p: Point, qp: &ConvexPolygon, q: Point) -> bool {
    !pp.segment_crosses_interior(p, q) && !qp.segment_crosses_interior(p, q)
}

/// Axis-parallel rectangle `[x0, x1] × [y0, y1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// Constructs a rectangle (requires `x0 <= x1`, `y0 <= y1`).
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x0 <= x1 && y0 <= y1);
        Self { x0, y0, x1, y1 }
    }

    /// The rectangle's area.
    pub fn area(&self) -> f64 {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// Is `p` strictly inside?
    pub fn strictly_contains(&self, p: Point) -> bool {
        p.x > self.x0 && p.x < self.x1 && p.y > self.y0 && p.y < self.y1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square() -> ConvexPolygon {
        ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
    }

    #[test]
    fn cross_orientation() {
        assert!(
            cross(
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0)
            ) > 0.0
        );
        assert!(
            cross(
                Point::new(0.0, 0.0),
                Point::new(0.0, 1.0),
                Point::new(1.0, 0.0)
            ) < 0.0
        );
    }

    #[test]
    fn random_polygons_are_convex() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [3usize, 4, 10, 50] {
            let p = ConvexPolygon::random(n, 0.0, 0.0, 10.0, &mut rng);
            assert_eq!(p.len(), n);
            assert!(p.is_convex_ccw());
        }
    }

    #[test]
    fn contains_works() {
        let s = square();
        assert!(s.strictly_contains(Point::new(0.5, 0.5)));
        assert!(!s.strictly_contains(Point::new(1.5, 0.5)));
        assert!(!s.strictly_contains(Point::new(1.0, 0.5))); // boundary
    }

    #[test]
    fn segment_crossing_detection() {
        let s = square();
        // Through the middle: crosses.
        assert!(s.segment_crosses_interior(Point::new(-1.0, 0.5), Point::new(2.0, 0.5)));
        // Entirely outside: no.
        assert!(!s.segment_crosses_interior(Point::new(-1.0, 2.0), Point::new(2.0, 2.0)));
        // Touching a corner only: no interior crossing.
        assert!(!s.segment_crosses_interior(Point::new(-1.0, 1.0), Point::new(1.0, -1.0)));
        // Along an edge: no interior crossing.
        assert!(!s.segment_crosses_interior(Point::new(0.0, 0.0), Point::new(1.0, 0.0)));
    }

    #[test]
    fn visibility_between_disjoint_squares() {
        let left = square();
        let right = ConvexPolygon::new(vec![
            Point::new(3.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(3.0, 1.0),
        ]);
        // Facing corners see each other.
        assert!(visible(
            &left,
            Point::new(1.0, 0.0),
            &right,
            Point::new(3.0, 0.0)
        ));
        // Far corners are blocked by both bodies.
        assert!(!visible(
            &left,
            Point::new(0.0, 0.5),
            &right,
            Point::new(4.0, 0.5)
        ));
    }

    #[test]
    fn rect_area_and_containment() {
        let r = Rect::new(0.0, 0.0, 2.0, 3.0);
        assert_eq!(r.area(), 6.0);
        assert!(r.strictly_contains(Point::new(1.0, 1.0)));
        assert!(!r.strictly_contains(Point::new(2.0, 1.0)));
    }
}
