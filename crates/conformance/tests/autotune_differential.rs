//! Autotune differential conformance: measured backend/tuning selection
//! must be invisible in the answers. Every problem kind solved through
//! `solve_calibrated` with the autotuner on (cold *and* warm) must be
//! bitwise-identical to the autotune-off path and to the sequential
//! reference; the batch path under autotune must match the solve-loop
//! path member for member.

use std::sync::Arc;

use monge_conformance::fuzz::fuzz_budget;
use monge_conformance::gen::generate;
use monge_core::problem::{ProblemKind, TuningProvenance};
use monge_parallel::batch::BatchPolicy;
use monge_parallel::{AutotuneMode, Autotuner, Dispatcher, Tuning};

fn autotuned_dispatcher() -> (Dispatcher<i64>, Arc<Autotuner>) {
    let tuner = Arc::new(Autotuner::in_memory(AutotuneMode::On));
    let d = Dispatcher::with_default_backends().with_autotuner(tuner.clone());
    (d, tuner)
}

#[test]
fn calibrated_solves_agree_with_autotune_on_off_and_sequential() {
    let (on, _tuner) = autotuned_dispatcher();
    let off = Dispatcher::<i64>::with_default_backends().with_autotuner(Arc::new(Autotuner::off()));
    let budget = fuzz_budget(12);
    for (k, kind) in ProblemKind::ALL.iter().enumerate() {
        for i in 0..budget {
            let seed = 0xA7_0000 + (k as u64) * 0x1_0000 + i as u64;
            let inst = generate(*kind, seed);
            let p = inst.problem();
            let (want, _) = off
                .solve_on("sequential", &p, Tuning::DEFAULT)
                .expect("sequential is the universal donor");
            // Cold pass (first size class encounter measures) and warm
            // pass: both must match the sequential reference exactly.
            for pass in ["cold", "warm"] {
                let (sol, tel) = on.solve_calibrated(&p);
                assert_eq!(sol, want, "{kind:?} seed {seed} autotune-on ({pass})");
                assert!(tel.provenance.is_some(), "{kind:?} seed {seed} ({pass})");
            }
            let (sol, tel) = off.solve_calibrated(&p);
            assert_eq!(sol, want, "{kind:?} seed {seed} autotune-off");
            assert_eq!(
                tel.provenance,
                Some(TuningProvenance::Probed),
                "{kind:?} seed {seed}: off-mode must report the probe path"
            );
        }
    }
}

#[test]
fn batch_and_loop_agree_under_autotune() {
    let (d, tuner) = autotuned_dispatcher();
    let budget = fuzz_budget(6);
    let instances: Vec<_> = ProblemKind::ALL
        .iter()
        .enumerate()
        .flat_map(|(k, kind)| {
            (0..budget).map(move |i| generate(*kind, 0xBA7C4 + (k as u64) * 0x1_0000 + i as u64))
        })
        .collect();
    let problems: Vec<_> = instances.iter().map(|inst| inst.problem()).collect();

    let report = d.solve_batch_report(&problems, &BatchPolicy::default());
    for (i, (result, problem)) in report.results.iter().zip(&problems).enumerate() {
        let batch_solution = result.as_ref().expect("valid instances must solve");
        let (loop_solution, _) = d.solve_calibrated(problem);
        assert_eq!(
            *batch_solution,
            loop_solution,
            "member {i} ({:?}) batch vs loop",
            problem.kind()
        );
        assert!(
            report.telemetry[i].provenance.is_some(),
            "member {i}: batch group decisions stamp provenance"
        );
    }
    assert!(
        tuner.measurements() > 0,
        "the batch groups should have driven at least one measurement"
    );
    // Every key the batch warmed is a cache hit for the loop path.
    let (_, tel) = d.solve_calibrated(&problems[0]);
    assert_eq!(tel.provenance, Some(TuningProvenance::Cached));
}
