//! Deterministic differential fuzzing: every eligible backend against
//! the brute-force oracle, on structured seeded instances, with
//! mismatch shrinking, corpus replay, and guarded-dispatch fault
//! patterns driven from the same seed streams.
//!
//! Budget: `MONGE_FUZZ_BUDGET` instances per problem kind (default
//! 500 — the quick-CI budget; the nightly job raises it).

use monge_conformance::corpus;
use monge_conformance::fuzz::{conformance_dispatcher, fuzz_budget, fuzz_kind, PlantedBugBackend};
use monge_conformance::gen::generate;
use monge_core::array2d::Array2d;
use monge_core::guard::{AttemptOutcome, FaultInjector, FaultPlan, GuardPolicy, SolveError};
use monge_core::problem::{Problem, ProblemKind, Solution};
use monge_core::value::Value;
use monge_parallel::{Dispatcher, Tuning};

/// The tentpole assertion: ≥ 500 seeded instances per problem kind
/// (quick budget), every eligible backend diffed against the oracle on
/// full argmin vectors — values, indices, and tie-breaks — under both
/// grain policies. Any mismatch arrives already shrunk, so the failure
/// message *is* the reproducer.
#[test]
fn all_backends_agree_with_the_oracle_on_every_problem_kind() {
    let d = conformance_dispatcher();
    let budget = fuzz_budget(500);
    for (k, kind) in ProblemKind::ALL.iter().enumerate() {
        let report = fuzz_kind(&d, *kind, budget, 0x5EED_0000 + (k as u64) * 0x1_0000);
        assert_eq!(report.instances, budget);
        assert!(report.solves > 0);
        assert!(
            report.mismatches.is_empty(),
            "{kind:?}: {} mismatches; first (backend {}, seed {}, family {}):\n{}",
            report.mismatches.len(),
            report.mismatches[0].backend,
            report.mismatches[0].seed,
            report.mismatches[0].family,
            corpus::render(&report.mismatches[0].instance, "shrunk reproducer"),
        );
    }
}

/// Planted-bug drill: a backend that corrupts `index[0]` on instances
/// with both extents ≥ 5 must be caught by the differential loop, and
/// the greedy shrinker must bottom out at a reproducer no larger than
/// 8×8 (the acceptance bar; the geometry of this bug pins it at 5×5).
/// The shrunk reproducer must survive a corpus round-trip and replay
/// clean against the real registry.
#[test]
fn planted_bug_is_caught_shrunk_and_replayable() {
    let mut d = conformance_dispatcher();
    d.register(Box::new(PlantedBugBackend { threshold: 5 }));
    let report = fuzz_kind(&d, ProblemKind::RowMinima, 80, 0xB06_5EED);
    let planted: Vec<_> = report
        .mismatches
        .iter()
        .filter(|m| m.backend == "planted-bug")
        .collect();
    assert!(
        !planted.is_empty(),
        "the fuzzer missed a backend that is wrong on every 5×5+ instance"
    );
    assert!(
        report.mismatches.iter().all(|m| m.backend == "planted-bug"),
        "real backends mismatched too: {:?}",
        report
            .mismatches
            .iter()
            .map(|m| (&m.backend, m.seed))
            .collect::<Vec<_>>()
    );
    for m in &planted {
        let inst = &m.instance;
        assert!(
            inst.a.rows() <= 8 && inst.a.cols() <= 8,
            "shrinker left a {}×{} reproducer (acceptance bar is 8×8)",
            inst.a.rows(),
            inst.a.cols()
        );
        assert!(inst.valid(), "shrunk reproducer lost its structure");
    }

    // Round-trip the first reproducer through the corpus text format
    // and replay it against the *clean* registry: parse fidelity plus
    // conformance of the real backends on the minimal instance.
    let inst = &planted[0].instance;
    let text = corpus::render(inst, "planted-bug drill");
    let back = corpus::parse(&text).expect("reproducer must parse back");
    assert_eq!(back.a.data(), inst.a.data());
    let dir = std::env::temp_dir().join("monge-conformance-drill");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("planted-bug.corpus");
    std::fs::write(&path, text).unwrap();
    corpus::replay_file(&path).expect("real backends must replay the reproducer clean");
}

/// Checked-in regression corpus: every fixture must parse, re-validate
/// its structural promise, and replay conformant on all backends.
#[test]
fn checked_in_corpus_replays_clean() {
    let n = corpus::replay_all().expect("corpus replay");
    assert!(n >= 3, "expected ≥ 3 checked-in fixtures, found {n}");
}

#[test]
fn fixture_plateau_monge_replays() {
    corpus::replay_file(&corpus::corpus_dir().join("plateau-monge.corpus")).unwrap();
}

#[test]
fn fixture_staircase_boundary_replays() {
    corpus::replay_file(&corpus::corpus_dir().join("staircase-boundary.corpus")).unwrap();
}

#[test]
fn fixture_composite_tube_replays() {
    corpus::replay_file(&corpus::corpus_dir().join("composite-tube.corpus")).unwrap();
}

/// Canonical sentinel for fully-infeasible staircase rows: every
/// backend answers `(index 0, value +∞)` for a row whose boundary is
/// zero — even when the cells beyond the boundary hold attractive
/// finite garbage the engines must never read.
#[test]
fn infeasible_staircase_rows_get_the_canonical_sentinel_everywhere() {
    use monge_core::array2d::Dense;
    let a = Dense::from_rows(vec![
        vec![5, 3, -999, -999],
        vec![4, 2, -999, -999],
        vec![-999, -999, -999, -999],
        vec![-999, -999, -999, -999],
    ]);
    let boundary = vec![2usize, 2, 0, 0];
    let p = Problem::staircase_row_minima(&a, &boundary).with_tie(monge_core::tiebreak::Tie::Left);
    let d = conformance_dispatcher();
    let names: Vec<String> = d
        .eligible(&p)
        .iter()
        .map(|b| b.name().to_string())
        .collect();
    assert!(
        names.len() >= 4,
        "expected several eligible backends: {names:?}"
    );
    for name in &names {
        let (sol, _) = d.solve_on(name, &p, Tuning::DEFAULT).unwrap();
        let Solution::Rows(ex) = sol else {
            panic!("{name}: staircase solve must return row extrema")
        };
        assert_eq!(ex.index[0], 1, "{name}: row 0 argmin");
        assert_eq!(ex.index[1], 1, "{name}: row 1 argmin");
        for i in [2usize, 3] {
            assert_eq!(ex.index[i], 0, "{name}: infeasible row {i} index sentinel");
            assert_eq!(
                ex.value[i],
                <i64 as Value>::INFINITY,
                "{name}: infeasible row {i} value sentinel"
            );
        }
    }
}

/// Satellite: guarded dispatch under the fuzzer's seed stream. For
/// each corpus seed the injected fault pattern dictates the shape of
/// the recorded fallback path:
///
/// * panic budget 0 — the site never fires: first link completes,
///   depth 0;
/// * panic budget 1 — the first link dies once, the next runs against
///   an exhausted budget: path starts `Panicked` and ends `Completed`;
/// * unlimited panics — every link including the brute terminal dies:
///   a typed `BackendPanic`, never an unwinding panic;
/// * injected Monge violations under full validation — quarantined
///   straight to the brute scan: path is exactly `["brute"]`.
#[test]
fn guarded_fallback_paths_match_the_injected_fault_pattern() {
    for seed in 0..8u64 {
        // Fresh dispatcher (= fresh breaker memory) per seed: this test
        // asserts the fallback shape of each fault pattern in isolation,
        // and the deliberate unlimited-panic phase would otherwise open
        // the host backends' circuits for the later seeds. Breaker
        // dynamics under sustained fault load are the chaos harness's
        // job (`monge_conformance::chaos`).
        let d = Dispatcher::with_default_backends();
        let inst = generate(ProblemKind::RowMinima, 0xFA_0000 + seed);
        let base = inst.a.clone();

        // Budget 0: the plan is armed but can never fire.
        let f = FaultInjector::new(
            base.clone(),
            FaultPlan::none(seed).panics(1000).panic_budget(0),
            0i64,
        );
        let (_, tel) = d
            .solve_guarded(&Problem::row_minima(&f), &GuardPolicy::default())
            .expect("budget 0 must solve clean");
        let guard = tel.guard.expect("guarded solves stamp an outcome");
        assert_eq!(guard.fallback_depth(), 0, "seed {seed}");
        assert_eq!(guard.attempts[0].outcome, AttemptOutcome::Completed);

        // Budget 1: exactly one transient panic, absorbed by the chain.
        let f = FaultInjector::new(
            base.clone(),
            FaultPlan::none(seed).panics(1000).panic_budget(1),
            0i64,
        );
        let (_, tel) = d
            .solve_guarded(&Problem::row_minima(&f), &GuardPolicy::default())
            .expect("one transient panic must be absorbed");
        assert!(f.panics_fired() >= 1);
        let guard = tel.guard.expect("guarded solves stamp an outcome");
        assert!(guard.degraded(), "seed {seed}: the panic must be on record");
        assert_eq!(
            guard.attempts[0].outcome,
            AttemptOutcome::Panicked,
            "seed {seed}"
        );
        assert_eq!(
            guard.attempts.last().unwrap().outcome,
            AttemptOutcome::Completed,
            "seed {seed}"
        );

        // Unlimited: the whole chain dies, typed.
        let f = FaultInjector::new(base.clone(), FaultPlan::none(seed).panics(1000), 0i64);
        match d.solve_guarded(&Problem::row_minima(&f), &GuardPolicy::default()) {
            Err(SolveError::BackendPanic { .. }) => {}
            other => panic!("seed {seed}: expected BackendPanic, got {other:?}"),
        }

        // Violations + full validation: quarantine, not fallback.
        if base.rows() >= 2 && base.cols() >= 2 {
            let f = FaultInjector::new(
                base.clone(),
                FaultPlan::none(seed).violations(400),
                100_000i64,
            );
            let has_site = (0..base.rows())
                .flat_map(|i| (0..base.cols()).map(move |j| (i, j)))
                .any(|(i, j)| f.is_violation_site(i, j));
            if has_site {
                let (_, tel) = d
                    .solve_guarded(&Problem::row_minima(&f), &GuardPolicy::full_validation())
                    .expect("quarantine degrades, it does not fail");
                let guard = tel.guard.expect("guarded solves stamp an outcome");
                assert!(guard.quarantined, "seed {seed}");
                assert_eq!(guard.fallback_path(), vec!["brute"], "seed {seed}");
            }
        }
    }
}
