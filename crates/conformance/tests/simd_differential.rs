//! SIMD-vs-scalar differential conformance: every problem kind solved
//! twice — once with the kernel selection pinned to `Scalar`, once
//! pinned to `Simd` — must produce byte-identical solutions (values,
//! indices, tie-breaks). Under `--no-default-features` the `Simd` pin
//! degrades to scalar and the diff is trivially clean, so the suite is
//! meaningful in both CI feature legs without any cfg gymnastics.
//!
//! Fuzz instances are lane-hostile by size (most are *below*
//! `MIN_SIMD_LEN`, exercising the short-slice fallback); the dedicated
//! large-array and plateau tests push the scans well past the 4-lane
//! blocks and the 256-element streaming chunk.

use monge_conformance::fuzz::conformance_dispatcher;
use monge_conformance::gen::generate;
use monge_core::array2d::Dense;
use monge_core::generators::{random_monge_dense, random_monge_dense_f64};
use monge_core::kernel::{self, Kernel};
use monge_core::problem::{Problem, ProblemKind, Solution};
use monge_core::Tie;
use monge_parallel::dispatch::Dispatcher;
use monge_parallel::Tuning;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};

/// Kernel selection is process-global; solves that pin it must not
/// interleave or the pins lose their meaning (answers would still
/// agree — every kernel is exact — but the diff would stop exercising
/// the vector bodies).
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const SCALAR: Tuning = Tuning {
    kernel: Kernel::Scalar,
    ..Tuning::DEFAULT
};
const SIMD: Tuning = Tuning {
    kernel: Kernel::Simd,
    ..Tuning::DEFAULT
};

/// Solves `p` under both kernel pins on every eligible backend of `d`
/// and asserts the full solutions agree. The solves mutate the
/// process-global selection (`Tuning::apply_kernel`), so the scoped
/// guard restores the pre-call selection on exit — including the
/// panicking exit of a failed assertion, which used to leave a stale
/// `Simd` pin for whichever test ran next.
fn diff_kernels(d: &Dispatcher<i64>, p: &Problem<'_, i64>, ctx: &str) {
    let _g = lock();
    let _pin = kernel::scoped(kernel::selected());
    for b in d.eligible(p) {
        let Some((scalar, _)) = d.solve_on(b.name(), p, SCALAR) else {
            continue;
        };
        let (simd, _) = d.solve_on(b.name(), p, SIMD).unwrap();
        assert_eq!(
            scalar,
            simd,
            "{ctx}: backend {} disagrees between scalar and simd kernels",
            b.name()
        );
    }
}

#[test]
fn fuzz_instances_agree_across_kernels_every_problem_kind() {
    let d = conformance_dispatcher();
    let budget = std::env::var("MONGE_FUZZ_BUDGET")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&b| b > 0)
        .unwrap_or(60);
    for (k, kind) in ProblemKind::ALL.iter().enumerate() {
        for i in 0..budget {
            let seed = 0x51D_0000 + (k as u64) * 0x1_0000 + i as u64;
            let inst = generate(*kind, seed);
            diff_kernels(&d, &inst.problem(), &format!("{kind:?} seed {seed}"));
        }
    }
}

#[test]
fn large_monge_arrays_agree_across_kernels() {
    // Wide enough that every interval scan crosses many 4-lane blocks
    // and the streaming chunk boundary; tall enough to hit the
    // parallel row splits under the default grain.
    let d = conformance_dispatcher();
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let a = random_monge_dense(48, 700, &mut rng);
    for tie in [Tie::Left, Tie::Right] {
        let p = Problem::row_minima(&a).with_tie(tie);
        diff_kernels(&d, &p, &format!("large dense minima tie={tie:?}"));
        let p = Problem::row_maxima(&a).with_tie(tie);
        diff_kernels(&d, &p, &format!("large dense maxima tie={tie:?}"));
    }
}

#[test]
fn zero_slack_plateaus_agree_across_kernels() {
    // A constant array is Monge with zero slack everywhere: every
    // column ties, so the whole solve is one giant tie-break. Both
    // kernels must land on the identical (leftmost / rightmost) index
    // in every row, across lane and chunk boundaries.
    let d = conformance_dispatcher();
    for &n in &[16usize, 257, 600] {
        let a = Dense::tabulate(9, n, |_, _| 7i64);
        for tie in [Tie::Left, Tie::Right] {
            let p = Problem::row_minima(&a).with_tie(tie);
            let _g = lock();
            let pin = kernel::scoped(kernel::selected());
            let (sol, _) = d.solve_on("sequential", &p, SIMD).unwrap();
            drop(pin);
            drop(_g);
            let want = match tie {
                Tie::Left => 0,
                Tie::Right => n - 1,
            };
            for (i, &j) in sol.rows().index.iter().enumerate() {
                assert_eq!(j, want, "row {i} tie={tie:?} n={n}");
            }
            diff_kernels(&d, &p, &format!("plateau n={n} tie={tie:?}"));
        }
    }
}

#[test]
fn f64_solves_agree_across_kernels() {
    // The f64 lane bodies (ordered compares) against the scalar
    // `total_lt` scan, via the sequential backend's generic path.
    let mut rng = StdRng::seed_from_u64(0xF64);
    let a = random_monge_dense_f64(24, 300, &mut rng);
    let d: Dispatcher<f64> = Dispatcher::with_all_backends();
    for tie in [Tie::Left, Tie::Right] {
        let p = Problem::row_minima(&a).with_tie(tie);
        let _g = lock();
        let pin = kernel::scoped(kernel::selected());
        let scalar: Option<(Solution<f64>, _)> = d.solve_on("sequential", &p, SCALAR);
        let simd = d.solve_on("sequential", &p, SIMD);
        drop(pin);
        drop(_g);
        assert_eq!(scalar.unwrap().0, simd.unwrap().0, "f64 tie={tie:?}");
    }
}
