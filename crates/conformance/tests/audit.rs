//! Complexity-bound audits over the geometric ladder `n = 2^6 ..= 2^14`.
//!
//! Each test pins one PRAM min-primitive to the theorem whose resource
//! bound it implements, reads the simulator's machine counters out of
//! the dispatch telemetry, and asserts every rung stays inside
//! `slack · shape(n)`. The slack constants absorb the constants the
//! theorems hide; they were calibrated against measured step counts
//! (see DESIGN.md §12) and leave ≥ 1.5× headroom at the tightest rung
//! while rejecting the quadratic negative control at every rung.

use monge_conformance::audit::{
    audit, ladder, AuditFamily, BoundShape, BoundSpec, QuadraticDummyBackend,
};
use monge_conformance::fuzz::conformance_dispatcher;
use monge_parallel::Dispatcher;

const SEED: u64 = 0xC0FFEE;

/// Theorem 2.3: staircase-Monge row minima in `O(lg n)` CRCW steps on
/// `≤ n` processors. The combining-write primitive is the engine that
/// realizes it; plain Monge rows are the theorem's special case of an
/// all-feasible staircase.
#[test]
fn theorem_2_3_combining_crcw_lg_n_steps_linear_processors() {
    let d = conformance_dispatcher();
    let spec = BoundSpec::crcw(BoundShape::LogN, 6.0, BoundShape::Linear, 2.0);
    for family in [AuditFamily::MongeRows, AuditFamily::Staircase] {
        let report = audit(&d, "pram:combining", family, spec, &ladder(6, 14), SEED);
        assert!(report.ok(), "{report}");
        assert!(
            report.fitted_polylog_degree < 3.0,
            "step growth is not polylog:\n{report}"
        );
    }
}

/// The CRCW-Arbitrary route: the doubly-logarithmic fan-in tree costs
/// `O(lg n · lg lg n)` steps on `≤ n` processors.
#[test]
fn doubly_log_crcw_lg_n_lg_lg_n_steps() {
    let d = conformance_dispatcher();
    let spec = BoundSpec::crcw(BoundShape::LogNLogLogN, 10.0, BoundShape::Linear, 2.0);
    for family in [AuditFamily::MongeRows, AuditFamily::Staircase] {
        let report = audit(&d, "pram:doubly-log", family, spec, &ladder(6, 14), SEED);
        assert!(report.ok(), "{report}");
        assert!(
            report.fitted_polylog_degree < 3.0,
            "step growth is not polylog:\n{report}"
        );
    }
}

/// The CREW variant: binary fan-in costs `O(lg² n)` steps, and the
/// concurrent-write counter doubles as the model certificate — a
/// claimed CREW schedule must log **zero** concurrent-write events.
#[test]
fn tree_crew_lg_squared_steps_and_no_concurrent_writes() {
    let d = conformance_dispatcher();
    let spec = BoundSpec::crew(BoundShape::Log2N, 3.0, BoundShape::Linear, 2.0);
    for family in [AuditFamily::MongeRows, AuditFamily::Staircase] {
        let report = audit(&d, "pram:tree", family, spec, &ladder(6, 14), SEED);
        assert!(report.ok(), "{report}");
    }
}

/// The quadratic-processor constant-time minimum (§2.1): `O(lg n)`
/// dispatch rounds end to end, but peak processors may reach `n²/2`.
/// The simulation itself costs `Θ(n²)` work per round, so this ladder
/// stops at `2^9`.
#[test]
fn constant_primitive_quadratic_processors_small_ladder() {
    let d = conformance_dispatcher();
    let spec = BoundSpec::crcw(BoundShape::LogN, 10.0, BoundShape::NSquared, 1.0);
    for family in [AuditFamily::MongeRows, AuditFamily::Staircase] {
        let report = audit(&d, "pram:constant", family, spec, &ladder(6, 9), SEED);
        assert!(report.ok(), "{report}");
    }
}

/// Tube minima of the composite `c[i,j,k] = d[i,j] + e[j,k]` inherit
/// the per-primitive step bounds; the plane count multiplies work, not
/// depth. Smaller ladder — the instance itself is `Θ(n²)` cells.
#[test]
fn composite_tube_inherits_primitive_step_bounds() {
    let d = conformance_dispatcher();
    let combining = BoundSpec::crcw(BoundShape::LogN, 6.0, BoundShape::Linear, 2.0);
    let report = audit(
        &d,
        "pram:combining",
        AuditFamily::CompositeTube,
        combining,
        &ladder(6, 9),
        SEED,
    );
    assert!(report.ok(), "{report}");

    let tree = BoundSpec::crew(BoundShape::Log2N, 3.0, BoundShape::Linear, 2.0);
    let report = audit(
        &d,
        "pram:tree",
        AuditFamily::CompositeTube,
        tree,
        &ladder(6, 9),
        SEED,
    );
    assert!(report.ok(), "{report}");
}

/// Negative control: a backend that answers correctly but runs a
/// quadratic schedule must fail the Theorem 2.3 audit at every rung,
/// and the failure report must name the offending rungs. An auditor
/// that passes this backend is asserting nothing.
#[test]
fn negative_control_quadratic_dummy_fails_the_lg_n_bound() {
    let mut d = Dispatcher::with_all_backends();
    d.register(Box::new(QuadraticDummyBackend));
    let spec = BoundSpec::crcw(BoundShape::LogN, 6.0, BoundShape::Linear, 2.0);
    let report = audit(
        &d,
        "dummy:quadratic",
        AuditFamily::MongeRows,
        spec,
        &ladder(6, 11),
        SEED,
    );
    assert!(!report.ok(), "auditor accepted a quadratic schedule");
    assert_eq!(
        report.offenders().len(),
        report.points.len(),
        "n² steps must breach lg n at every rung:\n{report}"
    );
    assert!(
        report.fitted_polylog_degree > 4.0,
        "quadratic growth should fit far above any polylog degree:\n{report}"
    );
    let table = report.to_string();
    assert!(table.contains("FAIL"), "{table}");
}
