//! The chaos soak: thousands of seeded mixed-kind guarded solves under
//! scheduled fault storms, every one bitwise-correct or a typed error,
//! with bit-for-bit reproducible breaker transitions.
//!
//! Budget: `MONGE_CHAOS_BUDGET` storm solves (default 5000). The storm
//! seed is printed up front; a failure message also quotes it — seed +
//! spec is a complete reproducer.

use monge_conformance::chaos::{chaos_budget, parse_spec, run_storm, StormSpec};
use monge_conformance::corpus_dir;

#[test]
fn chaos_soak_survives_the_standard_storm() {
    let seed = 0xC4A0_5EED;
    let solves = chaos_budget(5000);
    let spec = StormSpec::standard(seed, solves);
    eprintln!("chaos storm seed {seed:#x}, {solves} solves");
    let report = run_storm(&spec)
        .unwrap_or_else(|e| panic!("chaos soak failed (storm seed {seed:#x}): {e}"));
    assert_eq!(report.solves, solves);
    assert_eq!(
        report.ok + report.typed_errors,
        solves,
        "every solve must resolve to ok or a typed error"
    );
    assert!(
        report.quarantined > 0,
        "the violation wave should quarantine at least one solve"
    );
    assert!(
        report.retries > 0,
        "the budgeted panic burst should drive in-place retries"
    );
    assert!(
        report.breaker_skips > 0,
        "the hard-outage wave should trip a breaker and skip it"
    );
    assert!(report.goodput_per_mille >= spec.goodput_floor_per_mille);
    eprintln!(
        "chaos soak: {} ok ({} quarantined), {} typed errors, {} retries, {} breaker skips, \
         goodput {}‰, digest {:#018x}",
        report.ok,
        report.quarantined,
        report.typed_errors,
        report.retries,
        report.breaker_skips,
        report.goodput_per_mille,
        report.state_digest
    );
}

#[test]
fn storm_reports_are_bitwise_reproducible() {
    let spec = StormSpec::standard(0xD1CE, 600);
    let a = run_storm(&spec).unwrap_or_else(|e| panic!("first run: {e}"));
    let b = run_storm(&spec).unwrap_or_else(|e| panic!("second run: {e}"));
    // Equality covers the state digest: the breaker state machines
    // walked the exact same transition sequence on the virtual clock.
    assert_eq!(a, b, "same spec must replay bit-for-bit");
    assert!(a.typed_errors > 0, "the storm should not be a no-op");

    let c = run_storm(&StormSpec::standard(0xD1CF, 600))
        .unwrap_or_else(|e| panic!("shifted-seed run: {e}"));
    assert_ne!(
        a.state_digest, c.state_digest,
        "the digest must bind to the seed"
    );
}

#[test]
fn storm_fixtures_replay() {
    let dir = corpus_dir();
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "storm"))
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "no .storm fixtures found in {}",
        dir.display()
    );
    for path in paths {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let spec = parse_spec(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let report = run_storm(&spec).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        eprintln!(
            "{}: {} ok / {} solves, goodput {}‰",
            path.display(),
            report.ok,
            report.solves,
            report.goodput_per_mille
        );
    }
}
