//! Query-level differential fuzzing of the submatrix `QueryIndex`:
//! seeded rectangle batches over every structured generator family,
//! each `query_min`/`query_max` diffed bitwise (value, argmin row,
//! argmin column — leftmost ties) against a brute submatrix scan, with
//! greedy shrinking to a minimal `(array, rectangle)` reproducer and a
//! checked-in `.qcorpus` replay corpus.
//!
//! Budget: `MONGE_QUERY_FUZZ_BUDGET` arrays per family (default 40 —
//! the quick-CI budget, ≥ 500 query checks per family; the nightly job
//! raises it).

use monge_conformance::queryfuzz::{
    self, brute_query, fuzz_query_family, query_array, query_fuzz_budget, replay_all_queries,
    replay_query_file, sample_rects, shrink_query, Rect, QUERY_FAMILIES,
};
use monge_conformance::{corpus, SplitMix64};
use monge_core::array2d::Array2d;
use monge_core::queryindex::{QueryAnswer, QueryIndex};
use monge_core::value::Value;

/// The tentpole assertion: for every structure family, hundreds of
/// seeded `(array, rectangle)` cases answered by the index must match
/// the brute submatrix scan bitwise — value, argmin row, and argmin
/// column under the leftmost rule, for both objectives. Any mismatch
/// arrives already shrunk, so the failure message *is* the reproducer.
#[test]
fn index_agrees_with_the_brute_scan_on_every_family() {
    let budget = query_fuzz_budget(40);
    for (k, &family) in QUERY_FAMILIES.iter().enumerate() {
        let report = fuzz_query_family(family, budget, 0x9_0000 + (k as u64) * 0x1_0000);
        assert_eq!(report.arrays, budget);
        assert!(
            report.queries >= budget * 16,
            "{family}: only {} query checks",
            report.queries
        );
        assert!(
            report.mismatches.is_empty(),
            "{family}: {} mismatches; first (seed {}, {}):\n{}",
            report.mismatches.len(),
            report.mismatches[0].seed,
            if report.mismatches[0].maximize {
                "query_max"
            } else {
                "query_min"
            },
            queryfuzz::render_query(
                &report.mismatches[0].instance,
                report.mismatches[0].rect,
                "shrunk reproducer"
            ),
        );
    }
}

/// With the default quick budget the lab covers ≥ 500 query checks per
/// structure family — the acceptance floor. (A caller-lowered
/// `MONGE_QUERY_FUZZ_BUDGET` is allowed to go below it; the floor is
/// asserted against the default.)
#[test]
fn default_budget_meets_the_case_floor() {
    let report = fuzz_query_family("monge-random", 40, 0xF1_0000);
    assert!(
        report.queries >= 500,
        "default budget covers only {} cases",
        report.queries
    );
    assert!(report.mismatches.is_empty());
}

/// Planted-bug drill for the query lab: diff the (correct) index
/// against a deliberately *wrong* oracle — a rightmost-tie brute scan —
/// over the plateau family, whose ties make the two rules diverge. The
/// loop must catch the divergence, the shrinker must walk it down to a
/// tiny `(array, rectangle)` pair that still shows a tie, and the
/// rendered reproducer must replay clean against the real oracle.
#[test]
fn planted_wrong_oracle_is_caught_shrunk_and_replayable() {
    let rightmost_brute = |a: &monge_core::array2d::Dense<i64>, rect: Rect| {
        let mut best: Option<QueryAnswer<i64>> = None;
        for i in rect.rows().rev() {
            for j in rect.cols().rev() {
                let v = a.entry(i, j);
                let wins = match &best {
                    None => true,
                    Some(b) => v.total_lt(b.value),
                };
                if wins {
                    best = Some(QueryAnswer {
                        value: v,
                        row: i,
                        col: j,
                    });
                }
            }
        }
        best.unwrap()
    };
    let diverges = |inst: &monge_conformance::QueryInstance, rect: Rect| {
        let Ok(ix) = QueryIndex::build(&inst.a, inst.structure) else {
            return false;
        };
        ix.query_min(rect.rows(), rect.cols()).unwrap() != rightmost_brute(&inst.a, rect)
    };
    let mut caught = 0;
    for seed in 0..60u64 {
        let inst = query_array("monge-plateau", seed);
        let mut r = SplitMix64::new(seed);
        for rect in sample_rects(inst.a.rows(), inst.a.cols(), &mut r, 8) {
            if !diverges(&inst, rect) {
                continue;
            }
            caught += 1;
            let (shrunk, srect) = shrink_query(&inst, rect, diverges);
            assert!(
                shrunk.a.rows() <= 8 && shrunk.a.cols() <= 8,
                "shrinker left a {}×{} reproducer",
                shrunk.a.rows(),
                shrunk.a.cols()
            );
            assert!(srect.area() >= 2, "a 1-cell rectangle cannot hold a tie");
            assert!(shrunk.valid(), "shrinking broke the structural promise");
            // The rendered pair must parse back and replay clean
            // against the *real* leftmost oracle.
            let text = queryfuzz::render_query(&shrunk, srect, "wrong-oracle drill");
            let (back, brect) = queryfuzz::parse_query(&text).expect("reproducer must parse");
            assert_eq!(back.a.data(), shrunk.a.data());
            assert_eq!(brect, srect);
            let dir = std::env::temp_dir().join("monge-conformance-query-drill");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("wrong-oracle.qcorpus");
            std::fs::write(&path, text).unwrap();
            replay_query_file(&path).expect("the real index must replay the reproducer clean");
            break;
        }
        if caught > 0 {
            break;
        }
    }
    assert!(
        caught > 0,
        "60 plateau seeds never produced a tie the two rules split on"
    );
}

/// Checked-in query corpus: every `.qcorpus` fixture must parse,
/// re-validate its structural promise, and replay conformant.
#[test]
fn checked_in_query_corpus_replays_clean() {
    let n = replay_all_queries().expect("query corpus replay");
    assert!(
        n >= 2,
        "expected ≥ 2 checked-in .qcorpus fixtures, found {n}"
    );
}

#[test]
fn fixture_plateau_stitch_replays() {
    replay_query_file(&corpus::corpus_dir().join("plateau-stitch.qcorpus")).unwrap();
}

#[test]
fn fixture_inf_staircase_replays() {
    replay_query_file(&corpus::corpus_dir().join("inf-staircase.qcorpus")).unwrap();
}

#[test]
fn fixture_inverse_monge_replays() {
    replay_query_file(&corpus::corpus_dir().join("inverse-monge-rect.qcorpus")).unwrap();
}

/// The `+∞` staircase sentinel interacts with both objectives: inside
/// a masked region `query_max` reports the sentinel (leftmost masked
/// cell), while `query_min` never returns it as long as one finite
/// cell is in range.
#[test]
fn inf_sentinels_behave_under_both_objectives() {
    for seed in 0..30u64 {
        let inst = query_array("monge-inf-sentinel", seed);
        let (m, n) = (inst.a.rows(), inst.a.cols());
        let ix = QueryIndex::build(&inst.a, inst.structure).unwrap();
        let inf = <i64 as Value>::INFINITY;
        let has_finite = inst.a.data().iter().any(|&x| x != inf);
        let full_min = ix.query_min(0..m, 0..n).unwrap();
        let full_max = ix.query_max(0..m, 0..n).unwrap();
        assert_eq!(
            full_min,
            brute_query(
                &inst.a,
                Rect {
                    r1: 0,
                    r2: m,
                    c1: 0,
                    c2: n
                },
                false
            )
        );
        if has_finite {
            assert_ne!(full_min.value, inf, "seed {seed}: min picked a sentinel");
        }
        if inst.a.data().contains(&inf) {
            assert_eq!(full_max.value, inf, "seed {seed}: max missed the sentinel");
        }
    }
}
