//! Batch-vs-loop differential: `Dispatcher::solve_batch` must be
//! bitwise-identical to the sequential `solve_guarded` loop it
//! replaces — same argmin indices, same values, same tie-breaks — on
//! corpus-seeded mixed-kind batches covering all seven problem kinds,
//! and must degrade *per problem / per group* under injected panics
//! and deadline exhaustion instead of failing the batch.

use std::time::Duration;

use monge_conformance::gen::{generate, Instance};
use monge_core::array2d::Dense;
use monge_core::generators::random_monge_dense;
use monge_core::guard::{FaultInjector, FaultPlan, GuardPolicy, SolveError, Validation};
use monge_core::problem::{Problem, ProblemKind};
use monge_parallel::{BatchPolicy, Dispatcher, Tuning};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Corpus-seeded instances: `per_kind` seeds of every problem kind,
/// interleaved so consecutive batch entries rarely share a group.
fn mixed_instances(per_kind: u64, tag: u64) -> Vec<Instance> {
    let mut insts = Vec::new();
    for seed in 0..per_kind {
        for (k, kind) in ProblemKind::ALL.iter().enumerate() {
            insts.push(generate(*kind, tag + seed * 31 + k as u64 * 0x1000));
        }
    }
    insts
}

/// The tentpole differential: a mixed-kind, mixed-size batch solved in
/// one `solve_batch` call equals the one-at-a-time guarded loop on
/// every problem, for every kind, bitwise.
#[test]
fn batch_equals_guarded_loop_on_mixed_kind_corpus() {
    let d = Dispatcher::with_default_backends();
    let insts = mixed_instances(6, 0xBA7C_0000);
    let problems: Vec<Problem<'_, i64>> = insts.iter().map(Instance::problem).collect();
    let guard = GuardPolicy::default();
    let policy = BatchPolicy::default()
        .with_guard(guard)
        .without_calibration();

    let report = d.solve_batch_report(&problems, &policy);
    assert!(
        report.groups >= ProblemKind::ALL.len(),
        "7 kinds must form at least 7 groups (got {})",
        report.groups
    );
    assert_eq!(report.shed_groups, 0);

    let mut covered = [false; 7];
    for (i, p) in problems.iter().enumerate() {
        covered[p.kind() as usize] = true;
        let (reference, _) = d
            .solve_guarded_with(p, &guard, Tuning::from_env())
            .unwrap_or_else(|e| panic!("loop solve failed on {i}: {e:?}"));
        let batched = report.results[i]
            .as_ref()
            .unwrap_or_else(|e| panic!("batch solve failed on {i}: {e:?}"));
        assert_eq!(
            &reference,
            batched,
            "batch diverges from the guarded loop on problem {i} ({:?}, family {})",
            p.kind(),
            insts[i].family
        );
    }
    assert!(covered.iter().all(|&c| c), "a problem kind went untested");
}

/// A panicking member degrades alone: its strips die, it is downgraded
/// onto the fallback chain, and — because the injector panics without
/// corrupting entries — it still converges to the clean answer. Its
/// group-mates and every other group stay on the fused path.
#[test]
fn injected_panics_degrade_only_the_affected_problem() {
    let mut rng = StdRng::seed_from_u64(0xFA17_BA7C);
    let clean: Vec<Dense<i64>> = (0..4)
        .map(|_| random_monge_dense(32, 32, &mut rng))
        .collect();
    // Two panics: the fused strip dies once, the first downgraded chain
    // link dies once, and the chain's next link sees a healthy array.
    let plan = FaultPlan::none(7).panics(1000).panic_budget(2);
    let faulty = FaultInjector::new(clean[0].clone(), plan, 0i64);

    let problems: Vec<Problem<'_, i64>> = std::iter::once(Problem::row_minima(&faulty))
        .chain(clean[1..].iter().map(|a| Problem::row_minima(a)))
        .collect();
    let d = Dispatcher::with_default_backends();
    let guard = GuardPolicy {
        validation: Validation::Off,
        ..GuardPolicy::default()
    };
    let policy = BatchPolicy::default()
        .with_guard(guard)
        .without_calibration();
    let report = d.solve_batch_report(&problems, &policy);

    // Every member — the faulted one included — returns the right
    // answer (the injector never corrupts values).
    for (i, a) in clean.iter().enumerate() {
        let p = Problem::row_minima(a);
        let (reference, _) = d
            .solve_guarded_with(&p, &guard, Tuning::from_env())
            .unwrap();
        assert_eq!(
            report.results[i].as_ref().expect("solved"),
            &reference,
            "member {i} diverged"
        );
    }
    // The faulted member is visibly degraded; its group-mates are not.
    let degraded = report.telemetry[0].guard.as_ref().expect("guard outcome");
    assert!(
        degraded.fallback_depth() >= 1,
        "faulted member must record its fallback: {:?}",
        degraded.fallback_path()
    );
    for tel in &report.telemetry[1..] {
        let outcome = tel.guard.as_ref().expect("guard outcome");
        assert_eq!(
            outcome.fallback_path(),
            vec!["batch"],
            "an unfaulted member left the fused path"
        );
    }
}

/// Deadline exhaustion is per group: a group whose members stall (every
/// entry read sleeps) burns through its proportional slice and times
/// out, while the fast group in the same batch completes and still
/// matches the loop bitwise.
#[test]
fn deadline_starves_only_the_affected_group() {
    let mut rng = StdRng::seed_from_u64(0xDEAD_BA7C);
    let fast: Vec<Dense<i64>> = (0..6)
        .map(|_| random_monge_dense(64, 64, &mut rng))
        .collect();
    let slow_inner = random_monge_dense(24, 24, &mut rng);
    let slow = FaultInjector::new(
        slow_inner,
        FaultPlan::none(11).latency(1000, Duration::from_millis(2)),
        0i64,
    );

    // Fast 64×64 group first, stalled 24×24 group second: distinct
    // size classes, so distinct groups and distinct deadline slices.
    let problems: Vec<Problem<'_, i64>> = fast
        .iter()
        .map(|a| Problem::row_minima(a))
        .chain(std::iter::once(Problem::row_minima(&slow)))
        .collect();
    let d = Dispatcher::with_default_backends();
    let guard = GuardPolicy {
        validation: Validation::Off,
        ..GuardPolicy::default()
    };
    let policy = BatchPolicy::default()
        .with_guard(guard)
        .without_calibration()
        .with_deadline(Duration::from_millis(80));
    let report = d.solve_batch_report(&problems, &policy);

    for (i, a) in fast.iter().enumerate() {
        let p = Problem::row_minima(a);
        let (reference, _) = d
            .solve_guarded_with(&p, &guard, Tuning::from_env())
            .unwrap();
        assert_eq!(
            report.results[i].as_ref().expect("fast group completes"),
            &reference,
            "fast-group member {i} diverged under a batch deadline"
        );
    }
    match &report.results[fast.len()] {
        Err(SolveError::DeadlineExceeded { .. }) => {}
        other => panic!("stalled group should time out, got {other:?}"),
    }
}

/// Load shedding with `shed_above`: an over-budget group leaves the
/// fused path (downgraded member by member onto the guarded chain) but
/// still returns loop-identical answers, and cheap groups stay fused.
#[test]
fn shed_groups_still_match_the_loop() {
    let d = Dispatcher::with_default_backends();
    let insts = mixed_instances(2, 0x5ED_0000);
    let problems: Vec<Problem<'_, i64>> = insts.iter().map(Instance::problem).collect();
    let guard = GuardPolicy::default();
    let policy = BatchPolicy::default()
        .with_guard(guard)
        .without_calibration()
        .shed_above(64); // almost everything is over this budget
    let report = d.solve_batch_report(&problems, &policy);
    assert!(report.shed_groups > 0, "the shed threshold never fired");

    for (i, p) in problems.iter().enumerate() {
        let (reference, _) = d
            .solve_guarded_with(p, &guard, Tuning::from_env())
            .unwrap_or_else(|e| panic!("loop solve failed on {i}: {e:?}"));
        let batched = report.results[i]
            .as_ref()
            .unwrap_or_else(|e| panic!("shed batch solve failed on {i}: {e:?}"));
        assert_eq!(&reference, batched, "shed path diverges on problem {i}");
    }
}
