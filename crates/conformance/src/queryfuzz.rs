//! Query-level differential fuzzer for the submatrix
//! [`QueryIndex`]: seeded structured arrays, seeded rectangle batches,
//! every answer (value, argmin row, argmin column — leftmost ties)
//! diffed bitwise against a brute submatrix scan, and mismatches shrunk
//! greedily to a minimal `(array, rectangle)` pair persisted in the
//! text corpus as `*.qcorpus` files.
//!
//! The solver-level fuzzer ([`crate::fuzz`]) diffs whole argmin
//! vectors; this lab diffs individual `(r1..r2, c1..c2)` queries, which
//! exercises everything the vector diff cannot: canonical-node
//! stitching at arbitrary row splits, partial breakpoint segments at
//! both column ends, and tie-break stability *across* canonical nodes
//! (two nodes can return equal values from different rows — the stitch
//! must still pick the lex-smallest `(row, col)`).
//!
//! Rectangle batches always include the historical troublemakers: 1×1
//! cells, the full array, single rows, single columns, and
//! boundary-hugging rectangles pinned to each array edge.

use std::fmt::Write as _;
use std::ops::Range;
use std::path::{Path, PathBuf};

use monge_core::array2d::{Array2d, Dense};
use monge_core::monge::{check_inverse_monge, check_monge};
use monge_core::problem::Structure;
use monge_core::queryindex::{QueryAnswer, QueryIndex};
use monge_core::value::Value;

use crate::corpus::corpus_dir;
use crate::gen::monge_base;
use crate::rng::SplitMix64;

/// The structured generator families the query fuzzer sweeps. Each is
/// a pure function of its seed (see [`query_array`]).
pub const QUERY_FAMILIES: &[&str] = &[
    "monge-random",
    "monge-plateau",
    "monge-zero-slack",
    "monge-degenerate",
    "inverse-monge",
    "monge-inf-sentinel",
];

/// One fixed array under a structural promise — the preprocessing unit
/// of the query index.
#[derive(Clone, Debug)]
pub struct QueryInstance {
    /// The promise the index build trusts.
    pub structure: Structure,
    /// The fixed array.
    pub a: Dense<i64>,
    /// Generator family label (reporting / corpus notes).
    pub family: &'static str,
}

impl QueryInstance {
    /// Does the array still satisfy its promise? The shrinker re-checks
    /// after every candidate transform — a transform that broke the
    /// promise would make index/brute disagreement legal.
    pub fn valid(&self) -> bool {
        if self.a.rows() == 0 || self.a.cols() == 0 {
            return false;
        }
        match self.structure {
            Structure::Monge => check_monge(&self.a).is_ok(),
            Structure::InverseMonge => check_inverse_monge(&self.a).is_ok(),
            Structure::Plain => false,
        }
    }
}

/// A half-open query rectangle `rows r1..r2 × cols c1..c2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rect {
    /// First row.
    pub r1: usize,
    /// One past the last row.
    pub r2: usize,
    /// First column.
    pub c1: usize,
    /// One past the last column.
    pub c2: usize,
}

impl Rect {
    /// The row range.
    pub fn rows(&self) -> Range<usize> {
        self.r1..self.r2
    }

    /// The column range.
    pub fn cols(&self) -> Range<usize> {
        self.c1..self.c2
    }

    /// Cells covered.
    pub fn area(&self) -> usize {
        (self.r2 - self.r1) * (self.c2 - self.c1)
    }

    /// Non-empty and inside an `m×n` array?
    pub fn fits(&self, m: usize, n: usize) -> bool {
        self.r1 < self.r2 && self.c1 < self.c2 && self.r2 <= m && self.c2 <= n
    }
}

/// The deterministic array for `(family, seed)`. Families mirror the
/// solver fuzzer's stress mix: plateau-heavy (tie storms across
/// canonical nodes), zero-slack (every quadrangle inequality tight),
/// degenerate single-row/column shapes, inverse-Monge (the maxima
/// lowering path), and `+∞`-staircase sentinels masked so the full
/// array is still Monge (non-decreasing boundary — the absorbed
/// sentinel keeps inequality (1.1) intact).
///
/// # Panics
///
/// On an unknown family name.
pub fn query_array(family: &'static str, seed: u64) -> QueryInstance {
    let mut r = SplitMix64::new(seed);
    let dim = |r: &mut SplitMix64| r.range_usize(1, 14);
    let (m, n) = if family == "monge-degenerate" {
        if r.chance(1, 2) {
            (1, dim(&mut r))
        } else {
            (dim(&mut r), 1)
        }
    } else {
        (dim(&mut r), dim(&mut r))
    };
    let (a, structure) = match family {
        "monge-random" => (monge_base(m, n, &mut r, 1000, 16, 1), Structure::Monge),
        "monge-plateau" => (monge_base(m, n, &mut r, 32, 16, 16), Structure::Monge),
        "monge-zero-slack" => (monge_base(m, n, &mut r, 40, 0, 4), Structure::Monge),
        "monge-degenerate" => (monge_base(m, n, &mut r, 100, 8, 1), Structure::Monge),
        "inverse-monge" => {
            let base = monge_base(m, n, &mut r, 500, 12, 1);
            let data = base.data().iter().map(|&x| -x).collect();
            (Dense::from_vec(m, n, data), Structure::InverseMonge)
        }
        "monge-inf-sentinel" => {
            let base = monge_base(m, n, &mut r, 200, 10, 1);
            // Non-decreasing boundary: column j of row i is `+∞` for
            // j >= f[i]. Because f[i] <= f[i+1], an infinite a[i+1,j+1]
            // forces an infinite a[i,j+1], so (1.1) survives the mask.
            let mut f: Vec<usize> = (0..m).map(|_| r.range_usize(1, n)).collect();
            f.sort_unstable();
            let a = Dense::tabulate(m, n, |i, j| {
                if j >= f[i] {
                    <i64 as Value>::INFINITY
                } else {
                    base.entry(i, j)
                }
            });
            (a, Structure::Monge)
        }
        other => panic!("unknown query fuzz family '{other}'"),
    };
    QueryInstance {
        structure,
        a,
        family,
    }
}

/// A seeded rectangle batch over an `m×n` array: the fixed
/// troublemakers (1×1, full array, single row, single column, one
/// boundary-hugging rectangle per edge) plus `extra` random
/// rectangles.
pub fn sample_rects(m: usize, n: usize, r: &mut SplitMix64, extra: usize) -> Vec<Rect> {
    let cell = |r: &mut SplitMix64| {
        let i = r.range_usize(0, m - 1);
        let j = r.range_usize(0, n - 1);
        Rect {
            r1: i,
            r2: i + 1,
            c1: j,
            c2: j + 1,
        }
    };
    let span = |r: &mut SplitMix64, len: usize| {
        let a = r.range_usize(0, len - 1);
        let b = r.range_usize(a + 1, len);
        (a, b)
    };
    let mut rects = Vec::with_capacity(extra + 8);
    rects.push(Rect {
        r1: 0,
        r2: m,
        c1: 0,
        c2: n,
    });
    rects.push(cell(r));
    // A single row / a single column with random extents.
    let (c1, c2) = span(r, n);
    let row = r.range_usize(0, m - 1);
    rects.push(Rect {
        r1: row,
        r2: row + 1,
        c1,
        c2,
    });
    let (r1, r2) = span(r, m);
    let col = r.range_usize(0, n - 1);
    rects.push(Rect {
        r1,
        r2,
        c1: col,
        c2: col + 1,
    });
    // Boundary-hugging: pinned to each of the four array edges.
    let (hr1, hr2) = span(r, m);
    let (hc1, hc2) = span(r, n);
    rects.push(Rect {
        r1: 0,
        r2: hr2,
        c1: hc1,
        c2: hc2,
    });
    rects.push(Rect {
        r1: hr1,
        r2: m,
        c1: hc1,
        c2: hc2,
    });
    rects.push(Rect {
        r1: hr1,
        r2: hr2,
        c1: 0,
        c2: hc2,
    });
    rects.push(Rect {
        r1: hr1,
        r2: hr2,
        c1: hc1,
        c2: n,
    });
    for _ in 0..extra {
        let (r1, r2) = span(r, m);
        let (c1, c2) = span(r, n);
        rects.push(Rect { r1, r2, c1, c2 });
    }
    rects
}

/// The brute oracle: a full submatrix scan with the lex `(value, row,
/// col)` rule — smallest (for min) or largest (for max) value, then
/// smallest row, then smallest column. No structure, no preprocessing.
pub fn brute_query(a: &Dense<i64>, rect: Rect, maximize: bool) -> QueryAnswer<i64> {
    let mut best: Option<QueryAnswer<i64>> = None;
    for i in rect.rows() {
        for j in rect.cols() {
            let v = a.entry(i, j);
            let wins = match &best {
                None => true,
                Some(b) => {
                    if maximize {
                        b.value.total_lt(v)
                    } else {
                        v.total_lt(b.value)
                    }
                }
            };
            if wins {
                best = Some(QueryAnswer {
                    value: v,
                    row: i,
                    col: j,
                });
            }
        }
    }
    best.expect("non-empty rectangle")
}

/// Does the index disagree with the brute oracle on `(inst, rect,
/// maximize)`? Rebuilds the index from scratch — the shrinker's
/// predicate, where every candidate array is a fresh preprocessing
/// problem.
pub fn query_disagrees(inst: &QueryInstance, rect: Rect, maximize: bool) -> bool {
    let Ok(ix) = QueryIndex::build(&inst.a, inst.structure) else {
        return false;
    };
    let got = if maximize {
        ix.query_max(rect.rows(), rect.cols())
    } else {
        ix.query_min(rect.rows(), rect.cols())
    };
    match got {
        Ok(got) => got != brute_query(&inst.a, rect, maximize),
        Err(_) => true,
    }
}

/// One confirmed index/brute disagreement, already shrunk.
#[derive(Clone, Debug)]
pub struct QueryMismatch {
    /// Generator family of the original array.
    pub family: &'static str,
    /// The generator seed that produced the original array.
    pub seed: u64,
    /// Was this a `query_max`?
    pub maximize: bool,
    /// The shrunk minimal array.
    pub instance: QueryInstance,
    /// The shrunk minimal rectangle.
    pub rect: Rect,
}

/// Aggregate result of one query fuzz run over one family.
#[derive(Clone, Debug, Default)]
pub struct QueryFuzzReport {
    /// Arrays generated and indexed.
    pub arrays: usize,
    /// Individual query checks (each rectangle, min and max).
    pub queries: usize,
    /// Confirmed, shrunk mismatches (empty on a clean run).
    pub mismatches: Vec<QueryMismatch>,
}

/// Query fuzz budget: `MONGE_QUERY_FUZZ_BUDGET` (arrays per family), or
/// `default` when unset/unparsable.
pub fn query_fuzz_budget(default: usize) -> usize {
    std::env::var("MONGE_QUERY_FUZZ_BUDGET")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&b| b > 0)
        .unwrap_or(default)
}

/// Runs `budget` seeded arrays of `family`, each under a seeded
/// rectangle batch, diffing every `query_min` and `query_max` against
/// [`brute_query`] and shrinking each mismatch to a minimal `(array,
/// rectangle)` pair. Seeds are `base_seed + i`, so a report's
/// `(family, seed)` pair replays exactly.
pub fn fuzz_query_family(family: &'static str, budget: usize, base_seed: u64) -> QueryFuzzReport {
    let mut report = QueryFuzzReport::default();
    for i in 0..budget {
        let seed = base_seed.wrapping_add(i as u64);
        let inst = query_array(family, seed);
        let mut r = SplitMix64::new(seed ^ 0xA5A5_5A5A_F00D_BEEF);
        let rects = sample_rects(inst.a.rows(), inst.a.cols(), &mut r, 8);
        let ix = match QueryIndex::build(&inst.a, inst.structure) {
            Ok(ix) => ix,
            Err(e) => panic!("{family} seed {seed}: index build refused a valid array: {e}"),
        };
        report.arrays += 1;
        for &rect in &rects {
            for maximize in [false, true] {
                report.queries += 1;
                let got = if maximize {
                    ix.query_max(rect.rows(), rect.cols())
                } else {
                    ix.query_min(rect.rows(), rect.cols())
                };
                let want = brute_query(&inst.a, rect, maximize);
                if got.as_ref().ok() == Some(&want) {
                    continue;
                }
                let (shrunk, srect) = shrink_query(&inst, rect, |cand, cand_rect| {
                    query_disagrees(cand, cand_rect, maximize)
                });
                report.mismatches.push(QueryMismatch {
                    family,
                    seed,
                    maximize,
                    instance: shrunk,
                    rect: srect,
                });
            }
        }
    }
    report
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

fn delete_row(inst: &QueryInstance, rect: Rect, i: usize) -> Option<(QueryInstance, Rect)> {
    if inst.a.rows() <= 1 || (rect.r1 == i && rect.r2 == i + 1) {
        return None;
    }
    let a = Dense::tabulate(inst.a.rows() - 1, inst.a.cols(), |r, c| {
        inst.a.entry(if r >= i { r + 1 } else { r }, c)
    });
    let mut rect = rect;
    if i < rect.r1 {
        rect.r1 -= 1;
    }
    if i < rect.r2 {
        rect.r2 -= 1;
    }
    Some((QueryInstance { a, ..inst.clone() }, rect))
}

fn delete_col(inst: &QueryInstance, rect: Rect, j: usize) -> Option<(QueryInstance, Rect)> {
    if inst.a.cols() <= 1 || (rect.c1 == j && rect.c2 == j + 1) {
        return None;
    }
    let a = Dense::tabulate(inst.a.rows(), inst.a.cols() - 1, |r, c| {
        inst.a.entry(r, if c >= j { c + 1 } else { c })
    });
    let mut rect = rect;
    if j < rect.c1 {
        rect.c1 -= 1;
    }
    if j < rect.c2 {
        rect.c2 -= 1;
    }
    Some((QueryInstance { a, ..inst.clone() }, rect))
}

fn narrow_rect(rect: Rect) -> Vec<Rect> {
    let mut out = Vec::new();
    if rect.r2 - rect.r1 > 1 {
        out.push(Rect {
            r1: rect.r1 + 1,
            ..rect
        });
        out.push(Rect {
            r2: rect.r2 - 1,
            ..rect
        });
    }
    if rect.c2 - rect.c1 > 1 {
        out.push(Rect {
            c1: rect.c1 + 1,
            ..rect
        });
        out.push(Rect {
            c2: rect.c2 - 1,
            ..rect
        });
    }
    out
}

fn halve_values(inst: &QueryInstance) -> Option<QueryInstance> {
    let inf = <i64 as Value>::INFINITY;
    if inst.a.data().iter().all(|&x| x == inf || x == 0) {
        return None;
    }
    let data = inst
        .a
        .data()
        .iter()
        .map(|&x| if x == inf { inf } else { x / 2 })
        .collect();
    Some(QueryInstance {
        a: Dense::from_vec(inst.a.rows(), inst.a.cols(), data),
        ..inst.clone()
    })
}

/// Greedy shrink of a failing `(array, rectangle)` pair to a local
/// fixpoint: rectangle narrowing first (a smaller query over the same
/// array is the cheapest reproducer), then row/column deletion with the
/// rectangle remapped, then global value halving. Every accepted
/// candidate still satisfies the structural promise and still fails.
pub fn shrink_query(
    start: &QueryInstance,
    start_rect: Rect,
    still_fails: impl Fn(&QueryInstance, Rect) -> bool,
) -> (QueryInstance, Rect) {
    let mut cur = start.clone();
    let mut rect = start_rect;
    loop {
        let mut progressed = false;
        for cand in narrow_rect(rect) {
            if cand.fits(cur.a.rows(), cur.a.cols()) && still_fails(&cur, cand) {
                rect = cand;
                progressed = true;
                break;
            }
        }
        if progressed {
            continue;
        }
        for i in 0..cur.a.rows() {
            if let Some((cand, crect)) = delete_row(&cur, rect, i) {
                if cand.valid()
                    && crect.fits(cand.a.rows(), cand.a.cols())
                    && still_fails(&cand, crect)
                {
                    cur = cand;
                    rect = crect;
                    progressed = true;
                    break;
                }
            }
        }
        if progressed {
            continue;
        }
        for j in 0..cur.a.cols() {
            if let Some((cand, crect)) = delete_col(&cur, rect, j) {
                if cand.valid()
                    && crect.fits(cand.a.rows(), cand.a.cols())
                    && still_fails(&cand, crect)
                {
                    cur = cand;
                    rect = crect;
                    progressed = true;
                    break;
                }
            }
        }
        if progressed {
            continue;
        }
        if let Some(cand) = halve_values(&cur) {
            if cand.valid() && still_fails(&cand, rect) {
                cur = cand;
                continue;
            }
        }
        return (cur, rect);
    }
}

// ---------------------------------------------------------------------
// Corpus (`*.qcorpus`)
// ---------------------------------------------------------------------

fn value_str(v: i64) -> String {
    if v == <i64 as Value>::INFINITY {
        "inf".to_string()
    } else {
        v.to_string()
    }
}

fn parse_value(s: &str) -> Result<i64, String> {
    if s == "inf" {
        Ok(<i64 as Value>::INFINITY)
    } else {
        s.parse::<i64>()
            .map_err(|e| format!("bad value '{s}': {e}"))
    }
}

/// Renders a `(array, rectangle)` reproducer in the `.qcorpus` text
/// format (same conventions as the solver corpus: `inf` spells the
/// `i64` sentinel, `#` lines are comments). Replay checks *both*
/// `query_min` and `query_max` over the rectangle.
pub fn render_query(inst: &QueryInstance, rect: Rect, note: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# monge-conformance query reproducer v1");
    for line in note.lines() {
        let _ = writeln!(s, "# {line}");
    }
    let _ = writeln!(
        s,
        "structure {}",
        match inst.structure {
            Structure::Monge => "Monge",
            Structure::InverseMonge => "InverseMonge",
            Structure::Plain => "Plain",
        }
    );
    let _ = writeln!(s, "family {}", inst.family);
    let _ = writeln!(s, "m {}", inst.a.rows());
    let _ = writeln!(s, "n {}", inst.a.cols());
    for i in 0..inst.a.rows() {
        let row: Vec<String> = (0..inst.a.cols())
            .map(|j| value_str(inst.a.entry(i, j)))
            .collect();
        let _ = writeln!(s, "a {}", row.join(" "));
    }
    let _ = writeln!(s, "query {} {} {} {}", rect.r1, rect.r2, rect.c1, rect.c2);
    s
}

/// Parses the `.qcorpus` text format back into a `(array, rectangle)`
/// pair.
pub fn parse_query(text: &str) -> Result<(QueryInstance, Rect), String> {
    let mut structure = Structure::Monge;
    let mut m = None;
    let mut n = None;
    let mut a_rows: Vec<Vec<i64>> = Vec::new();
    let mut rect = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match key {
            "structure" => {
                structure = match rest {
                    "Monge" => Structure::Monge,
                    "InverseMonge" => Structure::InverseMonge,
                    other => return Err(format!("unknown structure '{other}'")),
                }
            }
            "family" => {}
            "seed" => {}
            "m" => m = rest.parse::<usize>().ok(),
            "n" => n = rest.parse::<usize>().ok(),
            "a" => a_rows.push(
                rest.split_whitespace()
                    .map(parse_value)
                    .collect::<Result<_, _>>()?,
            ),
            "query" => {
                let parts: Vec<usize> = rest
                    .split_whitespace()
                    .map(|t| t.parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
                let [r1, r2, c1, c2] = parts[..] else {
                    return Err(format!("query wants 4 extents, got {}", parts.len()));
                };
                rect = Some(Rect { r1, r2, c1, c2 });
            }
            other => return Err(format!("unknown key '{other}'")),
        }
    }
    let (m, n) = (m.ok_or("missing m")?, n.ok_or("missing n")?);
    if a_rows.len() != m || a_rows.iter().any(|r| r.len() != n) {
        return Err(format!("matrix a is not {m}×{n}"));
    }
    let rect = rect.ok_or("missing query")?;
    if !rect.fits(m, n) {
        return Err(format!("query {rect:?} does not fit a {m}×{n} array"));
    }
    Ok((
        QueryInstance {
            structure,
            a: Dense::from_rows(a_rows),
            family: "qcorpus",
        },
        rect,
    ))
}

/// Writes the reproducer under the corpus directory as
/// `<stem>.qcorpus` and returns the path.
pub fn save_query(
    inst: &QueryInstance,
    rect: Rect,
    stem: &str,
    note: &str,
) -> std::io::Result<PathBuf> {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{stem}.qcorpus"));
    std::fs::write(&path, render_query(inst, rect, note))?;
    Ok(path)
}

/// Replays one `.qcorpus` file: parses it, re-checks the structural
/// promise, rebuilds the index, and diffs `query_min` and `query_max`
/// over the stored rectangle against the brute scan. `Ok(())` means
/// conformant.
pub fn replay_query_file(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let (inst, rect) = parse_query(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if !inst.valid() {
        return Err(format!(
            "{}: array no longer satisfies its structural promise",
            path.display()
        ));
    }
    for maximize in [false, true] {
        if query_disagrees(&inst, rect, maximize) {
            return Err(format!(
                "{}: index disagrees with the brute scan on {} over {rect:?}",
                path.display(),
                if maximize { "query_max" } else { "query_min" },
            ));
        }
    }
    Ok(())
}

/// Replays every `*.qcorpus` file in the corpus directory. Returns the
/// number of files replayed; a missing directory replays zero files.
pub fn replay_all_queries() -> Result<usize, String> {
    let dir = corpus_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Ok(0);
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "qcorpus"))
        .collect();
    paths.sort();
    let mut count = 0;
    for path in &paths {
        replay_query_file(path)?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_generate_valid_arrays() {
        for &family in QUERY_FAMILIES {
            for seed in 0..100 {
                let inst = query_array(family, seed);
                assert!(inst.valid(), "{family} seed {seed} broke its promise");
            }
        }
    }

    #[test]
    fn rect_batches_cover_the_troublemakers() {
        let mut r = SplitMix64::new(9);
        let rects = sample_rects(7, 11, &mut r, 5);
        assert!(rects.iter().all(|q| q.fits(7, 11)));
        assert!(rects.iter().any(|q| q.area() == 1), "no 1×1 cell");
        assert!(
            rects.contains(&Rect {
                r1: 0,
                r2: 7,
                c1: 0,
                c2: 11
            }),
            "no full-array rectangle"
        );
        assert!(rects.iter().any(|q| q.r2 - q.r1 == 1), "no single row");
        assert!(rects.iter().any(|q| q.c2 - q.c1 == 1), "no single column");
        for edge in [
            |q: &Rect| q.r1 == 0,
            |q: &Rect| q.r2 == 7,
            |q: &Rect| q.c1 == 0,
            |q: &Rect| q.c2 == 11,
        ] {
            assert!(rects.iter().any(edge), "an array edge is never hugged");
        }
    }

    #[test]
    fn qcorpus_roundtrips() {
        for &family in QUERY_FAMILIES {
            let inst = query_array(family, 3);
            let mut r = SplitMix64::new(3);
            let rect = sample_rects(inst.a.rows(), inst.a.cols(), &mut r, 0)[0];
            let text = render_query(&inst, rect, "roundtrip");
            let (back, brect) = parse_query(&text).unwrap_or_else(|e| panic!("{family}: {e}"));
            assert_eq!(inst.a.data(), back.a.data());
            assert_eq!(inst.structure, back.structure);
            assert_eq!(rect, brect);
            assert!(back.valid());
        }
    }

    #[test]
    fn qcorpus_rejects_malformed_input() {
        assert!(parse_query("m 2\nn 2\na 1 2\na 3 4").is_err()); // no query
        assert!(parse_query("m 2\nn 2\na 1 2\nquery 0 1 0 1").is_err()); // short matrix
        assert!(parse_query("m 1\nn 1\na 0\nquery 0 2 0 1").is_err()); // rect overflows
        assert!(parse_query("m 1\nn 1\na 0\nquery 0 1 0").is_err()); // 3 extents
        assert!(parse_query("structure Bogus\nm 1\nn 1\na 0\nquery 0 1 0 1").is_err());
    }

    #[test]
    fn shrinker_reaches_a_small_fixpoint() {
        // Synthetic failure: "fails" whenever the array still has at
        // least 6 cells and the rectangle covers at least 2. The
        // shrinker must walk any catch down to that floor.
        let inst = query_array("monge-random", 41);
        let rect = Rect {
            r1: 0,
            r2: inst.a.rows(),
            c1: 0,
            c2: inst.a.cols(),
        };
        assert!(
            inst.a.rows() * inst.a.cols() >= 6,
            "seed too small to shrink"
        );
        let (shrunk, srect) = shrink_query(&inst, rect, |cand, crect| {
            cand.a.rows() * cand.a.cols() >= 6 && crect.area() >= 2
        });
        assert_eq!(shrunk.a.rows() * shrunk.a.cols(), 6);
        assert_eq!(srect.area(), 2);
        assert!(shrunk.valid(), "shrinking broke the structural promise");
    }

    #[test]
    fn brute_query_is_lex_leftmost() {
        // A plateau: every cell equal — min and max both pick the
        // rectangle's top-left corner.
        let a = Dense::from_vec(3, 3, vec![5; 9]);
        let rect = Rect {
            r1: 1,
            r2: 3,
            c1: 1,
            c2: 3,
        };
        for maximize in [false, true] {
            let ans = brute_query(&a, rect, maximize);
            assert_eq!((ans.value, ans.row, ans.col), (5, 1, 1));
        }
    }
}
