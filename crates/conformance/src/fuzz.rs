//! The deterministic differential fuzzer: every registry-eligible
//! backend against the brute-force oracle, with greedy shrinking of
//! mismatches to minimal reproducers.
//!
//! The loop is corpus-driven and allocation-light: instances come from
//! [`crate::gen::generate`] (pure function of `(kind, seed)`), the
//! oracle is [`BruteForceBackend`] — `O(mn)` leftmost scans with no use
//! of the structural promise — and the diff covers the *entire*
//! solution (argmin vectors *and* gathered values, so tie-break
//! positions and the staircase sentinel both count). A mismatch is
//! shrunk by row/column deletion and value flattening, each candidate
//! transform re-validated against the structural promise (a transform
//! that broke Monge-ness would make disagreement legal) and re-tested,
//! to a local fixpoint.

use monge_core::array2d::{Array2d, Dense};
use monge_core::problem::{ProblemKind, Solution, Telemetry};
use monge_core::value::Value;
use monge_parallel::dispatch::{Backend, Dispatcher};
use monge_parallel::guarded::BRUTE;
use monge_parallel::{BruteForceBackend, SequentialBackend, Tuning};

use crate::gen::{generate, sq, Instance};

/// The fuzzer's registry: every backend the workspace has — host
/// engines, all four PRAM primitives, the hypercube — plus the
/// brute-force oracle itself.
pub fn conformance_dispatcher() -> Dispatcher<i64> {
    let mut d = Dispatcher::with_all_backends();
    d.register(Box::new(BruteForceBackend));
    d
}

/// Fuzz budget: `MONGE_FUZZ_BUDGET` (instances per problem kind), or
/// `default` when unset/unparsable.
pub fn fuzz_budget(default: usize) -> usize {
    std::env::var("MONGE_FUZZ_BUDGET")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&b| b > 0)
        .unwrap_or(default)
}

/// A small-grain tuning that forces the parallel splits even on fuzz-
/// sized instances (otherwise every 12×12 instance takes the sequential
/// grain and the reduce/tie-break paths go untested).
pub const TINY_GRAIN: Tuning = Tuning {
    seq_scan: 2,
    seq_rows: 1,
    tube_seq_planes: 1,
    pram_base_rows: 1,
    batch_chunks_per_thread: 1,
    kernel: monge_core::kernel::Kernel::Auto,
};

/// One confirmed disagreement with the oracle, already shrunk.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// Problem kind the instance exercises.
    pub kind: ProblemKind,
    /// The generator seed that produced the original instance.
    pub seed: u64,
    /// The disagreeing backend's registry name.
    pub backend: String,
    /// Generator family of the original instance.
    pub family: &'static str,
    /// The shrunk minimal reproducer.
    pub instance: Instance,
}

/// Aggregate result of one fuzz run over one problem kind.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Instances generated and diffed.
    pub instances: usize,
    /// Individual backend-vs-oracle solves performed.
    pub solves: usize,
    /// Confirmed, shrunk mismatches (empty on a clean run).
    pub mismatches: Vec<Mismatch>,
}

/// The backends of `d` that disagree with the brute oracle on `inst`,
/// by registry name. Empty = conformant.
pub fn disagreeing_backends(d: &Dispatcher<i64>, inst: &Instance, tuning: Tuning) -> Vec<String> {
    let p = inst.problem();
    let Some((want, _)) = d.solve_on(BRUTE, &p, tuning) else {
        // The oracle refuses only structurally impossible IR; the
        // generators never produce it.
        panic!("brute oracle ineligible for {:?}", inst.kind);
    };
    d.eligible(&p)
        .into_iter()
        .filter(|b| b.name() != BRUTE)
        .filter_map(|b| {
            let (got, _) = d.solve_on(b.name(), &p, tuning)?;
            (got != want).then(|| b.name().to_string())
        })
        .collect()
}

/// Does `backend` still disagree with the oracle on `inst`? The
/// shrinker's predicate.
pub fn backend_disagrees(
    d: &Dispatcher<i64>,
    inst: &Instance,
    backend: &str,
    tuning: Tuning,
) -> bool {
    let p = inst.problem();
    let (Some((want, _)), Some((got, _))) = (
        d.solve_on(BRUTE, &p, tuning),
        d.solve_on(backend, &p, tuning),
    ) else {
        // A shrink step that makes the backend ineligible does not
        // preserve the failure.
        return false;
    };
    got != want
}

/// Runs `budget` seeded instances of `kind` through every eligible
/// backend, shrinking each mismatch. Seeds are `base_seed + i`, so a
/// report's `(kind, seed)` pair replays exactly.
pub fn fuzz_kind(
    d: &Dispatcher<i64>,
    kind: ProblemKind,
    budget: usize,
    base_seed: u64,
) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..budget {
        let seed = base_seed.wrapping_add(i as u64);
        let inst = generate(kind, seed);
        // Alternate grain policies so both the sequential and the
        // parallel split paths of the host engines are diffed.
        let tuning = if i % 2 == 0 {
            Tuning::DEFAULT
        } else {
            TINY_GRAIN
        };
        let p = inst.problem();
        report.instances += 1;
        report.solves += d.eligible(&p).len().saturating_sub(1);
        for backend in disagreeing_backends(d, &inst, tuning) {
            let shrunk = shrink(&inst, |cand| backend_disagrees(d, cand, &backend, tuning));
            report.mismatches.push(Mismatch {
                kind,
                seed,
                backend,
                family: inst.family,
                instance: shrunk,
            });
        }
    }
    report
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// A structural shrink step: returns the smaller candidate, or `None`
/// when the step does not apply to this instance.
type Transform = Box<dyn Fn(&Instance) -> Option<Instance>>;

fn drop_row(a: &Dense<i64>, i: usize) -> Dense<i64> {
    Dense::tabulate(a.rows() - 1, a.cols(), |r, c| {
        a.entry(if r >= i { r + 1 } else { r }, c)
    })
}

fn drop_col(a: &Dense<i64>, j: usize) -> Dense<i64> {
    Dense::tabulate(a.rows(), a.cols() - 1, |r, c| {
        a.entry(r, if c >= j { c + 1 } else { c })
    })
}

/// Deletes row `i` of the primary array (and the per-row metadata that
/// indexes it). `None` when the instance cannot lose the row.
fn delete_row(inst: &Instance, i: usize) -> Option<Instance> {
    if inst.a.rows() <= 1 {
        return None;
    }
    let mut out = inst.clone();
    out.a = drop_row(&inst.a, i);
    if let Some(f) = &mut out.boundary {
        f.remove(i);
    }
    if let Some(lo) = &mut out.lo {
        lo.remove(i);
    }
    if let Some(hi) = &mut out.hi {
        hi.remove(i);
    }
    if let Some((v, _)) = &mut out.rank {
        v.remove(i);
    }
    Some(out)
}

/// Deletes column `j` of the primary array. Staircase boundaries and
/// bands shift down past `j`; for tubes the middle dimension is shared,
/// so row `j` of the right factor goes too.
fn delete_col(inst: &Instance, j: usize) -> Option<Instance> {
    if inst.a.cols() <= 1 {
        return None;
    }
    let mut out = inst.clone();
    out.a = drop_col(&inst.a, j);
    if let Some(f) = &mut out.boundary {
        for fi in f.iter_mut() {
            if *fi > j {
                *fi -= 1;
            }
        }
    }
    if let Some(lo) = &mut out.lo {
        for l in lo.iter_mut() {
            if *l > j {
                *l -= 1;
            }
        }
    }
    if let Some(hi) = &mut out.hi {
        for h in hi.iter_mut() {
            if *h > j {
                *h -= 1;
            }
        }
    }
    if let Some((_, w)) = &mut out.rank {
        w.remove(j);
    }
    if let Some(e) = &mut out.e {
        if e.rows() <= 1 {
            return None;
        }
        *e = drop_row(e, j);
    }
    Some(out)
}

/// Deletes column `k` of the tube's right factor (the `r` dimension).
fn delete_e_col(inst: &Instance, k: usize) -> Option<Instance> {
    let e = inst.e.as_ref()?;
    if e.cols() <= 1 {
        return None;
    }
    let mut out = inst.clone();
    out.e = Some(drop_col(e, k));
    Some(out)
}

/// Halves every finite value (rank instances: halves the generator
/// vectors and re-tabulates, preserving consistency and sortedness).
fn halve_values(inst: &Instance) -> Option<Instance> {
    let mut out = inst.clone();
    if let Some((v, w)) = &mut out.rank {
        if v.iter().chain(w.iter()).all(|&x| x == 0) {
            return None;
        }
        for x in v.iter_mut() {
            *x /= 2;
        }
        for y in w.iter_mut() {
            *y /= 2;
        }
        let (v, w) = (v.clone(), w.clone());
        out.a = Dense::tabulate(out.a.rows(), out.a.cols(), |i, j| sq(v[i], w[j]));
        return Some(out);
    }
    let inf = <i64 as Value>::INFINITY;
    if inst.a.data().iter().all(|&x| x == inf || x == 0)
        && inst
            .e
            .as_ref()
            .is_none_or(|e| e.data().iter().all(|&x| x == inf || x == 0))
    {
        return None;
    }
    fn halve(a: &Dense<i64>) -> Dense<i64> {
        let inf = <i64 as Value>::INFINITY;
        Dense::from_vec(
            a.rows(),
            a.cols(),
            a.data()
                .iter()
                .map(|&x| if x == inf { inf } else { x / 2 })
                .collect(),
        )
    }
    out.a = halve(&inst.a);
    out.e = inst.e.as_ref().map(halve);
    Some(out)
}

/// Flattens one entry onto its left neighbor (plateau-izing the array:
/// smaller reproducers read better and ties are where engines diverge).
fn flatten_entry(inst: &Instance, i: usize, j: usize) -> Option<Instance> {
    if inst.rank.is_some() || j == 0 {
        return None;
    }
    let inf = <i64 as Value>::INFINITY;
    let (left, here) = (inst.a.entry(i, j - 1), inst.a.entry(i, j));
    if left == here || left == inf || here == inf {
        return None;
    }
    let mut out = inst.clone();
    let mut data = inst.a.data().to_vec();
    data[i * inst.a.cols() + j] = left;
    out.a = Dense::from_vec(inst.a.rows(), inst.a.cols(), data);
    Some(out)
}

/// Greedy shrink to a local fixpoint: row deletions, column deletions,
/// tube right-factor deletions, global halving, then per-entry
/// flattening (bounded to small arrays). Every accepted candidate is
/// (a) still structurally valid and (b) still failing.
pub fn shrink(start: &Instance, still_fails: impl Fn(&Instance) -> bool) -> Instance {
    let mut cur = start.clone();
    loop {
        let mut progressed = false;

        let structural: Vec<Transform> = {
            let mut t: Vec<Transform> = Vec::new();
            for i in 0..cur.a.rows() {
                t.push(Box::new(move |x: &Instance| delete_row(x, i)));
            }
            for j in 0..cur.a.cols() {
                t.push(Box::new(move |x: &Instance| delete_col(x, j)));
            }
            if let Some(e) = &cur.e {
                for k in 0..e.cols() {
                    t.push(Box::new(move |x: &Instance| delete_e_col(x, k)));
                }
            }
            t
        };
        for transform in &structural {
            if let Some(cand) = transform(&cur) {
                if cand.valid() && still_fails(&cand) {
                    cur = cand;
                    progressed = true;
                    break;
                }
            }
        }
        if progressed {
            continue;
        }

        if let Some(cand) = halve_values(&cur) {
            if cand.valid() && still_fails(&cand) {
                cur = cand;
                continue;
            }
        }

        if cur.a.rows() * cur.a.cols() <= 100 {
            for i in 0..cur.a.rows() {
                for j in 0..cur.a.cols() {
                    if let Some(cand) = flatten_entry(&cur, i, j) {
                        if cand.valid() && still_fails(&cand) {
                            cur = cand;
                            progressed = true;
                        }
                    }
                }
            }
        }
        if !progressed {
            return cur;
        }
    }
}

// ---------------------------------------------------------------------
// Planted bug (shrinker/negative-control support)
// ---------------------------------------------------------------------

/// A backend with a seeded, deliberate bug: it answers through the
/// sequential engine but corrupts the first row's argmin whenever the
/// instance is at least `threshold × threshold`. The fuzzer must catch
/// it, and the shrinker must walk any catch down to exactly
/// `threshold × threshold` — the planted-bug acceptance test.
pub struct PlantedBugBackend {
    /// The bug fires on instances with `rows ≥ threshold` and
    /// `cols ≥ threshold`.
    pub threshold: usize,
}

impl Backend<i64> for PlantedBugBackend {
    fn name(&self) -> &'static str {
        "planted-bug"
    }

    fn capabilities(&self) -> monge_parallel::Capabilities {
        <SequentialBackend as Backend<i64>>::capabilities(&SequentialBackend)
    }

    fn admits(&self, problem: &monge_core::problem::Problem<'_, i64>) -> bool {
        Backend::<i64>::admits(&SequentialBackend, problem)
    }

    fn solve(
        &self,
        problem: &monge_core::problem::Problem<'_, i64>,
        tuning: &Tuning,
        telemetry: &mut Telemetry,
    ) -> Solution<i64> {
        let sol = SequentialBackend.solve(problem, tuning, telemetry);
        let (m, n) = problem.search_shape();
        if m >= self.threshold && n >= self.threshold {
            if let Solution::Rows(mut ex) = sol {
                ex.index[0] = (ex.index[0] + 1) % n.max(1);
                return Solution::Rows(ex);
            }
        }
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn shrink_transforms_preserve_validity_paths() {
        // Deleting rows/cols of valid instances must stay parseable;
        // validity itself is re-checked by shrink, this guards index
        // bookkeeping (boundaries, bands, rank vectors, tube factors).
        for kind in ProblemKind::ALL {
            let inst = generate(kind, 99);
            if inst.a.rows() > 1 {
                let d = delete_row(&inst, 0).unwrap();
                assert_eq!(d.a.rows(), inst.a.rows() - 1);
                assert!(d.valid(), "{kind:?} row deletion broke validity");
            }
            if inst.a.cols() > 1 {
                if let Some(d) = delete_col(&inst, 0) {
                    assert_eq!(d.a.cols(), inst.a.cols() - 1);
                    assert!(d.valid(), "{kind:?} col deletion broke validity");
                }
            }
        }
    }

    #[test]
    fn clean_backends_produce_clean_reports() {
        let d = conformance_dispatcher();
        for kind in ProblemKind::ALL {
            let report = fuzz_kind(&d, kind, 40, 7_000);
            assert!(
                report.mismatches.is_empty(),
                "{kind:?}: {:?}",
                report
                    .mismatches
                    .iter()
                    .map(|m| (&m.backend, m.seed, m.family))
                    .collect::<Vec<_>>()
            );
            assert_eq!(report.instances, 40);
            assert!(report.solves > 0);
        }
    }
}
