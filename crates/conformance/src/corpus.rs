//! Replayable reproducer corpus: a line-oriented text format for
//! [`Instance`]s (the workspace has no serde — and a reproducer you can
//! read in a diff is worth more than a compact one).
//!
//! ```text
//! # monge-conformance reproducer v1
//! kind StaircaseRowMinima
//! structure Monge
//! objective min
//! tie left
//! family staircase-cliff
//! seed 4242
//! m 3
//! n 4
//! a 5 4 0 9
//! a 5 4 inf inf
//! a 5 inf inf inf
//! boundary 4 2 1
//! ```
//!
//! Matrix rows are `a …` / `e …` lines top to bottom; `inf` spells the
//! `i64` infinity sentinel. Optional sections: `boundary`, `lo`/`hi`,
//! `rankv`/`rankw` (rank instances rebuild against [`crate::gen::sq`]),
//! and the tube factor `e` preceded by its `ep`/`eq` extents.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use monge_core::array2d::{Array2d, Dense};
use monge_core::problem::{Objective, ProblemKind, Structure};
use monge_core::tiebreak::Tie;
use monge_core::value::Value;
use monge_parallel::Tuning;

use crate::fuzz::{conformance_dispatcher, disagreeing_backends, TINY_GRAIN};
use crate::gen::Instance;

/// The checked-in corpus directory (`conformance-corpus/` at the
/// workspace root), overridable through `MONGE_CORPUS_DIR`.
pub fn corpus_dir() -> PathBuf {
    std::env::var_os("MONGE_CORPUS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("conformance-corpus")
        })
}

fn kind_name(kind: ProblemKind) -> &'static str {
    match kind {
        ProblemKind::RowMinima => "RowMinima",
        ProblemKind::RowMaxima => "RowMaxima",
        ProblemKind::StaircaseRowMinima => "StaircaseRowMinima",
        ProblemKind::BandedRowMinima => "BandedRowMinima",
        ProblemKind::BandedRowMaxima => "BandedRowMaxima",
        ProblemKind::TubeMinima => "TubeMinima",
        ProblemKind::TubeMaxima => "TubeMaxima",
    }
}

fn parse_kind(s: &str) -> Result<ProblemKind, String> {
    ProblemKind::ALL
        .iter()
        .copied()
        .find(|&k| kind_name(k) == s)
        .ok_or_else(|| format!("unknown kind '{s}'"))
}

fn value_str(v: i64) -> String {
    if v == <i64 as Value>::INFINITY {
        "inf".to_string()
    } else {
        v.to_string()
    }
}

fn parse_value(s: &str) -> Result<i64, String> {
    if s == "inf" {
        Ok(<i64 as Value>::INFINITY)
    } else {
        s.parse::<i64>()
            .map_err(|e| format!("bad value '{s}': {e}"))
    }
}

fn parse_list<T, F: Fn(&str) -> Result<T, String>>(rest: &str, f: F) -> Result<Vec<T>, String> {
    rest.split_whitespace().map(f).collect()
}

/// Renders `inst` in the corpus text format. `note` lines (may be
/// empty) are embedded as comments — backend name, original seed, the
/// fuzz run that found it.
pub fn render(inst: &Instance, note: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# monge-conformance reproducer v1");
    for line in note.lines() {
        let _ = writeln!(s, "# {line}");
    }
    let _ = writeln!(s, "kind {}", kind_name(inst.kind));
    let _ = writeln!(
        s,
        "structure {}",
        match inst.structure {
            Structure::Monge => "Monge",
            Structure::InverseMonge => "InverseMonge",
            Structure::Plain => "Plain",
        }
    );
    let _ = writeln!(
        s,
        "objective {}",
        if inst.objective == Objective::Minimize {
            "min"
        } else {
            "max"
        }
    );
    let _ = writeln!(
        s,
        "tie {}",
        if inst.tie == Tie::Left {
            "left"
        } else {
            "right"
        }
    );
    let _ = writeln!(s, "family {}", inst.family);
    let _ = writeln!(s, "m {}", inst.a.rows());
    let _ = writeln!(s, "n {}", inst.a.cols());
    for i in 0..inst.a.rows() {
        let row: Vec<String> = (0..inst.a.cols())
            .map(|j| value_str(inst.a.entry(i, j)))
            .collect();
        let _ = writeln!(s, "a {}", row.join(" "));
    }
    if let Some(f) = &inst.boundary {
        let row: Vec<String> = f.iter().map(|x| x.to_string()).collect();
        let _ = writeln!(s, "boundary {}", row.join(" "));
    }
    if let Some(lo) = &inst.lo {
        let row: Vec<String> = lo.iter().map(|x| x.to_string()).collect();
        let _ = writeln!(s, "lo {}", row.join(" "));
    }
    if let Some(hi) = &inst.hi {
        let row: Vec<String> = hi.iter().map(|x| x.to_string()).collect();
        let _ = writeln!(s, "hi {}", row.join(" "));
    }
    if let Some((v, w)) = &inst.rank {
        let vs: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        let ws: Vec<String> = w.iter().map(|x| x.to_string()).collect();
        let _ = writeln!(s, "rankv {}", vs.join(" "));
        let _ = writeln!(s, "rankw {}", ws.join(" "));
    }
    if let Some(e) = &inst.e {
        let _ = writeln!(s, "ep {}", e.rows());
        let _ = writeln!(s, "eq {}", e.cols());
        for i in 0..e.rows() {
            let row: Vec<String> = (0..e.cols()).map(|j| value_str(e.entry(i, j))).collect();
            let _ = writeln!(s, "e {}", row.join(" "));
        }
    }
    s
}

/// Parses the corpus text format back into an [`Instance`].
pub fn parse(text: &str) -> Result<Instance, String> {
    let mut kind = None;
    let mut structure = Structure::Monge;
    let mut objective = Objective::Minimize;
    let mut tie = Tie::Left;
    let mut m = None;
    let mut n = None;
    let mut a_rows: Vec<Vec<i64>> = Vec::new();
    let mut boundary = None;
    let mut lo = None;
    let mut hi = None;
    let mut rankv: Option<Vec<i64>> = None;
    let mut rankw: Option<Vec<i64>> = None;
    let mut ep = None;
    let mut eq = None;
    let mut e_rows: Vec<Vec<i64>> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match key {
            "kind" => kind = Some(parse_kind(rest)?),
            "structure" => {
                structure = match rest {
                    "Monge" => Structure::Monge,
                    "InverseMonge" => Structure::InverseMonge,
                    "Plain" => Structure::Plain,
                    other => return Err(format!("unknown structure '{other}'")),
                }
            }
            "objective" => {
                objective = match rest {
                    "min" => Objective::Minimize,
                    "max" => Objective::Maximize,
                    other => return Err(format!("unknown objective '{other}'")),
                }
            }
            "tie" => {
                tie = match rest {
                    "left" => Tie::Left,
                    "right" => Tie::Right,
                    other => return Err(format!("unknown tie '{other}'")),
                }
            }
            "family" => {}
            "seed" => {}
            "m" => m = rest.parse::<usize>().ok(),
            "n" => n = rest.parse::<usize>().ok(),
            "a" => a_rows.push(parse_list(rest, parse_value)?),
            "boundary" => {
                boundary = Some(parse_list(rest, |t| {
                    t.parse::<usize>().map_err(|e| e.to_string())
                })?)
            }
            "lo" => {
                lo = Some(parse_list(rest, |t| {
                    t.parse::<usize>().map_err(|e| e.to_string())
                })?)
            }
            "hi" => {
                hi = Some(parse_list(rest, |t| {
                    t.parse::<usize>().map_err(|e| e.to_string())
                })?)
            }
            "rankv" => rankv = Some(parse_list(rest, parse_value)?),
            "rankw" => rankw = Some(parse_list(rest, parse_value)?),
            "ep" => ep = rest.parse::<usize>().ok(),
            "eq" => eq = rest.parse::<usize>().ok(),
            "e" => e_rows.push(parse_list(rest, parse_value)?),
            other => return Err(format!("unknown key '{other}'")),
        }
    }
    let kind = kind.ok_or("missing kind")?;
    let (m, n) = (m.ok_or("missing m")?, n.ok_or("missing n")?);
    if a_rows.len() != m || a_rows.iter().any(|r| r.len() != n) {
        return Err(format!("matrix a is not {m}×{n}"));
    }
    let a = Dense::from_rows(a_rows);
    let e = if let (Some(ep), Some(eq)) = (ep, eq) {
        if e_rows.len() != ep || e_rows.iter().any(|r| r.len() != eq) {
            return Err(format!("matrix e is not {ep}×{eq}"));
        }
        Some(Dense::from_rows(e_rows))
    } else {
        None
    };
    let rank = match (rankv, rankw) {
        (Some(v), Some(w)) => Some((v, w)),
        (None, None) => None,
        _ => return Err("rankv/rankw must appear together".to_string()),
    };
    Ok(Instance {
        kind,
        structure,
        objective,
        tie,
        a,
        e,
        boundary,
        lo,
        hi,
        rank,
        family: "corpus",
    })
}

/// Writes `inst` under the corpus directory as `<stem>.corpus` and
/// returns the path.
pub fn save(inst: &Instance, stem: &str, note: &str) -> std::io::Result<PathBuf> {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{stem}.corpus"));
    std::fs::write(&path, render(inst, note))?;
    Ok(path)
}

/// Replays one corpus file: parses it, re-checks its structural
/// promise, and diffs every registry-eligible backend against the
/// brute oracle under both grain policies. `Ok(())` means conformant.
pub fn replay_file(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let inst = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if !inst.valid() {
        return Err(format!(
            "{}: instance no longer satisfies its structural promise",
            path.display()
        ));
    }
    let d = conformance_dispatcher();
    for tuning in [Tuning::DEFAULT, TINY_GRAIN] {
        let bad = disagreeing_backends(&d, &inst, tuning);
        if !bad.is_empty() {
            return Err(format!(
                "{}: backends disagree with the brute oracle: {bad:?}",
                path.display()
            ));
        }
    }
    Ok(())
}

/// Replays every `*.corpus` file in the corpus directory. Returns the
/// number of files replayed; a missing directory replays zero files
/// (not an error — fresh checkouts before any mismatch exist).
pub fn replay_all() -> Result<usize, String> {
    let dir = corpus_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Ok(0);
    };
    let mut count = 0;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "corpus"))
        .collect();
    paths.sort();
    for path in paths {
        replay_file(&path)?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use monge_core::problem::ProblemKind;

    #[test]
    fn roundtrip_every_kind() {
        for kind in ProblemKind::ALL {
            for seed in [0u64, 5, 11] {
                let inst = generate(kind, seed);
                let text = render(&inst, "roundtrip test");
                let back = parse(&text).unwrap_or_else(|e| panic!("{kind:?}: {e}\n{text}"));
                assert_eq!(inst.a.data(), back.a.data(), "{kind:?} matrix");
                assert_eq!(inst.boundary, back.boundary);
                assert_eq!(inst.lo, back.lo);
                assert_eq!(inst.hi, back.hi);
                assert_eq!(inst.rank, back.rank);
                assert_eq!(
                    inst.e.as_ref().map(|e| e.data().to_vec()),
                    back.e.as_ref().map(|e| e.data().to_vec())
                );
                assert!(back.valid(), "{kind:?} parsed instance invalid");
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("m 2\nn 2\na 1 2\na 3 4").is_err()); // no kind
        assert!(parse("kind RowMinima\nm 2\nn 2\na 1 2").is_err()); // short matrix
        assert!(parse("kind Bogus\nm 1\nn 1\na 0").is_err());
        assert!(parse("kind RowMinima\nm 1\nn 1\na 0\nrankv 1").is_err()); // lone rankv
    }

    #[test]
    fn infinity_spelling_roundtrips() {
        let inst = generate(ProblemKind::StaircaseRowMinima, 3);
        let text = render(&inst, "");
        let back = parse(&text).unwrap();
        assert_eq!(inst.a.data(), back.a.data());
    }
}
