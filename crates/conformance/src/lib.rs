//! Conformance lab for the Monge searching workspace.
//!
//! Two instruments, both deterministic:
//!
//! * [`audit`](mod@audit) — a complexity-bound auditor that runs the PRAM-backed
//!   engines over a geometric ladder of instance sizes, reads the step
//!   and processor counters out of the dispatch telemetry, and asserts
//!   the paper's bounds (Theorem 2.3's `O(lg n)` CRCW schedule, the
//!   CREW `O(lg n lg lg n)` variant, …) with configurable slack. A
//!   deliberately quadratic dummy backend serves as the negative
//!   control: the auditor must fail it.
//! * [`chaos`] — a chaos-soak harness that schedules seeded fault
//!   storms (panic bursts, violation storms, hard outages) over
//!   thousands of mixed-kind guarded solves on a virtual-clock health
//!   registry, asserting bitwise-correct-or-typed-error on every solve
//!   and bit-for-bit reproducible breaker transitions.
//! * [`fuzz`] — a differential fuzzer that generates structured
//!   instances ([`gen`]) from SplitMix64 seeds ([`rng`]), solves each
//!   on every eligible backend, diffs full argmin vectors (values,
//!   indices, and tie-breaks) against the brute-force oracle, and
//!   shrinks any mismatch to a minimal reproducer persisted in the
//!   text corpus ([`corpus`]).
//! * [`queryfuzz`] — the query-level lab for the submatrix
//!   [`monge_core::queryindex::QueryIndex`]: seeded rectangle batches
//!   over structured arrays, every `query_min`/`query_max` diffed
//!   bitwise against a brute submatrix scan, mismatches shrunk to a
//!   minimal `(array, rectangle)` pair and persisted as `*.qcorpus`
//!   replay fixtures.
//!
//! Everything is a pure function of explicit seeds: a failure report
//! names the seed, and the seed regenerates the failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod chaos;
pub mod corpus;
pub mod fuzz;
pub mod gen;
pub mod queryfuzz;
pub mod rng;

pub use audit::{audit, env_slack, ladder, AuditFamily, AuditReport, BoundShape, BoundSpec};
pub use chaos::{
    chaos_budget, parse_spec, run_storm, run_storm_with_latencies, StormReport, StormSpec, Wave,
};
pub use corpus::{corpus_dir, parse, render, replay_all, replay_file};
pub use fuzz::{
    conformance_dispatcher, fuzz_budget, fuzz_kind, shrink, FuzzReport, Mismatch, TINY_GRAIN,
};
pub use gen::{generate, Instance};
pub use queryfuzz::{
    brute_query, fuzz_query_family, query_array, query_disagrees, query_fuzz_budget,
    replay_all_queries, replay_query_file, sample_rects, shrink_query, QueryFuzzReport,
    QueryInstance, QueryMismatch, Rect, QUERY_FAMILIES,
};
pub use rng::SplitMix64;
