//! Deterministic chaos-soak harness: seeded fault storms over thousands
//! of mixed-kind guarded solves, asserting *bitwise-correct-or-typed-
//! error* on every one.
//!
//! A storm is a pure function of a [`StormSpec`]: one `u64` seed, a
//! solve count, and a schedule of [`Wave`]s, each injecting panics
//! (budgeted = transient, unbudgeted = hard outage), Monge violations
//! and read latency at per-mille rates through the workspace's
//! deterministic [`FaultInjector`]. Every solve draws a fresh instance
//! from [`crate::gen::generate`] (all seven [`ProblemKind`]s), wraps it
//! in an injector, and runs it through a guarded dispatcher whose
//! health registry rides a [`VirtualClock`] — breaker cooldowns and
//! retry backoffs advance virtual time, so the whole soak costs no
//! wall-clock sleeps and its breaker transitions replay bit-for-bit.
//!
//! The correctness oracle exploits the injector's purity: two injectors
//! with the same plan fault the same sites, so a *quiet* twin (same
//! violation stream, panics and latency zeroed) is value-identical to
//! what the storm dispatcher read. Each storm solve must either equal
//! the brute scan of its quiet twin bitwise, or fail with a typed
//! [`SolveError`] — a wrong answer is the only unacceptable outcome.
//!
//! Policy per wave: waves that inject violations run under
//! [`Validation::Full`](monge_core::guard::Validation::Full) with quarantine (a violated instance must be
//! caught and rerouted to the brute scan, whose answer on the faulty
//! array matches the quiet twin); panic/latency-only waves run with
//! validation off so the faults reach the engines and exercise the
//! retry and breaker paths. Rank annotations are dropped on purpose:
//! the hypercube solves from the `(v, w)` vectors, which an injector on
//! the dense array cannot perturb, so rank instances would make engine
//! disagreement legal.
//!
//! The storm chain is pinned to the sequential engine (plus the brute
//! terminal the guarded walk always appends): rayon's work-stealing
//! makes panic-*budget* consumption schedule-dependent — how many
//! budgeted sites fire before the unwind wins the race varies run to
//! run — which would break the bitwise reproducibility this harness
//! exists to assert. Rayon's fault containment is covered by the
//! `fault_injection` suite in `monge-parallel`.
//!
//! Cross-contamination sentinel: every [`CONTROL_PERIOD`]-th solve, a
//! fixed *clean* instance is solved on the same (storm-battered)
//! dispatcher and must still produce its precomputed answer — open
//! breakers may reroute it to the brute terminal, but its result must
//! never change.

use std::sync::Arc;
use std::time::Duration;

use monge_core::array2d::Dense;
use monge_core::guard::{
    BreakerState, FaultInjector, FaultPlan, GuardPolicy, RetryPolicy, SolveError,
};
use monge_core::problem::{Problem, ProblemKind, Structure};
use monge_parallel::dispatch::Dispatcher;
use monge_parallel::guarded::BRUTE;
use monge_parallel::{
    BruteForceBackend, HealthConfig, HealthRegistry, SequentialBackend, Tuning, VirtualClock,
};

use crate::gen::{generate, Instance};
use crate::rng::SplitMix64;

/// A fixed clean instance is re-solved on the storm dispatcher every
/// this many solves; its answer changing means cross-contamination.
pub const CONTROL_PERIOD: usize = 16;

/// Violation perturbation magnitude: far above any adjacent-quadrangle
/// slack the generators produce, far below the `i64` infinity sentinel.
const DELTA: i64 = 1 << 20;

/// One contiguous fault regime inside a storm: solves in
/// `start..start + len` run under this plan, everything else is calm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wave {
    /// First solve index the wave covers.
    pub start: usize,
    /// Number of consecutive solves covered.
    pub len: usize,
    /// Per-mille rate of panicking entry reads.
    pub panic_per_mille: u32,
    /// Cap on panics fired per solve (`None` = every site, always — a
    /// hard outage; `Some(b)` = transient, retries can succeed).
    pub panic_budget: Option<u64>,
    /// Per-mille rate of Monge-violating entry perturbations.
    pub violation_per_mille: u32,
    /// Per-mille rate of artificially slow entry reads.
    pub latency_per_mille: u32,
    /// Stall length of a slow read, in microseconds (real wall-clock —
    /// keep small).
    pub latency_us: u64,
}

impl Wave {
    fn covers(&self, solve: usize) -> bool {
        solve >= self.start && solve - self.start < self.len
    }
}

/// A complete, self-describing storm: seed, solve count, virtual
/// inter-arrival tick, goodput floor and wave schedule. Pure data —
/// [`run_storm`] is a pure function of it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StormSpec {
    /// Master seed: instance draws, fault sites and retry jitter all
    /// derive from it. A failure report quoting this seed is a full
    /// reproducer.
    pub seed: u64,
    /// Total guarded solves in the storm.
    pub solves: usize,
    /// Virtual time advanced before each solve (models inter-arrival
    /// time; this is what lets open breakers reach their cooldown).
    pub tick_us: u64,
    /// Minimum acceptable `ok` solves, per mille; [`run_storm`] fails
    /// below it.
    pub goodput_floor_per_mille: u32,
    /// The fault schedule. Solves outside every wave run fault-free.
    pub waves: Vec<Wave>,
}

impl StormSpec {
    /// The standard four-act storm scaled to `solves`: a transient
    /// panic burst (budgeted — retries absorb it), a violation storm
    /// (full validation quarantines every one), a hard outage
    /// (unbudgeted panics — typed errors, breakers trip), then calm
    /// long enough for cooldowns to elapse and probes to close the
    /// breakers again.
    pub fn standard(seed: u64, solves: usize) -> Self {
        let burst = solves * 3 / 10;
        let violation = solves / 4;
        let outage = solves * 3 / 20;
        StormSpec {
            seed,
            solves,
            tick_us: 2_000,
            goodput_floor_per_mille: 700,
            waves: vec![
                Wave {
                    start: 0,
                    len: burst,
                    panic_per_mille: 80,
                    panic_budget: Some(2),
                    violation_per_mille: 0,
                    latency_per_mille: 10,
                    latency_us: 20,
                },
                Wave {
                    start: burst,
                    len: violation,
                    panic_per_mille: 0,
                    panic_budget: None,
                    violation_per_mille: 60,
                    latency_per_mille: 0,
                    latency_us: 0,
                },
                Wave {
                    start: burst + violation,
                    len: outage,
                    panic_per_mille: 120,
                    panic_budget: None,
                    violation_per_mille: 0,
                    latency_per_mille: 0,
                    latency_us: 0,
                },
            ],
        }
    }

    /// The wave covering solve `s`, if any.
    pub fn wave_for(&self, s: usize) -> Option<&Wave> {
        self.waves.iter().find(|w| w.covers(s))
    }

    /// Renders the spec in the `.storm` fixture format (see
    /// [`parse_spec`]). `note` lines are embedded as comments.
    pub fn render(&self, note: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "# monge-chaos storm v1");
        for line in note.lines() {
            let _ = writeln!(s, "# {line}");
        }
        let _ = writeln!(s, "seed {}", self.seed);
        let _ = writeln!(s, "solves {}", self.solves);
        let _ = writeln!(s, "tick_us {}", self.tick_us);
        let _ = writeln!(s, "goodput_floor {}", self.goodput_floor_per_mille);
        for w in &self.waves {
            let budget = match w.panic_budget {
                Some(b) => b.to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(
                s,
                "wave {} {} {} {} {} {} {}",
                w.start,
                w.len,
                w.panic_per_mille,
                budget,
                w.violation_per_mille,
                w.latency_per_mille,
                w.latency_us
            );
        }
        s
    }
}

/// Parses the `.storm` fixture format back into a [`StormSpec`]:
/// `key value` lines (`seed`, `solves`, `tick_us`, `goodput_floor`) and
/// one `wave start len panic budget violation latency latency_us` line
/// per wave, `-` spelling an unbudgeted (hard-outage) panic plan.
pub fn parse_spec(text: &str) -> Result<StormSpec, String> {
    let mut seed = None;
    let mut solves = None;
    let mut tick_us = 2_000u64;
    let mut floor = 0u32;
    let mut waves = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match key {
            "seed" => seed = rest.parse::<u64>().ok(),
            "solves" => solves = rest.parse::<usize>().ok(),
            "tick_us" => {
                tick_us = rest
                    .parse::<u64>()
                    .map_err(|e| format!("bad tick_us '{rest}': {e}"))?
            }
            "goodput_floor" => {
                floor = rest
                    .parse::<u32>()
                    .map_err(|e| format!("bad goodput_floor '{rest}': {e}"))?
            }
            "wave" => {
                let f: Vec<&str> = rest.split_whitespace().collect();
                if f.len() != 7 {
                    return Err(format!("wave line needs 7 fields, got {}", f.len()));
                }
                let num = |s: &str| -> Result<u64, String> {
                    s.parse::<u64>().map_err(|e| e.to_string())
                };
                waves.push(Wave {
                    start: num(f[0])? as usize,
                    len: num(f[1])? as usize,
                    panic_per_mille: num(f[2])? as u32,
                    panic_budget: if f[3] == "-" { None } else { Some(num(f[3])?) },
                    violation_per_mille: num(f[4])? as u32,
                    latency_per_mille: num(f[5])? as u32,
                    latency_us: num(f[6])?,
                });
            }
            other => return Err(format!("unknown key '{other}'")),
        }
    }
    Ok(StormSpec {
        seed: seed.ok_or("missing seed")?,
        solves: solves.ok_or("missing solves")?,
        tick_us,
        goodput_floor_per_mille: floor,
        waves,
    })
}

/// Aggregate outcome of one storm. `PartialEq` on purpose: two runs of
/// the same spec must compare equal, digest included.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StormReport {
    /// Storm solves performed (control solves not counted).
    pub solves: usize,
    /// Solves returning `Ok` with the bitwise-correct answer
    /// (quarantined solves included).
    pub ok: usize,
    /// `Ok` solves that were quarantined to the brute scan by full
    /// validation catching an injected violation.
    pub quarantined: usize,
    /// Solves failing with a typed [`SolveError`] — the only permitted
    /// failure mode.
    pub typed_errors: usize,
    /// Total in-place retry attempts across the storm.
    pub retries: u64,
    /// Total breaker admission denials across the storm.
    pub breaker_skips: u64,
    /// `ok * 1000 / solves`.
    pub goodput_per_mille: u32,
    /// Order-sensitive fold of every solve outcome and every
    /// post-solve breaker snapshot: equal digests mean the breaker
    /// state machines walked the exact same transition sequence.
    pub state_digest: u64,
}

/// Chaos budget: `MONGE_CHAOS_BUDGET` (total storm solves), or
/// `default` when unset/unparsable.
pub fn chaos_budget(default: usize) -> usize {
    std::env::var("MONGE_CHAOS_BUDGET")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&b| b > 0)
        .unwrap_or(default)
}

/// SplitMix64 finalizer for the digest fold.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fold(acc: u64, x: u64) -> u64 {
    mix(acc ^ mix(x))
}

fn error_tag(e: &SolveError) -> u64 {
    match e {
        SolveError::StructureViolation(_) => 1,
        SolveError::BackendPanic { .. } => 2,
        SolveError::DeadlineExceeded { .. } => 3,
        SolveError::Overflow { .. } => 4,
        SolveError::InvalidInput { .. } => 5,
        SolveError::CircuitOpen { .. } => 6,
    }
}

fn state_tag(s: BreakerState) -> u64 {
    match s {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    }
}

/// The storm problem over the injected array(s): [`Instance::problem`]
/// minus the rank annotation (see the module docs for why).
fn storm_problem<'x>(
    inst: &'x Instance,
    a: &'x FaultInjector<i64, Dense<i64>>,
    e: Option<&'x FaultInjector<i64, Dense<i64>>>,
) -> Problem<'x, i64> {
    match inst.kind {
        ProblemKind::RowMinima | ProblemKind::RowMaxima => {
            Problem::rows(a, inst.structure, inst.objective).with_tie(inst.tie)
        }
        ProblemKind::StaircaseRowMinima => {
            let f = inst.boundary.as_deref().expect("staircase boundary");
            if inst.structure == Structure::InverseMonge {
                Problem::staircase_inverse_row_minima(a, f)
            } else {
                Problem::staircase_row_minima(a, f)
            }
        }
        ProblemKind::BandedRowMinima => Problem::banded_row_minima(
            a,
            inst.lo.as_deref().expect("banded lo"),
            inst.hi.as_deref().expect("banded hi"),
        ),
        ProblemKind::BandedRowMaxima => Problem::banded_row_maxima(
            a,
            inst.lo.as_deref().expect("banded lo"),
            inst.hi.as_deref().expect("banded hi"),
        ),
        ProblemKind::TubeMinima => Problem::tube_minima(a, e.expect("tube factor e")),
        ProblemKind::TubeMaxima => Problem::tube_maxima(a, e.expect("tube factor e")),
    }
}

/// Runs the storm. `Err` carries a human-readable reproducer (always
/// quoting `spec.seed`) for any incorrect result, cross-contaminated
/// control solve, or goodput below the spec's floor.
pub fn run_storm(spec: &StormSpec) -> Result<StormReport, String> {
    run_storm_with_latencies(spec).map(|(report, _)| report)
}

/// [`run_storm`], also returning per-solve wall-clock nanoseconds
/// (control solves excluded) for the resilience benchmark's percentile
/// columns. The report stays deterministic; the latencies are the one
/// wall-clock-dependent output and are kept out of it on purpose.
pub fn run_storm_with_latencies(spec: &StormSpec) -> Result<(StormReport, Vec<u64>), String> {
    // Generous retry provisioning: the standard burst wave needs two
    // retries per solve, so the credit per admitted request must cover
    // that or the budget would starve mid-storm by design rather than
    // by overload. The outage wave still drains it (its retries are
    // wasted), which is the budget doing its job.
    let config = HealthConfig {
        retry_budget: 256,
        retry_credit_milli: 2_000,
        ..HealthConfig::DEFAULT
    };
    let clock = Arc::new(VirtualClock::new());
    let health = Arc::new(HealthRegistry::new(config, clock.clone()));
    let mut storm = Dispatcher::new();
    storm.register(Box::new(SequentialBackend));
    let storm = storm.with_health_registry(health.clone());

    let mut oracle: Dispatcher<i64> = Dispatcher::new();
    oracle.register(Box::new(BruteForceBackend));

    let retry = RetryPolicy::retries(3, Duration::from_millis(1), Duration::from_millis(20))
        .with_seed(spec.seed);
    let quiet_policy = GuardPolicy::default()
        .with_retry(retry)
        .with_seed(spec.seed);
    let full_policy = GuardPolicy::full_validation()
        .with_retry(retry)
        .with_seed(spec.seed);

    let control = generate(ProblemKind::RowMinima, spec.seed ^ 0xC017_7801);
    let control_want = oracle
        .solve_on(BRUTE, &control.problem(), Tuning::DEFAULT)
        .expect("brute oracle is eligible for every problem")
        .0;

    let mut latencies: Vec<u64> = Vec::with_capacity(spec.solves);
    let mut report = StormReport {
        solves: spec.solves,
        ok: 0,
        quarantined: 0,
        typed_errors: 0,
        retries: 0,
        breaker_skips: 0,
        goodput_per_mille: 0,
        state_digest: mix(spec.seed),
    };

    for s in 0..spec.solves {
        clock.advance(Duration::from_micros(spec.tick_us));
        let mut r = SplitMix64::new(spec.seed ^ mix(s as u64 + 1));
        let kind = ProblemKind::ALL[r.below(ProblemKind::ALL.len() as u64) as usize];
        let inst = generate(kind, r.next_u64());
        let site_seed = r.next_u64();
        let plan = match spec.wave_for(s) {
            Some(w) => FaultPlan {
                seed: site_seed,
                violation_per_mille: w.violation_per_mille,
                panic_per_mille: w.panic_per_mille,
                panic_budget: w.panic_budget,
                latency_per_mille: w.latency_per_mille,
                latency: Duration::from_micros(w.latency_us),
            },
            None => FaultPlan::none(site_seed),
        };
        // The quiet twin: same violation sites and values, no panics,
        // no latency — what the brute reference safely scans.
        let quiet = FaultPlan {
            panic_per_mille: 0,
            panic_budget: None,
            latency_per_mille: 0,
            latency: Duration::ZERO,
            ..plan
        };
        let plan_e = FaultPlan {
            seed: site_seed ^ 0xE1E1_E1E1,
            ..plan
        };
        let quiet_e = FaultPlan {
            seed: site_seed ^ 0xE1E1_E1E1,
            ..quiet
        };
        let fa = FaultInjector::new(inst.a.clone(), plan, DELTA);
        let fe = inst
            .e
            .as_ref()
            .map(|e| FaultInjector::new(e.clone(), plan_e, DELTA));
        let qa = FaultInjector::new(inst.a.clone(), quiet, DELTA);
        let qe = inst
            .e
            .as_ref()
            .map(|e| FaultInjector::new(e.clone(), quiet_e, DELTA));

        let problem = storm_problem(&inst, &fa, fe.as_ref());
        let reference = storm_problem(&inst, &qa, qe.as_ref());
        let want = oracle
            .solve_on(BRUTE, &reference, Tuning::DEFAULT)
            .expect("brute oracle is eligible for every problem")
            .0;

        let policy = if plan.violation_per_mille > 0 {
            &full_policy
        } else {
            &quiet_policy
        };
        let t_solve = std::time::Instant::now();
        let solved = storm.solve_guarded_with(&problem, policy, Tuning::DEFAULT);
        latencies.push(t_solve.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        match solved {
            Ok((sol, tel)) => {
                if sol != want {
                    return Err(format!(
                        "storm seed {}: solve {s} ({kind:?}, family {}) returned a wrong \
                         answer — rerun the same spec to reproduce",
                        spec.seed, inst.family
                    ));
                }
                report.ok += 1;
                if tel.guard.as_ref().is_some_and(|g| g.quarantined) {
                    report.quarantined += 1;
                }
                report.retries += tel.retries;
                report.breaker_skips += tel.breaker_skips;
                report.state_digest = fold(report.state_digest, 1);
            }
            Err(e) => {
                report.typed_errors += 1;
                report.state_digest = fold(report.state_digest, 0x100 | error_tag(&e));
            }
        }
        for snap in health.snapshot() {
            let name_hash = snap
                .backend
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
            report.state_digest = fold(report.state_digest, name_hash ^ state_tag(snap.state));
            report.state_digest = fold(
                report.state_digest,
                ((snap.window_failures as u64) << 32) | snap.window_len as u64,
            );
        }

        if s % CONTROL_PERIOD == CONTROL_PERIOD - 1 {
            match storm.solve_guarded_with(&control.problem(), &quiet_policy, Tuning::DEFAULT) {
                Ok((sol, _)) if sol == control_want => {}
                Ok(_) => {
                    return Err(format!(
                        "storm seed {}: control solve after solve {s} diverged — \
                         cross-contamination",
                        spec.seed
                    ));
                }
                Err(e) => {
                    return Err(format!(
                        "storm seed {}: control solve after solve {s} failed: {e}",
                        spec.seed
                    ));
                }
            }
        }
    }

    report.goodput_per_mille = if spec.solves == 0 {
        1000
    } else {
        (report.ok as u64 * 1000 / spec.solves as u64) as u32
    };
    if report.goodput_per_mille < spec.goodput_floor_per_mille {
        return Err(format!(
            "storm seed {}: goodput {}‰ fell below the floor {}‰ ({} ok / {} solves, \
             {} typed errors)",
            spec.seed,
            report.goodput_per_mille,
            spec.goodput_floor_per_mille,
            report.ok,
            spec.solves,
            report.typed_errors
        ));
    }
    Ok((report, latencies))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_the_storm_format() {
        let spec = StormSpec::standard(77, 400);
        let text = spec.render("roundtrip test");
        let back = parse_spec(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(parse_spec("solves 10").is_err()); // no seed
        assert!(parse_spec("seed 1").is_err()); // no solves
        assert!(parse_spec("seed 1\nsolves 10\nwave 0 1 2").is_err()); // short wave
        assert!(parse_spec("seed 1\nsolves 10\nbogus 3").is_err());
    }

    #[test]
    fn waves_cover_their_ranges_exactly() {
        let spec = StormSpec::standard(1, 1000);
        assert_eq!(spec.wave_for(0), Some(&spec.waves[0]));
        assert_eq!(spec.wave_for(299), Some(&spec.waves[0]));
        assert_eq!(spec.wave_for(300), Some(&spec.waves[1]));
        assert_eq!(spec.wave_for(549), Some(&spec.waves[1]));
        assert_eq!(spec.wave_for(550), Some(&spec.waves[2]));
        assert_eq!(spec.wave_for(699), Some(&spec.waves[2]));
        assert_eq!(spec.wave_for(700), None);
        assert_eq!(spec.wave_for(999), None);
    }

    #[test]
    fn calm_storm_is_pure_goodput() {
        let spec = StormSpec {
            seed: 9,
            solves: 96,
            tick_us: 1000,
            goodput_floor_per_mille: 1000,
            waves: Vec::new(),
        };
        let report = run_storm(&spec).unwrap();
        assert_eq!(report.ok, 96);
        assert_eq!(report.typed_errors, 0);
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.retries, 0);
        assert_eq!(report.breaker_skips, 0);
        assert_eq!(report.goodput_per_mille, 1000);
    }
}
