//! SplitMix64 streams for the fuzzer's hot loop.
//!
//! The differential fuzzer is corpus-driven: every instance is a pure
//! function of a single `u64` seed, so a mismatch report *is* its own
//! reproducer. That rules out `proptest` (shrink trees and global RNG
//! state) and even `rand` (version bumps change streams) in the hot
//! loop; SplitMix64 is ~10 lines, passes BigCrush, and its streams are
//! frozen here forever.

/// A SplitMix64 generator — the standard 64-bit finalizer over a
/// Weyl sequence.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (`bound > 0`). Modulo bias is below
    /// `bound / 2^64` — irrelevant for instance generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform in `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Uniform in `lo..=hi` over `usize`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo) as u64 + 1) as usize
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A decorrelated child stream (for per-field sub-generators that
    /// must not perturb the parent's sequence).
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 0 from the public-domain
        // splitmix64.c (Vigna): the stream must never change.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut r = SplitMix64::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi);
    }
}
