//! Seeded structured-instance generation for the differential fuzzer.
//!
//! Every instance is a pure function of `(ProblemKind, u64 seed)`: the
//! family mix, shapes and values all come from one [`SplitMix64`]
//! stream, so "kind + seed" is a complete reproducer. Families cover
//! the shapes that historically break Monge searchers: plateau-heavy
//! arrays (tie-break storms), zero-slack arrays (every quadrangle
//! inequality tight — one sign error away from a violation), degenerate
//! single-row/column instances, adversarial staircase boundaries
//! (cliffs, fully-infeasible `f_i = 0` rows, finite garbage beyond the
//! boundary that no engine may read), and composite tube factors.

use monge_core::array2d::{Array2d, Dense};
use monge_core::monge::{
    check_inverse_monge, check_monge, check_staircase_inverse_monge_prefix,
    check_staircase_monge_prefix,
};
use monge_core::problem::{Objective, Problem, ProblemKind, Structure};
use monge_core::tiebreak::Tie;
use monge_core::value::Value;

use crate::rng::SplitMix64;

/// The generator form every rank instance uses: `g(x, y) = (x - y)²`,
/// Monge for ascending `v`, `w`. A named `fn` so replayed instances and
/// shrunk instances rebuild the exact same array.
pub fn sq(x: i64, y: i64) -> i64 {
    let d = x - y;
    d * d
}

/// One owned, self-contained fuzz instance: the problem IR plus the
/// backing storage the borrowed [`Problem`] needs.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Which registry problem this instance exercises.
    pub kind: ProblemKind,
    /// Structural promise for rows/staircase instances.
    pub structure: Structure,
    /// Minimize or maximize (derived from `kind` for rows/tubes).
    pub objective: Objective,
    /// Tie rule for rows instances.
    pub tie: Tie,
    /// Primary array (tube: the left factor `d`).
    pub a: Dense<i64>,
    /// Tube right factor `e`.
    pub e: Option<Dense<i64>>,
    /// Staircase boundary `f_i`.
    pub boundary: Option<Vec<usize>>,
    /// Banded per-row starts.
    pub lo: Option<Vec<usize>>,
    /// Banded per-row ends (exclusive).
    pub hi: Option<Vec<usize>>,
    /// Rank form `(v, w)` with `g = sq` (hypercube eligibility).
    pub rank: Option<(Vec<i64>, Vec<i64>)>,
    /// Generator family label (reporting / corpus notes).
    pub family: &'static str,
}

impl Instance {
    /// The borrowed problem IR over this instance's storage.
    pub fn problem(&self) -> Problem<'_, i64> {
        match self.kind {
            ProblemKind::RowMinima | ProblemKind::RowMaxima => {
                let mut p =
                    Problem::rows(&self.a, self.structure, self.objective).with_tie(self.tie);
                if let Some((v, w)) = &self.rank {
                    p = p.with_rank(v, w, &sq);
                }
                p
            }
            ProblemKind::StaircaseRowMinima => {
                let f = self.boundary.as_deref().expect("staircase boundary");
                let mut p = if self.structure == Structure::InverseMonge {
                    Problem::staircase_inverse_row_minima(&self.a, f)
                } else {
                    Problem::staircase_row_minima(&self.a, f)
                };
                if let Some((v, w)) = &self.rank {
                    p = p.with_rank(v, w, &sq);
                }
                p
            }
            ProblemKind::BandedRowMinima => Problem::banded_row_minima(
                &self.a,
                self.lo.as_deref().expect("banded lo"),
                self.hi.as_deref().expect("banded hi"),
            ),
            ProblemKind::BandedRowMaxima => Problem::banded_row_maxima(
                &self.a,
                self.lo.as_deref().expect("banded lo"),
                self.hi.as_deref().expect("banded hi"),
            ),
            ProblemKind::TubeMinima => {
                Problem::tube_minima(&self.a, self.e.as_ref().expect("tube factor e"))
            }
            ProblemKind::TubeMaxima => {
                Problem::tube_maxima(&self.a, self.e.as_ref().expect("tube factor e"))
            }
        }
    }

    /// Does the instance still satisfy its structural promise? The
    /// shrinker calls this after every candidate transform: a transform
    /// that breaks the promise would make engine disagreement legal.
    pub fn valid(&self) -> bool {
        if self.a.rows() == 0 || self.a.cols() == 0 {
            return false;
        }
        if let Some((v, w)) = &self.rank {
            // Rank instances: the dense array must agree with g(v, w)
            // (the hypercube solves from the vectors, everyone else
            // from the array).
            if v.len() != self.a.rows() || w.len() != self.a.cols() {
                return false;
            }
            let consistent = (0..self.a.rows())
                .all(|i| (0..self.a.cols()).all(|j| self.a.entry(i, j) == sq(v[i], w[j])));
            if !consistent {
                return false;
            }
        }
        match self.kind {
            ProblemKind::RowMinima | ProblemKind::RowMaxima => match self.structure {
                Structure::Monge => check_monge(&self.a).is_ok(),
                Structure::InverseMonge => check_inverse_monge(&self.a).is_ok(),
                Structure::Plain => true,
            },
            ProblemKind::StaircaseRowMinima => {
                let Some(f) = self.boundary.as_deref() else {
                    return false;
                };
                if f.len() != self.a.rows() || f.iter().any(|&fi| fi > self.a.cols()) {
                    return false;
                }
                if f.windows(2).any(|w| w[1] > w[0]) {
                    return false;
                }
                match self.structure {
                    Structure::InverseMonge => {
                        check_staircase_inverse_monge_prefix(&self.a, f).is_ok()
                    }
                    _ => check_staircase_monge_prefix(&self.a, f).is_ok(),
                }
            }
            ProblemKind::BandedRowMinima | ProblemKind::BandedRowMaxima => {
                let (Some(lo), Some(hi)) = (self.lo.as_deref(), self.hi.as_deref()) else {
                    return false;
                };
                let m = self.a.rows();
                let n = self.a.cols();
                if lo.len() != m || hi.len() != m {
                    return false;
                }
                if (0..m).any(|i| lo[i] > hi[i] || hi[i] > n) {
                    return false;
                }
                let monotone = if self.kind == ProblemKind::BandedRowMinima {
                    lo.windows(2).all(|w| w[0] <= w[1]) && hi.windows(2).all(|w| w[0] <= w[1])
                } else {
                    lo.windows(2).all(|w| w[0] >= w[1]) && hi.windows(2).all(|w| w[0] >= w[1])
                };
                monotone && check_monge(&self.a).is_ok()
            }
            ProblemKind::TubeMinima | ProblemKind::TubeMaxima => {
                let Some(e) = &self.e else { return false };
                e.rows() == self.a.cols() && check_monge(&self.a).is_ok() && check_monge(e).is_ok()
            }
        }
    }

    /// `(rows, cols)` of the primary array — what the ≤ 8×8 shrink
    /// target is measured on.
    pub fn shape(&self) -> (usize, usize) {
        (self.a.rows(), self.a.cols())
    }
}

/// A dense Monge base via the prefix-summed-density construction (the
/// same scheme as `monge_core::generators`, re-rolled on SplitMix64 so
/// the fuzzer's streams are frozen). All offsets and densities are
/// multiples of `quant`, so `quant > 1` produces plateau-heavy arrays
/// whose ties stress the leftmost rule.
pub(crate) fn monge_base(
    m: usize,
    n: usize,
    r: &mut SplitMix64,
    offset: i64,
    density: i64,
    quant: i64,
) -> Dense<i64> {
    assert!(m > 0 && n > 0 && quant > 0);
    let snap = |v: i64| (v / quant) * quant;
    let u: Vec<i64> = (0..m).map(|_| snap(r.range_i64(-offset, offset))).collect();
    let v: Vec<i64> = (0..n).map(|_| snap(r.range_i64(-offset, offset))).collect();
    let mut prefix = vec![0i64; n];
    let mut data = Vec::with_capacity(m * n);
    for (i, &ui) in u.iter().enumerate() {
        let mut acc = 0i64;
        for (j, p) in prefix.iter_mut().enumerate() {
            let g = if i == 0 || j == 0 || density == 0 {
                0
            } else {
                snap(r.range_i64(0, density))
            };
            acc += g;
            *p += acc;
            data.push(ui + v[j] - *p);
        }
    }
    Dense::from_vec(m, n, data)
}

/// Fuzz-sized dimension draw: biased toward small-but-not-trivial.
fn dim(r: &mut SplitMix64, max: usize) -> usize {
    r.range_usize(1, max.max(1))
}

fn rows_instance(kind: ProblemKind, seed: u64) -> Instance {
    let mut r = SplitMix64::new(seed);
    let objective = if kind == ProblemKind::RowMinima {
        Objective::Minimize
    } else {
        Objective::Maximize
    };
    let family = r.below(7);
    let (m, n) = match family {
        3 => {
            // Degenerate: a single row or a single column.
            if r.chance(1, 2) {
                (1, dim(&mut r, 12))
            } else {
                (dim(&mut r, 12), 1)
            }
        }
        _ => (dim(&mut r, 12), dim(&mut r, 12)),
    };
    // The simulators only answer the leftmost tie rule; a slice of
    // rightmost-tie instances keeps the host engines honest too.
    let tie = if r.chance(1, 10) {
        Tie::Right
    } else {
        Tie::Left
    };
    let (a, structure, rank, name): (Dense<i64>, Structure, _, &'static str) = match family {
        0 => (
            monge_base(m, n, &mut r, 1000, 16, 1),
            Structure::Monge,
            None,
            "monge-random",
        ),
        1 => (
            monge_base(m, n, &mut r, 32, 16, 16),
            Structure::Monge,
            None,
            "monge-plateau",
        ),
        2 => (
            // Zero density: a[i,j] = u[i] + v[j] — every adjacent
            // quadrangle inequality is tight. The borderline family.
            monge_base(m, n, &mut r, 40, 0, 4),
            Structure::Monge,
            None,
            "monge-zero-slack",
        ),
        3 => (
            monge_base(m, n, &mut r, 100, 8, 1),
            Structure::Monge,
            None,
            "monge-degenerate",
        ),
        4 => {
            let base = monge_base(m, n, &mut r, 500, 12, 1);
            let data = (0..m * n).map(|k| -base.data()[k]).collect();
            (
                Dense::from_vec(m, n, data),
                Structure::InverseMonge,
                None,
                "inverse-monge",
            )
        }
        5 => {
            // Honest unstructured values (host backends + brute only).
            let data = (0..m * n).map(|_| r.range_i64(-50, 50)).collect();
            (
                Dense::from_vec(m, n, data),
                Structure::Plain,
                None,
                "plain-random",
            )
        }
        _ => {
            // Rank form g(v[i], w[j]) = (v[i]-w[j])²: ascending vectors,
            // dense array tabulated from the same generator — unlocks
            // the hypercube backend.
            let mut v: Vec<i64> = (0..m).map(|_| r.range_i64(-30, 30)).collect();
            let mut w: Vec<i64> = (0..n).map(|_| r.range_i64(-30, 30)).collect();
            v.sort_unstable();
            w.sort_unstable();
            let a = Dense::tabulate(m, n, |i, j| sq(v[i], w[j]));
            (a, Structure::Monge, Some((v, w)), "monge-rank")
        }
    };
    Instance {
        kind,
        structure,
        objective,
        // Rank + rightmost tie would drop the hypercube anyway; keep
        // rank instances on the leftmost rule.
        tie: if rank.is_some() { Tie::Left } else { tie },
        a,
        e: None,
        boundary: None,
        lo: None,
        hi: None,
        rank,
        family: name,
    }
}

/// Masks `base` with boundary `f`: `+∞` at and beyond `f[i]`, or, for
/// the adversarial "garbage" family, finite junk values the engines
/// must never read.
fn mask_staircase(base: &Dense<i64>, f: &[usize], garbage: Option<&mut SplitMix64>) -> Dense<i64> {
    let (m, n) = (base.rows(), base.cols());
    match garbage {
        None => Dense::tabulate(m, n, |i, j| {
            if j >= f[i] {
                <i64 as Value>::INFINITY
            } else {
                base.entry(i, j)
            }
        }),
        Some(r) => {
            let mut data = Vec::with_capacity(m * n);
            for (i, &fi) in f.iter().enumerate() {
                for j in 0..n {
                    data.push(if j >= fi {
                        r.range_i64(-1_000_000, 1_000_000)
                    } else {
                        base.entry(i, j)
                    });
                }
            }
            Dense::from_vec(m, n, data)
        }
    }
}

fn staircase_instance(seed: u64) -> Instance {
    let mut r = SplitMix64::new(seed);
    let family = r.below(7);
    let (m, n) = match family {
        5 => {
            if r.chance(1, 2) {
                (1, dim(&mut r, 12))
            } else {
                (dim(&mut r, 12), 1)
            }
        }
        _ => (dim(&mut r, 12), dim(&mut r, 12)),
    };
    // Boundary families. All are non-increasing; families 1 and 3 end
    // in `f_i = 0` rows — the fully-infeasible rows whose canonical
    // sentinel answer (index 0, value +∞, zero reads) every backend
    // must agree on.
    let mut f: Vec<usize> = match family {
        1 | 3 => {
            let zeros = r.range_usize(1, m);
            let mut f: Vec<usize> = (0..m - zeros).map(|_| r.range_usize(1, n)).collect();
            f.extend(std::iter::repeat_n(0, zeros));
            f
        }
        2 => {
            // Cliff: full rows, then an abrupt drop to a narrow tail.
            let cliff = r.range_usize(0, m);
            let tail = r.range_usize(1, n);
            (0..m).map(|i| if i < cliff { n } else { tail }).collect()
        }
        _ => (0..m).map(|_| r.range_usize(1, n)).collect(),
    };
    f.sort_unstable_by(|a, b| b.cmp(a));
    if family == 6 {
        // Rank form: the array is g(v, w) everywhere (finite beyond the
        // boundary — never read there), which both matches the hypercube's
        // distributed generator inputs and keeps the rank consistency
        // invariant checkable.
        let mut v: Vec<i64> = (0..m).map(|_| r.range_i64(-30, 30)).collect();
        let mut w: Vec<i64> = (0..n).map(|_| r.range_i64(-30, 30)).collect();
        v.sort_unstable();
        w.sort_unstable();
        let a = Dense::tabulate(m, n, |i, j| sq(v[i], w[j]));
        return Instance {
            kind: ProblemKind::StaircaseRowMinima,
            structure: Structure::Monge,
            objective: Objective::Minimize,
            tie: Tie::Left,
            a,
            e: None,
            boundary: Some(f),
            lo: None,
            hi: None,
            rank: Some((v, w)),
            family: "staircase-rank",
        };
    }
    let plateau = r.chance(1, 3);
    let base = if plateau {
        monge_base(m, n, &mut r, 32, 16, 16)
    } else {
        monge_base(m, n, &mut r, 500, 12, 1)
    };
    let (a, structure, name): (Dense<i64>, Structure, &'static str) = match family {
        3 => {
            let mut junk = r.fork(0xBAD);
            (
                mask_staircase(&base, &f, Some(&mut junk)),
                Structure::Monge,
                "staircase-garbage-beyond-boundary",
            )
        }
        4 => {
            let neg: Vec<i64> = base.data().iter().map(|&x| -x).collect();
            let neg = Dense::from_vec(m, n, neg);
            (
                mask_staircase(&neg, &f, None),
                Structure::InverseMonge,
                "staircase-inverse",
            )
        }
        1 => (
            mask_staircase(&base, &f, None),
            Structure::Monge,
            "staircase-infeasible-rows",
        ),
        2 => (
            mask_staircase(&base, &f, None),
            Structure::Monge,
            "staircase-cliff",
        ),
        5 => (
            mask_staircase(&base, &f, None),
            Structure::Monge,
            "staircase-degenerate",
        ),
        _ => (
            mask_staircase(&base, &f, None),
            Structure::Monge,
            "staircase-random",
        ),
    };
    Instance {
        kind: ProblemKind::StaircaseRowMinima,
        structure,
        objective: Objective::Minimize,
        tie: Tie::Left,
        a,
        e: None,
        boundary: Some(f),
        lo: None,
        hi: None,
        rank: None,
        family: name,
    }
}

fn banded_instance(kind: ProblemKind, seed: u64) -> Instance {
    let mut r = SplitMix64::new(seed);
    let minimize = kind == ProblemKind::BandedRowMinima;
    let (m, n) = (dim(&mut r, 12), dim(&mut r, 12));
    let quant = if r.chance(1, 4) { 8 } else { 1 };
    let a = monge_base(m, n, &mut r, 400, 12, quant);
    let family = r.below(4);
    let (mut lo, mut hi): (Vec<usize>, Vec<usize>) = match family {
        1 => ((0..m).map(|_| 0).collect(), (0..m).map(|_| n).collect()),
        2 => {
            // Empty-heavy: roughly half the bands are lo == hi.
            let pos: Vec<usize> = (0..m).map(|_| r.range_usize(0, n)).collect();
            let width: Vec<usize> = (0..m).map(|_| if r.chance(1, 2) { 0 } else { 1 }).collect();
            (
                pos.clone(),
                pos.iter()
                    .zip(&width)
                    .map(|(&p, &w)| (p + w).min(n))
                    .collect(),
            )
        }
        3 => {
            let pos: Vec<usize> = (0..m).map(|_| r.range_usize(0, n - 1)).collect();
            (pos.clone(), pos.iter().map(|&p| p + 1).collect())
        }
        _ => (
            (0..m).map(|_| r.range_usize(0, n)).collect(),
            (0..m).map(|_| r.range_usize(0, n)).collect(),
        ),
    };
    // Enforce the monotone band shape the divide & conquer needs:
    // non-decreasing endpoints for minima, non-increasing for maxima,
    // and lo[i] <= hi[i] throughout.
    if minimize {
        lo.sort_unstable();
        hi.sort_unstable();
    } else {
        lo.sort_unstable_by(|a, b| b.cmp(a));
        hi.sort_unstable_by(|a, b| b.cmp(a));
    }
    for i in 0..m {
        hi[i] = hi[i].max(lo[i]);
    }
    let family_name = match family {
        1 => "banded-full",
        2 => "banded-empty-heavy",
        3 => "banded-single-column",
        _ => "banded-random",
    };
    Instance {
        kind,
        structure: Structure::Monge,
        objective: if minimize {
            Objective::Minimize
        } else {
            Objective::Maximize
        },
        tie: Tie::Left,
        a,
        e: None,
        boundary: None,
        lo: Some(lo),
        hi: Some(hi),
        rank: None,
        family: family_name,
    }
}

fn tube_instance(kind: ProblemKind, seed: u64) -> Instance {
    let mut r = SplitMix64::new(seed);
    let family = r.below(4);
    let (p, q, rr) = match family {
        2 => {
            // Degenerate middle/outer dimension.
            let which = r.below(3);
            let (mut p, mut q, mut rr) = (dim(&mut r, 8), dim(&mut r, 8), dim(&mut r, 8));
            match which {
                0 => p = 1,
                1 => q = 1,
                _ => rr = 1,
            }
            (p, q, rr)
        }
        _ => (dim(&mut r, 8), dim(&mut r, 8), dim(&mut r, 8)),
    };
    let (off, dens, quant) = match family {
        1 => (24, 8, 8),
        3 => (40, 0, 4),
        _ => (300, 10, 1),
    };
    let d = monge_base(p, q, &mut r, off, dens, quant);
    let e = monge_base(q, rr, &mut r, off, dens, quant);
    let family_name = match family {
        1 => "tube-plateau",
        2 => "tube-degenerate",
        3 => "tube-zero-slack",
        _ => "tube-random",
    };
    Instance {
        kind,
        structure: Structure::Monge,
        objective: if kind == ProblemKind::TubeMinima {
            Objective::Minimize
        } else {
            Objective::Maximize
        },
        tie: Tie::Left,
        a: d,
        e: Some(e),
        boundary: None,
        lo: None,
        hi: None,
        rank: None,
        family: family_name,
    }
}

/// Generates the deterministic instance for `(kind, seed)`.
pub fn generate(kind: ProblemKind, seed: u64) -> Instance {
    match kind {
        ProblemKind::RowMinima | ProblemKind::RowMaxima => rows_instance(kind, seed),
        ProblemKind::StaircaseRowMinima => staircase_instance(seed),
        ProblemKind::BandedRowMinima | ProblemKind::BandedRowMaxima => banded_instance(kind, seed),
        ProblemKind::TubeMinima | ProblemKind::TubeMaxima => tube_instance(kind, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_instances_are_valid() {
        for kind in ProblemKind::ALL {
            for seed in 0..200 {
                let inst = generate(kind, seed);
                assert!(
                    inst.valid(),
                    "{kind:?} seed {seed} family {} is structurally invalid",
                    inst.family
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in ProblemKind::ALL {
            let a = generate(kind, 17);
            let b = generate(kind, 17);
            assert_eq!(a.a.data(), b.a.data());
            assert_eq!(a.boundary, b.boundary);
            assert_eq!(a.family, b.family);
        }
    }

    #[test]
    fn staircase_family_mix_covers_infeasible_rows() {
        let mut saw_zero = false;
        let mut saw_garbage = false;
        for seed in 0..300 {
            let inst = generate(ProblemKind::StaircaseRowMinima, seed);
            let f = inst.boundary.as_deref().unwrap();
            saw_zero |= f.contains(&0);
            saw_garbage |= inst.family == "staircase-garbage-beyond-boundary";
        }
        assert!(saw_zero, "no fully-infeasible rows generated in 300 seeds");
        assert!(
            saw_garbage,
            "no garbage-beyond-boundary instances in 300 seeds"
        );
    }
}
