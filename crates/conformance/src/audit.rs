//! The complexity-bound auditor: turns the PRAM simulator's machine
//! counters into asserted asymptotics.
//!
//! The paper's headline claims are *resource bounds* — Theorem 2.3
//! gives `O(lg n)` CRCW steps with `n` processors for staircase-Monge
//! row minima, the CREW route costs `O(lg n lg lg n)` — and answers
//! alone cannot certify them. The auditor runs one backend over a
//! geometric size ladder on seeded generators, reads the
//! [`Telemetry::machine`] counters the dispatch layer stamps
//! (parallel steps, peak processors, total work, concurrent-write
//! events), and asserts each point stays within `slack · shape(n)`.
//! Failures render the offending `(n, steps, bound)` table.
//!
//! The slack factor absorbs the constant the theorem hides; it is
//! calibrated once against measured constants (see DESIGN.md §12) and
//! can be loosened globally through `MONGE_AUDIT_SLACK` for slow or
//! instrumented builds. A slack can hide a constant — it cannot hide a
//! growth rate, which is what the ladder checks: the negative-control
//! test feeds a deliberately quadratic dummy backend through the same
//! auditor and the `lg n` bound rejects it at every rung.

use std::fmt;

use monge_core::generators::{random_staircase_boundary, ImplicitMonge};
use monge_core::problem::{Problem, Solution, Telemetry};
use monge_parallel::dispatch::{Backend, Capabilities, Dispatcher};
use monge_parallel::Tuning;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The growth shapes the paper's bounds are stated in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundShape {
    /// `lg n` — Theorem 2.3's CRCW step bound.
    LogN,
    /// `lg n · lg lg n` — the CREW staircase bound of §2.3.
    LogNLogLogN,
    /// `lg² n` — tree-primitive (binary-fan-in) critical paths.
    Log2N,
    /// `n` — linear processor counts.
    Linear,
    /// `n lg n` — work bounds of the divide & conquer.
    NLogN,
    /// `n²` — the quadratic-processor constant-time minimum, and the
    /// negative control's honest label.
    NSquared,
}

impl BoundShape {
    /// The shape evaluated at `n` (clamped so `lg lg n ≥ 1`; every
    /// shape is ≥ 1 for n ≥ 2, keeping slack multiplicative).
    pub fn eval(self, n: usize) -> f64 {
        let x = (n.max(2)) as f64;
        let lg = x.log2();
        match self {
            BoundShape::LogN => lg,
            BoundShape::LogNLogLogN => lg * lg.log2().max(1.0),
            BoundShape::Log2N => lg * lg,
            BoundShape::Linear => x,
            BoundShape::NLogN => x * lg,
            BoundShape::NSquared => x * x,
        }
    }

    /// Human-readable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            BoundShape::LogN => "lg n",
            BoundShape::LogNLogLogN => "lg n · lg lg n",
            BoundShape::Log2N => "lg² n",
            BoundShape::Linear => "n",
            BoundShape::NLogN => "n lg n",
            BoundShape::NSquared => "n²",
        }
    }
}

/// The bound one audit asserts: a step-count shape, a processor-count
/// shape, slack factors for the hidden constants, and (for claimed
/// CREW/EREW runs) a concurrent-write prohibition.
#[derive(Clone, Copy, Debug)]
pub struct BoundSpec {
    /// Parallel-step growth shape.
    pub steps: BoundShape,
    /// Multiplicative slack on the step bound.
    pub steps_slack: f64,
    /// Peak-processor growth shape.
    pub processors: BoundShape,
    /// Multiplicative slack on the processor bound.
    pub proc_slack: f64,
    /// Assert `concurrent_write_events == 0` — the counter that
    /// certifies a claimed CREW bound actually ran without concurrent
    /// writes.
    pub forbid_concurrent_writes: bool,
}

impl BoundSpec {
    /// A CRCW-style spec: steps within `slack · shape`, processors
    /// within `proc_slack · proc_shape`, concurrent writes allowed.
    pub fn crcw(
        steps: BoundShape,
        steps_slack: f64,
        processors: BoundShape,
        proc_slack: f64,
    ) -> Self {
        BoundSpec {
            steps,
            steps_slack,
            processors,
            proc_slack,
            forbid_concurrent_writes: false,
        }
    }

    /// A CREW-style spec: same bounds plus zero concurrent writes.
    pub fn crew(
        steps: BoundShape,
        steps_slack: f64,
        processors: BoundShape,
        proc_slack: f64,
    ) -> Self {
        BoundSpec {
            forbid_concurrent_writes: true,
            ..Self::crcw(steps, steps_slack, processors, proc_slack)
        }
    }
}

/// Which seeded generator feeds the ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditFamily {
    /// Square implicit Monge arrays → row minima.
    MongeRows,
    /// Implicit Monge masked by a random staircase boundary → the
    /// Theorem 2.3 problem.
    Staircase,
    /// Two implicit Monge factors → tube minima of the composite.
    CompositeTube,
}

impl AuditFamily {
    /// Label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            AuditFamily::MongeRows => "monge-rows",
            AuditFamily::Staircase => "staircase",
            AuditFamily::CompositeTube => "composite-tube",
        }
    }
}

/// One ladder rung's measured counters against its bounds.
#[derive(Clone, Debug)]
pub struct AuditPoint {
    /// Instance size (rows = cols = n).
    pub n: usize,
    /// Measured parallel steps.
    pub steps: u64,
    /// Measured total work.
    pub work: u64,
    /// Measured peak simultaneously-active processors.
    pub processors: u64,
    /// Steps in which ≥ 2 processors wrote one cell.
    pub concurrent_write_events: u64,
    /// `slack · shape(n)` for steps.
    pub step_bound: f64,
    /// `slack · shape(n)` for processors.
    pub proc_bound: f64,
    /// Whether concurrent writes were forbidden at this rung.
    pub forbid_concurrent_writes: bool,
}

impl AuditPoint {
    /// Does this rung stay within its bounds?
    pub fn ok(&self) -> bool {
        (self.steps as f64) <= self.step_bound
            && (self.processors as f64) <= self.proc_bound
            && (!self.forbid_concurrent_writes || self.concurrent_write_events == 0)
    }
}

/// The full audit of one backend × family × ladder.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Audited registry backend name.
    pub backend: String,
    /// Generator family.
    pub family: AuditFamily,
    /// The asserted bound.
    pub spec: BoundSpec,
    /// One entry per ladder rung.
    pub points: Vec<AuditPoint>,
    /// Least-squares slope of `ln steps` against `ln lg n` — the
    /// fitted polylog degree. ≈1 for `lg n` engines, ≈2 for `lg² n`;
    /// a linear or quadratic impostor fits ≫ 3 on a 2^6..2^14 ladder.
    pub fitted_polylog_degree: f64,
}

impl AuditReport {
    /// Every rung within bounds?
    pub fn ok(&self) -> bool {
        self.points.iter().all(AuditPoint::ok)
    }

    /// The rungs that broke their bound.
    pub fn offenders(&self) -> Vec<&AuditPoint> {
        self.points.iter().filter(|p| !p.ok()).collect()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit {} / {}: steps ≤ {:.1}·{}, procs ≤ {:.1}·{}{}  (fitted polylog degree {:.2})",
            self.backend,
            self.family.label(),
            self.spec.steps_slack,
            self.spec.steps.label(),
            self.spec.proc_slack,
            self.spec.processors.label(),
            if self.spec.forbid_concurrent_writes {
                ", no concurrent writes"
            } else {
                ""
            },
            self.fitted_polylog_degree,
        )?;
        writeln!(
            f,
            "{:>8} {:>10} {:>12} {:>10} {:>12} {:>8} {:>6}",
            "n", "steps", "step-bound", "procs", "proc-bound", "cw-ev", "ok"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>8} {:>10} {:>12.1} {:>10} {:>12.1} {:>8} {:>6}",
                p.n,
                p.steps,
                p.step_bound,
                p.processors,
                p.proc_bound,
                p.concurrent_write_events,
                if p.ok() { "ok" } else { "FAIL" }
            )?;
        }
        Ok(())
    }
}

/// The geometric ladder `2^lo ..= 2^hi`.
pub fn ladder(lo: u32, hi: u32) -> Vec<usize> {
    (lo..=hi).map(|p| 1usize << p).collect()
}

/// Global slack multiplier from `MONGE_AUDIT_SLACK` (default 1.0,
/// values < 1 ignored) — a release valve for instrumented builds, not
/// a way to change the asserted growth rate.
pub fn env_slack() -> f64 {
    std::env::var("MONGE_AUDIT_SLACK")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&x| x >= 1.0)
        .unwrap_or(1.0)
}

fn fit_polylog_degree(points: &[(usize, u64)]) -> f64 {
    // Least squares of y = ln(steps) on x = ln(lg n).
    let samples: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(n, s)| n >= 4 && s > 0)
        .map(|&(n, s)| (((n as f64).log2()).ln(), (s as f64).ln()))
        .collect();
    if samples.len() < 2 {
        return 0.0;
    }
    let k = samples.len() as f64;
    let (sx, sy): (f64, f64) = samples
        .iter()
        .fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let (sxx, sxy): (f64, f64) = samples
        .iter()
        .fold((0.0, 0.0), |(a, b), (x, y)| (a + x * x, b + x * y));
    let denom = k * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    (k * sxy - sx * sy) / denom
}

/// Runs `backend` over the ladder on `family`'s seeded generator and
/// checks every rung against `spec` (slacks additionally scaled by
/// [`env_slack`]). Answers are cross-checked against the sequential
/// backend at every rung — a fast-but-wrong engine must not pass its
/// complexity audit.
///
/// # Panics
/// If the backend is unknown or ineligible for the family's problem.
pub fn audit(
    d: &Dispatcher<i64>,
    backend: &str,
    family: AuditFamily,
    spec: BoundSpec,
    sizes: &[usize],
    seed: u64,
) -> AuditReport {
    let slack = env_slack();
    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(seed ^ (n as u64).wrapping_mul(0x9E37_79B9));
        let (solution, telemetry, reference): (Solution<i64>, Telemetry, Solution<i64>) =
            match family {
                AuditFamily::MongeRows => {
                    let a = ImplicitMonge::random(n, n, 3, &mut rng);
                    let p = Problem::row_minima(&a);
                    let (sol, tel) = d
                        .solve_on(backend, &p, Tuning::DEFAULT)
                        .unwrap_or_else(|| panic!("{backend} ineligible for {family:?}"));
                    let (want, _) = d.solve_on("sequential", &p, Tuning::DEFAULT).unwrap();
                    (sol, tel, want)
                }
                AuditFamily::Staircase => {
                    let a = ImplicitMonge::random(n, n, 3, &mut rng);
                    let f = random_staircase_boundary(n, n, &mut rng);
                    let p = Problem::staircase_row_minima(&a, &f);
                    let (sol, tel) = d
                        .solve_on(backend, &p, Tuning::DEFAULT)
                        .unwrap_or_else(|| panic!("{backend} ineligible for {family:?}"));
                    let (want, _) = d.solve_on("sequential", &p, Tuning::DEFAULT).unwrap();
                    (sol, tel, want)
                }
                AuditFamily::CompositeTube => {
                    let da = ImplicitMonge::random(n, n, 2, &mut rng);
                    let ea = ImplicitMonge::random(n, n, 2, &mut rng);
                    let p = Problem::tube_minima(&da, &ea);
                    let (sol, tel) = d
                        .solve_on(backend, &p, Tuning::DEFAULT)
                        .unwrap_or_else(|| panic!("{backend} ineligible for {family:?}"));
                    let (want, _) = d.solve_on("sequential", &p, Tuning::DEFAULT).unwrap();
                    (sol, tel, want)
                }
            };
        assert_eq!(
            solution,
            reference,
            "{backend} disagrees with sequential on {} at n={n} — \
             a complexity audit of wrong answers is meaningless",
            family.label()
        );
        points.push(AuditPoint {
            n,
            steps: telemetry.machine.steps,
            work: telemetry.machine.work,
            processors: telemetry.machine.processors,
            concurrent_write_events: telemetry.machine.concurrent_write_events,
            step_bound: spec.steps_slack * slack * spec.steps.eval(n),
            proc_bound: spec.proc_slack * slack * spec.processors.eval(n),
            forbid_concurrent_writes: spec.forbid_concurrent_writes,
        });
    }
    let fitted = fit_polylog_degree(&points.iter().map(|p| (p.n, p.steps)).collect::<Vec<_>>());
    AuditReport {
        backend: backend.to_string(),
        family,
        spec,
        points,
        fitted_polylog_degree: fitted,
    }
}

/// The negative control: a backend that answers correctly (it delegates
/// to the sequential engine) but whose machine counters confess a
/// quadratic schedule — `n²` steps on `n` processors. Any audit that
/// accepts this backend under a polylog bound is broken.
pub struct QuadraticDummyBackend;

impl Backend<i64> for QuadraticDummyBackend {
    fn name(&self) -> &'static str {
        "dummy:quadratic"
    }

    fn capabilities(&self) -> Capabilities {
        <monge_parallel::SequentialBackend as Backend<i64>>::capabilities(
            &monge_parallel::SequentialBackend,
        )
    }

    fn solve(
        &self,
        problem: &Problem<'_, i64>,
        tuning: &Tuning,
        telemetry: &mut Telemetry,
    ) -> Solution<i64> {
        let sol = monge_parallel::SequentialBackend.solve(problem, tuning, telemetry);
        let (m, n) = problem.search_shape();
        telemetry.machine.steps = (m as u64) * (n as u64);
        telemetry.machine.work = (m as u64) * (n as u64);
        telemetry.machine.processors = n as u64;
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_monotone_and_ordered() {
        for n in [64usize, 1024, 16384] {
            assert!(BoundShape::LogN.eval(n) < BoundShape::LogNLogLogN.eval(n));
            assert!(BoundShape::LogNLogLogN.eval(n) < BoundShape::Log2N.eval(n));
            assert!(BoundShape::Log2N.eval(n) < BoundShape::Linear.eval(n));
            assert!(BoundShape::Linear.eval(n) < BoundShape::NSquared.eval(n));
        }
    }

    #[test]
    fn fit_recovers_the_degree() {
        // steps = lg² n exactly → degree ≈ 2.
        let pts: Vec<(usize, u64)> = (6..=14)
            .map(|p| {
                let n = 1usize << p;
                (n, (p * p) as u64)
            })
            .collect();
        let d = fit_polylog_degree(&pts);
        assert!((d - 2.0).abs() < 0.05, "fitted {d}");
    }

    #[test]
    fn report_display_prints_offenders() {
        let spec = BoundSpec::crcw(BoundShape::LogN, 1.0, BoundShape::Linear, 1.0);
        let report = AuditReport {
            backend: "dummy".into(),
            family: AuditFamily::Staircase,
            spec,
            points: vec![AuditPoint {
                n: 64,
                steps: 4096,
                work: 4096,
                processors: 64,
                concurrent_write_events: 0,
                step_bound: 6.0,
                proc_bound: 64.0,
                forbid_concurrent_writes: false,
            }],
            fitted_polylog_degree: 6.0,
        };
        assert!(!report.ok());
        let text = report.to_string();
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("4096"), "{text}");
    }
}
