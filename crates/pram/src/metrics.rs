//! Step / work / processor accounting — the quantities the paper's
//! Tables 1.1–1.3 are stated in.

/// Aggregated cost counters of a simulated PRAM execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Parallel time: number of synchronous steps on the critical path
    /// (fork/join sections contribute the maximum over their branches).
    pub steps: u64,
    /// Work: total processor-steps scheduled (`Σ active processors`).
    pub work: u64,
    /// Largest number of processors scheduled in any single step,
    /// including processors conceptually running in sibling fork branches.
    pub peak_processors: u64,
    /// Total shared-memory reads.
    pub reads: u64,
    /// Total shared-memory writes (after conflict resolution, one per
    /// written cell per step).
    pub writes: u64,
    /// Steps in which at least two processors read the same cell.
    pub concurrent_read_events: u64,
    /// Steps in which at least two processors wrote the same cell.
    pub concurrent_write_events: u64,
    /// Model violations observed (only populated in non-strict mode;
    /// strict mode panics instead).
    pub violations: u64,
}

impl Metrics {
    /// The processor-time product `steps × peak_processors`, the paper's
    /// headline efficiency figure.
    pub fn processor_time_product(&self) -> u64 {
        self.steps.saturating_mul(self.peak_processors)
    }
}

/// A snapshot used by fork/join sections to combine branch costs.
///
/// Note on `peak_processors`: inside a fork section the simulator runs
/// branches one after another, so the recorded peak is the largest
/// *single-step* processor count, a lower bound on the true concurrent
/// demand. The engines report their analytical processor budgets
/// alongside (see `monge-parallel`).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ForkFrame {
    /// `steps` at the time of the fork.
    pub base_steps: u64,
    /// Maximum branch step delta seen so far.
    pub max_branch_steps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_saturates() {
        let m = Metrics {
            steps: u64::MAX,
            peak_processors: 2,
            ..Default::default()
        };
        assert_eq!(m.processor_time_product(), u64::MAX);
    }

    #[test]
    fn default_is_zero() {
        let m = Metrics::default();
        assert_eq!(m.steps, 0);
        assert_eq!(m.work, 0);
        assert_eq!(m.violations, 0);
    }
}
