//! The synchronous PRAM machine.

use crate::metrics::{ForkFrame, Metrics};
use std::fmt::Debug;
use std::ops::Range;

/// A shared-memory cell. Conflict policies need equality (for `Common`)
/// and ordering (for `Min`/`Max` combining writes).
pub trait Cell: Copy + PartialEq + PartialOrd + Debug + 'static {}
impl<T: Copy + PartialEq + PartialOrd + Debug + 'static> Cell for T {}

/// Concurrent-write resolution rule for CRCW machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// All processors writing one cell in one step must write the same
    /// value; anything else is a violation.
    Common,
    /// An unspecified processor wins. The simulator deterministically
    /// picks the lowest processor id so runs are reproducible.
    Arbitrary,
    /// The lowest-id processor wins (identical to the simulator's
    /// `Arbitrary`, but a violation-free guarantee of the model).
    Priority,
    /// The minimum written value wins (combining CRCW) — the primitive
    /// behind constant-time minimum with `n²` processors.
    Min,
    /// The maximum written value wins (combining CRCW).
    Max,
}

/// PRAM access model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Exclusive-read exclusive-write.
    Erew,
    /// Concurrent-read exclusive-write.
    Crew,
    /// Concurrent-read concurrent-write under the given policy.
    Crcw(WritePolicy),
}

impl Mode {
    fn allows_concurrent_reads(self) -> bool {
        !matches!(self, Mode::Erew)
    }
    fn allows_concurrent_writes(self) -> bool {
        matches!(self, Mode::Crcw(_))
    }
}

/// Per-processor view of the machine during one step.
///
/// Reads observe the pre-step memory; at most one write may be issued.
pub struct Ctx<'a, C: Cell> {
    proc: usize,
    mem: &'a [C],
    read_log: &'a mut Vec<usize>,
    write: &'a mut Option<(usize, C)>,
}

impl<'a, C: Cell> Ctx<'a, C> {
    /// The executing processor's id within this step.
    pub fn proc(&self) -> usize {
        self.proc
    }

    /// Reads the cell at `addr` (pre-step value).
    pub fn read(&mut self, addr: usize) -> C {
        self.read_log.push(addr);
        self.mem[addr]
    }

    /// Issues this processor's write. Panics if the processor already
    /// wrote this step (the model allows one write per step).
    pub fn write(&mut self, addr: usize, value: C) {
        assert!(
            self.write.is_none(),
            "processor {} issued two writes in one step",
            self.proc
        );
        assert!(addr < self.mem.len(), "write out of bounds: {addr}");
        *self.write = Some((addr, value));
    }
}

/// The simulated machine. See the crate docs for the model.
pub struct Pram<C: Cell> {
    mem: Vec<C>,
    mode: Mode,
    strict: bool,
    metrics: Metrics,
    fork_stack: Vec<ForkFrame>,
    // Scratch reused across steps to detect conflicts in O(accesses).
    stamp: u64,
    read_stamp: Vec<u64>,
    write_stamp: Vec<u64>,
    write_value: Vec<C>,
    write_proc: Vec<usize>,
}

impl<C: Cell> Pram<C> {
    /// Creates an empty machine in the given mode (strict: violations
    /// panic).
    pub fn new(mode: Mode) -> Self {
        Self {
            mem: Vec::new(),
            mode,
            strict: true,
            metrics: Metrics::default(),
            fork_stack: Vec::new(),
            stamp: 0,
            read_stamp: Vec::new(),
            write_stamp: Vec::new(),
            write_value: Vec::new(),
            write_proc: Vec::new(),
        }
    }

    /// Creates a machine that records violations in
    /// [`Metrics::violations`] instead of panicking.
    pub fn new_lenient(mode: Mode) -> Self {
        let mut p = Self::new(mode);
        p.strict = false;
        p
    }

    /// The machine's access mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Cost counters accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current memory size.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// Is the memory empty?
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Allocates `n` cells initialized to `init`; returns their address
    /// range. Allocation is free (it models naming a region of the
    /// machine's memory, not a timed operation).
    pub fn alloc(&mut self, n: usize, init: C) -> Range<usize> {
        let start = self.mem.len();
        self.mem.resize(start + n, init);
        self.read_stamp.resize(self.mem.len(), 0);
        self.write_stamp.resize(self.mem.len(), 0);
        self.write_value.resize(self.mem.len(), init);
        self.write_proc.resize(self.mem.len(), 0);
        start..self.mem.len()
    }

    /// Allocates and initializes cells from a slice (models the input
    /// sitting in global memory, as §1.2 assumes for `D` and `E`).
    pub fn load(&mut self, data: &[C]) -> Range<usize> {
        let start = self.mem.len();
        self.mem.extend_from_slice(data);
        let init = *data.first().unwrap_or(&self.mem[0]);
        self.read_stamp.resize(self.mem.len(), 0);
        self.write_stamp.resize(self.mem.len(), 0);
        self.write_value.resize(self.mem.len(), init);
        self.write_proc.resize(self.mem.len(), 0);
        start..self.mem.len()
    }

    /// Copies a memory region out of the machine (host-side, untimed).
    pub fn read_out(&self, r: Range<usize>) -> Vec<C> {
        self.mem[r].to_vec()
    }

    /// Host-side peek at one cell (untimed; for tests and result
    /// extraction).
    pub fn peek(&self, addr: usize) -> C {
        self.mem[addr]
    }

    /// Host-side poke of one cell (untimed; for input staging only).
    pub fn poke(&mut self, addr: usize, v: C) {
        self.mem[addr] = v;
    }

    fn violation(&mut self, msg: &str) {
        if self.strict {
            panic!("PRAM model violation: {msg}");
        }
        self.metrics.violations += 1;
    }

    /// Executes one synchronous step on processors `0..procs`.
    ///
    /// `f(ctx)` runs once per processor; all reads see pre-step memory and
    /// writes apply at the end under the machine's mode. Costs: 1 step
    /// (more under an enclosing fork: see [`Pram::fork`]), `procs` work.
    pub fn step(&mut self, procs: usize, mut f: impl FnMut(&mut Ctx<'_, C>)) {
        if procs == 0 {
            return;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let mut read_log: Vec<usize> = Vec::new();
        let mut concurrent_read = false;
        let mut concurrent_write = false;
        let mut pending: Vec<(usize, C, usize)> = Vec::new(); // (addr, value, proc)
        let mut written: Vec<usize> = Vec::new();

        for proc in 0..procs {
            read_log.clear();
            let mut write = None;
            {
                let mut ctx = Ctx {
                    proc,
                    mem: &self.mem,
                    read_log: &mut read_log,
                    write: &mut write,
                };
                f(&mut ctx);
            }
            self.metrics.reads += read_log.len() as u64;
            for &addr in read_log.iter() {
                if self.read_stamp[addr] == stamp {
                    concurrent_read = true;
                } else {
                    self.read_stamp[addr] = stamp;
                }
            }
            if let Some((addr, value)) = write {
                pending.push((addr, value, proc));
            }
        }

        if concurrent_read {
            self.metrics.concurrent_read_events += 1;
            if !self.mode.allows_concurrent_reads() {
                self.violation("concurrent read on an EREW machine");
            }
        }

        // Resolve writes. Processors were iterated in id order, so the
        // first pending write to a cell is the lowest-id processor's.
        for (addr, value, _proc) in pending {
            if self.write_stamp[addr] == stamp {
                concurrent_write = true;
                if !self.mode.allows_concurrent_writes() {
                    self.violation("concurrent write on a non-CRCW machine");
                }
                if let Mode::Crcw(policy) = self.mode {
                    let cur = self.write_value[addr];
                    let new = match policy {
                        WritePolicy::Common => {
                            if cur != value {
                                self.violation(
                                    "Common CRCW processors disagreed on a written value",
                                );
                            }
                            cur
                        }
                        WritePolicy::Arbitrary | WritePolicy::Priority => cur,
                        WritePolicy::Min => {
                            if value < cur {
                                value
                            } else {
                                cur
                            }
                        }
                        WritePolicy::Max => {
                            if value > cur {
                                value
                            } else {
                                cur
                            }
                        }
                    };
                    self.write_value[addr] = new;
                }
            } else {
                self.write_stamp[addr] = stamp;
                self.write_value[addr] = value;
                written.push(addr);
            }
        }
        if concurrent_write {
            self.metrics.concurrent_write_events += 1;
        }
        // Commit (only the cells actually written this step).
        for &addr in &written {
            self.mem[addr] = self.write_value[addr];
        }
        self.metrics.writes += written.len() as u64;

        self.metrics.steps += 1;
        self.metrics.work += procs as u64;
        if procs as u64 > self.metrics.peak_processors {
            self.metrics.peak_processors = procs as u64;
        }
    }

    // ----- fork/join accounting --------------------------------------

    /// Opens a parallel section. Branches executed between `fork` and
    /// [`Pram::join`], each terminated by [`Pram::branch_done`],
    /// contribute the *maximum* of their step counts to the critical path
    /// (work still accumulates additively).
    pub fn fork(&mut self) {
        self.fork_stack.push(ForkFrame {
            base_steps: self.metrics.steps,
            max_branch_steps: 0,
        });
    }

    /// Marks the end of the current branch within the innermost fork:
    /// rewinds the step clock to the fork point after recording this
    /// branch's contribution.
    pub fn branch_done(&mut self) {
        let frame = self
            .fork_stack
            .last_mut()
            .expect("branch_done outside a fork");
        let delta = self.metrics.steps - frame.base_steps;
        if delta > frame.max_branch_steps {
            frame.max_branch_steps = delta;
        }
        self.metrics.steps = frame.base_steps;
    }

    /// Closes the innermost parallel section, advancing the step clock by
    /// the longest branch.
    pub fn join(&mut self) {
        let frame = self.fork_stack.pop().expect("join without fork");
        debug_assert_eq!(
            self.metrics.steps, frame.base_steps,
            "join called with an unterminated branch (missing branch_done?)"
        );
        self.metrics.steps = frame.base_steps + frame.max_branch_steps;
    }

    /// Convenience: runs `branches` as a fork/join section.
    #[allow(clippy::type_complexity)]
    pub fn parallel(&mut self, branches: Vec<Box<dyn FnOnce(&mut Self) + '_>>) {
        self.fork();
        for b in branches {
            b(self);
            self.branch_done();
        }
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_is_synchronous() {
        // Parallel swap: both processors read pre-step values.
        let mut p = Pram::new(Mode::Erew);
        let r = p.load(&[1i64, 2]);
        p.step(2, |ctx| {
            let me = ctx.proc();
            let other = ctx.read(r.start + 1 - me);
            ctx.write(r.start + me, other);
        });
        assert_eq!(p.read_out(r), vec![2, 1]);
        assert_eq!(p.metrics().steps, 1);
        assert_eq!(p.metrics().work, 2);
    }

    #[test]
    #[should_panic(expected = "concurrent read")]
    fn erew_detects_concurrent_reads() {
        let mut p = Pram::new(Mode::Erew);
        let r = p.load(&[7i64, 0, 0]);
        p.step(2, |ctx| {
            let v = ctx.read(r.start);
            ctx.write(r.start + 1 + ctx.proc(), v);
        });
    }

    #[test]
    fn crew_allows_concurrent_reads() {
        let mut p = Pram::new(Mode::Crew);
        let r = p.load(&[7i64, 0, 0]);
        p.step(2, |ctx| {
            let v = ctx.read(r.start);
            ctx.write(r.start + 1 + ctx.proc(), v);
        });
        assert_eq!(p.read_out(r), vec![7, 7, 7]);
        assert_eq!(p.metrics().concurrent_read_events, 1);
    }

    #[test]
    #[should_panic(expected = "concurrent write")]
    fn crew_detects_concurrent_writes() {
        let mut p = Pram::new(Mode::Crew);
        let r = p.load(&[0i64]);
        p.step(2, |ctx| {
            let me = ctx.proc() as i64;
            ctx.write(r.start, me);
        });
    }

    #[test]
    fn crcw_min_policy_combines() {
        let mut p = Pram::new(Mode::Crcw(WritePolicy::Min));
        let r = p.load(&[100i64]);
        p.step(4, |ctx| {
            let v = [5i64, 3, 9, 3][ctx.proc()];
            ctx.write(r.start, v);
        });
        assert_eq!(p.peek(r.start), 3);
        assert_eq!(p.metrics().concurrent_write_events, 1);
    }

    #[test]
    fn crcw_max_policy_combines() {
        let mut p = Pram::new(Mode::Crcw(WritePolicy::Max));
        let r = p.load(&[-100i64]);
        p.step(3, |ctx| ctx.write(r.start, ctx.proc() as i64));
        assert_eq!(p.peek(r.start), 2);
    }

    #[test]
    fn crcw_priority_lowest_proc_wins() {
        let mut p = Pram::new(Mode::Crcw(WritePolicy::Priority));
        let r = p.load(&[0i64]);
        p.step(3, |ctx| ctx.write(r.start, 10 + ctx.proc() as i64));
        assert_eq!(p.peek(r.start), 10);
    }

    #[test]
    #[should_panic(expected = "disagreed")]
    fn crcw_common_requires_agreement() {
        let mut p = Pram::new(Mode::Crcw(WritePolicy::Common));
        let r = p.load(&[0i64]);
        p.step(2, |ctx| ctx.write(r.start, ctx.proc() as i64));
    }

    #[test]
    fn crcw_common_accepts_agreement() {
        let mut p = Pram::new(Mode::Crcw(WritePolicy::Common));
        let r = p.load(&[0i64]);
        p.step(8, |ctx| ctx.write(r.start, 42));
        assert_eq!(p.peek(r.start), 42);
    }

    #[test]
    fn lenient_mode_counts_violations() {
        let mut p = Pram::new_lenient(Mode::Erew);
        let r = p.load(&[7i64, 0, 0]);
        p.step(2, |ctx| {
            let v = ctx.read(r.start);
            ctx.write(r.start + 1 + ctx.proc(), v);
        });
        assert_eq!(p.metrics().violations, 1);
    }

    #[test]
    fn fork_join_takes_max_of_branches() {
        let mut p = Pram::new(Mode::Crew);
        let r = p.alloc(4, 0i64);
        p.fork();
        // Branch 1: 3 steps.
        for _ in 0..3 {
            p.step(1, |ctx| ctx.write(r.start, 1));
        }
        p.branch_done();
        // Branch 2: 5 steps.
        for _ in 0..5 {
            p.step(1, |ctx| ctx.write(r.start + 1, 2));
        }
        p.branch_done();
        p.join();
        assert_eq!(p.metrics().steps, 5);
        assert_eq!(p.metrics().work, 8);
    }

    #[test]
    fn nested_forks() {
        let mut p = Pram::new(Mode::Crew);
        let r = p.alloc(2, 0i64);
        p.fork();
        {
            p.fork();
            p.step(1, |ctx| ctx.write(r.start, 1));
            p.branch_done();
            p.step(1, |ctx| ctx.write(r.start, 2));
            p.step(1, |ctx| ctx.write(r.start, 3));
            p.branch_done();
            p.join(); // inner: 2 steps
        }
        p.branch_done();
        p.step(1, |ctx| ctx.write(r.start + 1, 9));
        p.branch_done();
        p.join(); // max(2, 1) = 2
        assert_eq!(p.metrics().steps, 2);
    }

    #[test]
    fn work_and_peak_processors() {
        let mut p = Pram::new(Mode::Crew);
        let r = p.alloc(16, 0i64);
        p.step(16, |ctx| {
            let me = ctx.proc();
            ctx.write(r.start + me, me as i64);
        });
        p.step(4, |ctx| {
            let me = ctx.proc();
            let _ = ctx.read(r.start + me);
        });
        assert_eq!(p.metrics().peak_processors, 16);
        assert_eq!(p.metrics().work, 20);
        assert_eq!(p.metrics().steps, 2);
    }

    #[test]
    #[should_panic(expected = "two writes")]
    fn double_write_is_rejected() {
        let mut p = Pram::new(Mode::Crew);
        let r = p.alloc(2, 0i64);
        p.step(1, |ctx| {
            ctx.write(r.start, 1);
            ctx.write(r.start + 1, 2);
        });
    }

    #[test]
    fn zero_processor_step_is_free() {
        let mut p = Pram::<i64>::new(Mode::Crew);
        p.step(0, |_| unreachable!());
        assert_eq!(p.metrics().steps, 0);
    }
}
