//! Standard PRAM primitives: broadcast, tree reduction, parallel prefix,
//! and the three minimum-finding routines whose step counts the paper's
//! bounds hinge on:
//!
//! | routine | model | steps | processors |
//! |---|---|---|---|
//! | [`tree_reduce`] | EREW+ | `⌈lg n⌉ + 1` | `n/2` |
//! | [`crcw_min_doubly_log`] | CRCW (Common/Arbitrary/Priority) | `O(lg lg n)` | `n` |
//! | [`crcw_min_quadratic`] | CRCW (Common/Arbitrary/Priority) | `O(1)` | `n²/2` |
//! | [`combining_min`] | CRCW (`Min` policy) | `1` | `n` |
//!
//! The doubly-logarithmic routine is the accelerated-cascade scheme of
//! Valiant / Shiloach–Vishkin: one halving round, then rounds with group
//! size `g = budget / m`, squaring the reduction ratio each time.

use crate::machine::{Cell, Mode, Pram, WritePolicy};
use std::ops::Range;

/// A `(value, index)` cell whose derived lexicographic order makes
/// "minimum with leftmost tie-break" a plain `<` comparison — the cell
/// type used by the array-searching engines.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct VI<T> {
    /// The compared value.
    pub v: T,
    /// The value's origin (column index), breaking ties leftward.
    pub i: i64,
}

impl<T> VI<T> {
    /// Creates a `(value, index)` cell.
    pub fn new(v: T, i: usize) -> Self {
        Self { v, i: i as i64 }
    }
}

/// Copies `src` into `dst` in one step with `len` processors.
pub fn copy_region<C: Cell>(p: &mut Pram<C>, src: Range<usize>, dst: Range<usize>) {
    assert_eq!(src.len(), dst.len());
    let n = src.len();
    let (s0, d0) = (src.start, dst.start);
    p.step(n, |ctx| {
        let k = ctx.proc();
        let v = ctx.read(s0 + k);
        ctx.write(d0 + k, v);
    });
}

/// Broadcasts the cell at `src` to every cell of `dst`.
///
/// On CREW/CRCW machines this is a single concurrent-read step with
/// `dst.len()` processors; on EREW it is the classical doubling tree in
/// `⌈lg n⌉ + 1` exclusive steps.
pub fn broadcast<C: Cell>(p: &mut Pram<C>, src: usize, dst: Range<usize>) {
    let n = dst.len();
    if n == 0 {
        return;
    }
    let d0 = dst.start;
    if p.mode() != Mode::Erew {
        p.step(n, |ctx| {
            let v = ctx.read(src);
            ctx.write(d0 + ctx.proc(), v);
        });
        return;
    }
    // EREW doubling.
    p.step(1, |ctx| {
        let v = ctx.read(src);
        ctx.write(d0, v);
    });
    let mut have = 1usize;
    while have < n {
        let copy = have.min(n - have);
        p.step(copy, |ctx| {
            let k = ctx.proc();
            let v = ctx.read(d0 + k);
            ctx.write(d0 + have + k, v);
        });
        have += copy;
    }
}

/// Tree reduction of `region` by a combining function, in `⌈lg n⌉` steps
/// after a 1-step copy into scratch. Returns the address holding the
/// result. Works on every mode (accesses are exclusive).
pub fn tree_reduce<C: Cell>(
    p: &mut Pram<C>,
    region: Range<usize>,
    combine: impl Fn(C, C) -> C + Copy,
) -> usize {
    let n = region.len();
    assert!(n > 0, "reduce over an empty region");
    let scratch = p.alloc(n, p.peek(region.start));
    copy_region(p, region, scratch.clone());
    let s0 = scratch.start;
    let mut m = n;
    while m > 1 {
        let pairs = m / 2;
        let odd = m % 2 == 1;
        p.step(pairs + usize::from(odd), |ctx| {
            let k = ctx.proc();
            if k < pairs {
                let a = ctx.read(s0 + 2 * k);
                let b = ctx.read(s0 + 2 * k + 1);
                ctx.write(s0 + k, combine(a, b));
            } else {
                // Odd leftover rides along to position pairs.
                let v = ctx.read(s0 + m - 1);
                ctx.write(s0 + pairs, v);
            }
        });
        m = pairs + usize::from(odd);
    }
    s0
}

/// Minimum (with leftmost tie-break when `C = VI<_>`) by tree reduction.
pub fn tree_min<C: Cell>(p: &mut Pram<C>, region: Range<usize>) -> usize {
    tree_reduce(p, region, |a, b| if b < a { b } else { a })
}

/// Inclusive parallel prefix (Hillis–Steele): `⌈lg n⌉` steps with `n`
/// processors. Requires concurrent reads (CREW or CRCW).
pub fn scan_inclusive<C: Cell>(
    p: &mut Pram<C>,
    region: Range<usize>,
    combine: impl Fn(C, C) -> C + Copy,
) {
    assert!(
        p.mode() != Mode::Erew,
        "scan_inclusive requires concurrent reads; use an EREW-specific scan"
    );
    let n = region.len();
    let r0 = region.start;
    let mut d = 1usize;
    while d < n {
        p.step(n, |ctx| {
            let k = ctx.proc();
            if k >= d {
                let a = ctx.read(r0 + k - d);
                let b = ctx.read(r0 + k);
                ctx.write(r0 + k, combine(a, b));
            }
        });
        d *= 2;
    }
}

/// Work-efficient exclusive prefix scan (Blelloch): up-sweep then
/// down-sweep over a balanced tree — `2⌈lg n⌉ + O(1)` steps, `O(n)` work,
/// and every access is exclusive, so it runs on an **EREW** machine
/// (unlike the `n lg n`-work [`scan_inclusive`], which needs concurrent
/// reads). `identity` is the combine's neutral element. The region length
/// must be a power of two.
pub fn scan_exclusive_blelloch<C: Cell>(
    p: &mut Pram<C>,
    region: Range<usize>,
    identity: C,
    combine: impl Fn(C, C) -> C + Copy,
) {
    let n = region.len();
    assert!(
        n.is_power_of_two(),
        "Blelloch scan needs a power-of-two length"
    );
    let r0 = region.start;
    // Up-sweep.
    let mut d = 1usize;
    while d < n {
        let stride = 2 * d;
        p.step(n / stride, |ctx| {
            let k = ctx.proc() * stride;
            let a = ctx.read(r0 + k + d - 1);
            let b = ctx.read(r0 + k + stride - 1);
            ctx.write(r0 + k + stride - 1, combine(a, b));
        });
        d = stride;
    }
    // Clear the root.
    p.step(1, |ctx| ctx.write(r0 + n - 1, identity));
    // Down-sweep. Each level swaps the left child with the node value and
    // writes combine(left, node) to the right child; since a processor
    // may issue only one write per step, the swap is staged through a
    // scratch region over three exclusive steps.
    let scratch = p.alloc(n.max(1) / 2, identity);
    let s0 = scratch.start;
    let mut d = n / 2;
    while d >= 1 {
        let stride = 2 * d;
        let procs = n / stride;
        p.step(procs, |ctx| {
            let k = ctx.proc();
            let left = ctx.read(r0 + k * stride + d - 1);
            ctx.write(s0 + k, left);
        });
        p.step(procs, |ctx| {
            let k = ctx.proc();
            let root = ctx.read(r0 + k * stride + stride - 1);
            ctx.write(r0 + k * stride + d - 1, root);
        });
        p.step(procs, |ctx| {
            let k = ctx.proc();
            let left = ctx.read(s0 + k);
            let root = ctx.read(r0 + k * stride + stride - 1);
            ctx.write(r0 + k * stride + stride - 1, combine(left, root));
        });
        d /= 2;
    }
}

/// Constant-time CRCW minimum with `n(n-1)/2 + 2n` processor-steps across
/// exactly 3 steps: clear loser flags, mark losers pairwise, winner
/// writes. Needs any CRCW policy (all concurrent writes agree). `flag_one`
/// must differ from `flag_zero`.
pub fn crcw_min_quadratic<C: Cell>(
    p: &mut Pram<C>,
    region: Range<usize>,
    dst: usize,
    flag_zero: C,
    flag_one: C,
) {
    assert!(matches!(p.mode(), Mode::Crcw(_)), "requires a CRCW machine");
    let n = region.len();
    assert!(n > 0);
    let r0 = region.start;
    let flags = p.alloc(n, flag_zero);
    let f0 = flags.start;
    p.step(n, |ctx| ctx.write(f0 + ctx.proc(), flag_zero));
    let pairs = n * (n - 1) / 2;
    if pairs > 0 {
        p.step(pairs, |ctx| {
            let (x, y) = decode_pair(ctx.proc());
            let a = ctx.read(r0 + x);
            let b = ctx.read(r0 + y);
            // x < y; the later element loses ties, keeping the leftmost.
            if b < a {
                ctx.write(f0 + x, flag_one);
            } else {
                ctx.write(f0 + y, flag_one);
            }
        });
    }
    p.step(n, |ctx| {
        let k = ctx.proc();
        if ctx.read(f0 + k) == flag_zero {
            let v = ctx.read(r0 + k);
            ctx.write(dst, v);
        }
    });
}

/// Decodes processor id `t` into the `t`-th pair `(x, y)`, `x < y`, in
/// colexicographic order.
fn decode_pair(t: usize) -> (usize, usize) {
    // y is the largest integer with y(y-1)/2 <= t.
    let mut y = (((8 * t + 1) as f64).sqrt() as usize).div_ceil(2);
    while y * (y + 1) / 2 > t {
        y -= 1;
    }
    while (y + 1) * (y + 2) / 2 <= t {
        y += 1;
    }
    let y = y + 1;
    let x = t - y * (y - 1) / 2;
    (x, y)
}

/// Doubly-logarithmic CRCW minimum: `O(lg lg n)` phases of 3 steps each
/// with a processor budget of `max(n, budget)`, via accelerated cascades.
/// Returns the address of the result.
pub fn crcw_min_doubly_log<C: Cell>(
    p: &mut Pram<C>,
    region: Range<usize>,
    flag_zero: C,
    flag_one: C,
) -> usize {
    assert!(matches!(p.mode(), Mode::Crcw(_)), "requires a CRCW machine");
    let n = region.len();
    assert!(n > 0);
    let budget = n.max(2);
    // Candidates live in scratch[0..m].
    let scratch = p.alloc(n, p.peek(region.start));
    copy_region(p, region.clone(), scratch.clone());
    let s0 = scratch.start;
    let mut m = n;
    while m > 1 {
        let g = (budget / m).clamp(2, m);
        let groups = m.div_ceil(g);
        // Quadratic min inside every group simultaneously: one fused
        // 3-step phase (clear, losers, winners → compacted prefix).
        let flags = p.alloc(m, flag_zero);
        let f0 = flags.start;
        p.step(m, |ctx| ctx.write(f0 + ctx.proc(), flag_zero));
        // Pairs within groups. The last group may be smaller.
        let mut pair_count = 0usize;
        let mut group_pairs = Vec::with_capacity(groups);
        for gi in 0..groups {
            let size = g.min(m - gi * g);
            group_pairs.push((pair_count, gi, size));
            pair_count += size * (size - 1) / 2;
        }
        if pair_count > 0 {
            p.step(pair_count, |ctx| {
                let t = ctx.proc();
                // Locate the group (linear scan over groups is host-side
                // decoding of the processor id, not a machine cost).
                let gp = match group_pairs.binary_search_by(|&(base, _, _)| base.cmp(&t)) {
                    Ok(idx) => idx,
                    Err(idx) => idx - 1,
                };
                let (base, gi, _size) = group_pairs[gp];
                let (x, y) = decode_pair(t - base);
                let off = gi * g;
                let a = ctx.read(s0 + off + x);
                let b = ctx.read(s0 + off + y);
                if b < a {
                    ctx.write(f0 + off + x, flag_one);
                } else {
                    ctx.write(f0 + off + y, flag_one);
                }
            });
        }
        p.step(m, |ctx| {
            let k = ctx.proc();
            if ctx.read(f0 + k) == flag_zero {
                let v = ctx.read(s0 + k);
                ctx.write(s0 + k / g, v);
            }
        });
        m = groups;
    }
    s0
}

/// List ranking by pointer jumping (Wyllie): given successor pointers in
/// `next` (cell value = index within `next`, self-loop at the tail) and
/// initial weights in `rank`, computes in `rank[i]` the sum of weights
/// from `i`'s successor chain to the tail — `2⌈lg n⌉` steps with `n`
/// processors on a CREW machine (reads concentrate at the tail).
///
/// This is the standard PRAM substrate under the paper's family of
/// algorithms (e.g. processor allocation by list operations).
pub fn list_rank(p: &mut Pram<i64>, next: Range<usize>, rank: Range<usize>) {
    let n = next.len();
    assert_eq!(rank.len(), n);
    assert!(
        p.mode() != Mode::Erew,
        "pointer jumping needs concurrent reads"
    );
    if n == 0 {
        return;
    }
    let (n0, r0) = (next.start, rank.start);
    let mut hops = 1usize;
    while hops < n {
        // Step 1: rank[i] += rank[next[i]] (unless next[i] == i).
        p.step(n, |ctx| {
            let i = ctx.proc();
            let nx = ctx.read(n0 + i) as usize;
            if nx != i {
                let a = ctx.read(r0 + i);
                let b = ctx.read(r0 + nx);
                ctx.write(r0 + i, a + b);
            }
        });
        // Step 2: next[i] = next[next[i]].
        p.step(n, |ctx| {
            let i = ctx.proc();
            let nx = ctx.read(n0 + i) as usize;
            if nx != i {
                let nn = ctx.read(n0 + nx);
                ctx.write(n0 + i, nn);
            }
        });
        hops *= 2;
    }
}

/// Single-step minimum under the combining `Min` write policy with `n`
/// processors. Returns the address of the result.
pub fn combining_min<C: Cell>(p: &mut Pram<C>, region: Range<usize>) -> usize {
    assert_eq!(
        p.mode(),
        Mode::Crcw(WritePolicy::Min),
        "combining_min requires the Min write policy"
    );
    let n = region.len();
    assert!(n > 0);
    let dst = p.alloc(1, p.peek(region.start)).start;
    let r0 = region.start;
    p.step(n, |ctx| {
        let v = ctx.read(r0 + ctx.proc());
        ctx.write(dst, v);
    });
    dst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_vi(p: &mut Pram<VI<i64>>, vals: &[i64]) -> Range<usize> {
        let cells: Vec<VI<i64>> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| VI::new(v, i))
            .collect();
        p.load(&cells)
    }

    const FZ: VI<i64> = VI { v: 0, i: 0 };
    const FO: VI<i64> = VI { v: 0, i: 1 };

    #[test]
    fn decode_pair_enumerates_all_pairs() {
        let mut seen = std::collections::HashSet::new();
        for t in 0..45 {
            let (x, y) = decode_pair(t);
            assert!(x < y && y < 10, "bad pair ({x},{y}) at t={t}");
            assert!(seen.insert((x, y)));
        }
        assert_eq!(seen.len(), 45);
    }

    #[test]
    fn vi_order_is_lexicographic() {
        assert!(VI::new(1i64, 5) < VI::new(2, 0));
        assert!(VI::new(1i64, 0) < VI::new(1, 5));
    }

    #[test]
    fn broadcast_crew_is_one_step() {
        let mut p = Pram::new(Mode::Crew);
        let src = p.load(&[9i64]);
        let dst = p.alloc(8, 0);
        broadcast(&mut p, src.start, dst.clone());
        assert_eq!(p.read_out(dst), vec![9; 8]);
        assert_eq!(p.metrics().steps, 1);
    }

    #[test]
    fn broadcast_erew_is_logarithmic() {
        let mut p = Pram::new(Mode::Erew);
        let src = p.load(&[9i64]);
        let dst = p.alloc(8, 0);
        broadcast(&mut p, src.start, dst.clone());
        assert_eq!(p.read_out(dst), vec![9; 8]);
        assert_eq!(p.metrics().steps, 4); // 1 + lg 8
    }

    #[test]
    fn tree_min_finds_leftmost_minimum() {
        let mut p = Pram::new(Mode::Crew);
        let r = load_vi(&mut p, &[5, 2, 8, 2, 9, 7]);
        let at = tree_min(&mut p, r);
        assert_eq!(p.peek(at), VI::new(2, 1));
        // 1 copy + ceil(lg 6) = 3 halving steps.
        assert_eq!(p.metrics().steps, 4);
    }

    #[test]
    fn tree_reduce_handles_non_powers_of_two() {
        for n in 1..40usize {
            let mut p = Pram::new(Mode::Crew);
            let vals: Vec<i64> = (0..n).map(|i| ((i * 7919) % 101) as i64).collect();
            let r = load_vi(&mut p, &vals);
            let at = tree_min(&mut p, r);
            let want = vals
                .iter()
                .enumerate()
                .min_by_key(|&(i, &v)| (v, i))
                .map(|(i, &v)| VI::new(v, i))
                .unwrap();
            assert_eq!(p.peek(at), want, "n={n}");
        }
    }

    #[test]
    fn scan_inclusive_prefix_sums() {
        let mut p = Pram::new(Mode::Crew);
        let r = p.load(&[1i64, 2, 3, 4, 5]);
        scan_inclusive(&mut p, r.clone(), |a, b| a + b);
        assert_eq!(p.read_out(r), vec![1, 3, 6, 10, 15]);
        assert_eq!(p.metrics().steps, 3); // ceil(lg 5)
    }

    #[test]
    fn scan_inclusive_min() {
        let mut p = Pram::new(Mode::Crew);
        let r = p.load(&[4i64, 2, 7, 1, 9]);
        scan_inclusive(&mut p, r.clone(), |a, b| a.min(b));
        assert_eq!(p.read_out(r), vec![4, 2, 2, 1, 1]);
    }

    #[test]
    fn blelloch_scan_is_erew_and_work_efficient() {
        let mut p = Pram::new(Mode::Erew); // exclusive accesses only
        let r = p.load(&[3i64, 1, 7, 0, 4, 1, 6, 3]);
        scan_exclusive_blelloch(&mut p, r.clone(), 0, |a, b| a + b);
        assert_eq!(p.read_out(r), vec![0, 3, 4, 11, 11, 15, 16, 22]);
        // 2 up-sweep + 1 clear + 3x3 down-sweep steps at n = 8.
        assert!(p.metrics().steps <= 3 + 3 * 3 + 1);
        // Work O(n): Σ n/2^k over levels (twice) plus staging.
        assert!(p.metrics().work <= 6 * 8);
    }

    #[test]
    fn blelloch_matches_inclusive_scan_shifted() {
        for n in [1usize, 2, 4, 16, 64] {
            let vals: Vec<i64> = (0..n).map(|i| (i as i64 * 13) % 7).collect();
            let mut p1 = Pram::new(Mode::Erew);
            let r1 = p1.load(&vals);
            scan_exclusive_blelloch(&mut p1, r1.clone(), 0, |a, b| a + b);
            let excl = p1.read_out(r1);
            let mut acc = 0;
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(excl[i], acc, "n={n} i={i}");
                acc += v;
            }
        }
    }

    #[test]
    fn blelloch_with_min_operator() {
        let mut p = Pram::new(Mode::Crew);
        let r = p.load(&[5i64, 3, 9, 1]);
        scan_exclusive_blelloch(&mut p, r.clone(), i64::MAX, |a, b| a.min(b));
        assert_eq!(p.read_out(r), vec![i64::MAX, 5, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn blelloch_rejects_odd_lengths() {
        let mut p = Pram::new(Mode::Erew);
        let r = p.load(&[1i64, 2, 3]);
        scan_exclusive_blelloch(&mut p, r, 0, |a, b| a + b);
    }

    #[test]
    fn quadratic_min_is_three_steps() {
        let mut p = Pram::new(Mode::Crcw(WritePolicy::Arbitrary));
        let r = load_vi(&mut p, &[4, 4, 1, 3, 1, 8]);
        let dst = p.alloc(1, FZ).start;
        crcw_min_quadratic(&mut p, r, dst, FZ, FO);
        assert_eq!(p.peek(dst), VI::new(1, 2)); // leftmost of the two 1s
        assert_eq!(p.metrics().steps, 3);
    }

    #[test]
    fn quadratic_min_works_under_common_policy() {
        let mut p = Pram::new(Mode::Crcw(WritePolicy::Common));
        let r = load_vi(&mut p, &[10, 3, 5]);
        let dst = p.alloc(1, FZ).start;
        crcw_min_quadratic(&mut p, r, dst, FZ, FO);
        assert_eq!(p.peek(dst), VI::new(3, 1));
    }

    #[test]
    fn doubly_log_min_correct_and_fast() {
        for n in [1usize, 2, 3, 5, 16, 100, 257, 1024] {
            let mut p = Pram::new(Mode::Crcw(WritePolicy::Arbitrary));
            let vals: Vec<i64> = (0..n).map(|i| ((i * 2654435761) % 1000) as i64).collect();
            let r = load_vi(&mut p, &vals);
            let at = crcw_min_doubly_log(&mut p, r, FZ, FO);
            let want = vals
                .iter()
                .enumerate()
                .min_by_key(|&(i, &v)| (v, i))
                .map(|(i, &v)| VI::new(v, i))
                .unwrap();
            assert_eq!(p.peek(at), want, "n={n}");
            // 3 steps per phase + copy; lg lg 1024 ≈ 3.3 → allow a
            // generous constant.
            assert!(
                p.metrics().steps <= 3 * 8 + 1,
                "n={n}: {} steps",
                p.metrics().steps
            );
        }
    }

    #[test]
    fn doubly_log_phases_grow_very_slowly() {
        // steps(2^20 elements) should exceed steps(2^8) by at most ~2
        // phases (6 steps) — the doubly-log signature. Use moderate sizes
        // to keep the test fast.
        let steps_of = |n: usize| {
            let mut p = Pram::new(Mode::Crcw(WritePolicy::Arbitrary));
            let vals: Vec<i64> = (0..n).map(|i| (i as i64 * 37) % 1009).collect();
            let r = load_vi(&mut p, &vals);
            let _ = crcw_min_doubly_log(&mut p, r, FZ, FO);
            p.metrics().steps
        };
        assert!(steps_of(1 << 14) <= steps_of(1 << 7) + 6);
    }

    #[test]
    fn combining_min_single_step() {
        let mut p = Pram::new(Mode::Crcw(WritePolicy::Min));
        let r = load_vi(&mut p, &[4, 1, 1, 7]);
        let at = combining_min(&mut p, r);
        assert_eq!(p.peek(at), VI::new(1, 1));
        assert_eq!(p.metrics().steps, 1);
    }

    #[test]
    #[should_panic(expected = "requires the Min write policy")]
    fn combining_min_rejects_wrong_policy() {
        let mut p = Pram::new(Mode::Crcw(WritePolicy::Arbitrary));
        let r = load_vi(&mut p, &[1, 2]);
        let _ = combining_min(&mut p, r);
    }

    #[test]
    fn list_ranking_computes_distances() {
        // List 3 -> 0 -> 2 -> 1 (tail), stored as next-pointers.
        let mut p = Pram::new(Mode::Crew);
        let next = p.load(&[2i64, 1, 1, 0]); // next[3]=0, next[0]=2, next[2]=1, next[1]=1 (tail)
        let rank = p.load(&[1i64, 0, 1, 1]); // weight 1 per non-tail node
        list_rank(&mut p, next, rank.clone());
        // Distances to tail: node3=3, node0=2, node2=1, node1=0.
        assert_eq!(p.read_out(rank), vec![2, 0, 1, 3]);
    }

    #[test]
    fn list_ranking_random_permutations() {
        let mut x: u64 = 0xA5A5_5A5A_1234_5678;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for n in [1usize, 2, 5, 33, 128] {
            // Random chain order.
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = (rnd() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut next = vec![0i64; n];
            let mut want = vec![0i64; n];
            for k in 0..n {
                next[order[k]] = if k + 1 < n {
                    order[k + 1] as i64
                } else {
                    order[k] as i64
                };
                want[order[k]] = (n - 1 - k) as i64;
            }
            let rankv: Vec<i64> = (0..n)
                .map(|i| if next[i] == i as i64 { 0 } else { 1 })
                .collect();
            let mut p = Pram::new(Mode::Crew);
            let nr = p.load(&next);
            let rr = p.load(&rankv);
            list_rank(&mut p, nr, rr.clone());
            assert_eq!(p.read_out(rr), want, "n={n}");
            // 2 steps per doubling round.
            let lg = (usize::BITS - (n - 1).max(1).leading_zeros()) as u64;
            assert!(p.metrics().steps <= 2 * (lg + 1), "n={n}");
        }
    }

    #[test]
    fn copy_region_one_step() {
        let mut p = Pram::new(Mode::Erew);
        let src = p.load(&[1i64, 2, 3]);
        let dst = p.alloc(3, 0);
        copy_region(&mut p, src, dst.clone());
        assert_eq!(p.read_out(dst), vec![1, 2, 3]);
        assert_eq!(p.metrics().steps, 1);
    }
}
