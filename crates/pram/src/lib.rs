//! # monge-pram
//!
//! A synchronous PRAM simulator. The paper's §2 algorithms are stated for
//! CRCW- and CREW-PRAMs; since no such machine exists, this crate builds
//! one in software, with the accounting needed to *measure* the paper's
//! claims: parallel time (steps), work (processor-steps), and peak
//! processor demand.
//!
//! ## Model
//!
//! A [`machine::Pram`] owns a shared memory of cells. One **step** runs a
//! per-processor closure for every scheduled processor: all reads observe
//! the memory as it was at the beginning of the step (synchronous
//! semantics), each processor may issue at most one write, and writes are
//! applied at the end of the step under the machine's
//! [`machine::Mode`]:
//!
//! * `Erew` — concurrent reads **and** writes to the same cell are model
//!   violations;
//! * `Crew` — concurrent reads allowed, concurrent writes are violations;
//! * `Crcw(policy)` — concurrent writes resolved by a
//!   [`machine::WritePolicy`]: `Common` (all written values must agree),
//!   `Arbitrary`/`Priority` (lowest processor id wins), `Min`/`Max`
//!   (combining write, the primitive behind constant-time extrema).
//!
//! Violations panic in strict mode (the default) and are tallied in
//! [`metrics::Metrics`] otherwise.
//!
//! ## Fork/join accounting
//!
//! The paper's algorithms solve many independent subproblems "in
//! parallel". The simulator executes branches sequentially but accounts
//! for them in parallel: within a [`machine::Pram::fork`]…
//! [`machine::Pram::join`] section, elapsed steps are the **maximum**
//! over branches while work accumulates additively — exactly the PRAM
//! cost of running the branches side by side on disjoint processors.
//!
//! ## Primitives
//!
//! [`ops`] implements the standard toolkit the paper's proofs lean on:
//! broadcast, tree reductions, (segmented) parallel prefix, Blelloch's
//! work-efficient EREW scan, list ranking, and the doubly-logarithmic
//! and constant-time CRCW minimum.
//!
//! ```
//! use monge_pram::{Mode, Pram};
//! use monge_pram::ops::{tree_min, VI};
//!
//! // Find the leftmost minimum of eight values on a simulated CREW
//! // machine and inspect the cost.
//! let mut p = Pram::new(Mode::Crew);
//! let cells: Vec<VI<i64>> = [5, 2, 8, 2, 9, 7, 1, 4]
//!     .iter().enumerate().map(|(i, &v)| VI::new(v, i)).collect();
//! let region = p.load(&cells);
//! let at = tree_min(&mut p, region);
//! assert_eq!(p.peek(at), VI::new(1, 6));
//! assert_eq!(p.metrics().steps, 4); // 1 copy + ⌈lg 8⌉ halvings
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod metrics;
pub mod ops;

pub use machine::{Mode, Pram, WritePolicy};
pub use metrics::Metrics;
