//! Cross-request fault memory for the serving stack: a per-backend
//! health registry with sliding-window outcome tracking, circuit
//! breakers, and the global retry budget behind
//! [`monge_core::guard::RetryPolicy`].
//!
//! The guarded dispatch layer (PR 4) treats every solve as an isolated
//! attempt: a backend that panics on request N is tried again fresh on
//! request N+1, burning a `catch_unwind` + checkpoint budget each time.
//! A long-lived service answering a sustained request stream needs
//! *memory*: [`HealthRegistry`] records a sliding window of per-solve
//! outcomes (ok / panic / deadline / violation) plus a latency EWMA per
//! backend name, and derives a circuit-breaker admission
//! decision from it:
//!
//! ```text
//!            K failures in window
//!   Closed ──────────────────────▶ Open
//!      ▲                            │ cooldown elapses
//!      │ probe completes            ▼
//!      └──────────────────────── HalfOpen ──probe faults──▶ Open
//! ```
//!
//! * **Closed** — every solve admitted; outcomes fill the window.
//! * **Open** — solves denied ([`Admission::Deny`] with the remaining
//!   cooldown); the guarded chain skips the backend *before* paying for
//!   a doomed attempt.
//! * **HalfOpen** — after the cooldown, a single probe solve is
//!   admitted at a time ([`Admission::Probe`]); a completed probe closes
//!   the circuit, a faulted one re-opens it.
//!
//! All transitions are driven by a pluggable [`Clock`] — monotonic in
//! production ([`MonotonicClock`]), a seeded-advance [`VirtualClock`] in
//! tests and the chaos harness — so every state change is deterministic
//! and assertable without real sleeps.
//!
//! The registry also owns the **global retry budget**: a token bucket
//! refilled by a fixed credit per admitted request and drained by one
//! token per retry, so retries can never amplify an overload beyond a
//! bounded fraction of the request rate (the Finagle-style budget
//! argument). [`HealthRegistry::try_spend_retry`] is consulted by the
//! guarded chain before every re-attempt.
//!
//! The promise-free `BruteForceBackend` terminal is exempt by
//! construction: the guarded chain never consults the registry for it,
//! so a degraded process always has a correct (if slow) path to an
//! answer.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use monge_core::guard::{BackendHealthSnapshot, BreakerState};

/// A monotonic time source for breaker cooldowns and retry backoff.
///
/// Production uses [`MonotonicClock`]; tests and the chaos harness use
/// [`VirtualClock`], whose `sleep` *advances* virtual time instead of
/// stalling the thread — which is what makes breaker transitions and
/// backoff schedules deterministic and fast to assert.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Monotonic time elapsed since this clock's epoch.
    fn now(&self) -> Duration;

    /// Blocks (or virtually advances) for `d`.
    fn sleep(&self, d: Duration);
}

/// The production [`Clock`]: `Instant`-based, epoch at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A deterministic [`Clock`] for tests: time only moves when
/// [`VirtualClock::advance`] (or a backoff `sleep`) moves it.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves virtual time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    fn sleep(&self, d: Duration) {
        // A virtual sleep is an advance: retry backoff under the chaos
        // harness costs zero wall-clock but still sequences the breaker
        // cooldown math.
        self.advance(d);
    }
}

/// Breaker and retry-budget knobs, overridable via `MONGE_BREAKER_*` /
/// `MONGE_RETRY_*` environment variables (see
/// [`HealthConfig::from_env`]).
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Sliding-window length, in outcomes (`MONGE_BREAKER_WINDOW`).
    pub window: usize,
    /// Failures in the window that trip Closed → Open
    /// (`MONGE_BREAKER_OPEN_AFTER`). `0` disables the breaker: every
    /// admission is allowed.
    pub open_after: u32,
    /// Open → HalfOpen cooldown (`MONGE_BREAKER_COOLDOWN_MS`).
    pub cooldown: Duration,
    /// Completed probes needed to close a HalfOpen circuit.
    pub half_open_successes: u32,
    /// EWMA weight of the newest latency sample, in per-mille.
    pub ewma_per_mille: u32,
    /// Retry-budget capacity in whole tokens (`MONGE_RETRY_BUDGET`);
    /// one retry spends one token. The bucket starts full.
    pub retry_budget: u64,
    /// Milli-tokens credited to the budget per admitted request: `100`
    /// means one free retry per ten requests, steady-state.
    pub retry_credit_milli: u64,
}

impl HealthConfig {
    /// The built-in defaults: window 16, open after 5 window failures,
    /// 100 ms cooldown, 1 probe to close, EWMA weight 0.2, retry budget
    /// 64 tokens refilled at 0.1 per request.
    pub const DEFAULT: HealthConfig = HealthConfig {
        window: 16,
        open_after: 5,
        cooldown: Duration::from_millis(100),
        half_open_successes: 1,
        ewma_per_mille: 200,
        retry_budget: 64,
        retry_credit_milli: 100,
    };

    /// Defaults overlaid with any valid environment overrides:
    /// `MONGE_BREAKER_WINDOW`, `MONGE_BREAKER_OPEN_AFTER` (0 disables),
    /// `MONGE_BREAKER_COOLDOWN_MS`, `MONGE_RETRY_BUDGET`. Malformed
    /// values are ignored, like the `MONGE_*` tuning knobs.
    pub fn from_env() -> Self {
        let env_u64 =
            |key: &str| -> Option<u64> { std::env::var(key).ok()?.trim().parse::<u64>().ok() };
        let mut c = HealthConfig::DEFAULT;
        if let Some(w) = env_u64("MONGE_BREAKER_WINDOW") {
            if w > 0 {
                c.window = w.min(4096) as usize;
            }
        }
        if let Some(k) = env_u64("MONGE_BREAKER_OPEN_AFTER") {
            c.open_after = k.min(u32::MAX as u64) as u32;
        }
        if let Some(ms) = env_u64("MONGE_BREAKER_COOLDOWN_MS") {
            c.cooldown = Duration::from_millis(ms);
        }
        if let Some(b) = env_u64("MONGE_RETRY_BUDGET") {
            c.retry_budget = b;
        }
        c
    }
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig::DEFAULT
    }
}

/// What one solve attempt did, as the registry records it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Observation {
    /// The backend returned a solution.
    Ok,
    /// The backend panicked.
    Panic,
    /// The cooperative deadline fired inside the backend.
    Deadline,
    /// Validation found the input's structural promise broken (recorded
    /// against the `"validator"` pseudo-backend).
    Violation,
}

impl Observation {
    fn is_failure(self) -> bool {
        !matches!(self, Observation::Ok)
    }
}

/// The registry's answer to "may this backend take the next solve?".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Circuit closed: proceed.
    Allow,
    /// Circuit half-open: proceed as the single in-flight probe. The
    /// caller **must** [`HealthRegistry::record`] the attempt's outcome,
    /// or the probe slot stays occupied until [`HealthRegistry::reset`].
    Probe,
    /// Circuit open: skip this backend.
    Deny {
        /// Cooldown remaining before the breaker half-opens.
        retry_after: Duration,
    },
}

/// One backend's sliding window, EWMA and breaker state.
#[derive(Debug, Default)]
struct BackendRecord {
    /// `true` entries are failures.
    window: VecDeque<bool>,
    failures: u32,
    ewma_nanos: u64,
    state: BreakerState,
    /// Clock reading when the circuit last opened.
    opened_at: Duration,
    probe_in_flight: bool,
    probe_successes: u32,
}

impl BackendRecord {
    fn push_outcome(&mut self, failure: bool, window: usize) {
        self.window.push_back(failure);
        if failure {
            self.failures += 1;
        }
        while self.window.len() > window.max(1) {
            if self.window.pop_front() == Some(true) {
                self.failures -= 1;
            }
        }
    }

    fn reset_window(&mut self) {
        self.window.clear();
        self.failures = 0;
    }
}

/// Process-lifetime (or service-lifetime) fault memory: per-backend
/// sliding windows, circuit breakers, latency EWMAs, and the global
/// retry budget. See the [module docs](self) for the state machine.
///
/// One registry is attached to each [`crate::Dispatcher`] (tests swap
/// in instances driven by a [`VirtualClock`]); a
/// [`crate::batch::SolverService`] therefore carries its fault memory
/// across drains.
#[derive(Debug)]
pub struct HealthRegistry {
    clock: Arc<dyn Clock>,
    config: HealthConfig,
    records: Mutex<HashMap<&'static str, BackendRecord>>,
    /// Retry budget in milli-tokens (1000 = one retry).
    retry_milli: AtomicU64,
}

impl HealthRegistry {
    /// A registry over an explicit config and clock.
    pub fn new(config: HealthConfig, clock: Arc<dyn Clock>) -> Self {
        HealthRegistry {
            clock,
            retry_milli: AtomicU64::new(config.retry_budget.saturating_mul(1000)),
            config,
            records: Mutex::new(HashMap::new()),
        }
    }

    /// Environment-configured registry on a fresh [`MonotonicClock`] —
    /// what [`crate::Dispatcher`] constructs by default.
    pub fn from_env() -> Self {
        Self::new(HealthConfig::from_env(), Arc::new(MonotonicClock::new()))
    }

    /// The clock driving cooldowns and retry backoff.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The active configuration.
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<&'static str, BackendRecord>> {
        self.records.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// May `backend` take the next solve? Open circuits whose cooldown
    /// has elapsed transition to HalfOpen here and grant the probe slot.
    pub fn admit(&self, backend: &'static str) -> Admission {
        if self.config.open_after == 0 {
            return Admission::Allow;
        }
        let mut records = self.lock();
        let rec = records.entry(backend).or_default();
        match rec.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => {
                let now = self.clock.now();
                let reopens = rec.opened_at + self.config.cooldown;
                if now >= reopens {
                    rec.state = BreakerState::HalfOpen;
                    rec.probe_in_flight = true;
                    rec.probe_successes = 0;
                    Admission::Probe
                } else {
                    Admission::Deny {
                        retry_after: reopens - now,
                    }
                }
            }
            BreakerState::HalfOpen => {
                if rec.probe_in_flight {
                    Admission::Deny {
                        retry_after: Duration::ZERO,
                    }
                } else {
                    rec.probe_in_flight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Records one attempt's outcome and latency, driving the breaker
    /// state machine. `latency_nanos` feeds the EWMA for every outcome
    /// (a slow failure is still a latency signal).
    pub fn record(&self, backend: &'static str, outcome: Observation, latency_nanos: u64) {
        let mut records = self.lock();
        let rec = records.entry(backend).or_default();
        let a = self.config.ewma_per_mille.min(1000) as u128;
        rec.ewma_nanos = if rec.ewma_nanos == 0 {
            latency_nanos
        } else {
            ((a * latency_nanos as u128 + (1000 - a) * rec.ewma_nanos as u128) / 1000) as u64
        };
        if self.config.open_after == 0 {
            return;
        }
        let failure = outcome.is_failure();
        match rec.state {
            BreakerState::Closed => {
                rec.push_outcome(failure, self.config.window);
                if rec.failures >= self.config.open_after {
                    rec.state = BreakerState::Open;
                    rec.opened_at = self.clock.now();
                    rec.reset_window();
                }
            }
            BreakerState::HalfOpen => {
                rec.probe_in_flight = false;
                if failure {
                    rec.state = BreakerState::Open;
                    rec.opened_at = self.clock.now();
                    rec.probe_successes = 0;
                    rec.reset_window();
                } else {
                    rec.probe_successes += 1;
                    if rec.probe_successes >= self.config.half_open_successes.max(1) {
                        rec.state = BreakerState::Closed;
                        rec.reset_window();
                    }
                }
            }
            // A straggler outcome landing while Open (e.g. a strip that
            // finished after its breaker tripped) changes nothing: the
            // cooldown owns the next transition.
            BreakerState::Open => {}
        }
    }

    /// The breaker state of `backend` (Closed for never-seen names).
    pub fn state(&self, backend: &str) -> BreakerState {
        self.lock()
            .get(backend)
            .map_or(BreakerState::Closed, |r| r.state)
    }

    /// Trips `backend`'s breaker to Open as of now — the operational
    /// kill switch, and how tests force the all-open topology.
    pub fn force_open(&self, backend: &'static str) {
        let mut records = self.lock();
        let rec = records.entry(backend).or_default();
        rec.state = BreakerState::Open;
        rec.opened_at = self.clock.now();
        rec.probe_in_flight = false;
        rec.reset_window();
    }

    /// Clears `backend`'s record entirely (state, window, EWMA).
    pub fn reset(&self, backend: &str) {
        self.lock().remove(backend);
    }

    /// A point-in-time snapshot of every tracked backend, sorted by
    /// name for deterministic telemetry.
    pub fn snapshot(&self) -> Vec<BackendHealthSnapshot> {
        let records = self.lock();
        let mut out: Vec<BackendHealthSnapshot> = records
            .iter()
            .map(|(&backend, r)| BackendHealthSnapshot {
                backend,
                state: r.state,
                window_failures: r.failures,
                window_len: r.window.len() as u32,
                latency_ewma_nanos: r.ewma_nanos,
            })
            .collect();
        out.sort_by_key(|s| s.backend);
        out
    }

    // --- Retry budget -------------------------------------------------

    /// Credits the budget for one admitted request (called once per
    /// guarded solve). Capped at [`HealthConfig::retry_budget`] tokens.
    pub fn credit_request(&self) {
        let cap = self.config.retry_budget.saturating_mul(1000);
        let credit = self.config.retry_credit_milli;
        if credit == 0 {
            return;
        }
        // Saturating add under the cap; relaxed CAS loop.
        let mut cur = self.retry_milli.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(credit).min(cap);
            if next == cur {
                return;
            }
            match self.retry_milli.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Spends one retry token; `false` means the global budget is
    /// exhausted and the caller must not retry.
    pub fn try_spend_retry(&self) -> bool {
        let mut cur = self.retry_milli.load(Ordering::Relaxed);
        loop {
            if cur < 1000 {
                return false;
            }
            match self.retry_milli.compare_exchange_weak(
                cur,
                cur - 1000,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Whole retry tokens currently available.
    pub fn retry_tokens(&self) -> u64 {
        self.retry_milli.load(Ordering::Relaxed) / 1000
    }
}

impl Default for HealthRegistry {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn virtual_registry(config: HealthConfig) -> (Arc<VirtualClock>, HealthRegistry) {
        let clock = Arc::new(VirtualClock::new());
        let reg = HealthRegistry::new(config, clock.clone());
        (clock, reg)
    }

    #[test]
    fn breaker_opens_after_k_failures_and_recovers_via_half_open() {
        let config = HealthConfig {
            open_after: 3,
            cooldown: Duration::from_millis(50),
            ..HealthConfig::DEFAULT
        };
        let (clock, reg) = virtual_registry(config);
        assert_eq!(reg.admit("rayon"), Admission::Allow);
        for _ in 0..2 {
            reg.record("rayon", Observation::Panic, 10);
            assert_eq!(reg.state("rayon"), BreakerState::Closed);
        }
        reg.record("rayon", Observation::Panic, 10);
        assert_eq!(reg.state("rayon"), BreakerState::Open, "K=3 failures trip");
        // Denied with the remaining cooldown.
        match reg.admit("rayon") {
            Admission::Deny { retry_after } => {
                assert_eq!(retry_after, Duration::from_millis(50));
            }
            other => panic!("expected Deny, got {other:?}"),
        }
        // Cooldown elapses on the virtual clock: exactly one probe.
        clock.advance(Duration::from_millis(50));
        assert_eq!(reg.admit("rayon"), Admission::Probe);
        assert_eq!(reg.state("rayon"), BreakerState::HalfOpen);
        assert!(
            matches!(reg.admit("rayon"), Admission::Deny { .. }),
            "second probe denied while the first is in flight"
        );
        reg.record("rayon", Observation::Ok, 10);
        assert_eq!(reg.state("rayon"), BreakerState::Closed, "probe closes");
        assert_eq!(reg.admit("rayon"), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens_with_a_fresh_cooldown() {
        let config = HealthConfig {
            open_after: 1,
            cooldown: Duration::from_millis(10),
            ..HealthConfig::DEFAULT
        };
        let (clock, reg) = virtual_registry(config);
        reg.record("seq", Observation::Deadline, 5);
        assert_eq!(reg.state("seq"), BreakerState::Open);
        clock.advance(Duration::from_millis(10));
        assert_eq!(reg.admit("seq"), Admission::Probe);
        reg.record("seq", Observation::Panic, 5);
        assert_eq!(reg.state("seq"), BreakerState::Open, "failed probe reopens");
        match reg.admit("seq") {
            Admission::Deny { retry_after } => {
                assert_eq!(retry_after, Duration::from_millis(10), "cooldown restarts");
            }
            other => panic!("expected Deny, got {other:?}"),
        }
    }

    #[test]
    fn window_slides_old_failures_out() {
        let config = HealthConfig {
            window: 4,
            open_after: 3,
            ..HealthConfig::DEFAULT
        };
        let (_clock, reg) = virtual_registry(config);
        // Two failures, then a run of successes pushes them out.
        reg.record("b", Observation::Panic, 1);
        reg.record("b", Observation::Panic, 1);
        for _ in 0..4 {
            reg.record("b", Observation::Ok, 1);
        }
        // Two fresh failures: window holds [ok, ok, fail, fail] → 2 < 3.
        reg.record("b", Observation::Panic, 1);
        reg.record("b", Observation::Panic, 1);
        assert_eq!(
            reg.state("b"),
            BreakerState::Closed,
            "old failures aged out"
        );
        reg.record("b", Observation::Panic, 1);
        assert_eq!(
            reg.state("b"),
            BreakerState::Open,
            "3 in-window failures trip"
        );
    }

    #[test]
    fn disabled_breaker_always_allows() {
        let config = HealthConfig {
            open_after: 0,
            ..HealthConfig::DEFAULT
        };
        let (_clock, reg) = virtual_registry(config);
        for _ in 0..50 {
            reg.record("b", Observation::Panic, 1);
        }
        assert_eq!(reg.admit("b"), Admission::Allow);
        assert_eq!(reg.state("b"), BreakerState::Closed);
    }

    #[test]
    fn retry_budget_drains_and_refills_by_request_credit() {
        let config = HealthConfig {
            retry_budget: 2,
            retry_credit_milli: 500, // one token per two requests
            ..HealthConfig::DEFAULT
        };
        let (_clock, reg) = virtual_registry(config);
        assert!(reg.try_spend_retry());
        assert!(reg.try_spend_retry());
        assert!(!reg.try_spend_retry(), "bucket starts with exactly 2");
        reg.credit_request();
        assert!(!reg.try_spend_retry(), "half a token is not a retry");
        reg.credit_request();
        assert!(reg.try_spend_retry(), "two requests credit one retry");
        // The cap holds.
        for _ in 0..100 {
            reg.credit_request();
        }
        assert_eq!(reg.retry_tokens(), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_reflects_state() {
        let (_clock, reg) = virtual_registry(HealthConfig {
            open_after: 1,
            ..HealthConfig::DEFAULT
        });
        reg.record("zeta", Observation::Ok, 100);
        reg.record("alpha", Observation::Panic, 50);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].backend, "alpha");
        assert_eq!(snap[0].state, BreakerState::Open);
        assert_eq!(snap[1].backend, "zeta");
        assert_eq!(snap[1].state, BreakerState::Closed);
        assert_eq!(snap[1].window_failures, 0);
        assert_eq!(snap[1].window_len, 1);
        assert_eq!(snap[1].latency_ewma_nanos, 100);
    }

    #[test]
    fn ewma_tracks_latency_with_first_sample_seeding() {
        let (_clock, reg) = virtual_registry(HealthConfig::DEFAULT);
        reg.record("b", Observation::Ok, 1000);
        reg.record("b", Observation::Ok, 2000);
        let snap = reg.snapshot();
        // 0.2 × 2000 + 0.8 × 1000 = 1200.
        assert_eq!(snap[0].latency_ewma_nanos, 1200);
    }

    #[test]
    fn virtual_clock_sleep_advances_time() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.sleep(Duration::from_millis(7));
        clock.advance(Duration::from_millis(3));
        assert_eq!(clock.now(), Duration::from_millis(10));
    }

    #[test]
    fn force_open_denies_until_reset() {
        let (_clock, reg) = virtual_registry(HealthConfig::DEFAULT);
        reg.force_open("rayon");
        assert!(matches!(reg.admit("rayon"), Admission::Deny { .. }));
        reg.reset("rayon");
        assert_eq!(reg.admit("rayon"), Admission::Allow);
    }
}
